#!/usr/bin/env python
"""Perf smoke harness: the columnar hot path must not regress.

Runs a fixed FatTree4 DCTCP scenario on both engines (the OOD baseline
and the DOD engine, the latter on both the Python and NumPy backends),
measures wall-clock and event counts, writes a JSON report, and asserts
the DOD engine has not regressed more than ``--tolerance`` (default
20%) against the recorded baseline.  The NumPy backend carries standing
gates of its own: its event counts must equal the Python backend's
exactly, ``ratio_numpy_over_python`` must stay below ``NUMPY_GATE``
(the vectorized backend exists to be faster), and the K=8
multi-window-batched run (``dons_numpy_batched_s``) must reproduce the
unbatched event counts exactly.  ``batch_scaling`` records the numpy
wall-clock at K ∈ {1, 4, 8} windows per drain for the CI artifact.

The telemetry layer carries its own standing gates: a fully
instrumented run (``ratio_telemetry_over_plain``) must stay under
``TELEMETRY_GATE`` and must reproduce the plain run's event counts
exactly.

The live observability plane (``repro.metrics.live``) is gated the
same way: a plain (untelemetered) run with the full plane attached —
NDJSON sampler at a 50 ms interval plus a live OpenMetrics endpoint —
must stay under ``LIVE_GATE`` of the bare run beside it
(``ratio_live_over_plain``, paired per repeat) and must reproduce its
event counts exactly.

The window-signature memo (``repro.core.memo``) is gated on a separate
steady-state UDP scenario where its hit rate is near 100%: the
fast-forwarded run must reproduce the plain run's event counts exactly,
record a nonzero hit count, and keep ``ratio_ffwd_over_plain`` under
``FFWD_GATE``.

The workload library carries a standing gate on its headline scale: a
100k-flow DiffServ WAN twin (``wan_twin_s``) is synthesized columnar
and executed on the preferred backend every repeat; the flow budget
must be met and the python/numpy backends must agree on its event
counts exactly.

The distributed stack is measured on the zero-copy shared-memory
transport (2 process agents, ``transport="shm"``), paired per repeat
against the best serial engine run of the same iteration, plus a
1/2/4-agent ``cluster_scaling`` curve for the CI artifact.  Standing
gates: the merged cluster run must reproduce the serial event counts
exactly, and — on a machine with at least two usable cores, where
agent parallelism is physically possible — ``ratio_cluster_over_dons``
must stay under ``CLUSTER_GATE`` (= 1.0: the cluster exists to beat
serial).  On a single-core machine the ratio degrades to
baseline-relative monitoring like the dons/ood ratio, because two
agents time-slicing one core cannot beat the engine they are
time-slicing; ``cpus`` in the report records which regime was
measured.

Wall-clock is machine-dependent, so the regression check is *relative*:
the dons/ood time ratio of this run is compared against the baseline's
ratio — the OOD engine acts as the per-machine speed calibration, the
way the cost model uses measured quantities instead of absolute clocks.
Event counts are deterministic and must match the baseline exactly.

Usage:

    PYTHONPATH=src python tools/perf_smoke.py             # check
    PYTHONPATH=src python tools/perf_smoke.py --record    # re-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

BASELINE = os.path.join(REPO, "tools", "BENCH_smoke_baseline.json")
REPORT = os.path.join(REPO, "BENCH_smoke.json")
REPEATS = 3
#: Standing gate: a fully-telemetered run (spans + metric sampling on)
#: may cost at most 15% over the plain run on the same scenario.  The
#: *disabled* path has no within-run reference (its guards are compiled
#: into every run), so it is held by the baseline-relative dons/ood
#: ratio check instead.
TELEMETRY_GATE = 1.15
#: Standing gate on the live observability plane: a plain run with the
#: NDJSON sampler (50 ms interval) + OpenMetrics endpoint attached may
#: cost at most 5% over the bare run beside it.  The sampler reads
#: engine state between windows and is wall-clock throttled, so its
#: steady-state cost is one perf_counter comparison per window.
LIVE_GATE = 1.05
#: Standing gate on the vectorized backend: numpy/python wall-clock on
#: the smoke scenario.  The columnar pipeline (raw-column plan pass,
#: fused serial forward, three-tier FIFO replay with inline column
#: delivery) measures 0.55–0.68 on the reference machine, best-of-3;
#: the gate sits at 0.75 to absorb machine noise while still failing
#: any change that costs the backend its structural advantage.  (The
#: original target for this work was 0.5 — the measured best is ~0.55,
#: so the gate encodes what the code actually achieves.)
NUMPY_GATE = 0.75
#: Standing gate on the window-signature memo (repro.core.memo): the
#: fast-forwarded steady-state run over the plain run of the same
#: scenario on the reference backend, paired per repeat.  Measured
#: 0.34–0.40 on the reference machine (>99% hit rate, validation every
#: 32nd hit); the gate sits at the 2x-speedup mark the memo exists to
#: clear.
FFWD_GATE = 0.5
#: Standing gate on the distributed stack: the 2-agent shared-memory
#: cluster over the best serial engine run, paired per repeat.  Enforced
#: only when the machine has >= CLUSTER_GATE_MIN_CPUS usable cores —
#: below that the agents time-slice one core and the ratio is held by
#: the baseline-relative check instead.
CLUSTER_GATE = 1.0
CLUSTER_GATE_MIN_CPUS = 2
#: Agent counts of the cluster scaling curve in the report/artifact.
CLUSTER_CURVE = (1, 2, 4)


def smoke_scenario():
    from repro.scenario import make_scenario
    from repro.topology import fattree
    from repro.traffic import Transport, fixed_flows
    from repro.units import GBPS

    topo = fattree(4, rate_bps=10 * GBPS)
    flows = fixed_flows(topo.hosts, n_flows=64, size_bytes=200_000,
                        transport=Transport.DCTCP, seed=1)
    return make_scenario(topo, flows, name="FatTree4-dctcp-smoke")


def _events(results) -> dict:
    ev = results.events
    return {"total": ev.total, "send": ev.send, "forward": ev.forward,
            "transmit": ev.transmit, "ack": ev.ack,
            "completed": results.completed()}


def fuzz_runner_spec():
    """The fixed conformance spec the fuzz-runner entry times.  Small
    enough to keep the smoke fast; big enough that harness overhead
    (FULL traces, canonicalization, diff, invariant catalogue) is a
    measurable slice of the check."""
    from repro.conformance.generator import ScenarioSpec

    return ScenarioSpec(seed=11, topology="dumbbell", topo_arg=4,
                        traffic="fixed", n_flows=16, flow_kb=60)


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def measure() -> dict:
    """Best-of-N wall-clock for both engines on the fixed scenario,
    plus 1/2/4-agent cluster runs of the same scenario on the
    shared-memory process transport (the distributed stack's cost
    relative to one engine: window agreement, frame packing, FINISH
    barriers — and, with >= 2 cores, its parallel speedup), plus one
    conformance ``check_spec`` on a fixed spec (the fuzz-runner entry:
    FULL-trace oracle runs + diff + invariants, so harness overhead is
    tracked like any other hot path)."""
    from repro.bench.scenarios import steady_state_scenario
    from repro.bench.workloads import wan_twin_smoke
    from repro.cluster import DonsManager
    from repro.conformance.runner import check_spec
    from repro.core.engine import DodEngine, run_dons
    from repro.core.runner import EngineRunner
    from repro.des import run_baseline
    from repro.metrics.live import LivePlane
    from repro.des.partition_types import contiguous_partition
    from repro.partition import ClusterSpec

    try:
        import numpy  # noqa: F401  (availability probe only)
        have_numpy = True
    except ImportError:
        have_numpy = False

    from repro.metrics.timeline import TELEMETRY_SCHEMA_VERSION

    scenario = smoke_scenario()
    steady = steady_state_scenario()
    # The workload-library entry: a 100k-flow DiffServ WAN twin
    # synthesized columnar (the arrival engine's headline scale).  The
    # duration cut keeps the executed event count smoke-sized; the
    # synthesis itself covers all 100k flows every repeat.
    wan_twin = wan_twin_smoke(100_000)
    partitions = {n: contiguous_partition(scenario.topology, n)
                  for n in CLUSTER_CURVE}
    fuzz_spec = fuzz_runner_spec()
    ood_s, dons_s, numpy_s, fuzz_s = [], [], [], []
    cluster_curve_s = {n: [] for n in CLUSTER_CURVE}
    telem_s, live_s = [], []
    steady_s, ffwd_s = [], []
    wan_s = []
    batch_s = {1: [], 4: [], 8: []}
    ood_res = dons_res = numpy_res = cluster_run = fuzz_report = None
    telem_res = batched_res = steady_res = ffwd_res = None
    live_res = None
    wan_res = wan_py_res = None
    ffwd_hits = 0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        ood_res = run_baseline(scenario)
        ood_s.append(time.perf_counter() - t0)
        # Measured entries pin batch_windows explicitly so a CI matrix
        # job exporting REPRO_BATCH_WINDOWS cannot silently change what
        # this harness times.
        t0 = time.perf_counter()
        dons_res = run_dons(scenario, backend="python", batch_windows=1)
        dons_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        telem_res = run_dons(scenario, backend="python", telemetry=True,
                             batch_windows=1)
        telem_s.append(time.perf_counter() - t0)
        # The live-plane entry: the same plain (untelemetered) run with
        # the full plane attached — NDJSON sampler at the 50 ms default
        # interval and a live OpenMetrics endpoint.  Plane construction
        # and teardown (server bind/join) stay outside the timed region;
        # the gate measures the per-window sampling cost a production
        # run would pay.
        eng = DodEngine(scenario, backend="python", batch_windows=1)
        plane = LivePlane(eng, path=os.devnull, interval_ms=50,
                          metrics_port=0)
        try:
            t0 = time.perf_counter()
            EngineRunner(eng, on_step=plane.on_step).run()
            live_s.append(time.perf_counter() - t0)
        finally:
            plane.close()
        live_res = eng.results
        if have_numpy:
            for k in (1, 4, 8):
                t0 = time.perf_counter()
                res = run_dons(scenario, backend="numpy", batch_windows=k)
                batch_s[k].append(time.perf_counter() - t0)
                if k == 1:
                    numpy_res = res
                elif k == 8:
                    batched_res = res
            numpy_s = batch_s[1]
        # The fast-forward entries run the steady-state UDP scenario on
        # the reference backend, plain vs memoized, pinned like the
        # others so a CI matrix exporting REPRO_FFWD cannot change what
        # is timed.
        t0 = time.perf_counter()
        steady_res = run_dons(steady, backend="python", batch_windows=1,
                              ffwd=False)
        steady_s.append(time.perf_counter() - t0)
        eng = DodEngine(steady, backend="python", batch_windows=1,
                        ffwd=True)
        t0 = time.perf_counter()
        ffwd_res = eng.run()
        ffwd_s.append(time.perf_counter() - t0)
        ffwd_hits = eng.bus.counters.get("memo.hit", 0)
        # The cluster curve runs the zero-copy shared-memory transport
        # at every agent count, in the same iteration as the serial
        # runs, so the speedup ratio can be paired per repeat.
        for n in CLUSTER_CURVE:
            t0 = time.perf_counter()
            run = DonsManager(scenario, ClusterSpec.homogeneous(n),
                              transport="shm").run(partition=partitions[n])
            cluster_curve_s[n].append(time.perf_counter() - t0)
            if n == 2:
                cluster_run = run
        # The WAN-twin entry times the preferred backend; one untimed
        # python-backend run backs the cross-backend event-equality gate
        # (counts are deterministic, so once is enough).
        wan_backend = "numpy" if have_numpy else "python"
        t0 = time.perf_counter()
        wan_res = run_dons(wan_twin, backend=wan_backend, batch_windows=1)
        wan_s.append(time.perf_counter() - t0)
        if wan_py_res is None:
            wan_py_res = (run_dons(wan_twin, backend="python",
                                   batch_windows=1)
                          if have_numpy else wan_res)
        t0 = time.perf_counter()
        fuzz_report = check_spec(fuzz_spec, ("ood", "dons"))
        fuzz_s.append(time.perf_counter() - t0)
    return {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "scenario": scenario.name,
        "repeats": REPEATS,
        "ood_s": min(ood_s),
        "dons_s": min(dons_s),
        "dons_telemetry_s": min(telem_s),
        "dons_live_s": min(live_s),
        "dons_numpy_s": min(numpy_s) if numpy_s else None,
        "dons_numpy_batched_s": min(batch_s[8]) if batch_s[8] else None,
        "batch_scaling": ({str(k): min(v) for k, v in batch_s.items()}
                          if batch_s[1] else None),
        "batch_best_k": (min(batch_s, key=lambda k: min(batch_s[k]))
                         if batch_s[1] else None),
        "dons_steady_s": min(steady_s),
        "dons_ffwd_s": min(ffwd_s),
        "wan_twin_s": min(wan_s),
        "wan_twin_flows": len(wan_twin.flows),
        "cluster_s": min(cluster_curve_s[2]),
        "cluster_scaling": {str(n): min(v)
                            for n, v in cluster_curve_s.items()},
        "cluster_transport": "shm",
        "cpus": _usable_cpus(),
        # The agents run the engine's default backend — the same python
        # reference kernels ``dons_s`` times — so cluster/dons compares
        # like with like.
        "serial_ref_backend": "python",
        "ratio_dons_over_ood": min(dons_s) / min(ood_s),
        # Paired per-repeat like the ffwd/cluster ratios: each
        # telemetered run over the plain run beside it, so load drift
        # across repeats cannot fake (or mask) an overhead regression.
        "ratio_telemetry_over_plain": min(
            t / p for t, p in zip(telem_s, dons_s)),
        # Paired per-repeat, same rationale: live plane vs the bare run
        # of the same iteration.
        "ratio_live_over_plain": min(
            lv / p for lv, p in zip(live_s, dons_s)),
        "ratio_numpy_over_python": (min(numpy_s) / min(dons_s)
                                    if numpy_s else None),
        # Paired per-repeat against the serial run measured in the same
        # iteration, so machine-load drift cannot pair a fast serial
        # with a slow cluster repeat the way min()/min() would.
        "ratio_cluster_over_dons": min(
            c / s for c, s in zip(cluster_curve_s[2], dons_s)),
        # Paired per-repeat ratio: each ffwd run is divided by the plain
        # run measured beside it in the same iteration, so machine-load
        # drift across repeats cannot pair a fast plain with a slow ffwd
        # (or vice versa) the way min()/min() would.
        "ratio_ffwd_over_plain": min(f / p for f, p in zip(ffwd_s, steady_s)),
        "fuzz_s": min(fuzz_s),
        # Paired per-repeat, same rationale as the other ratios.
        "ratio_fuzz_over_ood": min(
            f / o for f, o in zip(fuzz_s, ood_s)),
        "ood_events": _events(ood_res),
        "dons_events": _events(dons_res),
        "dons_telemetry_events": _events(telem_res),
        "dons_live_events": _events(live_res),
        "dons_numpy_events": _events(numpy_res) if numpy_res else None,
        "dons_numpy_batched_events": (_events(batched_res)
                                      if batched_res else None),
        "cluster_events": _events(cluster_run.results),
        "cluster_windows": cluster_run.traffic.windows,
        "dons_steady_events": _events(steady_res),
        "dons_ffwd_events": _events(ffwd_res),
        "wan_twin_events": _events(wan_res),
        "wan_twin_events_python": _events(wan_py_res),
        "ffwd_hits": ffwd_hits,
        "fuzz_ok": fuzz_report.ok,
        "fuzz_entries": fuzz_report.entry_counts.get("dons", 0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="overwrite the recorded baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative slowdown vs baseline")
    parser.add_argument("--out", default=REPORT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = measure()
    print(f"scenario : {report['scenario']}")
    print(f"ood      : {report['ood_s']:.3f}s  "
          f"({report['ood_events']['total']} events)")
    print(f"dons     : {report['dons_s']:.3f}s  "
          f"({report['dons_events']['total']} events)")
    print(f"telemetry: {report['dons_telemetry_s']:.3f}s  "
          f"(ratio {report['ratio_telemetry_over_plain']:.3f}, "
          f"gate {TELEMETRY_GATE:.2f})")
    print(f"live     : {report['dons_live_s']:.3f}s  "
          f"(ratio {report['ratio_live_over_plain']:.3f}, "
          f"gate {LIVE_GATE:.2f})")
    if report["dons_numpy_s"] is not None:
        print(f"numpy    : {report['dons_numpy_s']:.3f}s  "
              f"({report['dons_numpy_events']['total']} events)")
        print(f"numpy K=8: {report['dons_numpy_batched_s']:.3f}s  "
              f"(scaling {report['batch_scaling']}, "
              f"best K={report['batch_best_k']})")
    print(f"steady   : {report['dons_steady_s']:.3f}s  "
          f"({report['dons_steady_events']['total']} events)")
    print(f"ffwd     : {report['dons_ffwd_s']:.3f}s  "
          f"(ratio {report['ratio_ffwd_over_plain']:.3f}, "
          f"gate {FFWD_GATE:.2f}, {report['ffwd_hits']} hits)")
    print(f"wan twin : {report['wan_twin_s']:.3f}s  "
          f"({report['wan_twin_flows']} flows synthesized, "
          f"{report['wan_twin_events']['total']} events)")
    print(f"cluster2 : {report['cluster_s']:.3f}s  "
          f"({report['cluster_events']['total']} events, "
          f"{report['cluster_windows']} windows, shm transport)")
    print(f"scaling  : {report['cluster_scaling']} "
          f"(agents -> seconds, {report['cpus']} cpus)")
    print(f"fuzz     : {report['fuzz_s']:.3f}s  "
          f"({report['fuzz_entries']} trace entries, "
          f"ok={report['fuzz_ok']})")
    print(f"ratio    : {report['ratio_dons_over_ood']:.3f} (dons/ood)")
    if report["ratio_numpy_over_python"] is not None:
        print(f"ratio    : {report['ratio_numpy_over_python']:.3f} "
              f"(numpy/python)")
    print(f"ratio    : {report['ratio_cluster_over_dons']:.3f} "
          f"(cluster/dons)")
    print(f"ratio    : {report['ratio_fuzz_over_ood']:.3f} (fuzz/ood)")

    if not report["fuzz_ok"]:
        print("FAIL: fuzz-runner conformance check found a divergence",
              file=sys.stderr)
        return 1

    # Telemetry's standing gates (not baseline-relative): recording must
    # not perturb the simulation (identical event counts) and a fully
    # instrumented run must stay within TELEMETRY_GATE of the plain one.
    if report["dons_telemetry_events"] != report["dons_events"]:
        print(f"FAIL: telemetry changed the simulation: "
              f"{report['dons_telemetry_events']} != "
              f"{report['dons_events']}", file=sys.stderr)
        return 1
    if report["ratio_telemetry_over_plain"] > TELEMETRY_GATE:
        print(f"FAIL: telemetry overhead "
              f"{report['ratio_telemetry_over_plain']:.3f} exceeds the "
              f"{TELEMETRY_GATE:.2f} gate", file=sys.stderr)
        return 1

    # The live plane's standing gates: sampling must not perturb the
    # simulation (identical event counts) and a run with the plane
    # attached must stay within LIVE_GATE of the bare run beside it.
    if report["dons_live_events"] != report["dons_events"]:
        print(f"FAIL: live plane changed the simulation: "
              f"{report['dons_live_events']} != "
              f"{report['dons_events']}", file=sys.stderr)
        return 1
    if report["ratio_live_over_plain"] > LIVE_GATE:
        print(f"FAIL: live plane overhead "
              f"{report['ratio_live_over_plain']:.3f} exceeds the "
              f"{LIVE_GATE:.2f} gate", file=sys.stderr)
        return 1

    # The vectorized backend's standing gates (not baseline-relative):
    # it must produce the exact event counts of the reference kernels,
    # it must beat them by the NUMPY_GATE margin on the smoke scenario,
    # and K-window batching must not perturb the simulation.
    if report["dons_numpy_s"] is not None:
        if report["dons_numpy_events"] != report["dons_events"]:
            print(f"FAIL: numpy backend events "
                  f"{report['dons_numpy_events']} != python backend "
                  f"{report['dons_events']}", file=sys.stderr)
            return 1
        if report["dons_numpy_batched_events"] != report["dons_events"]:
            print(f"FAIL: K=8 batched numpy events "
                  f"{report['dons_numpy_batched_events']} != "
                  f"{report['dons_events']}", file=sys.stderr)
            return 1
        if report["ratio_numpy_over_python"] >= NUMPY_GATE:
            print(f"FAIL: numpy/python ratio "
                  f"{report['ratio_numpy_over_python']:.3f} >= "
                  f"{NUMPY_GATE} — the vectorized backend must beat the "
                  f"reference kernels by the standing margin",
                  file=sys.stderr)
            return 1

    # The memo engine's standing gates (not baseline-relative): the
    # fast-forwarded steady-state run must reproduce the plain run's
    # event counts exactly, must actually hit the cache, and must beat
    # the plain run by the FFWD_GATE margin.
    if report["dons_ffwd_events"] != report["dons_steady_events"]:
        print(f"FAIL: fast-forward changed the simulation: "
              f"{report['dons_ffwd_events']} != "
              f"{report['dons_steady_events']}", file=sys.stderr)
        return 1
    if report["ffwd_hits"] == 0:
        print("FAIL: fast-forward run recorded zero memo hits — the "
              "steady-state scenario no longer exercises the cache",
              file=sys.stderr)
        return 1
    if report["ratio_ffwd_over_plain"] >= FFWD_GATE:
        print(f"FAIL: ffwd/plain ratio "
              f"{report['ratio_ffwd_over_plain']:.3f} >= {FFWD_GATE} — "
              f"the memo engine must fast-forward steady-state traffic "
              f"by the standing margin", file=sys.stderr)
        return 1

    # The workload library's standing gates (not baseline-relative):
    # the WAN-twin smoke must synthesize its full flow budget, and the
    # backends must agree on its event counts exactly — the arrival
    # engine's columnar build path is only correct if both backends
    # read the same traffic.
    if report["wan_twin_flows"] < 100_000:
        print(f"FAIL: wan twin synthesized only "
              f"{report['wan_twin_flows']} flows (< 100000)",
              file=sys.stderr)
        return 1
    if report["wan_twin_events"] != report["wan_twin_events_python"]:
        print(f"FAIL: wan twin backend events diverge: "
              f"{report['wan_twin_events']} != "
              f"{report['wan_twin_events_python']}", file=sys.stderr)
        return 1

    # The distributed stack's standing gates: the merged 2-agent run
    # must reproduce the serial event counts exactly, and — when agent
    # parallelism is physically possible — the shm cluster must beat
    # the serial engine it distributes.  On one core the ratio is held
    # by the baseline-relative check below instead.
    if report["cluster_events"] != report["dons_events"]:
        print(f"FAIL: cluster events {report['cluster_events']} != "
              f"serial {report['dons_events']}", file=sys.stderr)
        return 1
    if report["cpus"] >= CLUSTER_GATE_MIN_CPUS:
        if report["ratio_cluster_over_dons"] >= CLUSTER_GATE:
            print(f"FAIL: cluster/dons ratio "
                  f"{report['ratio_cluster_over_dons']:.3f} >= "
                  f"{CLUSTER_GATE} with {report['cpus']} cpus — the "
                  f"shared-memory cluster must beat the serial engine "
                  f"when cores allow it", file=sys.stderr)
            return 1
    else:
        print(f"note: single-core machine ({report['cpus']} cpu) — "
              f"cluster<serial gate skipped, ratio monitored against "
              f"baseline only")

    if args.record or not os.path.exists(BASELINE):
        with open(BASELINE, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"baseline recorded at {BASELINE}")
        report["baseline"] = "recorded"
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        return 0

    with open(BASELINE) as fh:
        base = json.load(fh)
    failures = []
    for key in ("ood_events", "dons_events", "dons_numpy_events",
                "dons_numpy_batched_events", "cluster_events",
                "dons_steady_events", "dons_ffwd_events",
                "dons_live_events", "wan_twin_events"):
        if report[key] != base.get(key, report[key]):
            failures.append(f"{key} changed: {base[key]} -> {report[key]}")
    if report["cluster_windows"] != base.get("cluster_windows",
                                             report["cluster_windows"]):
        failures.append(
            f"cluster_windows changed: {base['cluster_windows']} -> "
            f"{report['cluster_windows']}")
    limit = base["ratio_dons_over_ood"] * (1.0 + args.tolerance)
    if report["ratio_dons_over_ood"] > limit:
        failures.append(
            f"dons/ood ratio {report['ratio_dons_over_ood']:.3f} exceeds "
            f"baseline {base['ratio_dons_over_ood']:.3f} + {args.tolerance:.0%}"
        )
    if "ratio_cluster_over_dons" in base:
        climit = base["ratio_cluster_over_dons"] * (1.0 + args.tolerance)
        if report["ratio_cluster_over_dons"] > climit:
            failures.append(
                f"cluster/dons ratio "
                f"{report['ratio_cluster_over_dons']:.3f} exceeds baseline "
                f"{base['ratio_cluster_over_dons']:.3f} + {args.tolerance:.0%}"
            )
    if report["fuzz_entries"] != base.get("fuzz_entries",
                                          report["fuzz_entries"]):
        failures.append(
            f"fuzz_entries changed: {base['fuzz_entries']} -> "
            f"{report['fuzz_entries']}")
    if "ratio_fuzz_over_ood" in base:
        flimit = base["ratio_fuzz_over_ood"] * (1.0 + args.tolerance)
        if report["ratio_fuzz_over_ood"] > flimit:
            failures.append(
                f"fuzz/ood ratio {report['ratio_fuzz_over_ood']:.3f} "
                f"exceeds baseline {base['ratio_fuzz_over_ood']:.3f} + "
                f"{args.tolerance:.0%}"
            )
    report["baseline"] = {"ratio_dons_over_ood": base["ratio_dons_over_ood"],
                          "limit": limit}
    report["regressed"] = bool(failures)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"report written to {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"OK: within {args.tolerance:.0%} of baseline "
          f"(limit {limit:.3f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
