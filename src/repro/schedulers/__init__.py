"""Packet schedulers: FIFO, Round Robin, Deficit Round Robin, Strict Priority."""

from .base import Scheduler, SchedulerKind
from .disciplines import (
    DeficitRoundRobinScheduler,
    FifoScheduler,
    RoundRobinScheduler,
    StrictPriorityScheduler,
    make_scheduler,
)

__all__ = [
    "Scheduler", "SchedulerKind", "make_scheduler",
    "FifoScheduler", "RoundRobinScheduler",
    "DeficitRoundRobinScheduler", "StrictPriorityScheduler",
]
