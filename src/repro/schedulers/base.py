"""Scheduler interface shared by both engines.

A scheduler owns the class queues of one egress port and decides, one
packet per call, what to transmit next.  The paper's prototype ships four
disciplines (§5): First-In-First-Out, Round Robin, Deficit Round Robin
and Strict Priority.  All four are deterministic functions of the
enqueue/dequeue call sequence, so the OOD baseline and the DOD engine —
which issue identical call sequences by the ordering contract — make
identical choices.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from ..protocols.packet import Row


class SchedulerKind(str, Enum):
    """Discipline names accepted by scenario configs."""

    FIFO = "fifo"
    RR = "rr"
    DRR = "drr"
    SP = "sp"


class Scheduler:
    """Base class: per-class FIFO queues plus a discipline-specific pick."""

    def __init__(self, num_classes: int = 1) -> None:
        if num_classes < 1:
            raise ValueError("need at least one traffic class")
        self.num_classes = num_classes
        self.queues: List[List[Row]] = [[] for _ in range(num_classes)]
        self._heads: List[int] = [0] * num_classes  # popleft index per queue
        self._len = 0

    # --- queue plumbing -------------------------------------------------

    def enqueue(self, cls: int, row: Row) -> None:
        """Append ``row`` to class ``cls`` (clamped into range)."""
        cls = min(max(cls, 0), self.num_classes - 1)
        self.queues[cls].append(row)
        self._len += 1

    def _class_len(self, cls: int) -> int:
        return len(self.queues[cls]) - self._heads[cls]

    def _pop(self, cls: int) -> Row:
        q = self.queues[cls]
        h = self._heads[cls]
        row = q[h]
        h += 1
        # Compact lazily so long-lived queues do not leak.
        if h > 64 and h * 2 >= len(q):
            del q[:h]
            h = 0
        self._heads[cls] = h
        self._len -= 1
        return row

    def _peek(self, cls: int) -> Row:
        return self.queues[cls][self._heads[cls]]

    def __len__(self) -> int:
        return self._len

    # --- discipline -----------------------------------------------------

    def dequeue(self) -> Optional[Row]:
        """Remove and return the next packet to transmit, or ``None``."""
        raise NotImplementedError

    def iter_rows(self):
        """Yield all queued rows (drain-time accounting and tests)."""
        for cls in range(self.num_classes):
            q = self.queues[cls]
            for i in range(self._heads[cls], len(q)):
                yield q[i]
