"""The four packet schedulers of the DONS prototype (§5, Appendix C)."""

from __future__ import annotations

from typing import Optional

from .base import Scheduler, SchedulerKind
from ..errors import ConfigError
from ..protocols.packet import F_SIZE, Row


class FifoScheduler(Scheduler):
    """First-In-First-Out over a single queue.

    Per Appendix C, FIFO ports attach only one buffer component; class
    information is ignored.
    """

    def __init__(self, num_classes: int = 1) -> None:
        super().__init__(1)

    def enqueue(self, cls: int, row: Row) -> None:  # all classes collapse
        super().enqueue(0, row)

    def dequeue(self) -> Optional[Row]:
        if self._class_len(0) == 0:
            return None
        return self._pop(0)


class StrictPriorityScheduler(Scheduler):
    """Strict Priority: lowest class index always wins."""

    def dequeue(self) -> Optional[Row]:
        for cls in range(self.num_classes):
            if self._class_len(cls) > 0:
                return self._pop(cls)
        return None


class RoundRobinScheduler(Scheduler):
    """Packet-by-packet Round Robin over non-empty classes."""

    def __init__(self, num_classes: int = 1) -> None:
        super().__init__(num_classes)
        self._next = 0

    def dequeue(self) -> Optional[Row]:
        if len(self) == 0:
            return None
        for off in range(self.num_classes):
            cls = (self._next + off) % self.num_classes
            if self._class_len(cls) > 0:
                self._next = (cls + 1) % self.num_classes
                return self._pop(cls)
        return None


class DeficitRoundRobinScheduler(Scheduler):
    """Deficit Round Robin (Shreedhar & Varghese) adapted to one-packet pulls.

    Each class accrues ``quantum_bytes`` of deficit per round-robin visit
    and may transmit while its head fits in the deficit.  Visiting an
    empty class resets its deficit, per the classic algorithm.
    """

    def __init__(self, num_classes: int = 1, quantum_bytes: int = 1_500) -> None:
        super().__init__(num_classes)
        if quantum_bytes < 1:
            raise ConfigError("DRR quantum must be positive")
        self.quantum = quantum_bytes
        self.deficit = [0] * num_classes
        self._current = 0
        self._granted = False  # quantum already granted on the current visit

    def dequeue(self) -> Optional[Row]:
        if len(self) == 0:
            return None
        while True:
            cls = self._current
            if self._class_len(cls) == 0:
                self.deficit[cls] = 0
                self._current = (cls + 1) % self.num_classes
                self._granted = False
                continue
            if not self._granted:
                self.deficit[cls] += self.quantum
                self._granted = True
            head = self._peek(cls)
            if head[F_SIZE] <= self.deficit[cls]:
                self.deficit[cls] -= head[F_SIZE]
                # Stay on this class; it keeps the floor while deficit lasts.
                row = self._pop(cls)
                if len(self) == 0:
                    # The queue just drained: reset so the next burst
                    # starts a clean round.  Doing this at the drain
                    # point (instead of on an empty dequeue() call)
                    # keeps the state a pure function of the packet
                    # sequence — the event-driven and windowed engines
                    # issue different numbers of empty dequeues.
                    self.deficit = [0] * self.num_classes
                    self._current = 0
                    self._granted = False
                return row
            self._current = (cls + 1) % self.num_classes
            self._granted = False


def make_scheduler(
    kind: SchedulerKind,
    num_classes: int = 1,
    drr_quantum_bytes: int = 1_500,
) -> Scheduler:
    """Factory used by both engines so configurations stay identical."""
    if kind == SchedulerKind.FIFO:
        return FifoScheduler()
    if kind == SchedulerKind.SP:
        return StrictPriorityScheduler(num_classes)
    if kind == SchedulerKind.RR:
        return RoundRobinScheduler(num_classes)
    if kind == SchedulerKind.DRR:
        return DeficitRoundRobinScheduler(num_classes, drr_quantum_bytes)
    raise ConfigError(f"unknown scheduler kind {kind!r}")
