"""Workload generators for the paper's evaluation scenarios.

§6's single-machine and cluster experiments use "full-mesh dynamic flows":
Poisson arrivals with sizes from real-trace CDFs, endpoints uniform at
random over the servers.  Fig. 10's fidelity experiment uses a fixed set
of 64 x 1.5 MB flows.  Incast and permutation patterns are provided for
the examples and ablations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .distributions import EmpiricalSize, WEB_SEARCH
from .flow import Flow, Transport
from ..errors import ConfigError
from ..rng import substream
from ..units import PS_PER_S


def zipf_weights(n: int, alpha: float = 1.0) -> np.ndarray:
    """Normalized Zipf popularity over ``n`` hosts (skewed endpoints).

    Used for WAN scenarios where traffic concentrates on a few heavy
    metros (the paper's ISP serves home broadband + private lines, a
    famously skewed mix).
    """
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** -alpha
    return w / w.sum()


def full_mesh_dynamic(
    hosts: Sequence[int],
    duration_ps: int,
    load: float = 0.3,
    host_rate_bps: int = 100_000_000_000,
    sizes: EmpiricalSize = WEB_SEARCH,
    transport: Transport = Transport.DCTCP,
    seed: int = 1,
    max_flows: Optional[int] = None,
    host_weights: Optional[Sequence[float]] = None,
) -> List[Flow]:
    """Poisson full-mesh traffic at a target fractional ``load``.

    The aggregate arrival rate is chosen so expected offered load equals
    ``load`` x per-host line rate x number of hosts, the convention of the
    DCTCP/Facebook trace studies the paper samples from.

    Args:
        hosts: Host node ids that send and receive.
        duration_ps: Window in which flows start.
        load: Fraction of aggregate host capacity offered.
        host_rate_bps: NIC rate used to translate load into arrivals/s.
        sizes: Flow-size distribution.
        transport: Transport for every generated flow.
        seed: Generator seed (fully determines the output).
        max_flows: Optional hard cap (for scaled-down runs; the cap is
            recorded by the caller in EXPERIMENTS.md).
        host_weights: Optional endpoint popularity (defaults to uniform);
            see :func:`zipf_weights` for skewed WAN traffic.  Paired
            positionally with ``hosts`` *as given*, then canonicalized
            together.

    The output depends only on the host set (and each host's weight),
    never on the container's iteration order: hosts are canonicalized to
    ascending id — with weights re-paired — before any draw, so a
    ``set``, a reversed list, and a sorted list of the same hosts all
    yield the same flows.
    """
    if not 0 < load:
        raise ConfigError("load must be positive")
    if len(hosts) < 2:
        raise ConfigError("full mesh needs at least two hosts")
    rng = substream(seed, 0xF1)
    mean_size_bits = sizes.mean() * 8.0
    lam_per_s = load * host_rate_bps * len(hosts) / mean_size_bits
    lam_per_ps = lam_per_s / PS_PER_S

    flows: List[Flow] = []
    t = 0.0
    flow_id = 0
    host_arr = np.fromiter((int(h) for h in hosts), dtype=np.int64)
    weights = None
    if host_weights is not None:
        weights = np.asarray(host_weights, dtype=np.float64)
        if weights.shape[0] != host_arr.shape[0]:
            raise ConfigError("host_weights length must match hosts")
    order = np.argsort(host_arr, kind="stable")
    host_arr = host_arr[order]
    if weights is not None:
        weights = weights[order]
        weights = weights / weights.sum()
    while True:
        t += rng.exponential(1.0 / lam_per_ps)
        if t >= duration_ps:
            break
        src_i, dst_i = rng.choice(len(host_arr), size=2, replace=False,
                                  p=weights)
        size = int(sizes.sample(rng, 1)[0])
        flows.append(
            Flow(
                flow_id=flow_id,
                src=int(host_arr[src_i]),
                dst=int(host_arr[dst_i]),
                size_bytes=size,
                start_ps=int(t),
                transport=transport,
            )
        )
        flow_id += 1
        if max_flows is not None and flow_id >= max_flows:
            break
    return flows


def fixed_flows(
    hosts: Sequence[int],
    n_flows: int,
    size_bytes: int,
    transport: Transport = Transport.DCTCP,
    start_ps: int = 0,
    stagger_ps: int = 0,
    seed: int = 1,
) -> List[Flow]:
    """A fixed count of equal-size flows with random distinct endpoints.

    Fig. 10 uses 64 flows of 1.5 MB each on FatTree8.
    """
    if len(hosts) < 2:
        raise ConfigError("need at least two hosts")
    rng = substream(seed, 0xF2)
    host_arr = np.asarray(list(hosts))
    flows: List[Flow] = []
    for flow_id in range(n_flows):
        src_i, dst_i = rng.choice(len(host_arr), size=2, replace=False)
        flows.append(
            Flow(
                flow_id=flow_id,
                src=int(host_arr[src_i]),
                dst=int(host_arr[dst_i]),
                size_bytes=size_bytes,
                start_ps=start_ps + flow_id * stagger_ps,
                transport=transport,
            )
        )
    return flows


def permutation(
    hosts: Sequence[int],
    size_bytes: int,
    transport: Transport = Transport.DCTCP,
    start_ps: int = 0,
    seed: int = 1,
) -> List[Flow]:
    """A random permutation: every host sends one flow, every host
    receives one flow (the classic full-bisection stress pattern)."""
    if len(hosts) < 2:
        raise ConfigError("need at least two hosts")
    rng = substream(seed, 0xF3)
    hosts = list(hosts)
    perm = list(rng.permutation(len(hosts)))
    # Rotate fixed points away so src != dst everywhere.
    for i, p in enumerate(perm):
        if p == i:
            j = (i + 1) % len(perm)
            perm[i], perm[j] = perm[j], perm[i]
    return [
        Flow(
            flow_id=i,
            src=hosts[i],
            dst=hosts[int(perm[i])],
            size_bytes=size_bytes,
            start_ps=start_ps,
            transport=transport,
        )
        for i in range(len(hosts))
    ]


def incast(
    target: int,
    senders: Sequence[int],
    size_bytes: int,
    transport: Transport = Transport.DCTCP,
    start_ps: int = 0,
    stagger_ps: int = 0,
) -> List[Flow]:
    """Many-to-one incast toward ``target`` (partition/aggregate pattern).

    Senders are canonicalized to ascending id, so the flow-id -> sender
    assignment (and with it the stagger schedule) depends only on the
    sender *set*, not on the container's iteration order.
    """
    senders = sorted(int(s) for s in senders)
    if target in senders:
        raise ConfigError("target must not be among the senders")
    return [
        Flow(
            flow_id=i,
            src=int(s),
            dst=target,
            size_bytes=size_bytes,
            start_ps=start_ps + i * stagger_ps,
            transport=transport,
        )
        for i, s in enumerate(senders)
    ]
