"""Traffic: flows, empirical size distributions, workload generators."""

from .flow import Flow, Transport, validate_flows
from .distributions import (
    DISTRIBUTIONS, EmpiricalSize, FB_CACHE, TINY, WEB_SEARCH,
)
from .generators import fixed_flows, full_mesh_dynamic, incast, permutation

__all__ = [
    "Flow", "Transport", "validate_flows",
    "DISTRIBUTIONS", "EmpiricalSize", "FB_CACHE", "TINY", "WEB_SEARCH",
    "fixed_flows", "full_mesh_dynamic", "incast", "permutation",
]
