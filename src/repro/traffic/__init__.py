"""Traffic: flows, size distributions, generators, arrival processes."""

from .flow import Flow, Transport, validate_flows
from .distributions import (
    DISTRIBUTIONS, EmpiricalSize, FB_CACHE, TINY, WEB_SEARCH,
)
from .generators import fixed_flows, full_mesh_dynamic, incast, permutation
from .arrivals import (
    ARRIVAL_KINDS, ArrivalProcess, FlowColumns, INTERARRIVAL_CDFS,
    synthesize,
)

__all__ = [
    "Flow", "Transport", "validate_flows",
    "DISTRIBUTIONS", "EmpiricalSize", "FB_CACHE", "TINY", "WEB_SEARCH",
    "fixed_flows", "full_mesh_dynamic", "incast", "permutation",
    "ARRIVAL_KINDS", "ArrivalProcess", "FlowColumns", "INTERARRIVAL_CDFS",
    "synthesize",
]
