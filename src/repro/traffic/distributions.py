"""Empirical flow-size distributions.

The paper draws "flow sizes and intervals ... from real-world traces
[4, 42]": the DCTCP web-search workload (Alizadeh et al., SIGCOMM 2010)
and the Facebook data-center traces (Roy et al., SIGCOMM 2015).  The raw
traces are not redistributable; what the paper actually uses is their
flow-size CDFs, which are published in those papers and re-encoded here
as piecewise-linear empirical distributions (the standard practice in
ns-3 DCN studies).  DESIGN.md records this substitution.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigError


class EmpiricalSize:
    """A flow-size distribution defined by CDF breakpoints.

    ``points`` is a sequence of ``(size_bytes, cumulative_probability)``
    with strictly increasing sizes and probabilities ending at 1.0.
    Sampling interpolates linearly between breakpoints (log-ish shapes
    are captured by the breakpoints themselves).
    """

    def __init__(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise ConfigError("empty CDF")
        sizes = [p[0] for p in points]
        probs = [p[1] for p in points]
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ConfigError("CDF sizes must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ConfigError("CDF probabilities must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ConfigError("CDF must end at probability 1.0")
        self.name = name
        self._sizes = np.asarray(sizes, dtype=np.float64)
        self._probs = np.asarray(probs, dtype=np.float64)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` sizes (integer bytes, >= 1)."""
        u = rng.random(n)
        idx = np.searchsorted(self._probs, u, side="left")
        idx = np.clip(idx, 1, len(self._probs) - 1)
        p0 = self._probs[idx - 1]
        p1 = self._probs[idx]
        s0 = self._sizes[idx - 1]
        s1 = self._sizes[idx]
        frac = np.where(p1 > p0, (u - p0) / np.where(p1 > p0, p1 - p0, 1.0), 0.0)
        sizes = s0 + frac * (s1 - s0)
        return np.maximum(1, np.rint(sizes).astype(np.int64))

    def mean(self) -> float:
        """Mean flow size in bytes (piecewise-linear CDF -> exact)."""
        total = self._sizes[0] * self._probs[0]
        for i in range(1, len(self._sizes)):
            mass = self._probs[i] - self._probs[i - 1]
            total += mass * (self._sizes[i] + self._sizes[i - 1]) / 2.0
        return float(total)


#: Web-search workload (DCTCP paper, Alizadeh et al. 2010): a mix of
#: short queries and multi-megabyte background flows.
WEB_SEARCH = EmpiricalSize(
    "web-search",
    [
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_467_000, 0.80),
        (2_107_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 0.999),
        (30_000_000, 1.0),
    ],
)

#: Facebook cache-follower workload (Roy et al. 2015): dominated by
#: small flows with a long heavy tail.
FB_CACHE = EmpiricalSize(
    "fb-cache",
    [
        (100, 0.10),
        (350, 0.50),
        (1_000, 0.70),
        (10_000, 0.90),
        (100_000, 0.97),
        (1_000_000, 0.995),
        (10_000_000, 1.0),
    ],
)

#: Small fixed-ish mix used by fast unit tests.
TINY = EmpiricalSize(
    "tiny",
    [
        (1_500, 0.5),
        (15_000, 0.9),
        (75_000, 1.0),
    ],
)

DISTRIBUTIONS = {d.name: d for d in (WEB_SEARCH, FB_CACHE, TINY)}
