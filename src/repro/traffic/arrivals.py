"""Columnar arrival-process traffic synthesis: flows without Flow objects.

The production-workload regime (DiffServ WAN twins, storage clusters —
see docs/WORKLOADS.md) needs hundreds of thousands to millions of flows
per scenario.  Materializing a Python :class:`~repro.traffic.flow.Flow`
dataclass per flow caps that scale long before the engines do, so this
module keeps traffic columnar end to end:

* :class:`ArrivalProcess` describes one traffic aggregate — a Poisson /
  on-off / periodic / empirical-CDF arrival process over a class of
  hosts, with Zipf source/destination popularity, a flow-size
  distribution and a per-class DSCP priority mix.  It is a frozen,
  JSON-serializable value object (the unit `scenario_io` archives).
* :func:`synthesize` expands a list of processes into a
  :class:`FlowColumns`: six parallel ``int64`` NumPy columns (src, dst,
  size, start, transport, priority) sorted by start time, flow id ==
  row index.
* :class:`FlowColumns` quacks like the flow list every engine already
  consumes (``len`` / indexing / iteration), but indexing materializes
  ``Flow`` facades through a bounded cache (at most ``batch_size``
  instances live) and iteration yields transients — the peak Flow
  instance count stays bounded by the batch size no matter how many
  flows the scenario carries.  The DOD engine's builder skips Flow
  entirely and consumes :meth:`FlowColumns.iter_batches`.

Determinism discipline: every random draw comes from per-process,
per-attribute substreams consumed in arrival order, and inter-arrival
gaps are quantized to integer picoseconds *before* they accumulate, so
the synthesized columns are bit-identical regardless of ``chunk`` size
and equal to a scalar one-draw-at-a-time reference (property-tested in
``tests/traffic/test_arrivals.py``).

``batch_filter`` is the module-level hook on the batched column path;
the conformance drill :func:`repro.conformance.inject.skewed_arrival_stream`
patches it to corrupt one batch's inter-arrival column.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .distributions import DISTRIBUTIONS, EmpiricalSize
from .flow import Flow, Transport
from .generators import zipf_weights
from ..errors import ConfigError
from ..rng import substream
from ..units import PS_PER_S

__all__ = [
    "ARRIVAL_KINDS", "ArrivalProcess", "FlowColumns", "INTERARRIVAL_CDFS",
    "synthesize",
]

#: Supported arrival-process kinds.
ARRIVAL_KINDS = ("poisson", "onoff", "periodic", "empirical")

#: Default FlowColumns batch size: the bound on live Flow facades and the
#: unit the engine builder consumes.
DEFAULT_BATCH = 4096

#: Empirical inter-arrival CDFs (gap picoseconds, cumulative probability),
#: reusing the piecewise-linear machinery of the size distributions.
INTERARRIVAL_CDFS = {
    # Bursty WAN aggregate: trains of back-to-back arrivals separated by
    # long think times (heavy-tailed gaps, 50 ns .. 100 us).
    "wan-bursty": EmpiricalSize(
        "wan-bursty",
        [
            (50_000, 0.30),
            (200_000, 0.60),
            (1_000_000, 0.85),
            (10_000_000, 0.98),
            (100_000_000, 1.0),
        ],
    ),
    # Smooth near-periodic gaps with small jitter (1 us +- 50%).
    "smooth": EmpiricalSize(
        "smooth",
        [
            (500_000, 0.05),
            (1_000_000, 0.50),
            (1_500_000, 1.0),
        ],
    ),
}

#: RNG substream tags: one independent stream per process and attribute,
#: consumed strictly in arrival order (the chunk-invariance contract).
_KEY_GAPS = 0xA0
_KEY_ENDPOINTS = 0xA1
_KEY_SIZES = 0xA2
_KEY_CLASSES = 0xA3


def _identity_batch(start: int, cols: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Default batched-column hook: pass the batch through unchanged."""
    return cols


#: Module-level hook on the batched column path (resolved at call time).
#: The planted-bug drill patches this; everything else leaves it alone.
batch_filter = _identity_batch


@dataclass(frozen=True)
class ArrivalProcess:
    """One traffic aggregate: an arrival process over a host class.

    Attributes:
        kind: ``poisson`` (exponential gaps at ``rate_per_s``), ``onoff``
            (Poisson at ``rate_per_s`` during ``on_ps`` bursts separated
            by ``off_ps`` silences), ``periodic`` (one arrival every
            ``period_ps``), or ``empirical`` (gaps drawn from the
            ``inter_cdf`` CDF in :data:`INTERARRIVAL_CDFS`).
        src_hosts / dst_hosts: Candidate endpoints (host node ids).
        horizon_ps: Arrivals fall in ``[start_ps, start_ps+horizon_ps)``.
        rate_per_s: Arrival rate (poisson always; onoff while on).
        period_ps: Periodic gap.
        on_ps / off_ps: On-off burst/silence lengths.
        inter_cdf: Key into :data:`INTERARRIVAL_CDFS` (empirical kind).
        start_ps: Process start offset.
        src_alpha / dst_alpha: Zipf popularity exponent over the host
            class (0 = uniform); rank follows the host order given.
        size_bytes: Fixed flow size when ``size_dist`` is empty.
        size_dist: Key into :data:`~repro.traffic.DISTRIBUTIONS`.
        transport: Transport of every flow in the aggregate.
        priority_mix: Per-class weights; each arrival samples its DSCP
            class (= Flow.priority) from this distribution.  ``(1.0,)``
            pins everything to class 0.
        max_flows: Optional hard cap on synthesized arrivals.
        label: Free-form tag used in reports.
    """

    kind: str
    src_hosts: Tuple[int, ...]
    dst_hosts: Tuple[int, ...]
    horizon_ps: int
    rate_per_s: float = 0.0
    period_ps: int = 0
    on_ps: int = 0
    off_ps: int = 0
    inter_cdf: str = ""
    start_ps: int = 0
    src_alpha: float = 0.0
    dst_alpha: float = 0.0
    size_bytes: int = 0
    size_dist: str = ""
    transport: Transport = Transport.DCTCP
    priority_mix: Tuple[float, ...] = (1.0,)
    max_flows: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "src_hosts", tuple(int(h) for h in self.src_hosts))
        object.__setattr__(self, "dst_hosts", tuple(int(h) for h in self.dst_hosts))
        object.__setattr__(self, "priority_mix",
                           tuple(float(w) for w in self.priority_mix))
        object.__setattr__(self, "transport", Transport(self.transport))
        if self.kind not in ARRIVAL_KINDS:
            raise ConfigError(
                f"unknown arrival kind {self.kind!r}; known: "
                f"{', '.join(ARRIVAL_KINDS)}")
        if not self.src_hosts or not self.dst_hosts:
            raise ConfigError("arrival process needs src and dst hosts")
        if len(set(self.dst_hosts)) == 1 and self.dst_hosts[0] in self.src_hosts:
            raise ConfigError(
                "arrival process cannot pick a destination distinct from "
                f"source: only destination {self.dst_hosts[0]} is also a source")
        if self.horizon_ps <= 0:
            raise ConfigError("arrival horizon must be positive")
        if self.start_ps < 0:
            raise ConfigError("arrival start must be non-negative")
        if self.kind in ("poisson", "onoff") and self.rate_per_s <= 0:
            raise ConfigError(f"{self.kind} arrivals need rate_per_s > 0")
        if self.kind == "onoff" and (self.on_ps <= 0 or self.off_ps < 0):
            raise ConfigError("onoff arrivals need on_ps > 0 and off_ps >= 0")
        if self.kind == "periodic" and self.period_ps <= 0:
            raise ConfigError("periodic arrivals need period_ps > 0")
        if self.kind == "empirical" and self.inter_cdf not in INTERARRIVAL_CDFS:
            raise ConfigError(
                f"unknown inter-arrival CDF {self.inter_cdf!r}; known: "
                f"{', '.join(sorted(INTERARRIVAL_CDFS))}")
        if self.size_dist:
            if self.size_dist not in DISTRIBUTIONS:
                raise ConfigError(
                    f"unknown size distribution {self.size_dist!r}")
        elif self.size_bytes <= 0:
            raise ConfigError("arrival process needs size_bytes > 0 "
                              "or a size_dist")
        if not self.priority_mix or any(w < 0 for w in self.priority_mix):
            raise ConfigError("priority_mix needs non-negative weights")
        if sum(self.priority_mix) <= 0:
            raise ConfigError("priority_mix needs positive total weight")
        if self.max_flows is not None and self.max_flows <= 0:
            raise ConfigError("max_flows must be positive when set")

    def num_classes(self) -> int:
        return len(self.priority_mix)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "transport":
                value = value.name.lower()
            elif isinstance(value, tuple):
                value = list(value)
            doc[f.name] = value
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ArrivalProcess":
        kwargs = dict(doc)
        if isinstance(kwargs.get("transport"), str):
            kwargs["transport"] = Transport[kwargs["transport"].upper()]
        return cls(**kwargs)


# --- sampling helpers (all consume their stream in arrival order) ----------


def _cum_weights(n: int, alpha: float) -> np.ndarray:
    """Cumulative endpoint popularity; last entry pinned to exactly 1."""
    if alpha > 0:
        cum = np.cumsum(zipf_weights(n, alpha))
    else:
        cum = np.arange(1, n + 1, dtype=np.float64) / n
    cum[-1] = 1.0
    return cum


def _gaps(proc: ArrivalProcess, rng: np.random.Generator, k: int) -> np.ndarray:
    """``k`` integer inter-arrival gaps (>= 1 ps), in stream order.

    Gaps are quantized to integer picoseconds *per gap*, so arrival
    times accumulate with exact integer addition — the property that
    makes chunked and scalar generation bit-identical (float cumsum
    would re-associate across chunk boundaries).
    """
    if proc.kind == "empirical":
        return INTERARRIVAL_CDFS[proc.inter_cdf].sample(rng, k)
    mean_gap_ps = PS_PER_S / proc.rate_per_s
    u = rng.random(k)
    gaps = np.rint(-np.log1p(-u) * mean_gap_ps)
    # A gap past the horizon ends the stream regardless of its exact
    # value; clamping there keeps ultra-low rates finite (a raw
    # exponential draw at micro-rates overflows the int64 cast).
    gaps = np.minimum(gaps, float(proc.horizon_ps + 1))
    return np.maximum(1, gaps).astype(np.int64)


def _arrival_times(proc: ArrivalProcess, rng: np.random.Generator,
                   chunk: int) -> np.ndarray:
    """Absolute arrival times (int64 ps), chunk-size invariant."""
    limit = proc.max_flows
    if proc.kind == "periodic":
        n = (proc.horizon_ps + proc.period_ps - 1) // proc.period_ps
        if limit is not None:
            n = min(n, limit)
        return proc.start_ps + proc.period_ps * np.arange(n, dtype=np.int64)

    out: List[np.ndarray] = []
    active = 0  # accumulated active-time (== wall time except onoff)
    count = 0
    on_ps, off_ps = proc.on_ps, proc.off_ps
    while True:
        k = chunk if limit is None else min(chunk, limit - count)
        if k <= 0:
            break
        rel = active + np.cumsum(_gaps(proc, rng, k))
        active = int(rel[-1])
        if proc.kind == "onoff":
            # Deterministic on/off gating: active time a lands at wall
            # time a + (completed off periods); arrivals never fall in a
            # silence by construction.
            rel = rel + (rel // on_ps) * off_ps
        keep = rel < proc.horizon_ps
        kept = rel[keep]
        out.append(kept)
        count += kept.size
        if kept.size < k:
            break  # horizon crossed (gaps are positive => monotone)
    if not out:
        return np.empty(0, dtype=np.int64)
    return proc.start_ps + np.concatenate(out)


def _endpoints(proc: ArrivalProcess, rng: np.random.Generator,
               n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Source/destination per arrival: Zipf/uniform popularity, src != dst.

    Each arrival consumes exactly two uniforms (src then dst).  A
    destination colliding with its source advances cyclically through
    the destination class — deterministic, no extra draws.
    """
    src_arr = np.asarray(proc.src_hosts, dtype=np.int64)
    dst_arr = np.asarray(proc.dst_hosts, dtype=np.int64)
    u = rng.random((n, 2))
    src_cum = _cum_weights(len(src_arr), proc.src_alpha)
    dst_cum = _cum_weights(len(dst_arr), proc.dst_alpha)
    src_idx = np.minimum(np.searchsorted(src_cum, u[:, 0], side="right"),
                         len(src_arr) - 1)
    dst_idx = np.minimum(np.searchsorted(dst_cum, u[:, 1], side="right"),
                         len(dst_arr) - 1)
    src = src_arr[src_idx]
    m = len(dst_arr)
    collide = dst_arr[dst_idx] == src
    guard = 0
    while collide.any():
        dst_idx = np.where(collide, (dst_idx + 1) % m, dst_idx)
        collide = dst_arr[dst_idx] == src
        guard += 1
        if guard > m:  # pragma: no cover - excluded by __post_init__
            raise ConfigError("cannot resolve src/dst collision")
    return src, dst_arr[dst_idx]


def _sizes(proc: ArrivalProcess, rng: np.random.Generator, n: int) -> np.ndarray:
    if proc.size_dist:
        return DISTRIBUTIONS[proc.size_dist].sample(rng, n)
    return np.full(n, proc.size_bytes, dtype=np.int64)


def _classes(proc: ArrivalProcess, rng: np.random.Generator, n: int) -> np.ndarray:
    mix = np.asarray(proc.priority_mix, dtype=np.float64)
    if len(mix) == 1:
        return np.zeros(n, dtype=np.int64)
    cum = np.cumsum(mix / mix.sum())
    cum[-1] = 1.0
    u = rng.random(n)
    return np.minimum(np.searchsorted(cum, u, side="right"),
                      len(mix) - 1).astype(np.int64)


def synthesize(processes: Sequence[ArrivalProcess], seed: int, *,
               chunk: int = 8192,
               batch_size: int = DEFAULT_BATCH) -> "FlowColumns":
    """Expand arrival processes into a :class:`FlowColumns`.

    Flows from all processes merge in start-time order (ties broken by
    process index, then arrival sequence — fully deterministic); flow id
    equals row index.  ``chunk`` is the synthesis granularity and does
    not affect the output; ``batch_size`` is carried into the resulting
    columns (the Flow-facade bound and the engine-builder batch unit).
    """
    if not processes:
        raise ConfigError("synthesize needs at least one arrival process")
    if chunk <= 0:
        raise ConfigError("chunk must be positive")
    parts = []
    for idx, proc in enumerate(processes):
        times = _arrival_times(proc, substream(seed, _KEY_GAPS, idx), chunk)
        n = times.size
        if n == 0:
            continue
        src, dst = _endpoints(proc, substream(seed, _KEY_ENDPOINTS, idx), n)
        sizes = _sizes(proc, substream(seed, _KEY_SIZES, idx), n)
        prio = _classes(proc, substream(seed, _KEY_CLASSES, idx), n)
        transport = np.full(n, int(proc.transport), dtype=np.int64)
        parts.append((times, src, dst, sizes, transport, prio, idx))
    if not parts:
        raise ConfigError(
            "arrival processes synthesized no flows (horizon too short "
            "or rate too low)")
    start = np.concatenate([p[0] for p in parts])
    src = np.concatenate([p[1] for p in parts])
    dst = np.concatenate([p[2] for p in parts])
    size = np.concatenate([p[3] for p in parts])
    transport = np.concatenate([p[4] for p in parts])
    prio = np.concatenate([p[5] for p in parts])
    proc_idx = np.concatenate(
        [np.full(p[0].size, p[6], dtype=np.int64) for p in parts])
    seq = np.concatenate(
        [np.arange(p[0].size, dtype=np.int64) for p in parts])
    order = np.lexsort((seq, proc_idx, start))
    return FlowColumns(
        src=src[order], dst=dst[order], size_bytes=size[order],
        start_ps=start[order], transport=transport[order],
        priority=prio[order], batch_size=batch_size,
    )


class FlowColumns:
    """Columnar flow storage with a bounded Flow-facade cache.

    Quacks like the validated flow list engines consume: ``len``,
    integer indexing (→ :class:`Flow`), iteration (transient Flows in
    flow-id order), truthiness.  Scalar reads cross the same
    plain-Python boundary as the NumPy ECS tables (no NumPy scalars
    escape), so traces stay byte-identical whichever path reads a flow.

    At most ``batch_size`` Flow facades are ever cached (the cache is a
    generation cache: it clears wholesale when full, keeping eviction
    GIL-atomic for the worker pool).  The DOD engine builder bypasses
    Flow entirely via :meth:`iter_batches`.
    """

    __slots__ = ("_src", "_dst", "_size", "_start", "_transport",
                 "_priority", "batch_size", "_cache")

    def __init__(self, src, dst, size_bytes, start_ps, transport, priority,
                 batch_size: int = DEFAULT_BATCH) -> None:
        self._src = np.ascontiguousarray(src, dtype=np.int64)
        self._dst = np.ascontiguousarray(dst, dtype=np.int64)
        self._size = np.ascontiguousarray(size_bytes, dtype=np.int64)
        self._start = np.ascontiguousarray(start_ps, dtype=np.int64)
        self._transport = np.ascontiguousarray(transport, dtype=np.int64)
        self._priority = np.ascontiguousarray(priority, dtype=np.int64)
        n = len(self._src)
        for name in ("_dst", "_size", "_start", "_transport", "_priority"):
            if len(getattr(self, name)) != n:
                raise ConfigError("flow columns must have equal length")
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        self.batch_size = int(batch_size)
        self._cache: Dict[int, Flow] = {}
        if n:
            if bool((self._src == self._dst).any()):
                raise ConfigError("flow columns contain src == dst")
            if bool((self._size <= 0).any()):
                raise ConfigError("flow columns contain non-positive sizes")
            if bool((self._start < 0).any()):
                raise ConfigError("flow columns contain negative starts")
            if not bool(np.isin(self._transport,
                                [int(t) for t in Transport]).all()):
                raise ConfigError("flow columns contain unknown transports")
            if bool((self._priority < 0).any()):
                raise ConfigError("flow columns contain negative priorities")

    # --- sequence protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._src)

    def __bool__(self) -> bool:
        return len(self._src) > 0

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        n = len(self._src)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"flow id {i} out of range for {n} flows")
        cache = self._cache
        flow = cache.get(i)
        if flow is None:
            if len(cache) >= self.batch_size:
                cache.clear()
            flow = Flow(
                flow_id=i, src=int(self._src[i]), dst=int(self._dst[i]),
                size_bytes=int(self._size[i]), start_ps=int(self._start[i]),
                transport=Transport(int(self._transport[i])),
                priority=int(self._priority[i]),
            )
            cache[i] = flow
        return flow

    def __iter__(self) -> Iterator[Flow]:
        # Transient facades: nothing is cached, peak live count stays O(1).
        src = self._src.tolist()
        dst = self._dst.tolist()
        size = self._size.tolist()
        start = self._start.tolist()
        transport = self._transport.tolist()
        priority = self._priority.tolist()
        for i in range(len(src)):
            yield Flow(flow_id=i, src=src[i], dst=dst[i],
                       size_bytes=size[i], start_ps=start[i],
                       transport=Transport(transport[i]),
                       priority=priority[i])

    def __repr__(self) -> str:
        return (f"FlowColumns(n={len(self)}, batch_size={self.batch_size})")

    # --- columnar fast paths ------------------------------------------------

    def iter_batches(self) -> Iterator[Tuple[int, Dict[str, np.ndarray]]]:
        """Yield ``(first_flow_id, columns)`` batches in flow-id order.

        Every batch passes through the module-level :data:`batch_filter`
        hook (resolved at call time) — the injection point of the
        skewed-arrival-stream conformance drill.  Consumers must not
        mutate the yielded arrays.
        """
        n = len(self)
        bs = self.batch_size
        for s in range(0, n, bs):
            e = min(n, s + bs)
            cols = {
                "src": self._src[s:e], "dst": self._dst[s:e],
                "size_bytes": self._size[s:e], "start_ps": self._start[s:e],
                "transport": self._transport[s:e],
                "priority": self._priority[s:e],
            }
            yield s, batch_filter(s, cols)

    def priority_list(self) -> List[int]:
        """flow_id -> class, as plain ints (classifier table fast path)."""
        return self._priority.tolist()

    def src_list(self) -> List[int]:
        """Per-flow source hosts as plain ints (NIC-map fast path)."""
        return self._src.tolist()

    def priority_at(self, flow_id: int) -> int:
        return int(self._priority[flow_id])

    def transport_at(self, flow_id: int) -> int:
        """Transport code of one flow, without materializing a facade."""
        return int(self._transport[flow_id])

    @property
    def has_udp(self) -> bool:
        return bool((self._transport == int(Transport.UDP)).any())

    def udp_flow_ids(self) -> List[int]:
        return np.nonzero(
            self._transport == int(Transport.UDP))[0].tolist()

    def max_start_ps(self) -> int:
        return int(self._start.max()) if len(self) else 0

    def class_counts(self) -> List[int]:
        """Flows per DSCP class (exact per-class rate accounting)."""
        if not len(self):
            return []
        return np.bincount(self._priority).tolist()

    def cached_flow_count(self) -> int:
        """Live Flow facades held by the bounded cache (test probe)."""
        return len(self._cache)

    def columns(self) -> Dict[str, np.ndarray]:
        """The full column arrays (src/dst/size_bytes/start_ps/transport/
        priority).  Views into internal storage — callers must not mutate;
        copy before editing (workload builders that expand or re-merge
        flows do exactly that)."""
        return {
            "src": self._src, "dst": self._dst, "size_bytes": self._size,
            "start_ps": self._start, "transport": self._transport,
            "priority": self._priority,
        }

    # --- validation / serialization ----------------------------------------

    def validate_against(self, hosts: Sequence[int]) -> "FlowColumns":
        """Vectorized endpoint validation (the `validate_flows` analogue).

        Flow ids are dense row indices, so uniqueness holds by
        construction; only endpoint membership needs checking.
        """
        host_arr = np.fromiter(hosts, dtype=np.int64)
        ok = (np.isin(self._src, host_arr) & np.isin(self._dst, host_arr))
        if not bool(ok.all()):
            bad = int(np.nonzero(~ok)[0][0])
            raise ConfigError(
                f"flow {bad} references non-host endpoints "
                f"({int(self._src[bad])} -> {int(self._dst[bad])})")
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self._src.tolist(), "dst": self._dst.tolist(),
            "size": self._size.tolist(), "start_ps": self._start.tolist(),
            "transport": self._transport.tolist(),
            "priority": self._priority.tolist(),
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FlowColumns":
        return cls(
            src=doc["src"], dst=doc["dst"], size_bytes=doc["size"],
            start_ps=doc["start_ps"], transport=doc["transport"],
            priority=doc["priority"],
            batch_size=doc.get("batch_size", DEFAULT_BATCH),
        )

    @classmethod
    def from_flows(cls, flows: Sequence[Flow],
                   batch_size: int = DEFAULT_BATCH) -> "FlowColumns":
        """Columnarize a materialized flow list (ids must be dense 0..n-1)."""
        for i, f in enumerate(flows):
            if f.flow_id != i:
                raise ConfigError(
                    "FlowColumns needs dense flow ids equal to position; "
                    f"got id {f.flow_id} at position {i}")
        return cls(
            src=[f.src for f in flows], dst=[f.dst for f in flows],
            size_bytes=[f.size_bytes for f in flows],
            start_ps=[f.start_ps for f in flows],
            transport=[int(f.transport) for f in flows],
            priority=[f.priority for f in flows], batch_size=batch_size,
        )

    # --- pickling (cluster scenario shipping) -------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        return {name: getattr(self, name)
                for name in self.__slots__ if name != "_cache"}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "_cache", {})
