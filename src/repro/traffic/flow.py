"""Flow descriptions: the unit of traffic every engine consumes.

A scenario's traffic is a plain, immutable list of :class:`Flow` records,
generated once (seeded) and then handed unchanged to every simulator under
comparison, so that "same input, compare outputs" holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Sequence

from ..errors import ConfigError


class Transport(IntEnum):
    """Transport protocol run by a flow's sender.

    RENO is classic ECN-TCP (fixed halving on marked windows), added via
    the CCA-extension hook of §8; it shares DCTCP's state machine.
    """

    UDP = 0
    DCTCP = 1
    RENO = 2


@dataclass(frozen=True)
class Flow:
    """One application flow.

    Attributes:
        flow_id: Dense id; also the ECMP hash key component.
        src: Source host node id.
        dst: Destination host node id.
        size_bytes: Application bytes to deliver (payload, excl. headers).
        start_ps: Simulated start time in picoseconds.
        transport: UDP or DCTCP.
        priority: Traffic class used by DRR / Strict Priority schedulers
            (0 = highest).
    """

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    start_ps: int
    transport: Transport = Transport.DCTCP
    priority: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigError(f"flow {self.flow_id}: src == dst == {self.src}")
        if self.size_bytes <= 0:
            raise ConfigError(f"flow {self.flow_id}: size must be positive")
        if self.start_ps < 0:
            raise ConfigError(f"flow {self.flow_id}: negative start time")


def validate_flows(flows: Sequence[Flow], hosts: Sequence[int]) -> List[Flow]:
    """Check that flows reference existing hosts and ids are unique."""
    host_set = set(hosts)
    seen = set()
    for flow in flows:
        if flow.flow_id in seen:
            raise ConfigError(f"duplicate flow id {flow.flow_id}")
        seen.add(flow.flow_id)
        if flow.src not in host_set or flow.dst not in host_set:
            raise ConfigError(
                f"flow {flow.flow_id} references non-host endpoints "
                f"({flow.src} -> {flow.dst})"
            )
    return list(flows)
