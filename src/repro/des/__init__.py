"""The OOD baseline family: sequential engine and multi-LP parallel engine."""

from .events import EventQueue
from .simulator import OodSimulator, run_baseline
from .parallel import (
    Channel, ParallelOodSimulator, ParallelRunStats, lp_duplicated_state,
)
from .partition_types import (
    Partition, contiguous_partition, random_partition, single_partition,
)

__all__ = [
    "EventQueue", "OodSimulator", "run_baseline",
    "Channel", "ParallelOodSimulator", "ParallelRunStats",
    "lp_duplicated_state",
    "Partition", "contiguous_partition", "random_partition",
    "single_partition",
]
