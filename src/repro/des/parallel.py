"""Parallel OOD baseline: logical processes + null-message synchronization.

This reproduces how ns-3/OMNeT++ parallelize (§2.2): the topology is
partitioned into sub-graphs, each simulated by a Logical Process (LP)
with its own event queue, synchronized conservatively with the
Chandy-Misra-Bryant null-message algorithm [8, 10, 16].  Each LP
duplicates the full topology and routing state — the memory blow-up of
paper Fig. 2b — which :func:`lp_duplicated_state` quantifies for the
memory model.

The LPs here run cooperatively in one OS process (CPython cannot give
them real parallelism anyway; DESIGN.md); what is executed for real is
the *algorithm*: per-LP chronological processing, channel clocks,
null-message exchange, blocking on unsafe timestamps.  The cost model
turns the measured per-LP event counts, null-message counts and blocked
rounds into modeled wall-clock, which is where Fig. 3's "2 LPs slower
than 1" emerges.

Correctness: conservative synchronization never processes an event
before its inputs are final, so the merged trace equals the sequential
baseline's — asserted in tests/integration/test_parallel_baseline.py.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .events import KIND_ARRIVAL
from .partition_types import Partition
from .simulator import OodSimulator
from ..errors import SimulationError
from ..metrics import SimResults, TraceLevel, TraceRecorder
from ..protocols.egress import EgressPort
from ..protocols.packet import F_FLOW, F_ISACK, F_SEQ, Row
from ..scenario import Scenario


@dataclass
class Channel:
    """A directed cross-LP channel (one per cut directed interface).

    ``bound`` is the channel clock: the sender guarantees no future
    message with timestamp < bound.  Messages arrive timestamp-ordered
    because a single egress port emits in nondecreasing time.
    """

    src_lp: int
    dst_lp: int
    iface_id: int
    lookahead_ps: int
    bound: int = 0
    queue: List[Tuple[int, Row, int]] = field(default_factory=list)  # (t, row, node)
    null_messages: int = 0
    data_messages: int = 0

    def send(self, t: int, row: Row, node: int) -> None:
        if self.queue and t < self.queue[-1][0]:
            raise SimulationError("channel violated FIFO timestamp order")
        self.queue.append((t, row, node))
        self.data_messages += 1
        if t > self.bound:
            self.bound = t

    def send_null(self, new_bound: int) -> None:
        if new_bound > self.bound:
            self.bound = new_bound
            self.null_messages += 1


class _LpSimulator(OodSimulator):
    """One LP: the sequential engine restricted to its sub-graph."""

    def __init__(self, lp_id: int, scenario: Scenario, partition: Partition,
                 trace_level: TraceLevel) -> None:
        super().__init__(scenario, trace_level)
        self.lp_id = lp_id
        self.partition = partition
        self.out_channels: Dict[int, Channel] = {}  # by egress iface id
        self.in_channels: List[Channel] = []
        self.clock = 0

    def build(self) -> None:
        """Like the sequential build, but an LP only owns the sender state
        of flows starting in its sub-graph and the receiver state of flows
        terminating there (each LP still duplicates topology + FIB, which
        is exactly the paper's P2 memory problem)."""
        from ..protocols import DctcpState, ReceiverState, UdpSchedule
        from ..protocols.packet import segment_count
        from ..metrics.results import FlowResult
        from ..traffic import Transport
        from .events import KIND_FLOW_START

        sc = self.scenario
        for flow in sc.flows:
            total = segment_count(flow.size_bytes)
            if self.partition.part_of(flow.dst) == self.lp_id:
                self.receivers[flow.flow_id] = ReceiverState(
                    flow.flow_id, total, flow.transport != Transport.UDP
                )
                self.results.flows[flow.flow_id] = FlowResult(
                    flow.flow_id, flow.start_ps, None, flow.size_bytes
                )
            if self.partition.part_of(flow.src) != self.lp_id:
                continue
            if flow.transport != Transport.UDP:
                self.senders[flow.flow_id] = DctcpState(
                    flow.flow_id, total, sc.cca_params(flow.transport)
                )
                self.queue.push(flow.start_ps, KIND_FLOW_START,
                                flow.flow_id, 0, 0, (flow.flow_id, None))
            else:
                nic_rate = sc.topology.host_iface(flow.src).rate_bps
                self.udp[flow.flow_id] = UdpSchedule(
                    flow.flow_id, flow.size_bytes, flow.start_ps, nic_rate
                )
                self.queue.push(flow.start_ps, KIND_FLOW_START,
                                flow.flow_id, 0, 0, (flow.flow_id, 0))
        self._built = True

    def _emit(self, port: EgressPort, row: Row, start: int, end: int) -> None:
        """Cross-LP emissions go to a channel instead of the local heap."""
        iface = port.iface
        channel = self.out_channels.get(iface.iface_id)
        if channel is None:
            super()._emit(port, row, start, end)
            return
        # Local bookkeeping identical to the sequential engine.
        if self.bus.trace_level:
            self.bus.deq(start, iface.iface_id, row[F_FLOW],
                         row[F_ISACK], row[F_SEQ])
        self.results.events.transmit += 1
        self._bump_node(iface.node)
        from .events import KIND_PORT_DONE
        self.queue.push(end, KIND_PORT_DONE, iface.iface_id, 0, 0,
                        iface.iface_id)
        channel.send(end + iface.delay_ps, row, iface.peer_node)

    # --- conservative execution ------------------------------------------

    def safe_bound(self) -> int:
        """Largest timestamp (exclusive) this LP may process."""
        if not self.in_channels:
            return 1 << 62
        return min(ch.bound for ch in self.in_channels)

    def drain_channels(self) -> None:
        """Move committed channel messages into the local event heap."""
        for ch in self.in_channels:
            if ch.dst_lp != self.lp_id:
                continue
            for t, row, node in ch.queue:
                self.queue.push(t, KIND_ARRIVAL, row[F_FLOW],
                                row[F_ISACK], row[F_SEQ], (node, row))
            ch.queue.clear()

    def step(self, limit: Optional[int] = None) -> int:
        """Process all safe events; returns how many were handled."""
        self.drain_channels()
        bound = self.safe_bound()
        duration = self.scenario.duration_ps
        handled = 0
        while self.queue:
            t = self.queue.peek_time()
            if t >= bound:
                break
            if duration is not None and t > duration:
                break
            time_ps, kind, _a, _b, _c, payload = self.queue.pop()
            self.clock = time_ps
            from .events import KIND_FLOW_START, KIND_PORT_DONE
            if kind == KIND_PORT_DONE:
                self._on_port_done(time_ps, payload)
            elif kind == KIND_ARRIVAL:
                self._on_arrival(time_ps, payload)
            elif kind == KIND_FLOW_START:
                self._on_flow_start(time_ps, payload)
            else:
                self._on_timer(time_ps, payload)
            self.results.end_time_ps = time_ps
            handled += 1
            if limit is not None and handled >= limit:
                break
            # New channel input may raise the safe bound mid-step.
            if not self.queue or self.queue.peek_time() >= bound:
                self.drain_channels()
                bound = self.safe_bound()
        return handled

    def next_local_time(self) -> Optional[int]:
        return self.queue.peek_time() if self.queue else None

    def advertise(self) -> None:
        """Send null messages (CMB): promise no output earlier than the
        earliest event this LP could still process, plus the channel's
        lookahead (its link's propagation delay).

        The earliest processable event is the smaller of the local queue
        head and the earliest possible future channel input (the safe
        bound) — the classic null-message timestamp.  Positive link delays
        make the bounds strictly increase, which is the CMB deadlock-
        freedom argument.
        """
        nxt = self.next_local_time()
        earliest = self.safe_bound()
        if nxt is not None and nxt < earliest:
            earliest = nxt
        floor = max(self.clock, min(earliest, 1 << 62))
        for ch in self.out_channels.values():
            ch.send_null(floor + ch.lookahead_ps)


@dataclass
class ParallelRunStats:
    """Synchronization measurements (cost-model inputs)."""

    rounds: int = 0
    null_messages: int = 0
    data_messages: int = 0
    blocked_lp_rounds: int = 0
    global_flushes: int = 0
    lp_events: List[int] = field(default_factory=list)


class ParallelOodSimulator:
    """Multi-LP conservative parallel simulation of one scenario."""

    name = "ood-des-parallel"

    def __init__(
        self,
        scenario: Scenario,
        partition: Partition,
        trace_level: TraceLevel = TraceLevel.NONE,
        max_rounds: int = 100_000_000,
    ) -> None:
        if len(partition.assignment) != scenario.topology.num_nodes:
            raise SimulationError("partition does not match topology")
        self.scenario = scenario
        self.partition = partition
        self.max_rounds = max_rounds
        self.lps = [
            _LpSimulator(i, scenario, partition, trace_level)
            for i in range(partition.num_parts)
        ]
        self.channels: List[Channel] = []
        self._wire_channels()
        self.stats = ParallelRunStats()

    def _wire_channels(self) -> None:
        topo = self.scenario.topology
        for iface in topo.interfaces:
            src_lp = self.partition.part_of(iface.node)
            dst_lp = self.partition.part_of(iface.peer_node)
            if src_lp == dst_lp:
                continue
            ch = Channel(src_lp, dst_lp, iface.iface_id, iface.delay_ps)
            self.channels.append(ch)
            self.lps[src_lp].out_channels[iface.iface_id] = ch
            self.lps[dst_lp].in_channels.append(ch)

    def run(self) -> SimResults:
        for lp in self.lps:
            lp.build()
        rounds = 0
        while True:
            progressed = 0
            for lp in self.lps:
                handled = lp.step()
                if handled == 0 and lp.queue:
                    self.stats.blocked_lp_rounds += 1
                progressed += handled
            if progressed == 0 and all(not lp.queue for lp in self.lps) and all(
                not ch.queue for ch in self.channels
            ):
                rounds += 1
                break  # globally quiescent: simulation complete
            bounds_before = [ch.bound for ch in self.channels]
            for lp in self.lps:
                lp.advertise()
            if progressed == 0 and all(not ch.queue for ch in self.channels):
                # Every LP is blocked and nothing is in flight: jump the
                # channel clocks to the global minimum next event (a global
                # reduction, as real PDES kernels do across idle periods).
                # Sound: no LP can emit before processing its next event.
                nexts = [
                    t for t in (lp.next_local_time() for lp in self.lps)
                    if t is not None
                ]
                if nexts:
                    gmin = min(nexts)
                    for ch in self.channels:
                        ch.send_null(gmin + ch.lookahead_ps)
                    self.stats.global_flushes += 1
            bounds_moved = bounds_before != [ch.bound for ch in self.channels]
            rounds += 1
            if progressed == 0 and not bounds_moved:
                raise SimulationError(
                    "null-message deadlock (zero lookahead somewhere?)"
                )
            if rounds >= self.max_rounds:
                raise SimulationError("exceeded max synchronization rounds")
        self.stats.rounds = rounds
        self.stats.null_messages = sum(ch.null_messages for ch in self.channels)
        self.stats.data_messages = sum(ch.data_messages for ch in self.channels)
        self.stats.lp_events = [lp.results.events.total for lp in self.lps]
        return self._merge_results()

    def _merge_results(self) -> SimResults:
        merged = SimResults(self.name, self.scenario.name, 0)
        trace_level = self.lps[0].trace.level
        merged.trace = TraceRecorder(trace_level)
        for lp in self.lps:
            lp.finalize()
            merged.end_time_ps = max(merged.end_time_ps, lp.results.end_time_ps)
            merged.events.add(lp.results.events)
            merged.drops += lp.results.drops
            merged.marks += lp.results.marks
            merged.tx_bytes += lp.results.tx_bytes
            merged.rtt_samples.extend(lp.results.rtt_samples)
            for node, count in lp.results.node_events.items():
                merged.node_events[node] = merged.node_events.get(node, 0) + count
            for flow_id, fr in lp.results.flows.items():
                if flow_id not in merged.flows:
                    merged.flows[flow_id] = fr
                elif fr.complete_ps is not None:
                    merged.flows[flow_id] = fr
            merged.trace.entries.extend(lp.trace.entries)
        merged.rtt_samples.sort()
        return merged


def lp_duplicated_state(scenario: Scenario, num_lps: int) -> Dict[str, int]:
    """What each LP duplicates (paper P2): topology objects + full FIB.

    Returns structural counts; the memory model prices them in bytes.
    """
    topo = scenario.topology
    return {
        "lps": num_lps,
        "nodes_per_lp": topo.num_nodes,
        "links_per_lp": topo.num_links,
        "fib_entries_per_lp": scenario.fib.entry_count(),
    }
