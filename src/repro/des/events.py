"""Event heap of the OOD baseline, encoding the ordering contract.

This heap is the *intentionally slow* half of the comparison: one
global priority queue, one pop per event, exactly the per-event
overhead §2.2 attributes to classical simulators.  Do not "optimize"
it toward the columnar store — the DOD engine's
:class:`~repro.core.events.EventColumns` is the fast path, and the
performance gap between the two is a measured result
(``tools/perf_smoke.py``), not an accident.  See DESIGN.md, "Backends
(the columnar table's two implementations)" for where each store sits
in the architecture.

Heap entries are plain tuples ``(time, kind, k1, k2, k3, payload)``.
``kind`` is the trigger class of ``repro.protocols.packet``:

    PORT_DONE(0) < ARRIVAL(1) < FLOW_START(2) < TIMER(3)

and ``(k1, k2, k3)`` is the intra-kind tiebreak:

* PORT_DONE:  (iface_id, 0, 0)
* ARRIVAL:    (flow_id, is_ack, seq) of the arriving packet
* FLOW_START: (flow_id, 0, seq)   (seq > 0 for paced UDP sends)
* TIMER:      (flow_id, 0, 0)

The same total order is reproduced by the DOD engine's window replays,
which is what Theorem 2's trace equality rests on.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Tuple

from ..protocols.packet import PRIO_ARRIVAL, PRIO_FLOW_START, PRIO_SERVICE, PRIO_TIMER

KIND_PORT_DONE = PRIO_SERVICE
KIND_ARRIVAL = PRIO_ARRIVAL
KIND_FLOW_START = PRIO_FLOW_START
KIND_TIMER = PRIO_TIMER

Event = Tuple[int, int, int, int, int, Any]


class EventQueue:
    """A thin deterministic wrapper over ``heapq``."""

    __slots__ = ("_heap", "pushed", "popped")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self.pushed = 0
        self.popped = 0

    def push(self, time_ps: int, kind: int, k1: int, k2: int, k3: int,
             payload: Any) -> None:
        heapq.heappush(self._heap, (time_ps, kind, k1, k2, k3, payload))
        self.pushed += 1

    def pop(self) -> Event:
        self.popped += 1
        return heapq.heappop(self._heap)

    def peek_time(self) -> int:
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
