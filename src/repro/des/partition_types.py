"""Partition representation shared by the parallel baseline, the
partitioner package and the cluster runtime.

A partition assigns every node of the topology to a logical process /
machine: ``assignment[node_id] -> part index``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


from ..errors import PartitionError
from ..rng import substream
from ..topology import Topology


@dataclass(frozen=True)
class Partition:
    """A k-way node partition of a topology."""

    assignment: Tuple[int, ...]
    num_parts: int

    def __post_init__(self) -> None:
        if not self.assignment:
            raise PartitionError("empty partition")
        if self.num_parts < 1:
            raise PartitionError("need at least one part")
        bad = [p for p in self.assignment if not 0 <= p < self.num_parts]
        if bad:
            raise PartitionError(f"part ids out of range: {sorted(set(bad))}")

    def part_of(self, node: int) -> int:
        return self.assignment[node]

    def nodes_of(self, part: int) -> List[int]:
        return [n for n, p in enumerate(self.assignment) if p == part]

    def part_sizes(self) -> List[int]:
        sizes = [0] * self.num_parts
        for p in self.assignment:
            sizes[p] += 1
        return sizes

    def cut_links(self, topo: Topology) -> List[int]:
        """Link ids whose endpoints lie in different parts."""
        return [
            link.link_id for link in topo.links
            if self.assignment[link.node_a] != self.assignment[link.node_b]
        ]

    def is_cut(self, topo: Topology, link_id: int) -> bool:
        link = topo.links[link_id]
        return self.assignment[link.node_a] != self.assignment[link.node_b]


def single_partition(topo: Topology) -> Partition:
    """Everything on one machine."""
    return Partition(tuple([0] * topo.num_nodes), 1)


def random_partition(topo: Topology, k: int, seed: int = 0) -> Partition:
    """Uniform random node assignment — the paper's Fig. 3 'bad case'
    where parallel execution is slower than serial."""
    if k < 1:
        raise PartitionError("k must be >= 1")
    rng = substream(seed, 0xDEAD)
    assign = rng.integers(0, k, size=topo.num_nodes)
    # Guarantee every part is non-empty for small topologies.
    for part in range(min(k, topo.num_nodes)):
        assign[part] = part
    return Partition(tuple(int(a) for a in assign), k)


def contiguous_partition(topo: Topology, k: int) -> Partition:
    """Nodes split by id into k equal slabs (a crude manual partition)."""
    if k < 1:
        raise PartitionError("k must be >= 1")
    n = topo.num_nodes
    assign = [min(i * k // n, k - 1) for i in range(n)]
    return Partition(tuple(assign), k)
