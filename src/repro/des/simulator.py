"""The OOD baseline simulator: a classical object-oriented DES engine.

This engine stands in for ns-3 / OMNeT++ in every comparison: a single
event heap, one :class:`~repro.protocols.Packet`-object per packet in
flight, per-connection objects at hosts, and per-port objects at
switches, processed strictly one event at a time.  It is deliberately
architected the way §2.2 describes existing simulators — that is the
point of the baseline — while sharing the *semantic* building blocks
(egress automaton, DCTCP/UDP transitions, receiver logic) with the DOD
engine so their traces can be compared timestamp for timestamp.

Its slowness is a feature, not a bug: the heap-per-event architecture
is the measured reference point of every speedup claim (the
``ratio_*_over_ood`` gates in ``tools/perf_smoke.py``), so this engine
must stay faithful to the §2.2 cost model — no batching, no columnar
storage, no window lookahead.  The fast counterparts live in
``repro.core`` (:class:`~repro.core.events.EventColumns`, the fused
window pass, multi-window batching); DESIGN.md's "Backends" section
maps out which store belongs to which engine.

Like the DOD engine, the simulator publishes every observation to an
:class:`~repro.core.instrument.InstrumentationBus`: machine-model probes
subscribe to the op stream (``bus.subscribe_ops``) and the trace
recorder to the trace stream.  The ``op_hook`` constructor argument is
kept as a convenience and is simply subscribed to the bus.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .events import (
    EventQueue, KIND_ARRIVAL, KIND_FLOW_START, KIND_PORT_DONE, KIND_TIMER,
)
from ..core.instrument import InstrumentationBus
from ..core.runner import EngineRunner
from ..errors import SimulationError
from ..metrics import SimResults, TraceLevel, TraceRecorder
from ..metrics.results import FlowResult
from ..protocols import (
    DctcpState,
    EgressPort,
    ReceiverState,
    UdpSchedule,
    ack_row,
    data_row,
    segment_count,
    segment_payload,
)
from ..protocols.packet import (
    F_CE, F_DST, F_ECE, F_FLOW, F_ISACK, F_SEND_TS, F_SEQ, Row, packet_uid,
)
from ..scenario import Scenario
from ..traffic import Transport

# Machine-model op codes (shared with repro.machine.access).
OP_SEND = 0
OP_FORWARD = 1
OP_SERVICE = 2
OP_HOST_RX = 3

OpHook = Callable[[int, int, int], None]


class OodSimulator:
    """Sequential, object-oriented discrete event simulator."""

    name = "ood-des"

    def __init__(
        self,
        scenario: Scenario,
        trace_level: TraceLevel = TraceLevel.NONE,
        op_hook: Optional[OpHook] = None,
        max_events: Optional[int] = None,
        sample_queues: bool = False,
    ) -> None:
        self.scenario = scenario
        self.bus = InstrumentationBus(keep_window_profiles=False)
        self.trace = self.bus.subscribe_trace(TraceRecorder(trace_level))
        if op_hook is not None:
            self.bus.subscribe_ops(op_hook)
        self.max_events = max_events

        topo = scenario.topology
        from ..protocols.egress import TableClassifier
        classifier = TableClassifier(scenario.classifier_table())

        self.ports: List[EgressPort] = []
        for iface in topo.interfaces:
            cfg = (
                scenario.host_egress
                if topo.nodes[iface.node].is_host
                else scenario.switch_egress
            )
            self.ports.append(EgressPort(iface, cfg, classifier,
                                         sample_queue=sample_queues))

        # Per-flow endpoint state (OOD: one object per connection).
        self.senders: Dict[int, DctcpState] = {}
        self.udp: Dict[int, UdpSchedule] = {}
        self.receivers: Dict[int, ReceiverState] = {}
        self.results = SimResults(self.name, scenario.name, 0)
        self.queue = EventQueue()
        self._built = False
        self._finalized = False
        self._handled = 0

    # --- construction ----------------------------------------------------

    def build(self) -> None:
        """Create endpoint state and schedule flow starts."""
        sc = self.scenario
        for flow in sc.flows:
            total = segment_count(flow.size_bytes)
            needs_ack = flow.transport != Transport.UDP
            self.receivers[flow.flow_id] = ReceiverState(
                flow.flow_id, total, needs_ack
            )
            self.results.flows[flow.flow_id] = FlowResult(
                flow.flow_id, flow.start_ps, None, flow.size_bytes
            )
            if flow.transport != Transport.UDP:
                self.senders[flow.flow_id] = DctcpState(
                    flow.flow_id, total, sc.cca_params(flow.transport)
                )
                self.queue.push(
                    flow.start_ps, KIND_FLOW_START, flow.flow_id, 0, 0,
                    (flow.flow_id, None),
                )
            else:
                nic_rate = sc.topology.host_iface(flow.src).rate_bps
                self.udp[flow.flow_id] = UdpSchedule(
                    flow.flow_id, flow.size_bytes, flow.start_ps, nic_rate
                )
                self.queue.push(
                    flow.start_ps, KIND_FLOW_START, flow.flow_id, 0, 0,
                    (flow.flow_id, 0),
                )
        self._built = True

    # --- helpers ----------------------------------------------------------

    def _emit(self, port: EgressPort, row: Row, start: int, end: int) -> None:
        """A service started: schedule completion and far-end arrival."""
        iface = port.iface
        if self.bus.trace_level:
            self.bus.deq(start, iface.iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ])
        if self.bus.has_ops:
            self.bus.op(OP_SERVICE, iface.iface_id, packet_uid(row))
        self.results.events.transmit += 1
        self._bump_node(iface.node)
        self.queue.push(end, KIND_PORT_DONE, iface.iface_id, 0, 0, iface.iface_id)
        arrive = end + iface.delay_ps
        self.queue.push(
            arrive, KIND_ARRIVAL, row[F_FLOW], row[F_ISACK], row[F_SEQ],
            (iface.peer_node, row),
        )

    def _try_start(self, port: EgressPort, now: int) -> None:
        if port.in_service:
            return
        res = port.start_service(now)
        if res is not None:
            row, end = res
            self._emit(port, row, now, end)

    def _enqueue_at_port(self, iface_id: int, row: Row, now: int) -> None:
        port = self.ports[iface_id]
        accepted = port.arrive(row, now)
        if accepted is None:
            if self.bus.trace_level:
                self.bus.drop(now, iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ])
            self.results.drops += 1
            return
        if self.bus.trace_level:
            self.bus.enq(now, iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ],
                         accepted[F_CE])
        self._try_start(port, now)

    def _enqueue_at_host_nic(self, host: int, row: Row, now: int) -> None:
        iface = self.scenario.topology.host_iface(host)
        self._enqueue_at_port(iface.iface_id, row, now)

    def _bump_node(self, node: int) -> None:
        self.results.node_events[node] = self.results.node_events.get(node, 0) + 1

    def _send_segments(self, flow_id: int, seqs: List[int], now: int) -> None:
        """Put data segments of ``flow_id`` on the sender's NIC queue."""
        flow = self.scenario.flows[flow_id]
        for seq in seqs:
            payload = segment_payload(flow.size_bytes, seq)
            row = data_row(flow_id, seq, payload, now, flow.src, flow.dst)
            self.results.events.send += 1
            self._bump_node(flow.src)
            if self.bus.has_ops:
                self.bus.op(OP_SEND, flow.src, packet_uid(row))
            self._enqueue_at_host_nic(flow.src, row, now)

    def _arm_timer(self, state: DctcpState) -> None:
        if state.rtx_deadline is not None:
            self.queue.push(
                state.rtx_deadline, KIND_TIMER, state.flow_id, 0, 0,
                (state.flow_id, state.timer_gen),
            )

    # --- event handlers ----------------------------------------------------

    def _on_flow_start(self, now: int, payload: Tuple[int, Optional[int]]) -> None:
        flow_id, udp_seq = payload
        flow = self.scenario.flows[flow_id]
        if udp_seq is None:
            state = self.senders[flow_id]
            segs = state.on_start(now)
            self._send_segments(flow_id, segs, now)
            self._arm_timer(state)
            return
        # Paced UDP: enqueue this segment, schedule the next.
        sched = self.udp[flow_id]
        payload_bytes = sched.payload(udp_seq)
        row = data_row(flow_id, udp_seq, payload_bytes, now, flow.src, flow.dst)
        self.results.events.send += 1
        self._bump_node(flow.src)
        if self.bus.has_ops:
            self.bus.op(OP_SEND, flow.src, packet_uid(row))
        self._enqueue_at_host_nic(flow.src, row, now)
        nxt = udp_seq + 1
        if nxt < sched.total_segs:
            self.queue.push(
                sched.enqueue_time(nxt), KIND_FLOW_START, flow_id, 0, nxt,
                (flow_id, nxt),
            )

    def _on_arrival(self, now: int, payload: Tuple[int, Row]) -> None:
        node, row = payload
        topo = self.scenario.topology
        if not topo.nodes[node].is_host:
            # Switch: FIB lookup + move to the chosen egress (ForwardSystem).
            self.results.events.forward += 1
            self._bump_node(node)
            if self.bus.has_ops:
                self.bus.op(OP_FORWARD, node, packet_uid(row))
            salt = row[F_SEQ] if self.scenario.ecmp_mode == "packet" else None
            port = self.scenario.fib.resolve_port(node, row[F_DST],
                                                  row[F_FLOW], salt)
            self._enqueue_at_port(topo.iface_id(node, port), row, now)
            return

        # Host side.
        if node != row[F_DST]:
            raise SimulationError(
                f"packet for host {row[F_DST]} delivered to host {node}"
            )
        self.results.events.ack += 1
        self._bump_node(node)
        if self.bus.has_ops:
            self.bus.op(OP_HOST_RX, node, packet_uid(row))
        if self.bus.trace_level:
            self.bus.deliver(now, node, row[F_FLOW], row[F_ISACK], row[F_SEQ])
        flow_id = row[F_FLOW]
        if row[F_ISACK]:
            self._on_ack_at_sender(flow_id, row, now)
        else:
            self._on_data_at_receiver(flow_id, row, now)

    def _on_data_at_receiver(self, flow_id: int, row: Row, now: int) -> None:
        rec = self.receivers[flow_id]
        was_complete = rec.complete
        ack = rec.on_data(row[F_SEQ], row[F_CE], row[F_SEND_TS], now)
        if rec.complete and not was_complete:
            self.results.flows[flow_id].complete_ps = now
            if self.bus.trace_level:
                self.bus.flow_done(now, row[F_DST], flow_id)
        if ack is not None:
            ack_seq, ece, echo_ts = ack
            flow = self.scenario.flows[flow_id]
            out = ack_row(flow_id, ack_seq, ece, echo_ts, flow.dst, flow.src)
            self._enqueue_at_host_nic(flow.dst, out, now)

    def _on_ack_at_sender(self, flow_id: int, row: Row, now: int) -> None:
        state = self.senders.get(flow_id)
        if state is None:
            raise SimulationError(f"ACK for non-DCTCP flow {flow_id}")
        self.results.rtt_samples.append((now, now - row[F_SEND_TS], flow_id))
        segs = state.on_ack(row[F_SEQ], row[F_ECE], row[F_SEND_TS], now)
        self._send_segments(flow_id, segs, now)
        self._arm_timer(state)

    def _on_timer(self, now: int, payload: Tuple[int, int]) -> None:
        flow_id, gen = payload
        state = self.senders[flow_id]
        if state.rtx_deadline is None or gen != state.timer_gen:
            return  # stale timer
        if now != state.rtx_deadline:
            return
        segs = state.on_timeout(now)
        self._send_segments(flow_id, segs, now)
        self._arm_timer(state)

    def _on_port_done(self, now: int, iface_id: int) -> None:
        port = self.ports[iface_id]
        port.complete_service()
        self._try_start(port, now)

    # --- main loop -----------------------------------------------------------

    @property
    def built(self) -> bool:
        return self._built

    def advance(self) -> bool:
        """Process the next event (the runner's unit of progress)."""
        if not self.queue:
            return False
        duration = self.scenario.duration_ps
        t = self.queue.peek_time()
        if duration is not None and t > duration:
            return False
        time_ps, kind, _k1, _k2, _k3, payload = self.queue.pop()
        if kind == KIND_PORT_DONE:
            self._on_port_done(time_ps, payload)
        elif kind == KIND_ARRIVAL:
            self._on_arrival(time_ps, payload)
        elif kind == KIND_FLOW_START:
            self._on_flow_start(time_ps, payload)
        elif kind == KIND_TIMER:
            self._on_timer(time_ps, payload)
        else:
            raise SimulationError(f"unknown event kind {kind}")
        self.results.end_time_ps = time_ps
        self._handled += 1
        if self.max_events is not None and self._handled >= self.max_events:
            return False
        return True

    def run(self) -> SimResults:
        """Run to completion (or scenario duration / max_events)."""
        return EngineRunner(self).run()

    def finalize(self) -> SimResults:
        """Assemble results (idempotent)."""
        if not self._finalized:
            self._finalized = True
            res = self.results
            res.trace = self.trace
            res.rtt_samples.sort()
            for port in self.ports:
                res.marks += port.stats.marked
                res.tx_bytes += port.stats.tx_bytes
        return self.results


def run_baseline(
    scenario: Scenario,
    trace_level: TraceLevel = TraceLevel.NONE,
    op_hook: Optional[OpHook] = None,
) -> SimResults:
    """Convenience one-shot run of the OOD baseline."""
    sim = OodSimulator(scenario, trace_level, op_hook)
    return sim.run()
