"""Deterministic random-number utilities.

Determinism discipline: randomness is only ever consumed while *building*
a scenario (flow arrival times, sizes, source/destination picks, synthetic
topologies).  The engines themselves are purely deterministic functions of
the scenario, which is what makes the trace-equality fidelity tests
(paper Fig. 10 / Theorem 2) meaningful.

ECMP hashing is *not* randomness: it is a pure hash of flow identifiers,
implemented here so that every engine resolves multipath choices
identically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "substream", "ecmp_hash"]


def make_rng(seed: int) -> np.random.Generator:
    """Create the root generator for a scenario."""
    return np.random.default_rng(seed)


def substream(seed: int, *keys: int) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and integer ``keys``.

    Used so that, e.g., traffic generation and topology generation do not
    perturb each other's streams when parameters change.
    """
    return np.random.default_rng(np.random.SeedSequence((seed, *keys)))


# A small, fast integer mix (splitmix64 finalizer).  Pure function: both
# engines and the load estimator use it for ECMP so path choices agree.
_MASK = (1 << 64) - 1


def ecmp_hash(*values: int) -> int:
    """Deterministically hash flow identifiers for ECMP next-hop choice."""
    h = 0x9E3779B97F4A7C15
    for v in values:
        h = (h ^ (v & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        h ^= h >> 31
    h = (h * 0x94D049BB133111EB) & _MASK
    h ^= h >> 29
    return h
