"""The APA itself: a DeepQueueNet-like performance approximator.

Training: run small packet-level simulations (the paper notes APAs are
trained on DES-produced data — one reason DES speed still matters) and
fit two regressors on per-flow targets:

* mean RTT inflation over the unloaded baseline (log-ratio),
* flow completion time (log of FCT over unloaded transfer time).

Inference: extract the same features for an unseen scenario and emit a
predicted RTT sample set and per-flow FCTs, with no packet simulation.
Wall-clock under the cost model is GPU-batch-bound
(:func:`repro.machine.cost.apa_time_s`), so the APA is fast — and, as in
Tables 1-2, measurably wrong: per-flow constants cannot express the
queueing transients packet simulation captures, yielding w1 ~ 0.4-0.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .features import baseline_rtt_ps, flow_features
from .model import Ridge, standardize
from ..errors import ConfigError
from ..metrics import SimResults
from ..metrics.results import FlowResult
from ..protocols.packet import segment_count
from ..scenario import Scenario


@dataclass
class ApaPrediction:
    """What the approximator emits for one scenario."""

    rtt_samples_ps: np.ndarray           # predicted RTT distribution
    fct_ps: np.ndarray                   # per-flow FCT, flow-id order
    packets_scored: int

    def as_results(self, scenario: Scenario) -> SimResults:
        """Wrap predictions in the common results container."""
        res = SimResults("dqn-apa", scenario.name, int(self.fct_ps.max()))
        for flow in scenario.flows:
            fct = int(self.fct_ps[flow.flow_id])
            res.flows[flow.flow_id] = FlowResult(
                flow.flow_id, flow.start_ps, flow.start_ps + fct,
                flow.size_bytes,
            )
        res.rtt_samples = [
            (0, int(r), -1) for r in np.sort(self.rtt_samples_ps)
        ]
        return res


class DeepQueueNetLike:
    """Train-on-DES, predict-per-flow approximator."""

    def __init__(self, lam: float = 1e-2) -> None:
        self.rtt_model = Ridge(lam)
        self.fct_model = Ridge(lam)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.trained = False

    # --- training -----------------------------------------------------------

    def fit(self, pairs: Sequence[Tuple[Scenario, SimResults]]) -> "DeepQueueNetLike":
        """``pairs`` are (scenario, packet-level results) training runs."""
        if not pairs:
            raise ConfigError("no training pairs")
        X_rows: List[np.ndarray] = []
        y_rtt: List[float] = []
        y_fct: List[float] = []
        for scenario, results in pairs:
            feats = flow_features(scenario)
            base = baseline_rtt_ps(scenario)
            per_flow_rtt = _mean_rtt_by_flow(results, len(scenario.flows))
            for flow in scenario.flows:
                fid = flow.flow_id
                fr = results.flows.get(fid)
                if fr is None or fr.fct_ps is None:
                    continue
                X_rows.append(feats[fid])
                rtt = per_flow_rtt[fid]
                ratio = max(rtt / base[fid], 1.0) if rtt > 0 else 1.0
                y_rtt.append(float(np.log(ratio)))
                unloaded = max(base[fid], 1.0)
                y_fct.append(float(np.log(max(fr.fct_ps / unloaded, 1.0))))
        if not X_rows:
            raise ConfigError("training runs contained no completed flows")
        X = np.vstack(X_rows)
        X, self._mean, self._std = standardize(X)
        self.rtt_model.fit(X, np.asarray(y_rtt))
        self.fct_model.fit(X, np.asarray(y_fct))
        self.trained = True
        return self

    # --- inference ---------------------------------------------------------------

    def predict(self, scenario: Scenario) -> ApaPrediction:
        if not self.trained:
            raise ConfigError("predict() before fit()")
        feats = flow_features(scenario)
        X, _, _ = standardize(feats, self._mean, self._std)
        base = baseline_rtt_ps(scenario)
        rtt_ratio = np.exp(np.clip(self.rtt_model.predict(X), 0.0, 6.0))
        fct_ratio = np.exp(np.clip(self.fct_model.predict(X), 0.0, 12.0))
        pred_rtt = base * rtt_ratio
        pred_fct = np.maximum(base, base * fct_ratio)

        # The predicted RTT "distribution": one constant per flow,
        # weighted by the flow's packet count — per-flow aggregation is
        # exactly the fidelity the approximator gives up.
        samples: List[float] = []
        packets = 0
        for flow in scenario.flows:
            segs = segment_count(flow.size_bytes)
            packets += segs
            reps = min(segs, 64)  # cap the sample fan-out
            samples.extend([pred_rtt[flow.flow_id]] * reps)
        return ApaPrediction(
            rtt_samples_ps=np.asarray(samples),
            fct_ps=pred_fct,
            packets_scored=packets,
        )


def _mean_rtt_by_flow(results: SimResults, num_flows: int) -> np.ndarray:
    sums = np.zeros(num_flows)
    counts = np.zeros(num_flows)
    for _t, rtt, fid in results.rtt_samples:
        if 0 <= fid < num_flows:
            sums[fid] += rtt
            counts[fid] += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return means
