"""AI-powered performance approximator (the DQN comparator of §6)."""

from .features import FEATURE_NAMES, baseline_rtt_ps, flow_features
from .model import Ridge, standardize
from .dqn import ApaPrediction, DeepQueueNetLike

__all__ = [
    "FEATURE_NAMES", "baseline_rtt_ps", "flow_features",
    "Ridge", "standardize",
    "ApaPrediction", "DeepQueueNetLike",
]
