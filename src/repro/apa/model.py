"""Ridge regression core of the APA — the 'deep' model stand-in.

The paper's DQN baseline is a GPU DNN; what its role in Tables 1-2
requires is a *fast, trained, approximate* predictor whose error is
measurable (w1 ~ 0.4-0.6 against the DES ground truth).  A closed-form
ridge regression on queueing-aware features plays that role faithfully
(DESIGN.md), trains on exactly the same kind of data (small packet-level
traces), and — like the real thing — cannot capture transient queueing
dynamics, which is precisely where its Wasserstein error comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError


@dataclass
class Ridge:
    """Closed-form ridge regression: w = (X'X + lam I)^-1 X'y."""

    lam: float = 1e-3
    weights: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Ridge":
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ConfigError("bad training shapes")
        if X.shape[0] == 0:
            raise ConfigError("empty training set")
        d = X.shape[1]
        gram = X.T @ X + self.lam * np.eye(d)
        self.weights = np.linalg.solve(gram, X.T @ y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ConfigError("model is not trained")
        return X @ self.weights

    def r2(self, X: np.ndarray, y: np.ndarray) -> float:
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0


def standardize(X: np.ndarray, mean: Optional[np.ndarray] = None,
                std: Optional[np.ndarray] = None):
    """Column-standardize; zero-variance columns pass through unchanged
    (this keeps the bias column intact, so the model has an intercept)."""
    if mean is None:
        mean = X.mean(axis=0)
        std = X.std(axis=0)
    varying = std > 1e-12
    Z = np.where(varying, (X - mean) / np.where(varying, std, 1.0), X)
    return Z, mean, std
