"""Feature extraction for the APA (AI-powered performance approximator).

DeepQueueNet-class approximators embed "facts about the simulation
scenario" and predict end-to-end metrics without simulating packets.
Our feature vector per flow captures exactly those facts: flow size,
path geometry (hops, propagation, serialization), and congestion
context from the flow-level load estimator (path utilization, sharing
degree) — everything available *without* running a packet simulation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..partition.loadest import LoadModel, estimate_scenario_loads
from ..protocols.packet import HEADER_BYTES, MSS
from ..scenario import Scenario
from ..units import PS_PER_S, serialization_time_ps

#: Feature names, in column order.
FEATURE_NAMES = (
    "log_size",
    "hops",
    "path_delay_us",
    "bottleneck_ser_us",
    "max_link_util",
    "mean_link_util",
    "log_sharing",
    "bias",
)


def flow_features(scenario: Scenario, loads: LoadModel = None) -> np.ndarray:
    """One row of FEATURE_NAMES per flow, ordered by flow id."""
    if loads is None:
        loads = estimate_scenario_loads(scenario)
    topo = scenario.topology
    fib = scenario.fib
    horizon = max(
        scenario.duration_ps or 0,
        max(f.start_ps for f in scenario.flows) + 1,
        1,
    )
    rows: List[List[float]] = []
    for flow in sorted(scenario.flows, key=lambda f: f.flow_id):
        node = flow.src
        hops = 0
        delay_ps = 0
        min_rate = float("inf")
        utils: List[float] = []
        share = 1.0
        while node != flow.dst:
            port = fib.resolve_port(node, flow.dst, flow.flow_id)
            iface = topo.iface(node, port)
            hops += 1
            delay_ps += iface.delay_ps
            min_rate = min(min_rate, iface.rate_bps)
            cap_bytes = iface.rate_bps / 8.0 * (horizon / PS_PER_S)
            link_bytes = loads.link_load[iface.link_id]
            utils.append(link_bytes / cap_bytes if cap_bytes > 0 else 0.0)
            share = max(share, link_bytes / max(flow.size_bytes, 1))
            node = iface.peer_node
        ser_us = serialization_time_ps(MSS + HEADER_BYTES, int(min_rate)) / 1e6
        rows.append([
            float(np.log1p(flow.size_bytes)),
            float(hops),
            delay_ps / 1e6,
            ser_us,
            max(utils) if utils else 0.0,
            float(np.mean(utils)) if utils else 0.0,
            float(np.log1p(share)),
            1.0,
        ])
    return np.asarray(rows, dtype=np.float64)


def baseline_rtt_ps(scenario: Scenario) -> np.ndarray:
    """Unloaded round-trip estimate per flow (propagation + one MSS +
    one ACK serialization per hop) — the physics floor the model
    corrects multiplicatively."""
    topo = scenario.topology
    fib = scenario.fib
    out = np.zeros(len(scenario.flows))
    for flow in sorted(scenario.flows, key=lambda f: f.flow_id):
        node = flow.src
        fwd = 0
        while node != flow.dst:
            port = fib.resolve_port(node, flow.dst, flow.flow_id)
            iface = topo.iface(node, port)
            fwd += iface.delay_ps + serialization_time_ps(
                MSS + HEADER_BYTES, iface.rate_bps
            )
            node = iface.peer_node
        node = flow.dst
        back = 0
        while node != flow.src:
            port = fib.resolve_port(node, flow.src, flow.flow_id)
            iface = topo.iface(node, port)
            back += iface.delay_ps + serialization_time_ps(64, iface.rate_bps)
            node = iface.peer_node
        out[flow.flow_id] = fwd + back
    return out
