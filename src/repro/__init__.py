"""repro — a Python reproduction of DONS (SIGCOMM 2023).

DONS is a packet-level discrete event network simulator rebuilt around
Data-Oriented Design: an ECS engine whose four systems (ACK, Send,
Forward, Transmit) process whole lookahead batches data-parallel, plus
an automatic time-cost-model partitioner for clusters.

Quickstart::

    from repro import (dumbbell, Flow, Transport, make_scenario,
                       run_dons, run_baseline)

    topo = dumbbell(4)
    flows = [Flow(i, i, 4 + i, 150_000, 0, Transport.DCTCP)
             for i in range(4)]
    scenario = make_scenario(topo, flows)
    results = run_dons(scenario)          # the DOD engine
    reference = run_baseline(scenario)    # the OOD baseline
    assert results.fcts_ps() == reference.fcts_ps()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .scenario import Scenario, make_scenario
from .scenario_io import scenario_from_json, scenario_to_json
from .topology import (
    Topology, abilene, dumbbell, fattree, fattree_counts, geant, isp_wan,
)
from .traffic import (
    Flow, Transport, fixed_flows, full_mesh_dynamic, incast, permutation,
)
from .des import (
    OodSimulator, ParallelOodSimulator, Partition, random_partition,
    run_baseline,
)
from .core import DodEngine, run_dons
from .cts import FluidSimulator, run_fluid
from .cluster import DonsManager
from .partition import ClusterSpec, dons_partition, plan_scenario
from .metrics import SimResults, TraceLevel, normalized_w1, wasserstein_1d

__version__ = "1.0.0"

__all__ = [
    "Scenario", "make_scenario",
    "scenario_from_json", "scenario_to_json",
    "Topology", "abilene", "dumbbell", "fattree", "fattree_counts",
    "geant", "isp_wan",
    "Flow", "Transport", "fixed_flows", "full_mesh_dynamic", "incast",
    "permutation",
    "OodSimulator", "ParallelOodSimulator", "Partition",
    "random_partition", "run_baseline",
    "DodEngine", "run_dons",
    "FluidSimulator", "run_fluid",
    "DonsManager",
    "ClusterSpec", "dons_partition", "plan_scenario",
    "SimResults", "TraceLevel", "normalized_w1", "wasserstein_1d",
    "__version__",
]
