"""ASCII tables for the benchmark harness.

Every bench regenerates a paper table or figure as text: the same rows
and series the paper reports, with a "paper" column beside the measured
or modeled value so shape agreement is visible at a glance.  Tables are
printed and also written under ``benchmarks/out/`` so they survive
pytest's output capture.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

_OUT_DIR_ENV = "REPRO_BENCH_OUT"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render a fixed-width table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==",
             " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             sep]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def out_dir() -> str:
    """Directory bench reports are written to."""
    path = os.environ.get(_OUT_DIR_ENV)
    if path is None:
        path = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
            "benchmarks", "out")
    os.makedirs(path, exist_ok=True)
    return path


def emit(name: str, text: str) -> str:
    """Print a report and persist it under benchmarks/out/<name>.txt."""
    print("\n" + text)
    path = os.path.join(out_dir(), f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path


def ratio_str(value: float) -> str:
    return f"{value:.1f}x"
