"""Scenario builders and scaling helpers shared by the benchmarks.

The paper's evaluation runs 1000 ms of simulated time on 100 Gbps
FatTrees up to 65k servers — billions of packet events.  The benches run
*scaled-down* packet simulations (smaller k, shorter horizon, capped
flow counts; every cap recorded in EXPERIMENTS.md) to measure the
quantities the models need (events per packet, cache miss rates, sync
statistics, load balance), then extrapolate event counts to paper scale
with the closed-form traffic arithmetic below.  Relative results are
preserved because every simulator family is extrapolated with the same
measured ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metrics import SimResults
from ..protocols.packet import HEADER_BYTES, MSS
from ..scenario import Scenario, make_scenario
from ..topology import abilene, dumbbell, fattree, fattree_counts, geant, isp_wan
from ..traffic import TINY, Flow, Transport, full_mesh_dynamic
from ..units import GBPS, ms, us

#: Evaluation defaults (paper §6: 100 Gbps everywhere, DCTCP, full mesh).
PAPER_RATE = 100 * GBPS
PAPER_LOAD = 0.3
PAPER_DURATION_S = 1.0
LOOKAHEAD_S = 1e-6  # 1 us link delay = batch length


def scaled_l3_config():
    """Cache geometry used when replaying scaled-down runs.

    The benches run workloads orders of magnitude lighter than the
    paper's (fewer flows, shorter horizon), so their working sets are
    proportionally smaller; measuring them against a full 32 MB server
    L3 would hide the capacity behaviour the paper observes at scale.
    Standard scaled-simulation methodology: shrink the cache with the
    workload.  8 MB preserves the paper's regime — the OOD working set
    spills, the DOD columns fit.
    """
    from ..machine import CacheConfig
    from ..units import MIB
    return CacheConfig(size_bytes=8 * MIB)


def measure_cmr(model) -> float:
    """Steady-state miss-rate percentage of a recorded access model."""
    return model.measure(scaled_l3_config(), warmup=0.5).miss_rate_percent


def run_dons_probed(scenario: Scenario, probe, trace_level=None,
                    workers: int = 1, backend=None) -> SimResults:
    """Run the DOD engine with a machine-model probe on the op stream.

    The probe subscribes to the engine's instrumentation bus (what the
    old ``op_hook`` constructor argument wired by hand); the run itself
    goes through the shared :class:`~repro.core.runner.EngineRunner`.
    ``backend`` selects the ECS table/system backend, as on
    :class:`~repro.core.engine.DodEngine`.
    """
    from ..core import DodEngine
    from ..metrics import TraceLevel
    eng = DodEngine(scenario, trace_level or TraceLevel.NONE, workers,
                    backend=backend)
    eng.bus.subscribe_ops(probe)
    return eng.run()


def dcn_scenario(
    k: int,
    duration_ms: float = 1.0,
    load: float = PAPER_LOAD,
    rate_bps: int = 10 * GBPS,
    max_flows: Optional[int] = 600,
    seed: int = 2023,
    sizes=TINY,
) -> Scenario:
    """Scaled-down FatTree(k) full-mesh dynamic workload."""
    topo = fattree(k, rate_bps=rate_bps, delay_ps=us(1))
    flows = full_mesh_dynamic(
        topo.hosts, duration_ps=ms(duration_ms), load=load,
        host_rate_bps=rate_bps, sizes=sizes, seed=seed, max_flows=max_flows,
    )
    return make_scenario(topo, flows, name=f"FatTree{k}-mesh")


def wan_scenario(
    which: str,
    duration_ms: float = 1.0,
    load: float = 0.3,
    max_flows: Optional[int] = 400,
    seed: int = 2023,
) -> Scenario:
    """Abilene / GEANT full-mesh dynamic workload (Fig. 11e/f)."""
    topo = abilene() if which == "abilene" else geant()
    flows = full_mesh_dynamic(
        topo.hosts, duration_ps=ms(duration_ms), load=load,
        host_rate_bps=10 * GBPS, sizes=TINY, seed=seed, max_flows=max_flows,
    )
    return make_scenario(topo, flows, name=which)


def isp_scenario(
    scale: str = "bench",
    duration_ms: float = 2.0,
    max_flows: Optional[int] = 800,
    seed: int = 7,
):
    """The irregular ISP WAN of Tables 2/3.

    ``scale='bench'`` builds a ~2k-router instance for executable runs;
    ``scale='paper'`` builds the full ~13k-router topology (planning
    only — Table 3 measures partitioner wall-clock on it).  Traffic is
    Zipf-skewed over the servers: the paper's ISP serves home broadband
    and private lines, whose load is famously concentrated — the skew is
    what separates traffic-aware from traffic-blind partitioning.
    """
    from ..traffic.generators import zipf_weights
    if scale == "paper":
        topo = isp_wan(backbone_routers=120, provinces=30,
                       provincial_routers=60, metros_per_province=12,
                       metro_routers=28, servers_per_metro=1, seed=seed)
    else:
        topo = isp_wan(seed=seed)
    hosts = topo.hosts
    flows = full_mesh_dynamic(
        hosts, duration_ps=ms(duration_ms), load=0.5,
        host_rate_bps=10 * GBPS, sizes=TINY, seed=seed, max_flows=max_flows,
        host_weights=zipf_weights(len(hosts), alpha=1.2),
    )
    return topo, flows


def steady_state_scenario(
    n_pairs: int = 8,
    flow_bytes: int = 3_000_000,
    edge_rate_bps: int = 24 * GBPS,
) -> Scenario:
    """Heartbeat-style fixed-rate UDP traffic: the fast-forward regime.

    One paced UDP flow per source host across an overprovisioned
    dumbbell — periodic telemetry/heartbeat streams, the workload class
    "Supercharging Packet-level Network Simulation" (PAPERS.md) shows is
    dominated by *repeated* windows.  A 24 Gbps NIC serializes a 1500 B
    frame in exactly 500 ns — an integer number of frames per lookahead
    window at the 1 us link delay — so once the pipeline fills, every
    window's execution signature repeats and the memo cache
    (:mod:`repro.core.memo`) fast-forwards the run; the 400 Gbps
    bottleneck keeps the run drop-free (a drop would perturb the
    signature stream).  ``tools/perf_smoke.py`` holds the standing
    ``ratio_ffwd_over_plain`` gate on this scenario.
    """
    topo = dumbbell(n_pairs, edge_rate_bps=edge_rate_bps,
                    bottleneck_rate_bps=400 * GBPS, delay_ps=us(1))
    flows = [Flow(i, i, n_pairs + i, flow_bytes, 0, Transport.UDP)
             for i in range(n_pairs)]
    return make_scenario(topo, flows, name=f"steady-udp-{n_pairs}")


# --- full-scale extrapolation ------------------------------------------------


def full_mesh_packets(hosts: int, rate_bps: int = PAPER_RATE,
                      load: float = PAPER_LOAD,
                      duration_s: float = PAPER_DURATION_S) -> int:
    """Data packets a full-mesh workload generates at paper scale."""
    bits = hosts * rate_bps * load * duration_s
    return int(bits / (8 * (MSS + HEADER_BYTES)))


@dataclass(frozen=True)
class EventRatios:
    """Per-data-packet event multipliers measured from a scaled run."""

    events_per_packet: float     # all-system events per data packet
    bytes_per_packet: float      # wire bytes per data packet (incl. ACKs)

    @classmethod
    def measure(cls, results: SimResults) -> "EventRatios":
        packets = max(results.events.send, 1)
        return cls(
            events_per_packet=results.events.total / packets,
            bytes_per_packet=results.tx_bytes / packets,
        )


def fattree_full_events(k: int, ratios: EventRatios,
                        load: float = PAPER_LOAD,
                        duration_s: float = PAPER_DURATION_S) -> int:
    """Extrapolated total event count of FatTree(k) at paper scale."""
    hosts = fattree_counts(k)["hosts"]
    # Hop counts grow ~ log-ish with k; events/packet measured at small k
    # already includes the forwarding chain of that k.  Correct for the
    # extra tier traversals: intra-pod paths dominate equally, so scale
    # the forwarding share by the mean-hop ratio.
    packets = full_mesh_packets(hosts, load=load, duration_s=duration_s)
    return int(packets * ratios.events_per_packet)


def windows_at_paper_scale(duration_s: float = PAPER_DURATION_S) -> int:
    """Lookahead windows in a paper-scale run (1 us batches)."""
    return int(duration_s / LOOKAHEAD_S)
