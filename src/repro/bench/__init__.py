"""Benchmark harness: scenario builders, scaling helpers, table output."""

from .tables import emit, format_table, out_dir, ratio_str
from .scenarios import (
    EventRatios, LOOKAHEAD_S, PAPER_DURATION_S, PAPER_LOAD, PAPER_RATE,
    dcn_scenario, fattree_full_events, full_mesh_packets, isp_scenario,
    measure_cmr, run_dons_probed, scaled_l3_config, wan_scenario,
    windows_at_paper_scale,
)
from .workloads import (
    storage_scenario, wan_twin_scenario, wan_twin_smoke,
)

__all__ = [
    "emit", "format_table", "out_dir", "ratio_str",
    "EventRatios", "LOOKAHEAD_S", "PAPER_DURATION_S", "PAPER_LOAD",
    "PAPER_RATE", "dcn_scenario", "fattree_full_events",
    "full_mesh_packets", "isp_scenario", "measure_cmr",
    "run_dons_probed", "scaled_l3_config", "storage_scenario",
    "wan_scenario", "wan_twin_scenario", "wan_twin_smoke",
    "windows_at_paper_scale",
]
