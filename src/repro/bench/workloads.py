"""Production workload library: digital-twin scenarios built on the
columnar arrival engine.

Two workload families turn the simulator from a microbenchmark harness
into something you would point at a capacity-planning question:

* **DiffServ WAN twin** — an Abilene/GEANT backbone carrying three
  DSCP classes (EF voice-like periodic UDP, AF transactional TCP, BE
  bulk TCP) under strict-priority or DRR service.  Traffic is an
  aggregate of on-off (or Poisson/empirical) arrival processes with
  Zipf-popular metro endpoints — the classic "few big metros dominate"
  WAN matrix.

* **HDFS-like storage twin** — a leaf-spine cluster where clients
  write fixed-size blocks through a pipelined replica chain
  (writer -> r1 -> r2 -> r3, each hop staggered by the pipeline
  forwarding delay), while every datanode heartbeats a namenode on a
  phase-staggered period and periodically uploads a block report.
  Control traffic rides class 0, bulk block transfers class 1.

Both builders synthesize :class:`~repro.traffic.FlowColumns` directly —
no per-flow ``Flow`` objects are materialized, so the 100k-flow smoke
scenario (:func:`wan_twin_smoke`) builds in milliseconds and holds at
most one batch of facade objects alive at a time.

All sizes/periods are scaled down from production values (blocks are
256 KiB, not 128 MiB; heartbeats every 200 us, not 3 s) so scenarios
finish in simulated microseconds while keeping the *shape* — pipelined
chains, skewed matrices, class mixes — intact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..rng import substream
from ..scenario import Scenario, make_scenario
from ..schedulers import SchedulerKind
from ..topology import abilene, geant, leaf_spine
from ..traffic import Transport
from ..traffic.arrivals import (
    DEFAULT_BATCH, ArrivalProcess, FlowColumns, synthesize,
)
from ..traffic.distributions import DISTRIBUTIONS
from ..units import GBPS, PS_PER_S, ms, us

__all__ = [
    "WAN_CLASS_TABLE", "storage_flow_columns", "storage_scenario",
    "wan_twin_flow_columns", "wan_twin_processes", "wan_twin_scenario",
    "wan_twin_smoke",
]

#: Substream keys for the storage workload's extra randomness (replica
#: placement beyond the primary, which the arrival engine already drew).
_KEY_REPLICAS = 0xB1

#: DSCP class table for the WAN twin, highest priority first.  Each row:
#: (label, transport, size_dist ('' -> fixed size_bytes), size_bytes,
#: share of offered load).  EF is small periodic UDP (voice/telemetry),
#: AF is transactional TCP, BE is bulk TCP.
WAN_CLASS_TABLE: Tuple[Tuple[str, Transport, str, int, float], ...] = (
    ("EF", Transport.UDP, "", 512, 0.10),
    ("AF", Transport.DCTCP, "tiny", 0, 0.30),
    ("BE", Transport.DCTCP, "fb-cache", 0, 0.60),
)


def _pick_classes(
    classes: int,
    table: Tuple[Tuple[str, Transport, str, int, float], ...],
) -> Tuple[Tuple[str, Transport, str, int, float], ...]:
    """The class rows for an n-class twin, renormalized to sum to 1.

    3 -> EF/AF/BE, 2 -> EF/BE, 1 -> BE only (pure best-effort), keeping
    class index 0 the highest priority row in every case.
    """
    if not 1 <= classes <= len(table):
        raise ConfigError(
            f"wan twin supports 1..{len(table)} classes, got {classes}")
    if classes == 1:
        rows = (table[-1],)
    elif classes == 2:
        rows = (table[0], table[-1])
    else:
        rows = table[:classes]
    total = sum(r[4] for r in rows)
    return tuple((n, t, d, s, share / total) for (n, t, d, s, share) in rows)


def _mean_size_bytes(size_dist: str, size_bytes: int) -> float:
    if size_dist:
        return DISTRIBUTIONS[size_dist].mean()
    return float(size_bytes)


def wan_twin_processes(
    hosts: Sequence[int],
    *,
    horizon_ps: int,
    classes: int = 3,
    load: float = 0.3,
    host_rate_bps: int = 10 * GBPS,
    arrival: str = "onoff",
    n_flows: Optional[int] = None,
    src_alpha: float = 1.1,
    dst_alpha: float = 0.8,
    table: Optional[Tuple[Tuple[str, Transport, str, int, float], ...]] = None,
) -> List[ArrivalProcess]:
    """One arrival process per DSCP class over a WAN host set.

    ``load`` is the aggregate offered load as a fraction of the summed
    access capacity; each class receives its table share of it.  The EF
    class is always periodic (it models paced voice/telemetry); AF/BE
    use ``arrival`` ('onoff', 'poisson', or 'empirical').  When
    ``n_flows`` is given, the budget is split by class share and each
    process capped with ``max_flows`` (rates are inflated 2x so caps
    are actually reached inside the horizon).
    """
    if arrival not in ("onoff", "poisson", "empirical"):
        raise ConfigError(
            f"wan twin arrival must be onoff/poisson/empirical, "
            f"got {arrival!r}")
    hosts = tuple(hosts)
    if len(hosts) < 2:
        raise ConfigError("wan twin needs at least two hosts")
    rows = _pick_classes(classes, table or WAN_CLASS_TABLE)
    horizon_s = horizon_ps / PS_PER_S
    agg_bps = load * host_rate_bps * len(hosts)
    procs: List[ArrivalProcess] = []
    for cls_idx, (label, transport, size_dist, size_bytes, share) in \
            enumerate(rows):
        mean_bits = 8.0 * _mean_size_bytes(size_dist, size_bytes)
        rate = share * agg_bps / mean_bits
        cap = None
        if n_flows is not None:
            cap = max(1, round(share * n_flows))
            # Inflate the rate so the cap binds well inside the horizon;
            # max_flows then makes the flow count exact.
            rate = max(rate, 2.0 * cap / horizon_s)
        mix = tuple(1.0 if i == cls_idx else 0.0 for i in range(classes))
        common = dict(
            src_hosts=hosts, dst_hosts=hosts, horizon_ps=horizon_ps,
            src_alpha=src_alpha, dst_alpha=dst_alpha,
            size_bytes=size_bytes or 1, size_dist=size_dist,
            transport=transport, priority_mix=mix, max_flows=cap,
            label=f"wan-{label.lower()}",
        )
        if cls_idx == 0 and classes > 1:
            # EF: paced periodic stream.
            n_ef = cap if cap is not None else max(
                1, round(rate * horizon_s))
            period = max(1, horizon_ps // max(1, n_ef))
            procs.append(ArrivalProcess(
                kind="periodic", period_ps=period, **common))
        elif arrival == "onoff":
            on = max(1, horizon_ps // 8)
            off = max(1, horizon_ps // 8)
            # Double the in-burst rate so the duty cycle preserves the
            # long-run average.
            procs.append(ArrivalProcess(
                kind="onoff", rate_per_s=2.0 * rate, on_ps=on, off_ps=off,
                **common))
        elif arrival == "empirical":
            procs.append(ArrivalProcess(
                kind="empirical", inter_cdf="wan-bursty", **common))
        else:
            procs.append(ArrivalProcess(
                kind="poisson", rate_per_s=rate, **common))
    return procs


def wan_twin_flow_columns(
    hosts: Sequence[int],
    seed: int,
    *,
    horizon_ps: int,
    n_flows: int,
    classes: int = 3,
    load: float = 0.3,
    arrival: str = "onoff",
    host_rate_bps: int = 10 * GBPS,
    batch_size: int = DEFAULT_BATCH,
    table: Optional[Tuple[Tuple[str, Transport, str, int, float], ...]] = None,
) -> FlowColumns:
    """Synthesized WAN-twin traffic with an exact total flow budget."""
    procs = wan_twin_processes(
        hosts, horizon_ps=horizon_ps, classes=classes, load=load,
        host_rate_bps=host_rate_bps, arrival=arrival, n_flows=n_flows,
        table=table)
    return synthesize(procs, seed, batch_size=batch_size)


def wan_twin_scenario(
    which: str = "abilene",
    *,
    classes: int = 3,
    duration_ms: float = 0.5,
    load: float = 0.3,
    seed: int = 2023,
    scheduler: str = "sp",
    arrival: str = "onoff",
    max_flows: int = 2000,
    batch_size: int = DEFAULT_BATCH,
) -> Scenario:
    """DiffServ WAN digital twin on a real backbone topology.

    ``which`` selects the backbone ('abilene' or 'geant');
    ``scheduler`` the per-port service discipline ('sp' strict
    priority or 'drr' deficit round robin across ``classes`` queues).
    """
    builders = {"abilene": abilene, "geant": geant}
    if which not in builders:
        raise ConfigError(
            f"wan twin topology must be one of {sorted(builders)}, "
            f"got {which!r}")
    kinds = {"sp": SchedulerKind.SP, "drr": SchedulerKind.DRR}
    if scheduler not in kinds:
        raise ConfigError(
            f"wan twin scheduler must be 'sp' or 'drr', got {scheduler!r}")
    topo = builders[which]()
    horizon = ms(duration_ms)
    flows = wan_twin_flow_columns(
        topo.hosts, seed, horizon_ps=horizon, n_flows=max_flows,
        classes=classes, load=load, arrival=arrival,
        batch_size=batch_size)
    return make_scenario(
        topo, flows, name=f"wan-twin-{which}-{scheduler}{classes}",
        scheduler=kinds[scheduler], num_classes=classes,
        duration_ps=horizon)


def wan_twin_smoke(
    n_flows: int = 100_000,
    *,
    duration_us: float = 60.0,
    seed: int = 2023,
    batch_size: int = DEFAULT_BATCH,
) -> Scenario:
    """WAN-twin perf-smoke scenario: >= ``n_flows`` synthesized flows.

    Two UDP classes (paced EF + bursty BE) on Abilene under strict
    priority.  All 100k flows are synthesized columnar — peak live
    ``Flow`` count stays bounded by ``batch_size`` — while the
    simulated duration cut keeps the executed event count tractable
    for a smoke gate.
    """
    topo = abilene()
    hosts = topo.hosts
    horizon = ms(1.0)
    horizon_s = horizon / PS_PER_S
    ef_cap = max(1, n_flows // 5)
    be_cap = n_flows - ef_cap
    procs = [
        ArrivalProcess(
            kind="periodic", src_hosts=hosts, dst_hosts=hosts,
            horizon_ps=horizon, period_ps=max(1, horizon // ef_cap),
            size_bytes=512, transport=Transport.UDP,
            priority_mix=(1.0, 0.0), max_flows=ef_cap,
            src_alpha=1.1, dst_alpha=0.8, label="smoke-ef"),
        ArrivalProcess(
            kind="onoff", src_hosts=hosts, dst_hosts=hosts,
            horizon_ps=horizon, rate_per_s=6.0 * be_cap / horizon_s,
            on_ps=horizon // 8, off_ps=horizon // 8,
            size_bytes=1200, transport=Transport.UDP,
            priority_mix=(0.0, 1.0), max_flows=be_cap,
            src_alpha=1.1, dst_alpha=0.8, label="smoke-be"),
    ]
    flows = synthesize(procs, seed, batch_size=batch_size)
    return make_scenario(
        topo, flows, name="wan-twin-smoke", scheduler=SchedulerKind.SP,
        num_classes=2, duration_ps=us(duration_us))


# --- HDFS-like storage twin -------------------------------------------------

def _draw_distinct(rng_u: np.ndarray, pool: np.ndarray,
                   taken: List[np.ndarray]) -> np.ndarray:
    """Vectorized draw of one node per row from ``pool``, distinct from
    every row of ``taken`` (cyclic advance on collision — the same
    deterministic resolution the arrival engine uses for src==dst)."""
    m = len(pool)
    idx = np.minimum((rng_u * m).astype(np.int64), m - 1)
    chosen = pool[idx]
    for _ in range(m):
        clash = np.zeros(len(idx), dtype=bool)
        for prev in taken:
            clash |= (chosen == prev)
        if not clash.any():
            break
        idx = np.where(clash, (idx + 1) % m, idx)
        chosen = pool[idx]
    return chosen


def storage_flow_columns(
    hosts: Sequence[int],
    seed: int,
    *,
    horizon_ps: int,
    blocks: int = 64,
    block_bytes: int = 256 * 1024,
    arrival: str = "poisson",
    pipeline_delay_ps: int = us(5),
    heartbeat_period_ps: int = us(200),
    report_period_ps: int = us(1000),
    report_bytes: int = 16 * 1024,
    batch_size: int = DEFAULT_BATCH,
) -> FlowColumns:
    """HDFS-like storage traffic over ``hosts`` (hosts[0] = namenode).

    Block writes arrive per ``arrival`` (poisson/onoff/periodic) at the
    datanodes; each becomes a pipelined replica chain writer -> r1 ->
    ... -> r_k (k = min(3, datanodes - 1)), every hop offset by
    ``pipeline_delay_ps``.  Heartbeats (small UDP, phase-staggered) and
    block reports flow datanode -> namenode.  Control is class 0,
    block transfers class 1.
    """
    hosts = tuple(hosts)
    if len(hosts) < 3:
        raise ConfigError(
            "storage workload needs a namenode and >= 2 datanodes "
            f"(got {len(hosts)} hosts)")
    if blocks < 1:
        raise ConfigError(f"storage workload needs blocks >= 1, got {blocks}")
    namenode, dns = hosts[0], hosts[1:]
    replicas = min(3, len(dns) - 1)
    horizon_s = horizon_ps / PS_PER_S

    # 1. Primary writes (writer -> r1) come straight from the arrival
    #    engine; src/dst collision avoidance is already built in.
    write_kw = dict(
        src_hosts=dns, dst_hosts=dns, horizon_ps=horizon_ps,
        size_bytes=block_bytes, transport=Transport.DCTCP,
        priority_mix=(0.0, 1.0), max_flows=blocks, src_alpha=0.9,
        label="block-write")
    if arrival == "poisson":
        write_proc = ArrivalProcess(
            kind="poisson", rate_per_s=2.0 * blocks / horizon_s, **write_kw)
    elif arrival == "onoff":
        write_proc = ArrivalProcess(
            kind="onoff", rate_per_s=4.0 * blocks / horizon_s,
            on_ps=max(1, horizon_ps // 8), off_ps=max(1, horizon_ps // 8),
            **write_kw)
    elif arrival == "periodic":
        write_proc = ArrivalProcess(
            kind="periodic", period_ps=max(1, horizon_ps // blocks),
            **write_kw)
    else:
        raise ConfigError(
            f"storage arrival must be poisson/onoff/periodic, "
            f"got {arrival!r}")
    base = synthesize([write_proc], seed, batch_size=batch_size).columns()
    n = len(base["src"])

    # 2. Extend each chain with replicas 2..k, drawn from a dedicated
    #    substream, distinct from every earlier chain member.
    pool = np.fromiter(dns, dtype=np.int64)
    chain = [base["src"].copy(), base["dst"].copy()]
    if replicas > 1:
        u = substream(seed, _KEY_REPLICAS).random((n, replicas - 1))
        for j in range(replicas - 1):
            chain.append(_draw_distinct(u[:, j], pool, chain))

    # 3. Lay the chain out as stage flows: stage k starts at
    #    t + k * pipeline_delay_ps (the upstream hop must be underway
    #    before the downstream replica starts receiving).
    parts: List[Dict[str, np.ndarray]] = []
    for k in range(replicas):
        parts.append({
            "src": chain[k], "dst": chain[k + 1],
            "size_bytes": base["size_bytes"],
            "start_ps": base["start_ps"] + k * pipeline_delay_ps,
            "transport": np.full(n, int(Transport.DCTCP), dtype=np.int64),
            "priority": np.ones(n, dtype=np.int64),
        })

    # 4. Control plane: phase-staggered heartbeats + block reports.
    control: List[ArrivalProcess] = []
    for i, dn in enumerate(dns):
        stagger = (i * heartbeat_period_ps) // len(dns)
        control.append(ArrivalProcess(
            kind="periodic", src_hosts=(dn,), dst_hosts=(namenode,),
            horizon_ps=horizon_ps, period_ps=heartbeat_period_ps,
            start_ps=stagger, size_bytes=256, transport=Transport.UDP,
            priority_mix=(1.0, 0.0), label="heartbeat"))
        if report_period_ps < horizon_ps:
            control.append(ArrivalProcess(
                kind="periodic", src_hosts=(dn,), dst_hosts=(namenode,),
                horizon_ps=horizon_ps, period_ps=report_period_ps,
                start_ps=(i * report_period_ps) // len(dns),
                size_bytes=report_bytes, transport=Transport.DCTCP,
                priority_mix=(1.0, 0.0), label="block-report"))
    parts.append(synthesize(control, seed, batch_size=batch_size).columns())

    # 5. Deterministic merge: (start, part index, row-within-part) — the
    #    same total order the arrival engine itself uses.
    keys = ("src", "dst", "size_bytes", "start_ps", "transport", "priority")
    merged = {k: np.concatenate([p[k] for p in parts]) for k in keys}
    part_idx = np.concatenate(
        [np.full(len(p["src"]), i, dtype=np.int64)
         for i, p in enumerate(parts)])
    seq = np.concatenate(
        [np.arange(len(p["src"]), dtype=np.int64) for p in parts])
    order = np.lexsort((seq, part_idx, merged["start_ps"]))
    return FlowColumns(
        src=merged["src"][order], dst=merged["dst"][order],
        size_bytes=merged["size_bytes"][order],
        start_ps=merged["start_ps"][order],
        transport=merged["transport"][order],
        priority=merged["priority"][order], batch_size=batch_size)


def storage_scenario(
    datanodes: int = 8,
    *,
    duration_ms: float = 0.5,
    blocks: int = 64,
    seed: int = 2023,
    arrival: str = "poisson",
    block_bytes: int = 256 * 1024,
    batch_size: int = DEFAULT_BATCH,
) -> Scenario:
    """HDFS-like storage digital twin on a leaf-spine fabric.

    ``datanodes`` datanodes plus one namenode, spread over a 2-leaf /
    2-spine fabric; strict priority keeps heartbeats (class 0) ahead of
    block transfers (class 1).
    """
    if datanodes < 2:
        raise ConfigError(
            f"storage scenario needs >= 2 datanodes, got {datanodes}")
    per_leaf = (datanodes + 2) // 2  # namenode + datanodes, 2 leaves
    topo = leaf_spine(2, 2, per_leaf, host_rate_bps=10 * GBPS)
    horizon = ms(duration_ms)
    flows = storage_flow_columns(
        topo.hosts[:datanodes + 1], seed, horizon_ps=horizon,
        blocks=blocks, block_bytes=block_bytes, arrival=arrival,
        batch_size=batch_size)
    return make_scenario(
        topo, flows, name=f"storage-{datanodes}dn",
        scheduler=SchedulerKind.SP, num_classes=2, duration_ps=horizon)
