"""Physical units and exact time arithmetic shared by every engine.

All simulation clocks in this repository are integer **picoseconds**.  The
paper's fidelity claim is that the DOD engine reproduces the OOD baseline
*timestamp for timestamp*; integer arithmetic makes that claim checkable
byte-for-byte, with no floating-point drift between two engines that
compute the same quantity in a different order.

At picosecond resolution every realistic link rate divides the clock
exactly: one bit at 100 Gbps lasts 10 ps, at 40 Gbps 25 ps, at 10 Gbps
100 ps, at 1 Gbps 1000 ps.  Serialization times for whole packets are
therefore exact integers for all rates used in the paper's evaluation.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ns(value: float) -> int:
    """Nanoseconds -> integer picoseconds."""
    return round(value * PS_PER_NS)


def us(value: float) -> int:
    """Microseconds -> integer picoseconds."""
    return round(value * PS_PER_US)


def ms(value: float) -> int:
    """Milliseconds -> integer picoseconds."""
    return round(value * PS_PER_MS)


def seconds(value: float) -> int:
    """Seconds -> integer picoseconds."""
    return round(value * PS_PER_S)


def ps_to_s(value_ps: int) -> float:
    """Integer picoseconds -> float seconds (for reporting only)."""
    return value_ps / PS_PER_S


def ps_to_us(value_ps: int) -> float:
    """Integer picoseconds -> float microseconds (for reporting only)."""
    return value_ps / PS_PER_US


# --- rates ----------------------------------------------------------------

KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000


def serialization_time_ps(size_bytes: int, rate_bps: int) -> int:
    """Exact wire time of ``size_bytes`` at ``rate_bps``.

    Both engines must call this single function so that transmission
    timestamps agree bit for bit.  The division is exact for every rate
    that divides 10^12 (all rates used in the evaluation); for exotic
    rates we round half-down deterministically via floor division.
    """
    return (size_bytes * 8 * PS_PER_S) // rate_bps


# --- sizes ----------------------------------------------------------------

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: Default maximum transmission unit used throughout the evaluation.
DEFAULT_MTU = 1_500
#: Header bytes charged to every packet (Ethernet + IP + TCP, rounded).
HEADER_BYTES = 60
#: Size of a pure ACK packet on the wire.
ACK_BYTES = 64
