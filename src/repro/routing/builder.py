"""FIB construction via per-destination BFS (Appendix C of the paper).

The paper's Simulation Builder computes routes for each destination with
BFS — O(#host x (#node + #link)) — and installs forwarding tables, both
parallelized over worker threads.  :func:`build_fib` reproduces that,
including the optional thread pool (which in CPython mostly documents
structure rather than buying wall-clock, as recorded in DESIGN.md).

Routing is hop-count shortest path with all ties kept (the ECMP set).
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from .fib import Fib
from ..topology import Topology


def _bfs_distances(topo: Topology, source: int) -> List[int]:
    """Hop distance of every node from ``source`` (-1 if unreachable)."""
    dist = [-1] * topo.num_nodes
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, _link in topo.neighbors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def _routes_for_dest(topo: Topology, dest: int) -> List[Tuple[int, Tuple[int, ...]]]:
    """For one destination host: (node, ecmp ports) for every other node."""
    dist = _bfs_distances(topo, dest)
    entries: List[Tuple[int, Tuple[int, ...]]] = []
    for node in range(topo.num_nodes):
        if node == dest or dist[node] < 0:
            continue
        ports = [
            link.port_a if link.node_a == node else link.port_b
            for v, link in topo.neighbors(node)
            if dist[v] == dist[node] - 1
        ]
        if ports:
            entries.append((node, tuple(sorted(ports))))
    return entries


def build_fib(
    topo: Topology,
    dests: Optional[List[int]] = None,
    workers: int = 1,
) -> Fib:
    """Build the FIB for all (or the given) destination hosts.

    Args:
        topo: A frozen topology.
        dests: Destination host ids; defaults to every host.
        workers: Size of the builder thread pool (paper Appendix C).

    Returns:
        A fully populated :class:`Fib`.
    """
    if dests is None:
        dests = topo.hosts
    fib = Fib(topo)

    def install_all(dest: int) -> None:
        for node, ports in _routes_for_dest(topo, dest):
            fib.install(node, dest, ports)

    if workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(install_all, dests))
    else:
        for dest in dests:
            install_all(dest)
    return fib
