"""Forwarding Information Base shared by every engine.

The FIB maps ``(node, destination host) -> tuple of candidate egress
ports`` (all ports on hop-count-shortest paths, sorted).  ECMP selection
among the candidates is a pure hash of flow identifiers, so the OOD
baseline, the DOD engine, the distributed runtime and the flow-level load
estimator all route a given flow over exactly the same path — a
precondition for the trace-equality fidelity results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import RoutingError
from ..rng import ecmp_hash
from ..topology import Topology


class Fib:
    """Per-node forwarding tables over a frozen topology."""

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        # tables[node][dest_host] -> tuple of egress port indices.
        self.tables: List[Dict[int, Tuple[int, ...]]] = [
            {} for _ in range(topo.num_nodes)
        ]

    def install(self, node: int, dest: int, ports: Sequence[int]) -> None:
        """Install the ECMP port set for ``dest`` at ``node``."""
        if not ports:
            raise RoutingError(f"empty port set for dest {dest} at node {node}")
        self.tables[node][dest] = tuple(sorted(ports))

    def ports(self, node: int, dest: int) -> Tuple[int, ...]:
        """All candidate egress ports at ``node`` toward ``dest``."""
        try:
            return self.tables[node][dest]
        except KeyError:
            raise RoutingError(f"node {node} has no route to host {dest}") from None

    def resolve_port(self, node: int, dest: int, flow_id: int,
                     salt: Optional[int] = None) -> int:
        """Deterministic ECMP choice at one node.

        Hashing includes the node id so different switches spread the same
        flow set differently (per-hop ECMP, as in real data centers); the
        *same* flow always takes the same port at the same switch.

        ``salt`` enables packet spraying: passing the segment number makes
        every packet hash independently (per-packet ECMP), trading
        in-order delivery for near-perfect load balance.
        """
        ports = self.ports(node, dest)
        if len(ports) == 1:
            return ports[0]
        if salt is None:
            return ports[ecmp_hash(flow_id, dest, node) % len(ports)]
        return ports[ecmp_hash(flow_id, dest, node, salt) % len(ports)]

    def path(self, src_host: int, dest_host: int, flow_id: int) -> List[int]:
        """The node path a flow takes, resolving ECMP at every hop.

        Used by the load estimator and by tests; engines never need whole
        paths, they forward hop by hop with :meth:`resolve_port`.
        """
        if src_host == dest_host:
            raise RoutingError("src and dest host are the same")
        path = [src_host]
        node = src_host
        hops = 0
        limit = self.topo.num_nodes + 1
        while node != dest_host:
            port = self.resolve_port(node, dest_host, flow_id)
            node = self.topo.iface(node, port).peer_node
            path.append(node)
            hops += 1
            if hops > limit:
                raise RoutingError(
                    f"routing loop from {src_host} to {dest_host}"
                )
        return path

    def entry_count(self) -> int:
        """Total number of installed (node, dest) entries (memory model input)."""
        return sum(len(t) for t in self.tables)
