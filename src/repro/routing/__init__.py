"""Routing: FIB model and the BFS route builder."""

from .fib import Fib
from .builder import build_fib

__all__ = ["Fib", "build_fib"]
