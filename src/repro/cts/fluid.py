"""Flow-level continuous-time simulator (the CTS family of §2.1).

The paper's taxonomy has three simulator families: DES (packet-level),
CTS (flow-level continuous time) and APA (learned approximators).  This
module implements the classic CTS representative: a fluid simulator with
**max-min fair** bandwidth sharing.

State evolves between *rate events* (flow arrival or completion): at
each event the simulator recomputes the max-min fair allocation over the
active flows via progressive filling, then integrates every flow's
remaining bytes linearly until the next event.  No packets exist, so a
1 ms data-center run costs microseconds — and, as §2.1/§7 note, the
price is abstraction: no queueing dynamics, no RTT transients, no drops,
no slow start.  The CTS-vs-DES comparison bench quantifies exactly that
gap on this repository's own workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SimulationError
from ..metrics import SimResults
from ..metrics.results import FlowResult
from ..routing import Fib
from ..scenario import Scenario
from ..topology import Topology
from ..traffic import Flow
from ..units import PS_PER_S


@dataclass
class _ActiveFlow:
    flow: Flow
    links: Tuple[int, ...]          # link ids on its path
    remaining_bits: float
    rate_bps: float = 0.0


def _flow_links(topo: Topology, fib: Fib, flow: Flow) -> Tuple[int, ...]:
    links: List[int] = []
    node = flow.src
    guard = 0
    while node != flow.dst:
        port = fib.resolve_port(node, flow.dst, flow.flow_id)
        iface = topo.iface(node, port)
        links.append(iface.link_id)
        node = iface.peer_node
        guard += 1
        if guard > topo.num_nodes:
            raise SimulationError("routing loop in fluid model")
    return tuple(links)


def max_min_rates(
    flows: Sequence[_ActiveFlow],
    capacity_bps: Dict[int, float],
) -> None:
    """Progressive filling: assign each flow its max-min fair rate.

    Classic algorithm: repeatedly find the most constrained link
    (capacity / unfrozen flows crossing it), freeze its flows at that
    fair share, subtract, repeat.  Mutates ``rate_bps`` in place.
    """
    remaining = {lid: cap for lid, cap in capacity_bps.items()}
    unfrozen: Set[int] = set(range(len(flows)))
    link_users: Dict[int, Set[int]] = {}
    for i, af in enumerate(flows):
        for lid in af.links:
            link_users.setdefault(lid, set()).add(i)

    while unfrozen:
        # fair share of each link over its unfrozen users
        best_share = None
        best_link = None
        for lid, users in link_users.items():
            active = users & unfrozen
            if not active:
                continue
            share = remaining[lid] / len(active)
            if best_share is None or share < best_share:
                best_share = share
                best_link = lid
        if best_link is None:
            # flows with no capacity-constrained links (shouldn't happen
            # with finite link rates) get unconstrained rate 0 guard
            for i in unfrozen:
                flows[i].rate_bps = 0.0
            break
        saturated = link_users[best_link] & unfrozen
        for i in saturated:
            flows[i].rate_bps = best_share
            for lid in flows[i].links:
                remaining[lid] -= best_share
            unfrozen.discard(i)
    # numeric guard
    for af in flows:
        af.rate_bps = max(af.rate_bps, 0.0)


class FluidSimulator:
    """Event-driven fluid simulation of one scenario."""

    name = "cts-fluid"

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.results = SimResults(self.name, scenario.name, 0)
        #: rate recomputations performed (the CTS cost metric)
        self.rate_events = 0

    def run(self) -> SimResults:
        sc = self.scenario
        topo = sc.topology
        capacity = {l.link_id: float(l.rate_bps) for l in topo.links}
        arrivals = sorted(sc.flows, key=lambda f: (f.start_ps, f.flow_id))
        for flow in arrivals:
            self.results.flows[flow.flow_id] = FlowResult(
                flow.flow_id, flow.start_ps, None, flow.size_bytes)
        active: List[_ActiveFlow] = []
        idx = 0
        now_ps = arrivals[0].start_ps if arrivals else 0

        while idx < len(arrivals) or active:
            # Admit everything starting now.
            while idx < len(arrivals) and arrivals[idx].start_ps <= now_ps:
                flow = arrivals[idx]
                active.append(_ActiveFlow(
                    flow, _flow_links(topo, sc.fib, flow),
                    remaining_bits=flow.size_bytes * 8.0,
                ))
                idx += 1
            if not active:
                now_ps = arrivals[idx].start_ps
                continue

            max_min_rates(active, capacity)
            self.rate_events += 1

            # Next event: earliest completion or next arrival.
            next_arrival = (arrivals[idx].start_ps
                            if idx < len(arrivals) else None)
            finish_ps: Optional[int] = None
            for af in active:
                if af.rate_bps <= 0:
                    continue
                t = now_ps + int(af.remaining_bits / af.rate_bps * PS_PER_S)
                if finish_ps is None or t < finish_ps:
                    finish_ps = max(t, now_ps + 1)
            if finish_ps is None and next_arrival is None:
                raise SimulationError("fluid model stalled (zero rates)")
            if finish_ps is None:
                horizon = next_arrival
            elif next_arrival is None:
                horizon = finish_ps
            else:
                horizon = min(finish_ps, next_arrival)

            # Integrate to the horizon.
            dt_s = (horizon - now_ps) / PS_PER_S
            still: List[_ActiveFlow] = []
            for af in active:
                af.remaining_bits -= af.rate_bps * dt_s
                if af.remaining_bits <= 1e-6:
                    self.results.flows[af.flow.flow_id].complete_ps = horizon
                else:
                    still.append(af)
            active = still
            now_ps = horizon
            if sc.duration_ps is not None and now_ps > sc.duration_ps:
                break

        self.results.end_time_ps = now_ps
        return self.results


def run_fluid(scenario: Scenario) -> SimResults:
    """Convenience one-shot fluid run."""
    return FluidSimulator(scenario).run()
