"""Continuous-time (fluid) simulation: the CTS family of §2.1."""

from .fluid import FluidSimulator, max_min_rates, run_fluid

__all__ = ["FluidSimulator", "max_min_rates", "run_fluid"]
