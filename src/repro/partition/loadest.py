"""Load Estimator: the O(n) flow-level model of §4.1.

"Flows are added into the network in the same order and time as in the
simulation [and] routed using the same approach.  When a new flow is
added, we add the bandwidth of that flow to the load value of the
devices and links along its path. ... We ignore fairness or interaction
between flows, and the bandwidth on a link can exceed the link
capacity."

Loads here are byte counts (flow size added along the path), which is
proportional to the number of packet events each device will simulate —
the quantity Eq. (1) needs.  Routing uses the very same FIB + ECMP hash
as the packet engines, so estimated and simulated paths coincide.

:func:`time_binned_loads` produces the per-period load vectors of
Appendix A (dynamic repartitioning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..routing import Fib
from ..scenario import Scenario
from ..topology import Topology
from ..traffic import Flow


@dataclass
class LoadModel:
    """Per-device and per-link load estimates (bytes traversing)."""

    node_load: np.ndarray  # float64[num_nodes]
    link_load: np.ndarray  # float64[num_links]

    def total(self) -> float:
        return float(self.node_load.sum())


def estimate_loads(
    topo: Topology,
    fib: Fib,
    flows: Sequence[Flow],
) -> LoadModel:
    """Route every flow at flow level and accumulate path loads.

    Complexity O(sum of path lengths) = O(n) per flow, per the paper.
    """
    node_load = np.zeros(topo.num_nodes, dtype=np.float64)
    link_load = np.zeros(topo.num_links, dtype=np.float64)
    for flow in flows:
        mass = float(flow.size_bytes)
        node = flow.src
        node_load[node] += mass
        hops = 0
        limit = topo.num_nodes + 1
        while node != flow.dst:
            port = fib.resolve_port(node, flow.dst, flow.flow_id)
            iface = topo.iface(node, port)
            link_load[iface.link_id] += mass
            node = iface.peer_node
            node_load[node] += mass
            hops += 1
            if hops > limit:
                raise RuntimeError("routing loop during load estimation")
    return LoadModel(node_load, link_load)


def estimate_scenario_loads(scenario: Scenario) -> LoadModel:
    return estimate_loads(scenario.topology, scenario.fib, scenario.flows)


def time_binned_loads(
    topo: Topology,
    fib: Fib,
    flows: Sequence[Flow],
    bin_ps: int,
    num_bins: Optional[int] = None,
) -> List[LoadModel]:
    """Appendix A: one load vector per time period.

    A flow's mass lands in the bin of its start time (the paper records
    "the average load of all network devices over a certain period").
    """
    if bin_ps <= 0:
        raise ValueError("bin size must be positive")
    if num_bins is None:
        horizon = max((f.start_ps for f in flows), default=0)
        num_bins = horizon // bin_ps + 1
    bins: List[List[Flow]] = [[] for _ in range(num_bins)]
    for flow in flows:
        idx = min(flow.start_ps // bin_ps, num_bins - 1)
        bins[idx].append(flow)
    return [estimate_loads(topo, fib, fs) for fs in bins]
