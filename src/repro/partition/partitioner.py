"""DONS Partitioner: the recursive heuristic of Algorithm 1 (Appendix B).

    partitioner(network):
        subnet1, subnet2 = MBC(network, k=2)
        if num_subnet + 1 > num_machines: return
        if max(tc(subnet1), tc(subnet2)) < tc(network):
            num_subnet += 1
            partitioner(subnet1); partitioner(subnet2)

Each recursion bisects the currently-worst sub-graph with the weighted
MBC primitive and accepts the split only if the time-cost model says it
helps; recursion stops when the cluster is fully used or further cuts
stop paying (the two termination conditions of §4.1).  Finished subnets
are assigned heaviest-load-to-fastest-machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from .loadest import LoadModel, estimate_scenario_loads
from .mbc import mbc_bisect
from .timecost import ClusterSpec, completion_time, subnet_time
from ..des.partition_types import Partition
from ..errors import PartitionError
from ..scenario import Scenario
from ..topology import Topology


@dataclass
class PartitionPlan:
    """Result of planning: the partition plus planning diagnostics."""

    partition: Partition
    estimated_time_s: float
    planning_time_s: float
    bisections: int
    rejected_bisections: int
    method: str = "dons-partitioner"


def _external_links(topo: Topology, nodes: Set[int]) -> List[int]:
    return [
        link.link_id for link in topo.links
        if (link.node_a in nodes) != (link.node_b in nodes)
    ]


def _subnet_tc(topo: Topology, nodes: Set[int], loads: LoadModel,
               cluster: ClusterSpec) -> float:
    """Eq. (1) of a subnet on a representative (fastest) machine."""
    compute = max(cluster.compute)
    bandwidth = max(cluster.bandwidth_bps)
    return subnet_time(sorted(nodes), loads, topo, compute, bandwidth,
                       _external_links(topo, nodes))


def dons_partition(
    topo: Topology,
    loads: LoadModel,
    cluster: ClusterSpec,
    balance_tol: float = 0.15,
) -> PartitionPlan:
    """Run Algorithm 1 and return the machine assignment."""
    t0 = time.perf_counter()
    if cluster.num_machines < 1:
        raise PartitionError("empty cluster")
    all_nodes: Set[int] = set(range(topo.num_nodes))
    subnets: List[Set[int]] = [all_nodes]
    bisections = 0
    rejected = 0

    # Worst-subnet-first queue (recursion order of Algorithm 1 refined to
    # always attack the current bottleneck, which the max() objective of
    # Eq. (2) makes the only split that can reduce T).
    while len(subnets) < cluster.num_machines:
        subnets.sort(key=lambda s: _subnet_tc(topo, s, loads, cluster),
                     reverse=True)
        split_made = False
        for idx, candidate in enumerate(subnets):
            if len(candidate) < 2:
                continue
            try:
                s1, s2 = mbc_bisect(
                    topo, sorted(candidate), loads.node_load,
                    loads.link_load, balance_tol,
                )
            except PartitionError:
                continue
            bisections += 1
            tc_parent = _subnet_tc(topo, candidate, loads, cluster)
            tc_children = max(
                _subnet_tc(topo, s1, loads, cluster),
                _subnet_tc(topo, s2, loads, cluster),
            )
            if tc_children < tc_parent:
                subnets.pop(idx)
                subnets.extend([s1, s2])
                split_made = True
                break
            rejected += 1
        if not split_made:
            break  # no subnet benefits from further cutting

    partition = assign_to_machines(topo, subnets, loads, cluster)
    est = completion_time(topo, partition, loads, cluster)
    return PartitionPlan(
        partition=partition,
        estimated_time_s=est,
        planning_time_s=time.perf_counter() - t0,
        bisections=bisections,
        rejected_bisections=rejected,
    )


def assign_to_machines(
    topo: Topology,
    subnets: Sequence[Set[int]],
    loads: LoadModel,
    cluster: ClusterSpec,
) -> Partition:
    """Heaviest subnet to fastest machine (heterogeneous clusters)."""
    order = sorted(
        range(len(subnets)),
        key=lambda i: sum(loads.node_load[n] for n in subnets[i]),
        reverse=True,
    )
    machines = sorted(
        range(cluster.num_machines),
        key=lambda a: cluster.compute[a],
        reverse=True,
    )
    assignment = [0] * topo.num_nodes
    parts_used = max(1, len(subnets))
    for rank, subnet_idx in enumerate(order):
        machine = machines[rank % cluster.num_machines]
        for node in subnets[subnet_idx]:
            assignment[node] = machine
    return Partition(tuple(assignment), cluster.num_machines)


def plan_scenario(
    scenario: Scenario,
    cluster: ClusterSpec,
    loads: Optional[LoadModel] = None,
) -> PartitionPlan:
    """Load-estimate a scenario and plan its distributed execution —
    what the DONS Manager does on submission (§3.1)."""
    if loads is None:
        loads = estimate_scenario_loads(scenario)
    return dons_partition(scenario.topology, loads, cluster)
