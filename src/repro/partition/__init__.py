"""Automatic partitioning (§4.1, Appendices A/B): load estimator,
time-cost model, weighted MBC, Algorithm 1, and the baselines."""

from .loadest import LoadModel, estimate_loads, estimate_scenario_loads, time_binned_loads
from .timecost import (
    ClusterSpec, completion_time, machine_times, measured_machine_times,
    refit_cluster_spec, subnet_time,
)
from .mbc import cut_weight, mbc_bisect
from .partitioner import (
    PartitionPlan, assign_to_machines, dons_partition, plan_scenario,
)
from .baselines import (
    balanced_cut, balanced_cut_plan, cfp_partition, cfp_plan,
)
from .dynamic import Phase, detect_phase_boundaries, dynamic_partition_plan

__all__ = [
    "LoadModel", "estimate_loads", "estimate_scenario_loads",
    "time_binned_loads",
    "ClusterSpec", "completion_time", "machine_times",
    "measured_machine_times", "refit_cluster_spec", "subnet_time",
    "cut_weight", "mbc_bisect",
    "PartitionPlan", "assign_to_machines", "dons_partition", "plan_scenario",
    "balanced_cut", "balanced_cut_plan", "cfp_partition", "cfp_plan",
    "Phase", "detect_phase_boundaries", "dynamic_partition_plan",
]
