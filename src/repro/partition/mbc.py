"""Weighted Minimum Balanced Cut, k=2 (the primitive of Algorithm 1).

Minimizing Eq. (2) is an instance of the NP-hard Minimum Balanced Cut
problem (§4.1); the paper uses near-linear k=2 approximations inside a
recursive heuristic.  This module implements the standard practical
recipe: BFS region-growing to a weight-balanced seed bisection, then
Kernighan-Lin/Fiduccia-Mattheyses boundary refinement that greedily
moves the best-gain boundary node while keeping the node-weight balance
within tolerance.

Node weights are estimated device loads, edge weights estimated link
loads — so "balanced" means balanced *simulation work*, not node count,
and "minimum cut" means minimum cross-machine traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple


from ..errors import PartitionError
from ..topology import Topology

#: Floor for edge weights so zero-traffic links still glue regions.
EPS = 1e-9


def _adjacency(
    topo: Topology,
    nodes: Set[int],
    edge_w: Sequence[float],
) -> Dict[int, List[Tuple[int, float]]]:
    adj: Dict[int, List[Tuple[int, float]]] = {n: [] for n in nodes}
    for link in topo.links:
        if link.node_a in nodes and link.node_b in nodes:
            w = max(float(edge_w[link.link_id]), EPS)
            adj[link.node_a].append((link.node_b, w))
            adj[link.node_b].append((link.node_a, w))
    return adj


def _grow_seed(
    adj: Dict[int, List[Tuple[int, float]]],
    node_w: Sequence[float],
    nodes: List[int],
) -> Set[int]:
    """BFS-grow side A from a peripheral node to ~half the total weight."""
    total = sum(node_w[n] for n in nodes) or 1.0
    start = nodes[0]
    # Peripheral seed: farthest node from an arbitrary start (2-sweep BFS).
    for _ in range(2):
        dist = {start: 0}
        queue = deque([start])
        far = start
        while queue:
            u = queue.popleft()
            far = u
            for v, _w in adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        start = far
    side: Set[int] = set()
    weight = 0.0
    visited = {start}
    queue = deque([start])
    order = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v, _w in adj[u]:
            if v not in visited:
                visited.add(v)
                queue.append(v)
    # Disconnected leftovers join the BFS order at the end.
    for n in nodes:
        if n not in visited:
            order.append(n)
    # Never swallow the whole graph: when the weight is concentrated on
    # the tail of the BFS order (e.g. all-zero weights up to the last
    # node), the greedy fill would otherwise take every node before the
    # half-weight test could stop it.  Leaving the final node on side B
    # keeps the seed a true bisection; the KL passes rebalance it.
    for u in order[:-1]:
        if weight >= total / 2.0:
            break
        side.add(u)
        weight += node_w[u]
    if not side or len(side) == len(nodes):
        raise PartitionError("degenerate bisection seed")
    return side


def mbc_bisect(
    topo: Topology,
    nodes: Sequence[int],
    node_w: Sequence[float],
    edge_w: Sequence[float],
    balance_tol: float = 0.15,
    max_passes: int = 6,
) -> Tuple[Set[int], Set[int]]:
    """Bisect ``nodes`` minimizing weighted cut under weight balance.

    Args:
        topo: The full topology (edges outside ``nodes`` are ignored).
        nodes: Sub-graph to split (>= 2 nodes).
        node_w: Per-node weights, indexed by global node id.
        edge_w: Per-link weights, indexed by link id.
        balance_tol: Allowed deviation of either side from half the
            total node weight (fraction of the total).
        max_passes: KL refinement passes.

    Returns:
        ``(side_a, side_b)`` as node-id sets.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise PartitionError("cannot bisect fewer than 2 nodes")
    node_set = set(nodes)
    adj = _adjacency(topo, node_set, edge_w)
    side_a = _grow_seed(adj, node_w, nodes)

    total_w = sum(node_w[n] for n in nodes) or 1.0
    lo = total_w * (0.5 - balance_tol)
    hi = total_w * (0.5 + balance_tol)
    weight_a = sum(node_w[n] for n in side_a)

    def gain(u: int, in_a: bool) -> float:
        """Cut reduction if u switches sides."""
        g = 0.0
        for v, w in adj[u]:
            same = (v in side_a) == in_a
            g += w if not same else -w
        return g

    def is_boundary(u: int) -> bool:
        in_a = u in side_a
        return any(((v in side_a) != in_a) for v, _w in adj[u])

    for _ in range(max_passes):
        moved_any = False
        locked: Set[int] = set()
        candidates = {u for u in node_set if is_boundary(u)}
        # One FM-style pass: best-gain boundary move first, each node
        # moved at most once per pass.  Candidate upkeep is local to the
        # moved node's neighborhood, keeping the pass near-linear.
        while candidates:
            best_u, best_g = None, 0.0
            for u in candidates:
                in_a = u in side_a
                new_wa = weight_a - node_w[u] if in_a else weight_a + node_w[u]
                if not (lo <= new_wa <= hi):
                    continue
                g = gain(u, in_a)
                if g > best_g + 1e-15:
                    best_u, best_g = u, g
            if best_u is None:
                break
            locked.add(best_u)
            candidates.discard(best_u)
            if best_u in side_a:
                side_a.discard(best_u)
                weight_a -= node_w[best_u]
            else:
                side_a.add(best_u)
                weight_a += node_w[best_u]
            moved_any = True
            for v, _w in adj[best_u]:
                if v in locked:
                    continue
                if is_boundary(v):
                    candidates.add(v)
                else:
                    candidates.discard(v)
        if not moved_any:
            break

    side_b = node_set - side_a
    if not side_a or not side_b:
        raise PartitionError("refinement emptied one side")
    return side_a, side_b


def cut_weight(
    topo: Topology,
    side_a: Set[int],
    nodes: Set[int],
    edge_w: Sequence[float],
) -> float:
    """Total weight of edges crossing the bisection (within ``nodes``)."""
    total = 0.0
    for link in topo.links:
        if link.node_a in nodes and link.node_b in nodes:
            if (link.node_a in side_a) != (link.node_b in side_a):
                total += max(float(edge_w[link.link_id]), EPS)
    return total
