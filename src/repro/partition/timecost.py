"""The time-cost model of §4.1 (Eq. 1-2).

    T_a = E_a / P_a + tau_a / B_a          (per machine a)
    T   = max over machines of T_a         (completion estimate)

E_a is the computation load assigned to machine a (sum of estimated
device loads), P_a its computation capacity, tau_a its outgoing cut
traffic, B_a its NIC bandwidth.  The paper's claim to novelty is that
both the *traffic pattern* (through the Load Estimator) and the
*computation capacity* of heterogeneous servers enter the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .loadest import LoadModel
from ..des.partition_types import Partition
from ..errors import PartitionError
from ..topology import Topology


@dataclass(frozen=True)
class ClusterSpec:
    """Capacities of the machines available for distributed execution.

    Attributes:
        compute: events-equivalent load units each machine retires per
            second (heterogeneous clusters use different values).
        bandwidth_bps: NIC bandwidth of each machine.
    """

    compute: Sequence[float]
    bandwidth_bps: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.compute) != len(self.bandwidth_bps):
            raise PartitionError("compute/bandwidth length mismatch")
        if not self.compute:
            raise PartitionError("cluster has no machines")
        if min(self.compute) <= 0 or min(self.bandwidth_bps) <= 0:
            raise PartitionError("capacities must be positive")

    @property
    def num_machines(self) -> int:
        return len(self.compute)

    @classmethod
    def homogeneous(cls, n: int, compute: float = 1e9,
                    bandwidth_bps: float = 40e9) -> "ClusterSpec":
        return cls([compute] * n, [bandwidth_bps] * n)


def machine_times(
    topo: Topology,
    partition: Partition,
    loads: LoadModel,
    cluster: ClusterSpec,
) -> List[float]:
    """Eq. (1) for every machine; parts beyond the cluster size are illegal."""
    if partition.num_parts > cluster.num_machines:
        raise PartitionError(
            f"{partition.num_parts} parts but only "
            f"{cluster.num_machines} machines"
        )
    compute = np.zeros(partition.num_parts)
    egress = np.zeros(partition.num_parts)
    for node in range(topo.num_nodes):
        compute[partition.part_of(node)] += loads.node_load[node]
    for link in topo.links:
        pa = partition.part_of(link.node_a)
        pb = partition.part_of(link.node_b)
        if pa != pb:
            # Full-duplex traffic leaves both machines.
            egress[pa] += loads.link_load[link.link_id]
            egress[pb] += loads.link_load[link.link_id]
    return [
        compute[a] / cluster.compute[a]
        + egress[a] * 8.0 / cluster.bandwidth_bps[a]
        for a in range(partition.num_parts)
    ]


def completion_time(
    topo: Topology,
    partition: Partition,
    loads: LoadModel,
    cluster: ClusterSpec,
) -> float:
    """Eq. (2): the estimated simulation completion time."""
    return max(machine_times(topo, partition, loads, cluster))


def measured_machine_times(bus, num_machines: int) -> List[float]:
    """Per-machine wall-clock (seconds) from a merged cluster bus.

    A distributed run's :class:`~repro.cluster.runtime.ClusterEngine`
    merges every agent's per-system timers into its bus tagged
    ``a<id>:<system>``; summing them per agent yields the *measured*
    counterpart of Eq. (1)'s estimate T_a — what the planner should
    trust once a run has actually happened.
    """
    times = [0.0] * num_machines
    for name, prof in bus.totals.items():
        tag, sep, _system = name.partition(":")
        if sep and len(tag) > 1 and tag[0] == "a" and tag[1:].isdigit():
            machine = int(tag[1:])
            if machine < num_machines:
                times[machine] += prof.elapsed_s
    return times


def refit_cluster_spec(
    cluster: ClusterSpec,
    topo: Topology,
    partition: Partition,
    loads: LoadModel,
    measured_times: Sequence[float],
) -> ClusterSpec:
    """Refit compute capacities so Eq. (1) reproduces measured times.

    Inverting Eq. (1) per machine: P_a = E_a / max(T_a - tau_a*8/B_a,
    eps), where T_a is the *measured* per-agent window cost of a
    previous run under ``partition``.  Machines whose measured time is
    zero (or that hosted no load) keep their configured capacity.  The
    result feeds the next planning round — heterogeneity is now
    observed, not configured.
    """
    if len(measured_times) < partition.num_parts:
        raise PartitionError(
            f"{partition.num_parts} parts but only "
            f"{len(measured_times)} measured times"
        )
    compute = np.zeros(partition.num_parts)
    egress = np.zeros(partition.num_parts)
    for node in range(topo.num_nodes):
        compute[partition.part_of(node)] += loads.node_load[node]
    for link in topo.links:
        pa = partition.part_of(link.node_a)
        pb = partition.part_of(link.node_b)
        if pa != pb:
            egress[pa] += loads.link_load[link.link_id]
            egress[pb] += loads.link_load[link.link_id]
    new_compute = list(cluster.compute)
    for a in range(partition.num_parts):
        comm_s = egress[a] * 8.0 / cluster.bandwidth_bps[a]
        compute_s = measured_times[a] - comm_s
        if compute_s > 0 and compute[a] > 0:
            new_compute[a] = compute[a] / compute_s
    return ClusterSpec(new_compute, list(cluster.bandwidth_bps))


def subnet_time(
    nodes: Sequence[int],
    loads: LoadModel,
    topo: Topology,
    compute: float,
    bandwidth_bps: float,
    external_links: Sequence[int] = (),
) -> float:
    """Eq. (1) for a candidate sub-graph on one machine — what
    Algorithm 1 compares at each recursion step."""
    e = float(sum(loads.node_load[n] for n in nodes))
    tau = float(sum(loads.link_load[l] for l in external_links))
    return e / compute + tau * 8.0 / bandwidth_bps
