"""The two partitioning baselines of Table 2/3.

* **Static balanced cut** — "aims to distribute the number of nodes
  across multiple machines evenly": BFS-order the nodes and slice into k
  equal-count slabs, with no notion of traffic or cut size.
* **Coupling-factor-based partitioning (CFP)** — OMNeT++'s recipe [52]:
  it "only considers the relationship between communication delay and
  the lookahead time", i.e. it prefers cutting links whose propagation
  delay is large (so the lookahead earned per synchronization is large)
  and balances module *count*, but is blind to the traffic pattern.
  Implemented as recursive bisection with unit node weights and edge
  weights 1/delay.
"""

from __future__ import annotations

import time
from collections import deque
from typing import List, Set

import numpy as np

from .mbc import mbc_bisect
from .partitioner import PartitionPlan
from .loadest import LoadModel
from .timecost import ClusterSpec, completion_time
from ..des.partition_types import Partition
from ..errors import PartitionError
from ..topology import Topology


def _bfs_order(topo: Topology) -> List[int]:
    seen = [False] * topo.num_nodes
    order: List[int] = []
    for root in range(topo.num_nodes):
        if seen[root]:
            continue
        seen[root] = True
        queue = deque([root])
        while queue:
            u = queue.popleft()
            order.append(u)
            for v, _link in topo.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
    return order


def balanced_cut(topo: Topology, k: int) -> Partition:
    """Node-count-balanced static partition (BFS slabs)."""
    if k < 1:
        raise PartitionError("k must be >= 1")
    order = _bfs_order(topo)
    n = len(order)
    assignment = [0] * n
    for rank, node in enumerate(order):
        assignment[node] = min(rank * k // n, k - 1)
    return Partition(tuple(assignment), k)


def balanced_cut_plan(topo: Topology, k: int, loads: LoadModel,
                      cluster: ClusterSpec) -> PartitionPlan:
    t0 = time.perf_counter()
    part = balanced_cut(topo, k)
    return PartitionPlan(
        partition=part,
        estimated_time_s=completion_time(topo, part, loads, cluster),
        planning_time_s=time.perf_counter() - t0,
        bisections=0,
        rejected_bisections=0,
        method="balanced-cut",
    )


def cfp_partition(topo: Topology, k: int, balance_tol: float = 0.1) -> Partition:
    """Coupling-factor partitioning: recursive bisection preferring cuts
    over long-delay links, balancing node count."""
    if k < 1:
        raise PartitionError("k must be >= 1")
    node_w = np.ones(topo.num_nodes)
    # Cheap-to-cut = long delay (big lookahead): weight = 1/delay.
    edge_w = np.array([1.0 / max(l.delay_ps, 1) for l in topo.links])
    subnets: List[Set[int]] = [set(range(topo.num_nodes))]
    while len(subnets) < k:
        subnets.sort(key=len, reverse=True)
        big = subnets.pop(0)
        if len(big) < 2:
            subnets.append(big)
            break
        s1, s2 = mbc_bisect(topo, sorted(big), node_w, edge_w, balance_tol)
        subnets.extend([s1, s2])
    assignment = [0] * topo.num_nodes
    for part_id, subnet in enumerate(subnets):
        for node in subnet:
            assignment[node] = part_id
    return Partition(tuple(assignment), k)


def cfp_plan(topo: Topology, k: int, loads: LoadModel,
             cluster: ClusterSpec) -> PartitionPlan:
    t0 = time.perf_counter()
    part = cfp_partition(topo, k)
    return PartitionPlan(
        partition=part,
        estimated_time_s=completion_time(topo, part, loads, cluster),
        planning_time_s=time.perf_counter() - t0,
        bisections=k - 1,
        rejected_bisections=0,
        method="cfp",
    )
