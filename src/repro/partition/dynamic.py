"""Dynamic partitioning (Appendix A).

The traffic pattern of a long simulation can shift; a static partition
then goes stale.  Appendix A's scheme: record the normalized average
device load per period as a vector; when the Wasserstein distance
between consecutive vectors exceeds a threshold, the traffic pattern has
changed and a new simulation phase begins.  Each phase is partitioned
independently and the resulting plans form the overall execution
configuration the DONS Manager orchestrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from typing import Optional

from .loadest import LoadModel, time_binned_loads
from .partitioner import PartitionPlan, dons_partition
from .timecost import ClusterSpec, refit_cluster_spec
from ..des.partition_types import Partition
from ..metrics.wasserstein import load_vector_distance
from ..routing import Fib
from ..topology import Topology
from ..traffic import Flow


@dataclass
class Phase:
    """A maximal run of periods with a stable traffic pattern."""

    start_bin: int
    end_bin: int  # exclusive
    loads: LoadModel
    plan: PartitionPlan


def detect_phase_boundaries(
    load_vectors: Sequence[np.ndarray],
    threshold: float = 0.25,
) -> List[int]:
    """Indices i where pattern(i-1) -> pattern(i) changed drastically.

    ``load_vectors`` are per-period device-load vectors; the comparison
    uses the normalized Wasserstein distance of Appendix A.
    """
    boundaries: List[int] = []
    for i in range(1, len(load_vectors)):
        if load_vector_distance(load_vectors[i - 1], load_vectors[i]) > threshold:
            boundaries.append(i)
    return boundaries


def _merge_loads(models: Sequence[LoadModel]) -> LoadModel:
    node = np.sum([m.node_load for m in models], axis=0)
    link = np.sum([m.link_load for m in models], axis=0)
    return LoadModel(node, link)


def dynamic_partition_plan(
    topo: Topology,
    fib: Fib,
    flows: Sequence[Flow],
    bin_ps: int,
    cluster: ClusterSpec,
    threshold: float = 0.25,
    measured_times: Optional[Sequence[float]] = None,
    measured_partition: Optional[Partition] = None,
) -> List[Phase]:
    """The full Appendix A pipeline: bin loads, detect phase changes,
    partition each phase as a separate simulation task.

    When ``measured_times`` (per-agent wall-clock from a previous run's
    merged instrumentation bus, see
    :func:`~repro.partition.timecost.measured_machine_times`) and the
    ``measured_partition`` it was observed under are given, the cluster
    spec's compute capacities are refitted to the measurement before any
    phase is partitioned — the planner then reasons about the machines
    as they *performed*, not as they were configured.
    """
    binned = time_binned_loads(topo, fib, flows, bin_ps)
    if not binned:
        raise ValueError("no load bins")
    if measured_times is not None:
        if measured_partition is None:
            raise ValueError(
                "measured_times needs the partition it was measured under"
            )
        cluster = refit_cluster_spec(
            cluster, topo, measured_partition, _merge_loads(binned),
            measured_times,
        )
    vectors = [m.node_load for m in binned]
    boundaries = detect_phase_boundaries(vectors, threshold)
    edges = [0] + boundaries + [len(binned)]
    phases: List[Phase] = []
    for start, end in zip(edges, edges[1:]):
        if start >= end:
            continue
        loads = _merge_loads(binned[start:end])
        plan = dons_partition(topo, loads, cluster)
        phases.append(Phase(start, end, loads, plan))
    return phases
