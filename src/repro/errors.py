"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class TopologyError(ReproError):
    """A topology is malformed (unknown node, duplicate link, ...)."""


class RoutingError(ReproError):
    """No route exists, or a FIB lookup failed."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class PartitionError(ReproError):
    """The partitioner received an infeasible request."""


class ClusterError(ReproError):
    """The distributed runtime detected a protocol violation."""


class ConfigError(ReproError):
    """A scenario or engine configuration is invalid."""


class ColumnIndexError(ReproError):
    """A bulk column access (gather/scatter) used an out-of-range index.

    Raised uniformly by every table backend, so kernels written against
    the bulk API fail identically whether the columns are Python lists
    or NumPy arrays (plain ``IndexError`` semantics differ: lists accept
    negative indices, arrays broadcast them)."""
