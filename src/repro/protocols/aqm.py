"""Active queue management: tail drop, DCTCP ECN threshold, RED tagging.

The paper's prototype supports "Random Early Detection (packet tagging)"
— i.e. RED used for ECN marking — plus the instantaneous-threshold
marking DCTCP requires, and tail drop when the buffer is full
(Appendix C: "We currently use tail-drop in our prototype").

Determinism: RED's probabilistic marking uses a pure hash of the packet
identity instead of an RNG stream, so that both engines (and a re-run of
either) make identical choices — randomness in this library only exists
at scenario-generation time (see ``repro.rng``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from .packet import F_FLOW, F_ISACK, F_SEQ, Row
from ..errors import ConfigError
from ..rng import ecmp_hash


class AqmKind(IntEnum):
    """Marking discipline of an egress queue."""

    NONE = 0            # tail drop only, no marking
    ECN_THRESHOLD = 1   # DCTCP: mark when instantaneous queue >= K
    RED = 2             # RED with marking (packet tagging)


@dataclass(frozen=True)
class AqmConfig:
    """AQM configuration of one egress queue.

    Attributes:
        kind: Marking discipline.
        ecn_threshold_bytes: DCTCP K (bytes of queue that trigger marks).
        red_min_bytes / red_max_bytes: RED thresholds on the averaged queue.
        red_max_p: RED maximum marking probability at ``red_max_bytes``.
        red_weight_shift: EWMA weight as a right-shift (w = 2**-shift),
            integer so the averaged queue stays exact across engines.
    """

    kind: AqmKind = AqmKind.ECN_THRESHOLD
    ecn_threshold_bytes: int = 65 * 1_460  # ~65 MTU packets, DCTCP-at-10G ballpark
    red_min_bytes: int = 30 * 1_460
    red_max_bytes: int = 90 * 1_460
    red_max_p: float = 0.1
    red_weight_shift: int = 9

    def __post_init__(self) -> None:
        if self.kind == AqmKind.RED and self.red_min_bytes >= self.red_max_bytes:
            raise ConfigError("RED needs min < max threshold")


_HASH_SPACE = float(1 << 32)


def red_mark_probability(avg_bytes: int, cfg: AqmConfig) -> float:
    """RED marking probability for the current averaged queue size."""
    if avg_bytes <= cfg.red_min_bytes:
        return 0.0
    if avg_bytes >= cfg.red_max_bytes:
        return 1.0
    span = cfg.red_max_bytes - cfg.red_min_bytes
    return cfg.red_max_p * (avg_bytes - cfg.red_min_bytes) / span


def should_mark(
    cfg: AqmConfig,
    row: Row,
    queued_bytes: int,
    avg_bytes: int,
    iface_id: int,
) -> bool:
    """Pure marking decision for an arriving packet.

    Args:
        cfg: The queue's AQM configuration.
        row: The arriving packet.
        queued_bytes: Instantaneous queue occupancy *before* the packet.
        avg_bytes: EWMA queue occupancy (RED only).
        iface_id: Interface id, part of RED's deterministic hash.
    """
    if row[F_ISACK]:
        return False  # pure ACKs are never marked in the prototype
    if cfg.kind == AqmKind.ECN_THRESHOLD:
        return queued_bytes >= cfg.ecn_threshold_bytes
    if cfg.kind == AqmKind.RED:
        p = red_mark_probability(avg_bytes, cfg)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        u = ecmp_hash(row[F_FLOW], row[F_SEQ], iface_id) % (1 << 32)
        return (u / _HASH_SPACE) < p
    return False


def ewma_update(avg_bytes: int, queued_bytes: int, shift: int) -> int:
    """Integer EWMA: avg += (q - avg) >> shift, exact on both engines."""
    return avg_bytes + ((queued_bytes - avg_bytes) >> shift)
