"""DCTCP sender state machine as pure transition functions.

The paper runs DCTCP (Alizadeh et al., SIGCOMM 2010) as the congestion
control in every evaluation scenario.  This module implements the sender
side: slow start, congestion avoidance, per-window alpha estimation from
ECN echoes, the alpha/2 multiplicative cut once per window, fast
retransmit on three duplicate ACKs, and an RTO timer with exponential
backoff.

Everything is a *pure transition*: ``on_start`` / ``on_ack`` /
``on_timeout`` mutate a :class:`DctcpState` and return the list of
segment sequence numbers to put on the wire **now**.  Both engines call
these functions — the OOD baseline per connection object, the DOD engine
over rows of its sender component table — so congestion control behaviour
is identical by construction (the paper's "same network functions,
different data layout" argument, §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..units import ms


@dataclass(frozen=True)
class DctcpParams:
    """Protocol constants (paper defaults in comments).

    ``ecn_cut_factor`` is the CCA-extension hook of §8 ("DONS offers a
    foundational TCP-based state machine ... integration of a novel CCA
    a relatively simple task"): ``None`` selects DCTCP's proportional
    alpha/2 reduction; a constant (e.g. 0.5) selects classic ECN-TCP
    behaviour — cut by that fixed factor once per window, ignoring the
    mark *fraction*.  New window-based CCAs plug in the same way.
    """

    init_cwnd: float = 10.0         # initial window, segments
    g: float = 1.0 / 16.0           # DCTCP gain for the alpha EWMA
    min_rto_ps: int = ms(5)         # clamped retransmission timeout
    init_rto_ps: int = ms(10)       # RTO before the first RTT sample
    max_rto_ps: int = ms(320)       # backoff ceiling
    dupack_threshold: int = 3       # fast retransmit trigger
    ecn_cut_factor: Optional[float] = None  # None = DCTCP alpha/2


#: Classic ECN-TCP (NewReno-with-ECN): halve on any marked window.
RENO_ECN_PARAMS = DctcpParams(ecn_cut_factor=0.5)


@dataclass
class DctcpState:
    """Mutable per-flow sender state.

    ``snd_una``/``next_seq`` are segment indices (the engines convert to
    byte payloads via ``packet.segment_payload``).  ``timer_gen`` versions
    the RTO timer: an event-driven engine tags scheduled timeouts with the
    generation and discards stale firings; the windowed engine simply
    reads ``rtx_deadline``.
    """

    flow_id: int
    total_segs: int
    params: DctcpParams = field(default_factory=DctcpParams)

    snd_una: int = 0
    next_seq: int = 0
    cwnd: float = 0.0
    ssthresh: float = float("inf")

    alpha: float = 1.0
    acked_win: int = 0
    marked_win: int = 0
    alpha_seq: int = 0      # window boundary for the next alpha update
    cut_seq: int = -1       # acks beyond this may trigger a new cut

    dupacks: int = 0
    srtt_ps: int = 0
    rttvar_ps: int = 0
    rto_ps: int = 0
    backoff: int = 1

    rtx_deadline: Optional[int] = None
    timer_gen: int = 0

    done: bool = False
    done_ps: Optional[int] = None

    def __post_init__(self) -> None:
        self.cwnd = self.params.init_cwnd
        self.rto_ps = self.params.init_rto_ps

    # --- helpers -----------------------------------------------------------

    def window_limit(self) -> int:
        """Highest sendable segment index (exclusive)."""
        return min(self.total_segs, self.snd_una + max(1, int(self.cwnd)))

    def _fill_window(self) -> List[int]:
        """Sequence numbers newly allowed by the current window."""
        out = []
        limit = self.window_limit()
        while self.next_seq < limit:
            out.append(self.next_seq)
            self.next_seq += 1
        return out

    def _arm_timer(self, now: int) -> None:
        self.rtx_deadline = now + self.rto_ps * self.backoff
        self.timer_gen += 1

    def _cancel_timer(self) -> None:
        self.rtx_deadline = None
        self.timer_gen += 1

    def _update_rtt(self, sample_ps: int) -> None:
        """RFC 6298 smoothing with integer picoseconds."""
        p = self.params
        if self.srtt_ps == 0:
            self.srtt_ps = sample_ps
            self.rttvar_ps = sample_ps // 2
        else:
            err = sample_ps - self.srtt_ps
            self.rttvar_ps += (abs(err) - self.rttvar_ps) // 4
            self.srtt_ps += err // 8
        rto = self.srtt_ps + 4 * self.rttvar_ps
        self.rto_ps = min(max(rto, p.min_rto_ps), p.max_rto_ps)

    # --- transitions ---------------------------------------------------------

    def on_start(self, now: int) -> List[int]:
        """Flow start: send the initial window, arm the timer."""
        segs = self._fill_window()
        if segs:
            self._arm_timer(now)
        return segs

    def on_ack(self, ack_seq: int, ece: int, echo_ts: int,
               now: int) -> List[int]:
        """Process a cumulative ACK; return segments to transmit at ``now``.

        ``ack_seq`` is the receiver's next expected segment; ``ece`` the
        ECN echo; ``echo_ts`` the echoed sender timestamp (RTT sample).
        """
        if self.done:
            return []
        p = self.params
        self._update_rtt(now - echo_ts)

        if ack_seq > self.snd_una:
            newly = ack_seq - self.snd_una
            self.snd_una = ack_seq
            self.dupacks = 0
            self.backoff = 1

            # --- DCTCP alpha bookkeeping (one estimate per window) -------
            self.acked_win += newly
            if ece:
                self.marked_win += newly
            if ack_seq >= self.alpha_seq:
                if self.acked_win > 0:
                    frac = self.marked_win / self.acked_win
                    self.alpha = (1.0 - p.g) * self.alpha + p.g * frac
                self.acked_win = 0
                self.marked_win = 0
                self.alpha_seq = self.next_seq

            # --- window evolution ----------------------------------------
            if ece and ack_seq > self.cut_seq:
                # Multiplicative cut once per window: DCTCP scales it by
                # the estimated mark fraction; classic ECN-TCP cuts by a
                # fixed factor (the CCA hook).
                cut = (p.ecn_cut_factor if p.ecn_cut_factor is not None
                       else self.alpha / 2.0)
                self.cwnd = max(1.0, self.cwnd * (1.0 - cut))
                self.ssthresh = self.cwnd
                self.cut_seq = self.next_seq
            elif self.cwnd < self.ssthresh:
                self.cwnd += 1.0                      # slow start
            else:
                self.cwnd += 1.0 / self.cwnd          # congestion avoidance

            if self.snd_una >= self.total_segs:
                self.done = True
                self.done_ps = now
                self._cancel_timer()
                return []
            segs = self._fill_window()
            self._arm_timer(now)
            return segs

        # --- duplicate ACK --------------------------------------------------
        self.dupacks += 1
        if self.dupacks == p.dupack_threshold and self.snd_una < self.total_segs:
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = self.ssthresh
            self.cut_seq = self.next_seq
            self._arm_timer(now)
            return [self.snd_una]  # fast retransmit
        return []

    def on_timeout(self, now: int) -> List[int]:
        """RTO fired: retransmit ``snd_una`` with cwnd collapse + backoff."""
        if self.done or self.snd_una >= self.total_segs:
            self._cancel_timer()
            return []
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.backoff = min(self.backoff * 2, 64)
        self.cut_seq = self.next_seq
        self._arm_timer(now)
        return [self.snd_una]
