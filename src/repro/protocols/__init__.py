"""Protocol semantics shared by both engines: packets, AQM, the egress
automaton, DCTCP, UDP and the receiver state machine."""

from .packet import (
    MSS, PRIO_ARRIVAL, PRIO_FLOW_START, PRIO_SERVICE, PRIO_TIMER,
    Packet, Row, ack_row, data_row, order_key, segment_count,
    segment_payload, with_ce,
)
from .aqm import AqmConfig, AqmKind, red_mark_probability, should_mark
from .egress import EgressConfig, EgressPort, PortStats
from .dctcp import DctcpParams, DctcpState, RENO_ECN_PARAMS
from .udp import UdpSchedule
from .receiver import ReceiverState

__all__ = [
    "MSS", "PRIO_ARRIVAL", "PRIO_FLOW_START", "PRIO_SERVICE", "PRIO_TIMER",
    "Packet", "Row", "ack_row", "data_row", "order_key", "segment_count",
    "segment_payload", "with_ce",
    "AqmConfig", "AqmKind", "red_mark_probability", "should_mark",
    "EgressConfig", "EgressPort", "PortStats",
    "DctcpParams", "DctcpState", "RENO_ECN_PARAMS", "UdpSchedule", "ReceiverState",
]
