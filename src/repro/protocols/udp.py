"""UDP sender: open-loop, NIC-rate-paced transmission.

A UDP flow simply puts all its segments on the wire paced at the host
NIC's line rate, with no feedback.  Enqueue times are closed-form, so the
windowed DOD engine can generate exactly the segments whose enqueue time
falls inside a lookahead window without simulating the whole schedule —
and the event-driven baseline computes the same times one event at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .packet import HEADER_BYTES, MSS, segment_count, segment_payload
from ..units import serialization_time_ps


@dataclass(frozen=True)
class UdpSchedule:
    """Deterministic enqueue schedule of one UDP flow."""

    flow_id: int
    size_bytes: int
    start_ps: int
    nic_rate_bps: int

    @property
    def total_segs(self) -> int:
        return segment_count(self.size_bytes)

    def enqueue_time(self, seq: int) -> int:
        """Time segment ``seq`` is handed to the NIC queue.

        Segment i starts once segments 0..i-1 have fully serialized at
        NIC rate (source pacing).  Closed form over the cumulative wire
        bytes of the preceding full-MSS segments.
        """
        if seq == 0:
            return self.start_ps
        wire_before = seq * (MSS + HEADER_BYTES)  # all non-final segs are MSS
        return self.start_ps + serialization_time_ps(wire_before, self.nic_rate_bps)

    def segments_in(self, window_start: int, window_end: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(seq, enqueue_ps)`` for segments starting in the window."""
        total = self.total_segs
        # First candidate by inverting the linear schedule, then scan.
        if window_start <= self.start_ps:
            seq = 0
        else:
            elapsed = window_start - self.start_ps
            per_seg = serialization_time_ps(MSS + HEADER_BYTES, self.nic_rate_bps)
            seq = max(0, (elapsed // max(per_seg, 1)) - 1) if per_seg else 0
            while seq < total and self.enqueue_time(seq) < window_start:
                seq += 1
        while seq < total:
            t = self.enqueue_time(seq)
            if t >= window_end:
                break
            yield seq, t
            seq += 1

    def payload(self, seq: int) -> int:
        return segment_payload(self.size_bytes, seq)
