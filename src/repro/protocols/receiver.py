"""Receiver-side state: cumulative ACK generation and flow completion.

The paper's ACKSystem "checks the packet sequence number and then
registers an ACK packet to its paired Sender Entity".  This module is
the per-flow logic behind that: for DCTCP flows the receiver emits one
cumulative ACK per data segment (echoing the segment's CE mark and
timestamp); for UDP it only tracks completion.

Flow Completion Time is receiver-side: the arrival of the last byte of
application payload (the instant every unique segment has been seen).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, Tuple


@dataclass
class ReceiverState:
    """Per-flow receiver bookkeeping, identical in both engines."""

    flow_id: int
    total_segs: int
    needs_ack: bool  # DCTCP yes, UDP no

    expected: int = 0                    # next in-order segment
    out_of_order: Set[int] = field(default_factory=set)
    unique_received: int = 0
    complete_ps: Optional[int] = None

    def on_data(self, seq: int, ce: int, send_ts: int,
                now: int) -> Optional[Tuple[int, int, int]]:
        """Process a data segment arriving at ``now``.

        Returns ``(ack_seq, ece, echo_ts)`` when an ACK must be sent
        (DCTCP), else ``None``.  Duplicate data still triggers a
        (duplicate) ACK — that is what drives fast retransmit.
        """
        is_new = False
        if seq == self.expected:
            is_new = True
            self.expected += 1
            while self.expected in self.out_of_order:
                self.out_of_order.remove(self.expected)
                self.expected += 1
        elif seq > self.expected and seq not in self.out_of_order:
            is_new = True
            self.out_of_order.add(seq)

        if is_new:
            self.unique_received += 1
            if self.unique_received == self.total_segs and self.complete_ps is None:
                self.complete_ps = now

        if not self.needs_ack:
            return None
        # Cumulative ACK; DCTCP's per-packet ECN echo.
        return self.expected, int(ce), send_ts

    @property
    def complete(self) -> bool:
        return self.complete_ps is not None
