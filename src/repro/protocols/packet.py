"""Packet representation and the deterministic ordering contract.

Both engines describe a packet on the wire by the same nine fields.  The
OOD baseline wraps them in a heap-allocated :class:`Packet` object (that
is the point of the baseline: one object per packet, fields interleaved);
the DOD engine keeps them as rows of columnar buffers.  The tuple layout
(:data:`ROW_FIELDS`) is the neutral interchange format used by the shared
egress-port automaton.

**Ordering contract.**  Whenever two packet actions carry the same
timestamp, every engine resolves the tie with the same key:

    (time, prio, flow_id, is_ack, seq)

where ``prio`` is the *trigger class* of the action: 0 for port service
completions, 1 for packet arrivals, 2 for flow starts, 3 for timer
expiries.  The OOD baseline encodes this key in its event heap; the DOD
engine encodes it in the merge-sort of the TransmitSystem and in the
per-flow event replay of the Send/ACK systems.  Identical keys imply
identical processing order, which is what makes the engines' traces equal
timestamp for timestamp (paper Theorem 2 / Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..units import ACK_BYTES, HEADER_BYTES

#: Maximum segment payload; wire size is payload + HEADER_BYTES <= MTU.
MSS = 1_440

#: Trigger classes of the ordering contract.
PRIO_SERVICE = 0
PRIO_ARRIVAL = 1
PRIO_FLOW_START = 2
PRIO_TIMER = 3

#: Field order of a packet row.
ROW_FIELDS = (
    "flow_id",    # flow the packet belongs to
    "is_ack",     # 0 = data, 1 = ACK
    "seq",        # data: segment index; ACK: cumulative ack (next expected)
    "size",       # wire size in bytes (payload + headers, or ACK_BYTES)
    "ce",         # ECN Congestion Experienced mark (set by AQM in flight)
    "ece",        # ACK only: ECN echo of the acked data packet
    "send_ts",    # data: sender timestamp; ACK: echo of it (RTT measurement)
    "src",        # source host node id
    "dst",        # destination host node id
)

Row = Tuple[int, int, int, int, int, int, int, int, int]

F_FLOW, F_ISACK, F_SEQ, F_SIZE, F_CE, F_ECE, F_SEND_TS, F_SRC, F_DST = range(9)


def data_row(flow_id: int, seq: int, payload: int, send_ts: int,
             src: int, dst: int) -> Row:
    """Build a data-segment row; wire size includes headers."""
    return (flow_id, 0, seq, payload + HEADER_BYTES, 0, 0, send_ts, src, dst)


def ack_row(flow_id: int, ack_seq: int, ece: int, echo_ts: int,
            src: int, dst: int) -> Row:
    """Build an ACK row travelling ``src`` (receiver) -> ``dst`` (sender)."""
    return (flow_id, 1, ack_seq, ACK_BYTES, 0, ece, echo_ts, src, dst)


def with_ce(row: Row) -> Row:
    """Copy of ``row`` with the CE mark set (AQM marking)."""
    return row[:F_CE] + (1,) + row[F_CE + 1:]  # type: ignore[return-value]


def order_key(row: Row) -> Tuple[int, int, int]:
    """The intra-timestamp, intra-prio part of the ordering contract."""
    return (row[F_FLOW], row[F_ISACK], row[F_SEQ])


@dataclass
class Packet:
    """OOD packet object used by the baseline engine.

    Deliberately a conventional simulator object: all per-packet fields
    live together on one heap object, the layout the paper's §2.3 blames
    for the baseline's cache behaviour.  ``row()``/``from_row`` convert to
    the neutral format at engine boundaries.
    """

    flow_id: int
    is_ack: int
    seq: int
    size: int
    ce: int
    ece: int
    send_ts: int
    src: int
    dst: int

    @classmethod
    def from_row(cls, row: Row) -> "Packet":
        return cls(*row)

    def row(self) -> Row:
        return (self.flow_id, self.is_ack, self.seq, self.size, self.ce,
                self.ece, self.send_ts, self.src, self.dst)


def packet_uid(row: Row) -> int:
    """Stable compact identity of a packet, shared by both engines'
    machine-model probes: (flow, is_ack) in the high bits, seq below."""
    return (((row[F_FLOW] << 1) | row[F_ISACK]) << 24) | (row[F_SEQ] & 0xFFFFFF)


def segment_count(size_bytes: int) -> int:
    """Number of MSS segments a flow of ``size_bytes`` needs."""
    return (size_bytes + MSS - 1) // MSS


def segment_payload(size_bytes: int, seq: int) -> int:
    """Payload bytes of segment ``seq`` of a flow of ``size_bytes``."""
    total = segment_count(size_bytes)
    if seq < total - 1:
        return MSS
    return size_bytes - MSS * (total - 1)
