"""The egress-port automaton: queueing, AQM, scheduling, serialization.

Both engines instantiate one :class:`EgressPort` per directed interface.
The automaton's observable behaviour is a pure function of the sequence
of ``arrive``/service actions it sees, so as long as the two engines feed
it the same chronologically-ordered action sequence (the ordering
contract in ``repro.protocols.packet``), they transmit identical packets
at identical times.

The OOD baseline drives the automaton *event by event*:
``arrive`` on packet arrival, ``start_service``/``complete_service``
around PORT_DONE events.

The DOD engine drives it *window by window* through
:meth:`replay_window`, the TransmitSystem inner loop of §3.3/Appendix C:
arrivals of one lookahead window are merge-sorted and replayed against
service completions in chronological order, which also reconstructs the
exact queue length seen by every arriving packet (the paper's TXhistory
mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .aqm import AqmConfig, ewma_update, should_mark
from .packet import F_FLOW, F_SIZE, Row, with_ce
from ..errors import SimulationError
from ..schedulers import Scheduler, SchedulerKind, make_scheduler
from ..topology import Interface
from ..units import serialization_time_ps


@dataclass(frozen=True)
class EgressConfig:
    """Static configuration of an egress queue."""

    buffer_bytes: int = 4 * 1024 * 1024
    aqm: AqmConfig = field(default_factory=AqmConfig)
    scheduler: SchedulerKind = SchedulerKind.FIFO
    num_classes: int = 1
    drr_quantum_bytes: int = 1_500


@dataclass
class PortStats:
    """Counters a port accumulates; inputs to the machine and cost models.

    When ``sample_queue`` is enabled on the port, ``queue_samples`` holds
    ``(time_ps, queued_bytes_after_enqueue)`` — the exact occupancy every
    arriving packet observed, i.e. the TXhistory view of Appendix C made
    inspectable.  Identical between engines because sampling lives in the
    shared ``arrive`` primitive.
    """

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    marked: int = 0
    tx_bytes: int = 0
    max_queue_bytes: int = 0
    queue_samples: List[Tuple[int, int]] = field(default_factory=list)


#: An emission: (row, service_start_ps, service_end_ps).
Emission = Tuple[Row, int, int]


class TableClassifier:
    """Maps a packet to its traffic class via the flow-priority table.

    A plain picklable object (not a closure) so engine state — which
    holds one classifier per port — can be checkpointed (§8).
    """

    __slots__ = ("classes",)

    def __init__(self, classes) -> None:
        self.classes = list(classes)

    def __call__(self, row: Row) -> int:
        return self.classes[row[F_FLOW]]


class EgressPort:
    """State machine of one egress interface (see module docstring)."""

    __slots__ = (
        "iface", "config", "classifier", "sched", "queued_bytes",
        "avg_bytes", "free_at", "in_service", "stats", "sample_queue",
    )

    def __init__(
        self,
        iface: Interface,
        config: EgressConfig,
        classifier: Optional[Callable[[Row], int]] = None,
        sample_queue: bool = False,
    ) -> None:
        self.iface = iface
        self.config = config
        self.classifier = classifier
        self.sched: Scheduler = make_scheduler(
            config.scheduler, config.num_classes, config.drr_quantum_bytes
        )
        self.queued_bytes = 0
        self.avg_bytes = 0
        self.free_at = 0          # time the line becomes free
        self.in_service = False   # baseline-engine service flag
        self.stats = PortStats()
        self.sample_queue = sample_queue

    # --- shared primitives ------------------------------------------------

    def serialization_ps(self, row: Row) -> int:
        return serialization_time_ps(row[F_SIZE], self.iface.rate_bps)

    def arrive(self, row: Row, now: int) -> Optional[Row]:
        """Handle a packet arriving at this queue at ``now``.

        Returns the enqueued row (possibly CE-marked) or ``None`` on tail
        drop.  The marking decision sees the queue occupancy *before* the
        packet, per the DCTCP convention.
        """
        size = row[F_SIZE]
        cfg = self.config
        self.avg_bytes = ewma_update(
            self.avg_bytes, self.queued_bytes, cfg.aqm.red_weight_shift
        )
        if self.queued_bytes + size > cfg.buffer_bytes:
            self.stats.dropped += 1
            return None
        if should_mark(cfg.aqm, row, self.queued_bytes, self.avg_bytes,
                       self.iface.iface_id):
            row = with_ce(row)
            self.stats.marked += 1
        cls = self.classifier(row) if self.classifier is not None else 0
        self.sched.enqueue(cls, row)
        self.queued_bytes += size
        self.stats.enqueued += 1
        if self.queued_bytes > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = self.queued_bytes
        if self.sample_queue:
            self.stats.queue_samples.append((now, self.queued_bytes))
        return row

    def _dequeue(self) -> Optional[Row]:
        row = self.sched.dequeue()
        if row is not None:
            self.queued_bytes -= row[F_SIZE]
            self.stats.dequeued += 1
            self.stats.tx_bytes += row[F_SIZE]
        return row

    # --- event-driven interface (OOD baseline) ----------------------------

    def start_service(self, now: int) -> Optional[Tuple[Row, int]]:
        """Begin transmitting the scheduler's pick at ``now``.

        Only legal when the port is idle; returns ``(row, end_ps)`` or
        ``None`` if the queue is empty.
        """
        if self.in_service:
            raise SimulationError(
                f"iface {self.iface.iface_id}: start_service while busy"
            )
        if now < self.free_at:
            raise SimulationError(
                f"iface {self.iface.iface_id}: service at {now} before "
                f"line free at {self.free_at}"
            )
        if len(self.sched) == 0:
            # Never issue empty dequeues: stateful schedulers (DRR) must
            # see exactly the same call sequence in both engines.
            return None
        row = self._dequeue()
        if row is None:
            return None
        end = now + self.serialization_ps(row)
        self.free_at = end
        self.in_service = True
        return row, end

    def complete_service(self) -> None:
        """Mark the in-flight packet as fully serialized (PORT_DONE)."""
        if not self.in_service:
            raise SimulationError(
                f"iface {self.iface.iface_id}: completion while idle"
            )
        self.in_service = False

    # --- windowed interface (DOD engine, §3.3) ----------------------------

    def replay_window(
        self,
        arrivals: List[Tuple[int, int, Row]],
        window_start: int,
        window_end: int,
        emissions: List[Emission],
        drops: Optional[List[Tuple[int, Row]]] = None,
        enq: Optional[List[Tuple[int, Row]]] = None,
    ) -> None:
        """Replay one lookahead window of this port's timeline.

        Args:
            arrivals: ``(time, prio, row)`` sorted by the ordering
                contract; every time lies in ``[window_start, window_end)``.
            window_start / window_end: The lookahead window.
            emissions: Output list; ``(row, start, end)`` appended for
                every service started in this window.
            drops: Optional output list of ``(time, row)`` tail drops.
            enq: Optional output list of ``(time, accepted_row)`` for
                trace recording (the row carries any CE mark applied).

        Service starts and arrivals are interleaved in chronological
        order; at equal timestamps service precedes arrival, matching the
        baseline's PORT_DONE-before-ARRIVAL event priority.

        ``repro.core.systems.vectorized._replay_window_fifo`` inlines
        this loop (and ``arrive``) for FIFO ports on the NumPy backend —
        any semantic change here must be mirrored there (the
        backend-equivalence suite enforces it).
        """
        i = 0
        n = len(arrivals)
        cursor = window_start
        while True:
            next_arr = arrivals[i][0] if i < n else None
            start: Optional[int] = None
            if len(self.sched) > 0:
                start = self.free_at if self.free_at > cursor else cursor
                if start >= window_end:
                    start = None
            if start is not None and (next_arr is None or start <= next_arr):
                row = self._dequeue()
                assert row is not None
                end = start + self.serialization_ps(row)
                self.free_at = end
                emissions.append((row, start, end))
                cursor = start
            elif next_arr is not None:
                t, _prio, row = arrivals[i]
                i += 1
                accepted = self.arrive(row, t)
                if accepted is None:
                    if drops is not None:
                        drops.append((t, row))
                elif enq is not None:
                    enq.append((t, accepted))
                cursor = t
            else:
                break
