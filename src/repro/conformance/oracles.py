"""Engine oracles: one scenario, every execution stack, canonical traces.

An *oracle* runs one scenario through one engine configuration and
returns an :class:`OracleRun`: the canonicalized trace (via the
instrumentation bus's canonicalization hook), the results object, and
the bus counters.  The conformance runner compares every oracle's trace
against the reference (the classical OOD simulator — the ground truth of
the paper's fidelity claim) and feeds each trace to the reference-free
invariant checkers.

All oracles drive their engine through the shared
:class:`~repro.core.runner.EngineRunner` protocol — the same loop the
CLI and benchmarks use — so what the harness certifies is the code path
users actually run:

* ``ood`` — the OOD baseline (reference).
* ``dons`` / ``dons-mt2`` — the DOD engine, serial and 2-worker.
* ``dons-numpy`` / ``dons-numpy-mt2`` / ``cluster-numpy-2`` — the same
  engine (serial, 2-worker, and as 2 local-transport cluster agents) on
  the vectorized NumPy ECS backend; byte-identity against ``ood`` is the
  backend's conformance gate.
* ``dons-numpy-ffwd`` — the NumPy engine with window-signature
  memoization + fast-forwarding forced on (``core/memo.py``); its
  byte-identity against the rest is the fast-forward conformance gate.
* ``cluster-local-N`` / ``cluster-process-N`` — the cluster runtime over
  N agents (N in 2/3/4) on the in-process or multiprocessing transport,
  contiguous partition.
* ``checkpoint`` — run a few windows, snapshot, discard the engine,
  resume a fresh one from the checkpoint (the pause/resume path).
* ``fault-recovery`` — 2-agent cluster with periodic snapshots and a
  deliberate agent kill mid-run; recovery must restore byte-identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster import DonsManager, FaultPlan
from ..core.checkpoint import CheckpointingEngine, take_checkpoint
from ..core.engine import DodEngine
from ..des import run_baseline
from ..des.partition_types import contiguous_partition
from ..errors import ReproError
from ..metrics import SimResults, TraceLevel
from ..partition import ClusterSpec
from ..scenario import Scenario


@dataclass
class OracleRun:
    """What one oracle produced for one scenario."""

    oracle: str
    trace: List[tuple]            # canonical (sorted) trace entries
    results: SimResults
    counters: Dict[str, int] = field(default_factory=dict)
    lookahead_ps: int = 0

    @property
    def n_entries(self) -> int:
        return len(self.trace)


def _finish(name: str, scenario: Scenario, results: SimResults,
            counters: Dict[str, int]) -> OracleRun:
    if results.trace is None:
        raise ReproError(f"oracle {name!r} produced no trace")
    return OracleRun(
        oracle=name,
        trace=results.trace.sorted_entries(),
        results=results,
        counters=dict(counters),
        lookahead_ps=scenario.lookahead_ps,
    )


def run_ood(scenario: Scenario) -> OracleRun:
    results = run_baseline(scenario, TraceLevel.FULL)
    return _finish("ood", scenario, results, {})


def run_dod(scenario: Scenario, workers: int = 1, name: str = "dons",
            backend: Optional[str] = None,
            ffwd: Optional[bool] = None) -> OracleRun:
    engine = DodEngine(scenario, TraceLevel.FULL, workers=workers,
                       backend=backend, ffwd=ffwd)
    results = engine.run()
    return _finish(name, scenario, results, engine.bus.counters)


def run_cluster(scenario: Scenario, transport: str, agents: int,
                name: str, backend: Optional[str] = None) -> OracleRun:
    agents = min(agents, scenario.topology.num_nodes)
    partition = contiguous_partition(scenario.topology, agents)
    mgr = DonsManager(scenario, ClusterSpec.homogeneous(agents),
                      TraceLevel.FULL, transport=transport, backend=backend)
    run = mgr.run(partition=partition)
    return _finish(name, scenario, run.results,
                   run.bus.counters if run.bus else {})


#: Checkpoint cadence / fault window of the recovery oracles.  Small on
#: purpose: conformance scenarios are short, and the fault must usually
#: fire (a fault landing after the run ends degrades to a plain cluster
#: run, which is still a valid — just weaker — oracle).
CHECKPOINT_AFTER_WINDOWS = 5
FAULT_AT_WINDOW = 8
FAULT_CHECKPOINT_EVERY = 3


def run_checkpoint_resume(scenario: Scenario) -> OracleRun:
    """Run a few windows, snapshot, discard the engine, resume fresh."""
    engine = DodEngine(scenario, TraceLevel.FULL)
    engine.build()
    current = -1
    for _ in range(CHECKPOINT_AFTER_WINDOWS):
        nxt = engine._next_window(current)
        if nxt is None:
            break
        duration = scenario.duration_ps
        if duration is not None and nxt * engine.lookahead > duration:
            break
        current = nxt
        engine.process_window(current)
    ckpt = take_checkpoint(engine, current)
    engine.pool.close()
    del engine  # the "crash": nothing of the first engine survives
    fresh = CheckpointingEngine(scenario, TraceLevel.FULL)
    results = fresh.resume_from(ckpt)
    return _finish("checkpoint", scenario, results, fresh.bus.counters)


def run_fault_recovery(scenario: Scenario) -> OracleRun:
    """2-agent cluster, periodic snapshots, one agent killed mid-run."""
    agents = min(2, scenario.topology.num_nodes)
    partition = contiguous_partition(scenario.topology, agents)
    fault = FaultPlan(agent=agents - 1, at_window=FAULT_AT_WINDOW)
    mgr = DonsManager(scenario, ClusterSpec.homogeneous(agents),
                      TraceLevel.FULL, transport="local",
                      checkpoint_every=FAULT_CHECKPOINT_EVERY, fault=fault)
    run = mgr.run(partition=partition)
    return _finish("fault-recovery", scenario, run.results,
                   run.bus.counters if run.bus else {})


#: Oracle registry: name -> callable(scenario) -> OracleRun.
ORACLES: Dict[str, Callable[[Scenario], OracleRun]] = {
    "ood": run_ood,
    "dons": run_dod,
    "dons-mt2": lambda sc: run_dod(sc, workers=2, name="dons-mt2"),
    "dons-python": lambda sc: run_dod(sc, name="dons-python",
                                      backend="python"),
    "dons-numpy": lambda sc: run_dod(sc, name="dons-numpy",
                                     backend="numpy"),
    "dons-numpy-mt2": lambda sc: run_dod(sc, workers=2,
                                         name="dons-numpy-mt2",
                                         backend="numpy"),
    # The memoization/fast-forward gate: same engine with the window
    # cache forced on.  Trace byte-identity against every other oracle
    # is what certifies fast-forwarded windows (see core/memo.py).
    "dons-numpy-ffwd": lambda sc: run_dod(sc, name="dons-numpy-ffwd",
                                          backend="numpy", ffwd=True),
    "cluster-numpy-2": lambda sc: run_cluster(sc, "local", 2,
                                              "cluster-numpy-2",
                                              backend="numpy"),
    "checkpoint": run_checkpoint_resume,
    "fault-recovery": run_fault_recovery,
}
for _n in (2, 3, 4):
    ORACLES[f"cluster-local-{_n}"] = (
        lambda sc, n=_n: run_cluster(sc, "local", n, f"cluster-local-{n}"))
    ORACLES[f"cluster-process-{_n}"] = (
        lambda sc, n=_n: run_cluster(sc, "process", n,
                                     f"cluster-process-{n}"))
    # The zero-copy transport: process workers exchanging batches as
    # struct-packed frames in shared-memory rings (pickle fallback for
    # oversize).  Byte-identity against the pickled transports is the
    # {pickle, shm} x {local, process} acceptance matrix of PR 8.
    ORACLES[f"cluster-shm-{_n}"] = (
        lambda sc, n=_n: run_cluster(sc, "shm", n, f"cluster-shm-{n}"))

#: The acceptance set: every stack the fidelity claim covers.  The first
#: entry is the reference every other trace is diffed against.
DEFAULT_ORACLES: Tuple[str, ...] = (
    "ood", "dons", "dons-numpy", "dons-numpy-ffwd", "cluster-local-2",
    "cluster-local-3", "cluster-process-2", "cluster-shm-2",
    "checkpoint", "fault-recovery",
)


def run_oracle(name: str, scenario: Scenario) -> OracleRun:
    try:
        oracle = ORACLES[name]
    except KeyError:
        raise ReproError(
            f"unknown oracle {name!r}; known: {', '.join(sorted(ORACLES))}"
        )
    return oracle(scenario)
