"""Reference-free trace invariants.

Differential comparison catches any deviation from the reference engine,
but says nothing when *both* engines are wrong the same way.  These
checkers need no reference: each one asserts a physical property every
correct packet trace must have, straight from the canonical entry tuples
``(time_ps, kind, location, flow_id, is_ack, seq, extra)`` (see
:mod:`repro.metrics.trace`):

* **monotone time** — timestamps are non-negative, the canonical trace
  is sorted, and nothing is stamped after the run's end time.
* **service ordering** — an egress port serves one packet at a time:
  service starts (DEQ) at one interface never share a timestamp.
* **conservation** — per interface, packets served never exceed packets
  accepted (a DROP entry is a tail/AQM rejection, so it has no matching
  ENQ), with equality on run-to-completion scenarios; and each packet
  instance is enqueued before it is served.
* **lookahead discipline** — a delivery is at least one lookahead after
  some service start of the same packet (link delay >= lookahead is the
  LCC premise; §4.2 extends it across machines, so a violated gap means
  a batch leaked into its own window — the partition-dependent ordering
  bug class).
* **counter consistency** — the run's aggregate counters (drops, ECN
  marks, completed flows, transmit events) equal what the trace records,
  so the instrumentation bus and the trace stream cannot drift apart.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .oracles import OracleRun
from ..metrics.trace import TraceKind
from ..scenario import Scenario

#: A packet identity inside one run: (flow, is_ack, seq).
Key = Tuple[int, int, int]


@dataclass(frozen=True)
class Violation:
    """One failed invariant on one oracle's trace."""

    invariant: str
    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.invariant}: {self.message}"


def _v(inv: str, run: OracleRun, msg: str) -> Violation:
    return Violation(invariant=inv, oracle=run.oracle, message=msg)


def check_monotone_time(scenario: Scenario, run: OracleRun) -> List[Violation]:
    out: List[Violation] = []
    trace = run.trace
    if any(e[0] < 0 for e in trace):
        out.append(_v("monotone-time", run, "negative timestamp"))
    if any(a > b for a, b in zip(trace, trace[1:])):
        out.append(_v("monotone-time", run, "canonical trace not sorted"))
    end = run.results.end_time_ps
    late = [e for e in trace if e[0] > end]
    if late:
        out.append(_v("monotone-time", run,
                      f"{len(late)} entries after end_time_ps={end}, "
                      f"first {late[0]}"))
    return out


def check_service_ordering(scenario: Scenario,
                           run: OracleRun) -> List[Violation]:
    """One service start per port per instant (serialization takes >0)."""
    out: List[Violation] = []
    last: Dict[int, int] = {}
    for t, kind, iface, flow, is_ack, seq, _x in run.trace:
        if kind != TraceKind.DEQ:
            continue
        prev = last.get(iface)
        if prev is not None and t <= prev:
            out.append(_v(
                "service-ordering", run,
                f"iface {iface}: service starts at t={t} and t={prev} "
                f"overlap (flow {flow} seq {seq} ack {is_ack})"))
            break
        last[iface] = t
    return out


def check_conservation(scenario: Scenario, run: OracleRun) -> List[Violation]:
    out: List[Violation] = []
    enq: Dict[Tuple[int, Key], List[int]] = defaultdict(list)
    deq: Dict[Tuple[int, Key], List[int]] = defaultdict(list)
    per_iface = defaultdict(lambda: [0, 0, 0])  # enq, deq, drop
    for t, kind, iface, flow, is_ack, seq, _x in run.trace:
        key = (iface, (flow, is_ack, seq))
        if kind == TraceKind.ENQ:
            enq[key].append(t)
            per_iface[iface][0] += 1
        elif kind == TraceKind.DEQ:
            deq[key].append(t)
            per_iface[iface][1] += 1
        elif kind == TraceKind.DROP:
            per_iface[iface][2] += 1
    # A DROP is a tail/AQM drop: the packet was never accepted into the
    # queue, so it has no ENQ entry.  The conserved quantity is accepted
    # packets: served <= enqueued, with equality when the run drains.
    for iface, (n_enq, n_deq, _n_drop) in sorted(per_iface.items()):
        if n_deq > n_enq:
            out.append(_v(
                "conservation", run,
                f"iface {iface}: {n_deq} served > {n_enq} enqueued"))
        elif scenario.duration_ps is None and n_deq != n_enq:
            out.append(_v(
                "conservation", run,
                f"iface {iface}: run-to-completion left "
                f"{n_enq - n_deq} packets in the queue"))
    for key, deq_times in sorted(deq.items()):
        enq_times = sorted(enq.get(key, []))
        for i, t in enumerate(sorted(deq_times)):
            if i >= len(enq_times):
                break  # already reported by the per-iface count check
            if t < enq_times[i]:
                iface, (flow, is_ack, seq) = key
                out.append(_v(
                    "conservation", run,
                    f"iface {iface}: flow {flow} seq {seq} ack {is_ack} "
                    f"served at t={t} before its enqueue at "
                    f"t={enq_times[i]}"))
                break
    return out


def check_lookahead(scenario: Scenario, run: OracleRun) -> List[Violation]:
    """Every delivery is >= one lookahead after a matching service start."""
    out: List[Violation] = []
    lookahead = run.lookahead_ps or scenario.lookahead_ps
    first_deq: Dict[Key, int] = {}
    n_deq: Dict[Key, int] = defaultdict(int)
    n_deliver: Dict[Key, int] = defaultdict(int)
    for t, kind, _loc, flow, is_ack, seq, _x in run.trace:
        if kind == TraceKind.DEQ:
            key = (flow, is_ack, seq)
            n_deq[key] += 1
            if key not in first_deq:
                first_deq[key] = t
    for t, kind, node, flow, is_ack, seq, _x in run.trace:
        if kind != TraceKind.DELIVER:
            continue
        key = (flow, is_ack, seq)
        n_deliver[key] += 1
        start = first_deq.get(key)
        if start is None:
            out.append(_v(
                "lookahead", run,
                f"flow {flow} seq {seq} ack {is_ack} delivered at node "
                f"{node} t={t} without any service start"))
            break
        if t - start < lookahead:
            out.append(_v(
                "lookahead", run,
                f"flow {flow} seq {seq} ack {is_ack}: delivery at t={t} "
                f"only {t - start} ps after service start t={start} "
                f"(< lookahead {lookahead}) — an event leaked into its "
                f"own window"))
            break
    for key, n in sorted(n_deliver.items()):
        if n > n_deq.get(key, 0):
            flow, is_ack, seq = key
            out.append(_v(
                "lookahead", run,
                f"flow {flow} seq {seq} ack {is_ack}: {n} deliveries "
                f"but only {n_deq.get(key, 0)} service starts"))
            break
    return out


def check_counters(scenario: Scenario, run: OracleRun) -> List[Violation]:
    out: List[Violation] = []
    counts = defaultdict(int)
    marked = 0
    done_flows = set()
    dup_done = False
    for _t, kind, _loc, flow, _is_ack, _seq, extra in run.trace:
        counts[kind] += 1
        if kind == TraceKind.ENQ and extra:
            marked += 1
        if kind == TraceKind.FLOW_DONE:
            if flow in done_flows:
                dup_done = True
            done_flows.add(flow)
    res = run.results
    if res.drops != counts[TraceKind.DROP]:
        out.append(_v("counters", run,
                      f"results.drops={res.drops} but trace records "
                      f"{counts[TraceKind.DROP]} drops"))
    # A CE mark applied at one port persists on the packet, so every
    # downstream enqueue of a marked packet also carries CE: the trace
    # count bounds results.marks from above, and they are zero together.
    if res.marks > marked or (res.marks > 0) != (marked > 0):
        out.append(_v("counters", run,
                      f"results.marks={res.marks} inconsistent with "
                      f"{marked} CE-marked enqueues in the trace"))
    if res.events.transmit != counts[TraceKind.DEQ]:
        out.append(_v("counters", run,
                      f"events.transmit={res.events.transmit} but trace "
                      f"records {counts[TraceKind.DEQ]} service starts"))
    if dup_done:
        out.append(_v("counters", run, "a flow completed twice"))
    if res.completed() != len(done_flows):
        out.append(_v("counters", run,
                      f"{res.completed()} flows completed in results vs "
                      f"{len(done_flows)} FLOW_DONE trace entries"))
    return out


#: The invariant catalogue, in reporting order.
INVARIANTS: Sequence[Tuple[str, Callable[[Scenario, OracleRun],
                                         List[Violation]]]] = (
    ("monotone-time", check_monotone_time),
    ("service-ordering", check_service_ordering),
    ("conservation", check_conservation),
    ("lookahead", check_lookahead),
    ("counters", check_counters),
)


def check_invariants(scenario: Scenario, run: OracleRun) -> List[Violation]:
    """Run the full catalogue on one oracle's trace."""
    out: List[Violation] = []
    for _name, checker in INVARIANTS:
        out.extend(checker(scenario, run))
    return out
