"""First-divergence reporting between two canonical traces.

When an oracle's trace is not byte-identical to the reference, the raw
diff is thousands of entries long and almost all of it is downstream
fallout.  What localizes the bug is the *first* divergent op: its
lookahead window (which batch), the system that emits that entry kind
(which kernel), and the entity it happened at (which port / host).
:func:`first_divergence` finds that op and attributes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from .oracles import OracleRun
from ..metrics.trace import TraceKind
from ..scenario import Scenario

#: Which engine system emits each trace entry kind.  ENQ/DROP entries
#: are staged by the send path on hosts and the forward path on
#: switches; DEQ is the TransmitSystem's port replay; DELIVER and
#: FLOW_DONE are host-side (ACK system / receiver logic).
_KIND_NAMES = {
    TraceKind.ENQ: "enqueue",
    TraceKind.DROP: "drop",
    TraceKind.DEQ: "service-start",
    TraceKind.DELIVER: "delivery",
    TraceKind.FLOW_DONE: "flow-completion",
}


@dataclass
class Divergence:
    """The first op where a candidate trace leaves the reference."""

    reference: str
    candidate: str
    op_index: int                  # index into the canonical trace
    window: Optional[int]          # lookahead window of the divergent op
    time_ps: Optional[int]
    system: str                    # engine system attribution
    entity: str                    # port / node the op happened at
    ref_entry: Optional[tuple]     # None = candidate has extra entries
    cand_entry: Optional[tuple]    # None = candidate trace ends early

    def format(self) -> str:
        lines = [
            f"trace divergence: {self.candidate} vs {self.reference} "
            f"at op {self.op_index}",
            f"  window : {self.window}",
            f"  system : {self.system}",
            f"  entity : {self.entity}",
            f"  time   : {self.time_ps} ps",
            f"  ref    : {self.ref_entry}",
            f"  cand   : {self.cand_entry}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reference": self.reference,
            "candidate": self.candidate,
            "op_index": self.op_index,
            "window": self.window,
            "time_ps": self.time_ps,
            "system": self.system,
            "entity": self.entity,
            "ref_entry": list(self.ref_entry) if self.ref_entry else None,
            "cand_entry": list(self.cand_entry) if self.cand_entry else None,
        }


def _attribute(scenario: Scenario, entry: tuple) -> tuple:
    """(system, entity) attribution of one trace entry."""
    t, kind, loc, flow, is_ack, _seq, _extra = entry
    topo = scenario.topology
    if kind in (TraceKind.ENQ, TraceKind.DROP, TraceKind.DEQ):
        if kind == TraceKind.DEQ:
            system = "transmit"
        else:
            # Which system staged this packet onto the port?
            node = topo.interfaces[loc].node if loc < len(topo.interfaces) \
                else -1
            if node >= 0 and not topo.nodes[node].is_host:
                system = "forward"
            else:
                system = "ack" if is_ack else "send"
        node = topo.interfaces[loc].node if loc < len(topo.interfaces) else -1
        entity = f"iface {loc} (node {node})"
    elif kind == TraceKind.DELIVER:
        system = "transmit"
        entity = f"node {loc}"
    else:  # FLOW_DONE
        system = "ack"
        entity = f"node {loc} (flow {flow})"
    return system, entity


def first_divergence(
    scenario: Scenario,
    reference: OracleRun,
    candidate: OracleRun,
) -> Optional[Divergence]:
    """The first divergent op between two canonical traces, attributed
    to (window, system, entity); ``None`` when the traces are identical.
    """
    ref, cand = reference.trace, candidate.trace
    n = min(len(ref), len(cand))
    index = next((i for i in range(n) if ref[i] != cand[i]), None)
    if index is None:
        if len(ref) == len(cand):
            return None
        index = n
    ref_entry = ref[index] if index < len(ref) else None
    cand_entry = cand[index] if index < len(cand) else None
    anchor = cand_entry or ref_entry
    system, entity = _attribute(scenario, anchor)
    lookahead = reference.lookahead_ps or scenario.lookahead_ps
    return Divergence(
        reference=reference.oracle,
        candidate=candidate.oracle,
        op_index=index,
        window=anchor[0] // lookahead if lookahead else None,
        time_ps=anchor[0],
        system=system,
        entity=entity,
        ref_entry=ref_entry,
        cand_entry=cand_entry,
    )
