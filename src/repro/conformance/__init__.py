"""Differential conformance harness (the "byte-identical everywhere" gate).

The paper's fidelity claim — the DOD engine produces *exactly* the packet
trace of a classical OOD simulator — is only as strong as the scenarios
it is checked on.  This package turns the claim into an enforced,
continuously-fuzzed property:

* :mod:`~repro.conformance.generator` — a seeded scenario generator over
  the parameter space (topology family x size, traffic mix, protocol
  set, link delays / lookahead, scheduling, AQM, duration), with
  deterministic shrinking toward a minimal failing scenario.
* :mod:`~repro.conformance.oracles` — engine oracles: one generated
  scenario runs through the OOD baseline, the DOD engine, the cluster
  runtime (local and process transports, 2/3/4 agents), checkpoint
  resume and fault-injection recovery, all via the shared
  :class:`~repro.core.runner.EngineRunner` loop, each returning a
  canonical trace plus counters.
* :mod:`~repro.conformance.invariants` — reference-free per-trace
  checkers (monotone timestamps, per-port service ordering, packet
  conservation, lookahead discipline, counter/trace consistency).
* :mod:`~repro.conformance.diff` — first-divergence reporting down to
  window / system / entity / op index.
* :mod:`~repro.conformance.runner` — the fuzz loop behind
  ``python -m repro fuzz`` and the regression-corpus replay.
* :mod:`~repro.conformance.inject` — deliberate ordering-bug injection
  used to validate that the harness actually catches what it promises.

Every later performance PR must pass ``python -m repro fuzz`` before
claiming equivalence.
"""

from .diff import Divergence, first_divergence
from .generator import ScenarioSpec, generate_spec, shrink
from .invariants import Violation, check_invariants
from .oracles import DEFAULT_ORACLES, ORACLES, OracleRun, run_oracle
from .runner import CheckReport, check_spec, fuzz, replay_file

__all__ = [
    "CheckReport", "DEFAULT_ORACLES", "Divergence", "ORACLES", "OracleRun",
    "ScenarioSpec", "Violation", "check_invariants", "check_spec",
    "first_divergence", "fuzz", "generate_spec", "replay_file",
    "run_oracle", "shrink",
]
