"""The conformance fuzz loop behind ``python -m repro fuzz``.

One *run* = generate a spec, build its scenario, execute every requested
oracle, diff each trace against the reference, and feed every trace to
the invariant catalogue.  A failing run produces a :class:`CheckReport`
with the first divergence and/or invariant violations; with shrinking
enabled the spec is then minimized (re-running the full check per
candidate) and the minimal repro is written as a JSON artifact that
``replay_file`` / the regression-corpus test can re-execute exactly.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from .diff import Divergence, first_divergence
from .generator import FORMAT, ScenarioSpec, generate_spec, shrink
from .invariants import Violation, check_invariants
from .oracles import DEFAULT_ORACLES, OracleRun, run_oracle
from ..errors import ConfigError, ReproError

#: Artifact schema version for failure repros and corpus entries.
ARTIFACT_FORMAT = "repro-conformance-artifact-v1"


@dataclass
class CheckReport:
    """The outcome of checking one spec across a set of oracles."""

    spec: ScenarioSpec
    oracles: Sequence[str]
    divergences: List[Divergence] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    entry_counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None     # an oracle raised instead of tracing
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return (not self.divergences and not self.violations
                and self.error is None)

    def summary(self) -> str:
        if self.ok:
            n = self.entry_counts.get(self.oracles[0], 0)
            return (f"ok: {self.spec.scenario_name()} — "
                    f"{len(self.oracles)} oracles byte-identical "
                    f"({n} trace entries, {self.elapsed_s:.2f}s)")
        parts = [f"FAIL: {self.spec.scenario_name()}"]
        if self.error:
            parts.append(f"  error: {self.error}")
        for div in self.divergences:
            parts.append("  " + div.format().replace("\n", "\n  "))
        for vio in self.violations:
            parts.append(f"  invariant {vio}")
        return "\n".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": ARTIFACT_FORMAT,
            "spec": self.spec.to_dict(),
            "oracles": list(self.oracles),
            "ok": self.ok,
            "error": self.error,
            "divergences": [d.to_dict() for d in self.divergences],
            "violations": [
                {"invariant": v.invariant, "oracle": v.oracle,
                 "message": v.message}
                for v in self.violations
            ],
            "entry_counts": dict(self.entry_counts),
        }


def check_spec(spec: ScenarioSpec,
               oracles: Sequence[str] = DEFAULT_ORACLES) -> CheckReport:
    """Run one spec through every oracle; diff + invariants."""
    started = time.perf_counter()
    report = CheckReport(spec=spec, oracles=tuple(oracles))
    try:
        scenario = spec.build()
    except ConfigError as exc:
        # The generator should never emit an unbuildable spec; surface it
        # as a harness failure rather than silently skipping the run.
        report.error = f"spec does not build: {exc}"
        return report
    reference: Optional[OracleRun] = None
    for name in oracles:
        try:
            run = run_oracle(name, scenario)
        except ReproError as exc:
            report.error = f"oracle {name!r} failed: {exc}"
            break
        report.entry_counts[run.oracle] = run.n_entries
        report.violations.extend(check_invariants(scenario, run))
        if reference is None:
            reference = run
            continue
        div = first_divergence(scenario, reference, run)
        if div is not None:
            report.divergences.append(div)
    report.elapsed_s = time.perf_counter() - started
    return report


def write_artifact(report: CheckReport, directory: Path) -> Path:
    """Persist a failing report as a replayable JSON repro."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{report.spec.scenario_name()}.json"
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True)
                    + "\n")
    return path


def write_failure_timeline(report: CheckReport,
                           directory: Path) -> Optional[Path]:
    """Re-run a failing spec on the DOD engine with telemetry on and
    archive a Chrome-trace timeline next to the repro artifact — the
    first thing to open when triaging a nightly failure."""
    from ..core.engine import DodEngine
    from ..metrics.timeline import write_timeline
    directory.mkdir(parents=True, exist_ok=True)
    try:
        engine = DodEngine(report.spec.build(), telemetry=True)
        engine.run()
    except ReproError:  # a failure can make the re-run itself unrunnable
        return None
    path = directory / f"{report.spec.scenario_name()}.timeline.json"
    write_timeline(engine.bus, str(path), manifest=dict(
        command="fuzz", scenario=report.spec.scenario_name(),
    ))
    return path


def write_failure_flight(report: CheckReport,
                         directory: Path) -> Optional[Path]:
    """Re-run a failing spec with the flight recorder attached and
    archive the last-N-windows Chrome-trace dump next to the full
    timeline — the bounded view a live run would have produced at the
    moment of failure (and the quickest artifact to eyeball when the
    full timeline is tens of MB)."""
    from ..core.engine import DodEngine
    from ..metrics.live import FlightRecorder
    directory.mkdir(parents=True, exist_ok=True)
    try:
        engine = DodEngine(report.spec.build(), telemetry=True)
        engine.run()
    except ReproError:  # a failure can make the re-run itself unrunnable
        return None
    path = directory / f"{report.spec.scenario_name()}.flight.json"
    recorder = FlightRecorder(engine.bus)
    if recorder.dump(str(path)) is None:
        return None
    return path


@dataclass
class FuzzResult:
    """Aggregate outcome of one fuzz campaign."""

    runs: int
    failures: List[CheckReport] = field(default_factory=list)
    shrunk: Optional[CheckReport] = None
    artifact: Optional[Path] = None
    timeline: Optional[Path] = None
    flight: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(
    seed: int,
    runs: int,
    oracles: Sequence[str] = DEFAULT_ORACLES,
    do_shrink: bool = False,
    artifact_dir: Optional[Path] = None,
    emit: Callable[[str], None] = lambda _msg: None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzResult:
    """Check ``runs`` generated scenarios; stop at the first failure.

    A failure is optionally shrunk to a minimal spec (re-checking each
    shrink candidate with the same oracle set) and written to
    ``artifact_dir`` as a JSON repro, along with a telemetry timeline of
    the failing scenario.  ``progress(done, total)`` is called before
    each run (the CLI's ``--progress`` meter).
    """
    result = FuzzResult(runs=runs)
    for index in range(runs):
        if progress is not None:
            progress(index + 1, runs)
        spec = generate_spec(seed, index)
        report = check_spec(spec, oracles)
        emit(f"[{index + 1}/{runs}] {report.summary()}")
        if report.ok:
            continue
        result.failures.append(report)
        final = report
        if do_shrink:
            emit("shrinking...")

            def still_fails(candidate: ScenarioSpec) -> bool:
                return not check_spec(candidate, oracles).ok

            minimal = shrink(spec, still_fails)
            final = check_spec(minimal, oracles)
            result.shrunk = final
            emit(f"shrunk to {minimal.scenario_name()} "
                 f"({minimal.num_nodes()} nodes, {minimal.n_flows} flows)")
            emit(final.summary())
        if artifact_dir is not None:
            result.artifact = write_artifact(final, artifact_dir)
            emit(f"repro artifact: {result.artifact}")
            result.timeline = write_failure_timeline(final, artifact_dir)
            if result.timeline is not None:
                emit(f"failure timeline: {result.timeline}")
            result.flight = write_failure_flight(final, artifact_dir)
            if result.flight is not None:
                emit(f"failure flight dump: {result.flight}")
        break
    return result


def load_spec_file(path: Path) -> ScenarioSpec:
    """Load a spec from a corpus entry, repro artifact, or bare spec."""
    data = json.loads(Path(path).read_text())
    if data.get("format") == ARTIFACT_FORMAT:
        data = data["spec"]
    if data.get("format") not in (None, FORMAT):
        raise ConfigError(
            f"{path}: unknown conformance file format {data.get('format')!r}")
    return ScenarioSpec.from_dict(data)


def replay_file(path: Path,
                oracles: Sequence[str] = DEFAULT_ORACLES) -> CheckReport:
    """Re-run a saved spec (corpus entry or failure artifact)."""
    return check_spec(load_spec_file(path), oracles)


def cmd_fuzz(args: Any) -> int:
    """CLI glue for ``python -m repro fuzz``."""
    oracles = (tuple(args.oracles.split(","))
               if args.oracles else DEFAULT_ORACLES)
    if args.replay:
        report = replay_file(Path(args.replay), oracles)
        print(report.summary())
        return 0 if report.ok else 1
    artifact_dir = Path(args.artifact_dir) if args.artifact_dir else None
    progress = None
    if getattr(args, "progress", False) and sys.stderr.isatty():
        def progress(done: int, total: int) -> None:
            sys.stderr.write(f"\rfuzz {done}/{total}\x1b[K")
            sys.stderr.flush()
    try:
        result = fuzz(args.seed, args.runs, oracles,
                      do_shrink=args.shrink, artifact_dir=artifact_dir,
                      emit=print, progress=progress)
    finally:
        if progress is not None:
            sys.stderr.write("\r\x1b[K")
            sys.stderr.flush()
    if result.ok:
        print(f"fuzz: {result.runs} runs, "
              f"{len(oracles)} oracles, all byte-identical")
        return 0
    return 1
