"""Deliberate ordering-bug injection for harness self-validation.

A conformance harness that has never caught a bug proves nothing.  This
module plants the exact bug class the harness exists for — a
partition/order-dependent divergence — and the test suite asserts the
fuzz loop catches it within a bounded number of runs and shrinks it to
a small repro.

Six bug classes are plantable:

* :func:`flipped_transmit_order` flips the deterministic tie-break
  inside the transmit merge-sort: packets staged at the same
  ``(time, priority)`` on one egress port are replayed in *reversed*
  packet-identity order.  It patches both backends (the Python
  ``transmit_kernel`` and the vectorized ``transmit_sort`` hook), so
  whichever engine variant the oracles run is infected.
* :func:`unstable_transmit_sort` replaces the vectorized backend's
  ordering-contract sort with one that is **unstable** on ties: it
  orders only by ``(time, priority)`` after reversing the staged list,
  so equal-key packets come out in reversed arrival order — the classic
  symptom of swapping a stable sort for an unstable one (or of trusting
  ``np.argsort`` without ``kind="stable"``).
* :func:`stale_window_index` corrupts the columnar event store's
  window-occupancy index (the O(1) ``peek_next_window`` structure):
  registration of a newly occupied window lags the column append, so a
  window whose bucket holds a single entry is invisible to the
  scheduler.  Entries starve — the engine skips or never runs their
  window — which is exactly the failure mode of letting a derived index
  drift from the data it summarizes.
* :func:`torn_shm_read` models a torn shared-memory frame read in the
  zero-copy transport (:mod:`repro.cluster.shm`): the record decoder
  loses the last record of any multi-record frame — exactly what a
  reader racing the writer past the commit word would observe.  Only
  the shm framing path is infected (the pickled pipe fallback and the
  LocalTransport never decode frames), so catching it requires a fuzz
  oracle set that runs the shared-memory transport
  (e.g. ``("ood", "cluster-shm-2")``).
* :func:`skewed_arrival_stream` corrupts the columnar arrival engine's
  first traffic batch: the batch's start times are rebuilt from their
  inter-arrival gaps with the first gap inflated by 7 us — a
  unit-conversion off-by-a-factor in the rate math.  Only consumers of
  the *batch* iterator are infected (the DOD builder's columnar path);
  the OOD baseline iterates flows scalar-wise and stays a truthful
  reference, so catching it requires fuzz specs whose traffic kind is
  columnar (``wan_twin`` / ``storage``).
* :func:`stale_cache_delta` corrupts the window-signature memoization
  cache (:mod:`repro.core.memo`): the delta recorded on a cache miss has
  one scatter-write perturbed (the sequence number of the first staged
  cross-window arrival is off by one), so every cache *hit* replays a
  subtly wrong write-set.  The executed windows — including the very
  window the delta was captured from — are all correct; only the
  fast-forwarded replays diverge.  This is the stale/corrupt-cache-entry
  failure mode the memo's replay-based validation exists for, and
  catching it requires an oracle set that actually runs the
  fast-forward engine (e.g. ``("ood", "dons-numpy-ffwd")``).

Both bugs mirror real failure modes (iterating a hash map / racing
commit order / unstable sorting instead of the ordering-contract key):
the simulation stays physically valid — every reference-free invariant
still holds — but the queue each tied packet sees changes, so service
order, and therefore the byte trace, diverges from the OOD reference
wherever two packets collide at the same instant.  Only the
differential oracle can see it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace as _dc_replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..cluster import shm as shm_mod
from ..core import events as events_mod
from ..core import memo as memo_mod
from ..core.systems import transmit as transmit_mod
from ..core.systems import vectorized as vectorized_mod
from ..traffic import arrivals as arrivals_mod
from ..units import us
from ..core.window import Staged
from ..protocols.egress import Emission, EgressPort
from ..protocols.packet import F_FLOW, F_ISACK, F_SEQ, Row


def _flipped_key(a: Tuple[int, int, Row]):
    return (a[0], a[1], -a[2][F_FLOW], -a[2][F_ISACK], -a[2][F_SEQ])


def _flipped_transmit_kernel(
    ports: List[EgressPort],
    staged: Dict[int, List[Staged]],
    window_start: int,
    window_end: int,
    full_trace: bool,
    iface_id: int,
):
    """`transmit_kernel` with the packet-identity tie-break reversed."""
    port = ports[iface_id]
    arrivals = staged.get(iface_id, [])
    arrivals.sort(key=_flipped_key)
    emissions: List[Emission] = []
    drops: List[Tuple[int, Row]] = []
    enq: Optional[List[Tuple[int, Row]]] = [] if full_trace else None
    port.replay_window(arrivals, window_start, window_end,
                       emissions, drops, enq)
    still_active = len(port.sched) > 0
    return iface_id, emissions, drops, enq, still_active, len(arrivals)


def _flipped_transmit_sort(entries: List[Staged]) -> List[Staged]:
    """The vectorized tie-break hook with packet identity reversed."""
    entries.sort(key=_flipped_key)
    return entries


def _unstable_sort(entries: List[Staged]) -> List[Staged]:
    """An order-contract sort that is unstable on (time, prio) ties.

    Reversing first and then sorting by the truncated key is exactly
    what an unstable sort may legally do to equal keys — ties surface
    in reversed staging order instead of packet-identity order.
    """
    entries.reverse()
    entries.sort(key=lambda a: (a[0], a[1]))
    return entries


@contextmanager
def flipped_transmit_order() -> Iterator[None]:
    """Patch the DOD transmit tie-break with the reversed ordering.

    Affects every in-process DOD engine on either backend (plain,
    checkpoint, cluster agents on the local transport; forked process
    agents inherit the patch too): the Python backend through its
    ``transmit_kernel``, the NumPy backend through its ``transmit_sort``
    hook.  The OOD baseline is untouched, so it stays a truthful
    reference while the patch is live.
    """
    original_kernel = transmit_mod.transmit_kernel
    original_sort = vectorized_mod.transmit_sort
    transmit_mod.transmit_kernel = _flipped_transmit_kernel
    vectorized_mod.transmit_sort = _flipped_transmit_sort
    try:
        yield
    finally:
        transmit_mod.transmit_kernel = original_kernel
        vectorized_mod.transmit_sort = original_sort


def _stale_register_window(events, win: int) -> None:
    """Occupancy registration that lags the column append by one entry.

    A window already indexed stays indexed; a window whose bucket holds
    two or more entries gets indexed (late, on the second insert); but a
    *singleton* bucket is never registered — the index claims the window
    is empty while its columns hold work.  Deterministic per engine run,
    no state outside the store itself.
    """
    if win in events._queued:
        return
    bucket = events._buckets.get(win)
    if bucket is not None and len(bucket) >= 2:
        events_mod._register_window(events, win)


@contextmanager
def stale_window_index() -> Iterator[None]:
    """Plant the stale-occupancy-index bug in the columnar event store.

    Patches the module-level ``register_window`` hook that
    :meth:`EventColumns.insert` resolves at call time, so every DOD
    engine on either backend (plain, checkpoint, cluster agents) is
    infected; the OOD baseline keeps its own heap and stays a truthful
    reference.  Windows whose only pending work is a single entry — a
    lone RTO wakeup, a solitary ACK arrival — vanish from the
    scheduler's view, their entries starve, and the byte trace diverges
    wherever the reference ran them.
    """
    original = events_mod.register_window
    events_mod.register_window = _stale_register_window
    try:
        yield
    finally:
        events_mod.register_window = original


def _corrupt_delta(delta: "memo_mod.WindowDelta") -> "memo_mod.WindowDelta":
    """Perturb exactly one scatter-write of a freshly captured delta.

    Preferred target: the first staged cross-window *arrival* — its
    packet row's sequence number is bumped by one, so a cache hit
    forwards a packet that was never sent.  Windows without staged
    arrivals fall back to a queued packet row inside a port
    post-encoding, then to receiver reassembly bookkeeping; a delta with
    none of the three is left intact (nothing in it can diverge).
    """
    staged = list(delta.staged)
    for i, (off, node, enc) in enumerate(staged):
        if enc[0] == "a":
            row = list(enc[3])
            row[F_SEQ] += 1
            staged[i] = (off, node, ("a", enc[1], enc[2], tuple(row)))
            return _dc_replace(delta, staged=tuple(staged))
    ports = list(delta.ports)
    for i, (iface, post, incr) in enumerate(ports):
        classes = post[6]  # per-class tuples of queued row encodings
        for cls, rows in enumerate(classes):
            if not rows:
                continue
            row = list(rows[0])
            row[F_SEQ] += 1
            new_cls = ((tuple(row),) + rows[1:],)
            new_classes = classes[:cls] + new_cls + classes[cls + 1:]
            ports[i] = (iface, post[:6] + (new_classes,), incr)
            return _dc_replace(delta, ports=tuple(ports))
    recvs = list(delta.receivers)
    if recvs:
        fid, expected, unique, ooo, comp = recvs[0]
        recvs[0] = (fid, expected + 1, unique, ooo, comp)
        return _dc_replace(delta, receivers=tuple(recvs))
    return delta


@contextmanager
def stale_cache_delta() -> Iterator[None]:
    """Plant a corrupt-cache-entry bug in the window-signature memo.

    Patches the module-level ``capture_filter`` hook that
    :meth:`~repro.core.memo.WindowMemoCache.run_window` resolves at call
    time just before storing a miss's captured delta, so every engine
    with fast-forwarding enabled records poisoned cache entries while
    the patch is live.  Executed windows stay byte-correct — only cache
    *hits* replay the corruption — so catching it requires an oracle set
    that runs the fast-forward engine on a workload with repeating
    window signatures (the generator's ``steady`` traffic kind exists
    for exactly this).  The memo's own replay-based validation detects
    the poisoned entry on the Nth hit and evicts it, but the hits
    already applied have diverged the trace — which the differential
    oracle then reports.
    """
    original = memo_mod.capture_filter
    memo_mod.capture_filter = _corrupt_delta
    try:
        yield
    finally:
        memo_mod.capture_filter = original


@contextmanager
def torn_shm_read() -> Iterator[None]:
    """Plant a torn-frame read in the shared-memory batch decoder.

    Patches the module-level ``unpack_records`` hook every shm frame
    decode resolves at call time (coordinator-side outbox unpacking and
    worker-side accept-section unpacking both route through it): any
    multi-record frame silently loses its final record, which is what a
    reader that raced the writer past the commit word would see — the
    header's count published before the payload's tail landed.  Fork-
    started worker processes inherit the live patch, so the whole
    cluster is infected.  The LocalTransport and the pickled fallback
    never decode frames and stay truthful references; the lost packet
    surfaces as a trace divergence (and conservation violations)
    wherever the reference delivered it.
    """
    original = shm_mod.unpack_records

    def torn(view, count):
        records = original(view, count)
        if len(records) > 1:
            del records[-1]
        return records

    shm_mod.unpack_records = torn
    try:
        yield
    finally:
        shm_mod.unpack_records = original


def _skewed_batch(start: int, cols: Dict) -> Dict:
    """Corrupt the first arrival batch's inter-arrival structure.

    Rebuilds the batch's start times from their consecutive gaps with
    the first gap inflated by 7 us — the classic off-by-a-unit in a
    rate/interval conversion (seconds vs the scheduler's picoseconds,
    or a duty-cycle factor applied twice).  Every row after the first
    shifts later by the same skew; the times stay sorted and
    non-negative, so nothing crashes — only the byte trace moves.
    """
    if start != 0 or len(cols["start_ps"]) < 2:
        return cols
    starts = cols["start_ps"].copy()
    starts[1:] += us(7)
    out = dict(cols)
    out["start_ps"] = starts
    return out


@contextmanager
def skewed_arrival_stream() -> Iterator[None]:
    """Plant a skewed-interarrival bug in the columnar arrival engine.

    Patches the module-level ``batch_filter`` hook that
    :meth:`~repro.traffic.FlowColumns.iter_batches` resolves at call
    time, so every engine that consumes traffic *columnarly* — the DOD
    builder's batch path on either backend, and therefore checkpoint
    and cluster oracles too — sees the first batch's arrivals displaced
    by a 7 us inter-arrival skew.  The OOD baseline materializes flows
    through scalar iteration, which never touches the batch hook, so it
    stays a truthful reference.  Catching the bug requires a fuzz spec
    whose traffic is columnar (the generator's ``wan_twin`` / ``storage``
    kinds); per-flow traffic kinds are immune by construction, which is
    exactly the point — a harness that only ever fuzzes ``Flow`` lists
    would ship this bug.
    """
    original = arrivals_mod.batch_filter
    arrivals_mod.batch_filter = _skewed_batch
    try:
        yield
    finally:
        arrivals_mod.batch_filter = original


@contextmanager
def unstable_transmit_sort() -> Iterator[None]:
    """Patch the vectorized backend's contract sort with an unstable one.

    Only the NumPy backend is infected — the Python reference kernels
    keep the true ordering — so catching this bug requires a fuzz
    oracle set that actually runs the vectorized engine
    (e.g. ``("ood", "dons-numpy")``).
    """
    original = vectorized_mod.transmit_sort
    vectorized_mod.transmit_sort = _unstable_sort
    try:
        yield
    finally:
        vectorized_mod.transmit_sort = original
