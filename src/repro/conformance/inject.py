"""Deliberate ordering-bug injection for harness self-validation.

A conformance harness that has never caught a bug proves nothing.  This
module plants the exact bug class the harness exists for — a
partition/order-dependent divergence — and the test suite asserts the
fuzz loop catches it within a bounded number of runs and shrinks it to
a small repro.

Three bug classes are plantable:

* :func:`flipped_transmit_order` flips the deterministic tie-break
  inside the transmit merge-sort: packets staged at the same
  ``(time, priority)`` on one egress port are replayed in *reversed*
  packet-identity order.  It patches both backends (the Python
  ``transmit_kernel`` and the vectorized ``transmit_sort`` hook), so
  whichever engine variant the oracles run is infected.
* :func:`unstable_transmit_sort` replaces the vectorized backend's
  ordering-contract sort with one that is **unstable** on ties: it
  orders only by ``(time, priority)`` after reversing the staged list,
  so equal-key packets come out in reversed arrival order — the classic
  symptom of swapping a stable sort for an unstable one (or of trusting
  ``np.argsort`` without ``kind="stable"``).
* :func:`stale_window_index` corrupts the columnar event store's
  window-occupancy index (the O(1) ``peek_next_window`` structure):
  registration of a newly occupied window lags the column append, so a
  window whose bucket holds a single entry is invisible to the
  scheduler.  Entries starve — the engine skips or never runs their
  window — which is exactly the failure mode of letting a derived index
  drift from the data it summarizes.

Both bugs mirror real failure modes (iterating a hash map / racing
commit order / unstable sorting instead of the ordering-contract key):
the simulation stays physically valid — every reference-free invariant
still holds — but the queue each tied packet sees changes, so service
order, and therefore the byte trace, diverges from the OOD reference
wherever two packets collide at the same instant.  Only the
differential oracle can see it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import events as events_mod
from ..core.systems import transmit as transmit_mod
from ..core.systems import vectorized as vectorized_mod
from ..core.window import Staged
from ..protocols.egress import Emission, EgressPort
from ..protocols.packet import F_FLOW, F_ISACK, F_SEQ, Row


def _flipped_key(a: Tuple[int, int, Row]):
    return (a[0], a[1], -a[2][F_FLOW], -a[2][F_ISACK], -a[2][F_SEQ])


def _flipped_transmit_kernel(
    ports: List[EgressPort],
    staged: Dict[int, List[Staged]],
    window_start: int,
    window_end: int,
    full_trace: bool,
    iface_id: int,
):
    """`transmit_kernel` with the packet-identity tie-break reversed."""
    port = ports[iface_id]
    arrivals = staged.get(iface_id, [])
    arrivals.sort(key=_flipped_key)
    emissions: List[Emission] = []
    drops: List[Tuple[int, Row]] = []
    enq: Optional[List[Tuple[int, Row]]] = [] if full_trace else None
    port.replay_window(arrivals, window_start, window_end,
                       emissions, drops, enq)
    still_active = len(port.sched) > 0
    return iface_id, emissions, drops, enq, still_active, len(arrivals)


def _flipped_transmit_sort(entries: List[Staged]) -> List[Staged]:
    """The vectorized tie-break hook with packet identity reversed."""
    entries.sort(key=_flipped_key)
    return entries


def _unstable_sort(entries: List[Staged]) -> List[Staged]:
    """An order-contract sort that is unstable on (time, prio) ties.

    Reversing first and then sorting by the truncated key is exactly
    what an unstable sort may legally do to equal keys — ties surface
    in reversed staging order instead of packet-identity order.
    """
    entries.reverse()
    entries.sort(key=lambda a: (a[0], a[1]))
    return entries


@contextmanager
def flipped_transmit_order() -> Iterator[None]:
    """Patch the DOD transmit tie-break with the reversed ordering.

    Affects every in-process DOD engine on either backend (plain,
    checkpoint, cluster agents on the local transport; forked process
    agents inherit the patch too): the Python backend through its
    ``transmit_kernel``, the NumPy backend through its ``transmit_sort``
    hook.  The OOD baseline is untouched, so it stays a truthful
    reference while the patch is live.
    """
    original_kernel = transmit_mod.transmit_kernel
    original_sort = vectorized_mod.transmit_sort
    transmit_mod.transmit_kernel = _flipped_transmit_kernel
    vectorized_mod.transmit_sort = _flipped_transmit_sort
    try:
        yield
    finally:
        transmit_mod.transmit_kernel = original_kernel
        vectorized_mod.transmit_sort = original_sort


def _stale_register_window(events, win: int) -> None:
    """Occupancy registration that lags the column append by one entry.

    A window already indexed stays indexed; a window whose bucket holds
    two or more entries gets indexed (late, on the second insert); but a
    *singleton* bucket is never registered — the index claims the window
    is empty while its columns hold work.  Deterministic per engine run,
    no state outside the store itself.
    """
    if win in events._queued:
        return
    bucket = events._buckets.get(win)
    if bucket is not None and len(bucket) >= 2:
        events_mod._register_window(events, win)


@contextmanager
def stale_window_index() -> Iterator[None]:
    """Plant the stale-occupancy-index bug in the columnar event store.

    Patches the module-level ``register_window`` hook that
    :meth:`EventColumns.insert` resolves at call time, so every DOD
    engine on either backend (plain, checkpoint, cluster agents) is
    infected; the OOD baseline keeps its own heap and stays a truthful
    reference.  Windows whose only pending work is a single entry — a
    lone RTO wakeup, a solitary ACK arrival — vanish from the
    scheduler's view, their entries starve, and the byte trace diverges
    wherever the reference ran them.
    """
    original = events_mod.register_window
    events_mod.register_window = _stale_register_window
    try:
        yield
    finally:
        events_mod.register_window = original


@contextmanager
def unstable_transmit_sort() -> Iterator[None]:
    """Patch the vectorized backend's contract sort with an unstable one.

    Only the NumPy backend is infected — the Python reference kernels
    keep the true ordering — so catching this bug requires a fuzz
    oracle set that actually runs the vectorized engine
    (e.g. ``("ood", "dons-numpy")``).
    """
    original = vectorized_mod.transmit_sort
    vectorized_mod.transmit_sort = _unstable_sort
    try:
        yield
    finally:
        vectorized_mod.transmit_sort = original
