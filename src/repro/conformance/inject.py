"""Deliberate ordering-bug injection for harness self-validation.

A conformance harness that has never caught a bug proves nothing.  This
module plants the exact bug class the harness exists for — a
partition/order-dependent divergence — and the test suite asserts the
fuzz loop catches it within a bounded number of runs and shrinks it to
a small repro.

The planted bug flips the deterministic tie-break inside the transmit
kernel's merge-sort: packets staged at the same ``(time, priority)`` on
one egress port are replayed in *reversed* packet-identity order.  This
mirrors a real failure mode (iterating a hash map / racing commit order
instead of sorting by the ordering-contract key): the simulation stays
physically valid — every reference-free invariant still holds — but the
queue each tied packet sees changes, so service order, and therefore
the byte trace, diverges from the OOD reference wherever two packets
collide at the same instant.  Only the differential oracle can see it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.systems import transmit as transmit_mod
from ..core.window import Staged
from ..protocols.egress import Emission, EgressPort
from ..protocols.packet import F_FLOW, F_ISACK, F_SEQ, Row


def _flipped_transmit_kernel(
    ports: List[EgressPort],
    staged: Dict[int, List[Staged]],
    window_start: int,
    window_end: int,
    full_trace: bool,
    iface_id: int,
):
    """`transmit_kernel` with the packet-identity tie-break reversed."""
    port = ports[iface_id]
    arrivals = staged.get(iface_id, [])
    arrivals.sort(
        key=lambda a: (a[0], a[1],
                       -a[2][F_FLOW], -a[2][F_ISACK], -a[2][F_SEQ])
    )
    emissions: List[Emission] = []
    drops: List[Tuple[int, Row]] = []
    enq: Optional[List[Tuple[int, Row]]] = [] if full_trace else None
    port.replay_window(arrivals, window_start, window_end,
                       emissions, drops, enq)
    still_active = len(port.sched) > 0
    return iface_id, emissions, drops, enq, still_active, len(arrivals)


@contextmanager
def flipped_transmit_order() -> Iterator[None]:
    """Patch the DOD transmit kernel with the reversed tie-break.

    Affects every in-process DOD engine (plain, checkpoint, cluster
    agents on the local transport; forked process agents inherit the
    patch too).  The OOD baseline is untouched, so it stays a truthful
    reference while the patch is live.
    """
    original = transmit_mod.transmit_kernel
    transmit_mod.transmit_kernel = _flipped_transmit_kernel
    try:
        yield
    finally:
        transmit_mod.transmit_kernel = original
