"""Seeded scenario generation and deterministic shrinking.

A :class:`ScenarioSpec` is the *recipe* for one conformance scenario: a
small, JSON-serializable point in the parameter space (topology family x
size, traffic mix, protocol set, scheduling discipline, AQM, buffer,
link-delay profile — which sets the lookahead — and duration).  The spec,
not the built :class:`~repro.scenario.Scenario`, is what the fuzz loop
stores, shrinks, and checks into the regression corpus, because a spec
is tiny, diffable, and rebuilds the same scenario bit-for-bit on any
machine (all randomness flows through :func:`repro.rng.substream`).

Shrinking is deterministic and greedy: :func:`shrink_candidates` yields
strictly-simpler variants of a failing spec (fewer flows, smaller
topology, plainer protocol/scheduler configuration, ...) in a fixed
order; :func:`shrink` keeps the first variant that still fails and
repeats to a fixpoint, converging on a minimal reproduction — the
distribution-study lesson that ordering bugs found on adversarial
topologies should be reported on the smallest one that shows them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional

from ..errors import ConfigError
from ..protocols import AqmConfig, AqmKind
from ..rng import substream
from ..scenario import Scenario, make_scenario
from ..schedulers import SchedulerKind
from ..topology import Topology, dumbbell, fattree, leaf_spine
from ..traffic import (
    Flow, Transport, fixed_flows, full_mesh_dynamic, incast, permutation,
    TINY,
)
from ..units import GBPS, us

#: Spec format tag for corpus files and repro artifacts.
FORMAT = "repro-conformance-spec-v1"

TOPOLOGY_FAMILIES = ("dumbbell", "fattree", "leafspine", "hetero")
TRAFFIC_KINDS = ("fixed", "mesh", "incast", "permutation", "steady",
                 "wan_twin", "storage")
#: Arrival-process kinds the columnar traffic kinds draw from (the
#: ``arrival`` spec dimension; ignored by the per-flow kinds).
ARRIVALS = ("poisson", "onoff", "periodic", "empirical")
TRANSPORT_MIXES = ("dctcp", "reno", "udp", "mixed")
SCHEDULERS = ("fifo", "sp", "rr", "drr")
AQMS = ("ecn", "red", "none")

_AQM_KINDS = {"ecn": AqmKind.ECN_THRESHOLD, "red": AqmKind.RED,
              "none": AqmKind.NONE}
_TRANSPORTS = {"dctcp": Transport.DCTCP, "reno": Transport.RENO,
               "udp": Transport.UDP}


@dataclass(frozen=True)
class ScenarioSpec:
    """One point in the conformance parameter space."""

    seed: int
    topology: str = "dumbbell"   # family, see TOPOLOGY_FAMILIES
    topo_arg: int = 2            # pairs / fat-tree K / leaves / node budget
    traffic: str = "fixed"       # see TRAFFIC_KINDS
    n_flows: int = 4
    flow_kb: int = 60            # per-flow size (fixed/incast/permutation)
    transport: str = "dctcp"     # see TRANSPORT_MIXES
    scheduler: str = "fifo"
    num_classes: int = 1
    aqm: str = "ecn"
    buffer_kb: int = 40
    delay_profile: str = "uniform"  # or "hetero": per-link delays differ
    delay_scale: int = 1            # base delay multiplier (sets lookahead)
    duration_us: Optional[int] = None
    load_pct: int = 40              # mesh offered load (percent)
    arrival: str = "poisson"        # columnar kinds only, see ARRIVALS

    # --- construction -----------------------------------------------------

    def build_topology(self) -> Topology:
        base = us(1) * self.delay_scale
        if self.topology == "dumbbell":
            bottleneck_delay = 3 * base if self.delay_profile == "hetero" else base
            if self.traffic == "steady":
                # Drop-free by construction: the bottleneck carries the
                # whole permutation at line rate, so paced UDP windows
                # become exactly periodic — the workload the
                # memoization/fast-forward cache exists for.
                bottleneck = 10 * GBPS * max(2, 2 * self.topo_arg)
            elif self.traffic in ("mesh", "wan_twin", "storage"):
                bottleneck = 10 * GBPS
            else:
                bottleneck = 2 * GBPS
            return dumbbell(
                max(1, self.topo_arg),
                edge_rate_bps=10 * GBPS,
                bottleneck_rate_bps=bottleneck,
                delay_ps=base,
                bottleneck_delay_ps=bottleneck_delay,
            )
        if self.topology == "fattree":
            return fattree(4, rate_bps=10 * GBPS, delay_ps=base)
        if self.topology == "leafspine":
            k = max(2, self.topo_arg)
            return leaf_spine(k, 2, 2, host_rate_bps=10 * GBPS,
                              fabric_rate_bps=10 * GBPS, delay_ps=base)
        if self.topology == "hetero":
            return self._hetero_topology(base)
        raise ConfigError(f"unknown topology family {self.topology!r}")

    def _hetero_topology(self, base: int) -> Topology:
        """A random switch chain with per-link delay jitter: the
        adversarial-lookahead family (every delay is still >= the
        minimum, so the LCC argument must hold — that is the point)."""
        rng = substream(self.seed, 0x70, self.topo_arg)
        topo = Topology(f"hetero{self.topo_arg}-{self.seed}")
        n_switches = max(2, min(4, self.topo_arg))
        switches = [topo.add_switch() for _ in range(n_switches)]
        for a, b in zip(switches, switches[1:]):
            jitter = int(rng.integers(1, 8))
            topo.add_link(a, b, 5 * GBPS, base * jitter)
        n_hosts = max(2, 2 * self.topo_arg)
        hosts = [topo.add_host() for _ in range(n_hosts)]
        for i, host in enumerate(hosts):
            sw = switches[int(rng.integers(0, n_switches))] \
                if self.delay_profile == "hetero" else switches[i % n_switches]
            jitter = int(rng.integers(1, 5))
            topo.add_link(host, sw, 10 * GBPS, base * jitter)
        return topo.freeze()

    def build_flows(self, topo: Topology):
        """The spec's traffic: a ``List[Flow]``, or a
        :class:`~repro.traffic.FlowColumns` for the columnar kinds
        (``wan_twin`` / ``storage``, which exercise the arrival-engine
        batch path the per-flow kinds never touch)."""
        hosts = topo.hosts
        size = self.flow_kb * 1000
        transport = _TRANSPORTS.get(self.transport, Transport.DCTCP)
        if self.traffic in ("wan_twin", "storage"):
            return self._columnar_flows(hosts, size)
        if self.traffic == "fixed":
            flows = fixed_flows(hosts, n_flows=self.n_flows, size_bytes=size,
                                transport=transport, stagger_ps=us(2),
                                seed=self.seed)
        elif self.traffic == "mesh":
            flows = full_mesh_dynamic(
                hosts, duration_ps=us(300), load=self.load_pct / 100.0,
                host_rate_bps=10 * GBPS, sizes=TINY, transport=transport,
                seed=self.seed, max_flows=self.n_flows,
            )
            if not flows:  # extreme-low-load corner: fall back to fixed
                flows = fixed_flows(hosts, n_flows=max(2, self.n_flows // 2),
                                    size_bytes=size, transport=transport,
                                    seed=self.seed)
        elif self.traffic == "incast":
            rng = substream(self.seed, 0x71)
            target = int(hosts[int(rng.integers(0, len(hosts)))])
            senders = [h for h in hosts if h != target]
            fan = max(2, min(len(senders), self.n_flows))
            flows = incast(target, senders[:fan], size_bytes=size,
                           transport=transport, stagger_ps=us(1))
        elif self.traffic == "permutation":
            flows = permutation(hosts, size_bytes=size, transport=transport,
                                seed=self.seed)
        elif self.traffic == "steady":
            # Steady-state: one paced UDP flow per source host (a
            # permutation, so no two flows share a sender NIC) with
            # staggered starts.  Combined with the boosted dumbbell
            # bottleneck this is drop-free and exactly periodic — the
            # regime where the window-signature cache gets hits, which
            # makes the ``dons-numpy-ffwd`` oracle (and the
            # ``stale_cache_delta`` drill) non-vacuous under fuzz.
            base = permutation(hosts, size_bytes=max(size, 120_000),
                               transport=Transport.UDP, seed=self.seed)
            flows = [
                Flow(flow_id=f.flow_id, src=f.src, dst=f.dst,
                     size_bytes=f.size_bytes, start_ps=us(2) * i,
                     transport=Transport.UDP)
                for i, f in enumerate(base)
            ]
        else:
            raise ConfigError(f"unknown traffic kind {self.traffic!r}")
        return self._mix(flows)

    #: Scaled-down WAN class table for conformance runs: the bench
    #: table's fb-cache BE flows are megabytes, which a fuzz scenario
    #: cannot afford; ``tiny`` keeps the DSCP structure at fuzz scale.
    _CONF_WAN_TABLE = (
        ("EF", Transport.UDP, "", 512, 0.15),
        ("AF", Transport.DCTCP, "tiny", 0, 0.35),
        ("BE", Transport.DCTCP, "tiny", 0, 0.50),
    )

    def _columnar_flows(self, hosts, size: int):
        """Arrival-engine traffic (wan_twin / storage) for this spec."""
        from ..bench.workloads import (
            storage_flow_columns, wan_twin_flow_columns,
        )
        if self.traffic == "wan_twin":
            arrival = self.arrival if self.arrival in (
                "onoff", "poisson", "empirical") else "poisson"
            return wan_twin_flow_columns(
                hosts, self.seed, horizon_ps=us(300),
                n_flows=max(2, self.n_flows),
                classes=min(max(1, self.num_classes), 3),
                load=self.load_pct / 100.0, arrival=arrival,
                table=self._CONF_WAN_TABLE,
            )
        arrival = self.arrival if self.arrival in (
            "poisson", "onoff", "periodic") else "poisson"
        return storage_flow_columns(
            hosts, self.seed, horizon_ps=us(300),
            blocks=max(1, self.n_flows // 3), block_bytes=size,
            arrival=arrival, pipeline_delay_ps=us(5),
            heartbeat_period_ps=us(60), report_period_ps=us(150),
            report_bytes=4096,
        )

    def _mix(self, flows: List[Flow]) -> List[Flow]:
        """Apply the transport mix and traffic-class assignment."""
        mixed = self.transport == "mixed"
        cycle = (Transport.DCTCP, Transport.RENO, Transport.UDP)
        out = []
        for i, f in enumerate(flows):
            out.append(Flow(
                flow_id=f.flow_id, src=f.src, dst=f.dst,
                size_bytes=f.size_bytes, start_ps=f.start_ps,
                transport=cycle[i % 3] if mixed else f.transport,
                priority=i % self.num_classes if self.num_classes > 1 else 0,
            ))
        return out

    def scenario_name(self) -> str:
        return (f"conf-{self.topology}{self.topo_arg}-{self.traffic}"
                f"-s{self.seed}")

    def build(self) -> Scenario:
        """Materialize the scenario this spec describes (deterministic)."""
        topo = self.build_topology()
        flows = self.build_flows(topo)
        return make_scenario(
            topo, flows,
            name=self.scenario_name(),
            scheduler=SchedulerKind(self.scheduler),
            num_classes=self.num_classes,
            buffer_bytes=self.buffer_kb * 1024,
            aqm=AqmConfig(kind=_AQM_KINDS[self.aqm]),
            duration_ps=us(self.duration_us) if self.duration_us else None,
        )

    def num_nodes(self) -> int:
        return self.build_topology().num_nodes

    # --- serialization ----------------------------------------------------

    def to_dict(self) -> Dict:
        doc = asdict(self)
        doc["format"] = FORMAT
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "ScenarioSpec":
        doc = dict(doc)
        fmt = doc.pop("format", FORMAT)
        if fmt != FORMAT:
            raise ConfigError(f"unknown conformance spec format {fmt!r}")
        return cls(**doc)


def generate_spec(seed: int, index: int) -> ScenarioSpec:
    """The ``index``-th spec of fuzz stream ``seed`` (pure function)."""
    rng = substream(seed, 0xC0F, index)

    def pick(options):
        return options[int(rng.integers(0, len(options)))]

    topology = pick(TOPOLOGY_FAMILIES)
    # FatTree is fixed at K=4 (36 nodes) — larger sizes belong to perf
    # runs, not the conformance loop; other families scale via topo_arg.
    topo_arg = {
        "dumbbell": int(rng.integers(2, 7)),
        "fattree": 4,
        "leafspine": int(rng.integers(2, 4)),
        "hetero": int(rng.integers(2, 5)),
    }[topology]
    traffic = pick(TRAFFIC_KINDS)
    scheduler = pick(SCHEDULERS)
    num_classes = int(rng.integers(2, 4)) if scheduler != "fifo" else 1
    transport = pick(TRANSPORT_MIXES)
    if traffic == "steady":
        # Steady-state exists to exercise the fast-forward cache: pure
        # UDP (the only memo-eligible transport) on a dumbbell whose
        # bottleneck is provisioned for the whole permutation, so the
        # run is drop-free and window signatures actually repeat.
        topology = "dumbbell"
        topo_arg = min(topo_arg, 6)
        transport = "udp"
    elif transport == "udp" and traffic != "incast":
        # pure-UDP meshes finish instantly and test nothing; keep UDP in
        # the mixes and in incast (where pacing vs drops matters).
        transport = "mixed"
    duration_us = int(rng.integers(40, 200)) if rng.integers(0, 4) == 0 else None
    n_flows = int(rng.integers(4, 25))
    flow_kb = int(pick((20, 40, 60, 100, 150)))
    aqm = pick(AQMS)
    arrival = pick(ARRIVALS)
    if traffic == "wan_twin":
        if arrival == "periodic":  # wan twin paces EF itself
            arrival = "poisson"
        if scheduler == "fifo":    # give the DSCP mix a classful port
            scheduler, num_classes = "sp", 3
        num_classes = min(num_classes, 3)
    elif traffic == "storage" and arrival == "empirical":
        arrival = "periodic"
    if traffic == "steady" and aqm == "red":
        # RED statically disables the window-memo cache (its EWMA state
        # is unobservable to the signature); steady scenarios exist to
        # exercise that cache, so swap in the other marking AQM.
        aqm = "ecn"
    return ScenarioSpec(
        seed=seed * 1_000_003 + index,
        topology=topology,
        topo_arg=topo_arg,
        traffic=traffic,
        n_flows=n_flows,
        flow_kb=flow_kb,
        transport=transport,
        scheduler=scheduler,
        num_classes=num_classes,
        aqm=aqm,
        buffer_kb=int(pick((15, 30, 60, 120))),
        delay_profile=pick(("uniform", "hetero")),
        delay_scale=int(pick((1, 1, 2, 5))),
        duration_us=duration_us,
        load_pct=int(rng.integers(20, 70)),
        arrival=arrival,
    )


# --- shrinking -------------------------------------------------------------

def shrink_candidates(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Strictly-simpler variants of ``spec``, most aggressive first."""
    # Topology: move toward the smallest dumbbell.
    if spec.topology != "dumbbell":
        yield replace(spec, topology="dumbbell", topo_arg=2)
    elif spec.topo_arg > 1:
        yield replace(spec, topo_arg=max(1, spec.topo_arg // 2))
        yield replace(spec, topo_arg=spec.topo_arg - 1)
    # Traffic: fewer flows, then the plainest pattern.
    if spec.n_flows > 2:
        yield replace(spec, n_flows=max(2, spec.n_flows // 2))
        yield replace(spec, n_flows=spec.n_flows - 1)
    if spec.traffic == "storage":
        # Gentler first step: stay columnar (a columnar-path bug must
        # keep reproducing) but drop the replica-chain expansion.
        yield replace(spec, traffic="wan_twin")
    if spec.traffic != "fixed":
        yield replace(spec, traffic="fixed")
    if spec.arrival != "poisson":
        yield replace(spec, arrival="poisson")
    # Protocol set / configuration: one knob at a time.
    if spec.transport != "dctcp":
        yield replace(spec, transport="dctcp")
    if spec.scheduler != "fifo" or spec.num_classes != 1:
        yield replace(spec, scheduler="fifo", num_classes=1)
    if spec.aqm != "ecn":
        yield replace(spec, aqm="ecn")
    if spec.flow_kb > 20:
        yield replace(spec, flow_kb=max(20, spec.flow_kb // 2))
    if spec.delay_profile != "uniform" or spec.delay_scale != 1:
        yield replace(spec, delay_profile="uniform", delay_scale=1)
    if spec.duration_us is not None:
        yield replace(spec, duration_us=None)
    if spec.load_pct > 20:
        yield replace(spec, load_pct=20)


def shrink(
    spec: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    max_attempts: int = 100,
) -> ScenarioSpec:
    """Greedy deterministic shrink: accept the first simpler variant
    that still fails, repeat to a fixpoint (or the attempt budget).

    ``still_fails`` must be a pure predicate over a spec — typically
    "rebuild, re-run the failing oracle set, and check that a divergence
    or invariant violation is still reported".
    """
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in shrink_candidates(spec):
            attempts += 1
            failed = False
            try:
                failed = still_fails(candidate)
            except ConfigError:
                failed = False  # over-shrunk into an invalid spec
            if failed:
                spec = candidate
                improved = True
                break
            if attempts >= max_attempts:
                break
    return spec
