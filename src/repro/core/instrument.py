"""Instrumentation bus: one structured observation channel per engine.

Every engine owns an :class:`InstrumentationBus` and publishes three
kinds of observations to it; everything that used to be hand-wired
(``op_hook`` threading through constructors, ``PoolStats`` on the worker
pool, direct ``TraceRecorder`` calls inside the systems) is a
*subscriber* instead:

* **op stream** — ``bus.op(code, location, uid)``, one call per
  processed operation in batched processing order.  The machine model's
  access recorders (:mod:`repro.machine.access`) subscribe with
  :meth:`InstrumentationBus.subscribe_ops` and turn the stream into
  address traces for the cache simulator.
* **trace stream** — the packet-visible events of §6.1's fidelity claim
  (enqueue, drop, service start, delivery, flow completion).  A
  :class:`~repro.metrics.TraceRecorder` subscribes with
  :meth:`subscribe_trace`; the bus forwards synchronously, so entry
  order — and therefore the trace digest — is byte-identical to the
  direct wiring it replaces.
* **counters and timers** — named counters, per-system task/item
  accounting from the worker pool, and per-window/per-system wall-clock
  from :meth:`system_timer`.  ``python -m repro profile`` renders these;
  the cost model consumes the event counts as before.

The hot-path contract: with no subscribers, every publish degrades to a
guarded no-op (``bus.has_ops`` / ``bus.trace_level`` checks), so an
uninstrumented run pays one attribute test per publish site, the same
price the old ``if self.op_hook:`` / ``if trace.level:`` guards paid.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

#: Machine-model op codes carried on the op stream (kept in sync with
#: ``repro.machine.access`` / ``repro.des.simulator``).
OP_SEND = 0
OP_FORWARD = 1
OP_SERVICE = 2
OP_HOST_RX = 3
OP_WINDOW = 9

#: An op-stream subscriber: ``hook(op_code, location, packet_uid)``.
OpSubscriber = Callable[[int, int, int], None]


@dataclass
class SystemProfile:
    """One system's accounting inside one window (or in aggregate)."""

    items: int = 0
    tasks: int = 0
    elapsed_s: float = 0.0

    def add(self, other: "SystemProfile") -> None:
        self.items += other.items
        self.tasks += other.tasks
        self.elapsed_s += other.elapsed_s


@dataclass
class WindowProfile:
    """Per-system accounting of one lookahead window."""

    index: int
    start_ps: int
    systems: Dict[str, SystemProfile] = field(default_factory=dict)

    def system(self, name: str) -> SystemProfile:
        prof = self.systems.get(name)
        if prof is None:
            prof = self.systems[name] = SystemProfile()
        return prof


class InstrumentationBus:
    """Counters, timers, and op/trace streams with pluggable subscribers."""

    def __init__(self, keep_window_profiles: bool = True) -> None:
        self.counters: Dict[str, int] = {}
        self.keep_window_profiles = keep_window_profiles
        #: per-window profiles (bounded by window count; the profiler CLI
        #: and Fig. 13-style breakdowns read these).
        self.windows: List[WindowProfile] = []
        self._window_index: Dict[int, WindowProfile] = {}
        #: whole-run aggregate per system.
        self.totals: Dict[str, SystemProfile] = {}
        self._current: Optional[WindowProfile] = None
        self._op_subs: List[OpSubscriber] = []
        self.has_ops = False
        self._trace_subs: List[Any] = []
        self.trace_level = 0

    # --- counters ---------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # --- op stream --------------------------------------------------------

    def subscribe_ops(self, hook: OpSubscriber) -> OpSubscriber:
        """Register a machine-model probe; returns it for chaining."""
        self._op_subs.append(hook)
        self.has_ops = True
        return hook

    def op(self, code: int, location: int, uid: int) -> None:
        """Publish one operation (callers guard with ``bus.has_ops``)."""
        for sub in self._op_subs:
            sub(code, location, uid)

    # --- trace stream -----------------------------------------------------

    def subscribe_trace(self, recorder: Any) -> Any:
        """Register a TraceRecorder-shaped subscriber (``enq``/``drop``/
        ``deq``/``deliver``/``flow_done`` methods plus a ``level``)."""
        self._trace_subs.append(recorder)
        self.trace_level = max(self.trace_level,
                               int(getattr(recorder, "level", 0)))
        return recorder

    def replace_trace(self, old: Any, new: Any) -> Any:
        """Swap one trace subscriber for another (checkpoint restore)."""
        self._trace_subs = [s for s in self._trace_subs if s is not old]
        self.trace_level = max(
            (int(getattr(s, "level", 0)) for s in self._trace_subs),
            default=0,
        )
        return self.subscribe_trace(new)

    def enq(self, t: int, iface: int, flow: int, is_ack: int, seq: int,
            marked: int) -> None:
        for sub in self._trace_subs:
            sub.enq(t, iface, flow, is_ack, seq, marked)

    def drop(self, t: int, iface: int, flow: int, is_ack: int, seq: int) -> None:
        for sub in self._trace_subs:
            sub.drop(t, iface, flow, is_ack, seq)

    def deq(self, t: int, iface: int, flow: int, is_ack: int, seq: int) -> None:
        for sub in self._trace_subs:
            sub.deq(t, iface, flow, is_ack, seq)

    def deliver(self, t: int, node: int, flow: int, is_ack: int, seq: int) -> None:
        for sub in self._trace_subs:
            sub.deliver(t, node, flow, is_ack, seq)

    def flow_done(self, t: int, node: int, flow: int) -> None:
        for sub in self._trace_subs:
            sub.flow_done(t, node, flow)

    # --- trace canonicalization -------------------------------------------

    def trace_entries(self) -> List[tuple]:
        """Raw trace entries from the first recording subscriber.

        Subscribers expose their buffered entries either as an
        ``entries`` attribute (:class:`~repro.metrics.TraceRecorder`) or
        via an ``entries()``/``sorted_entries()`` accessor; forwarding
        shims without a buffer (e.g. cluster agent relays) are skipped.
        """
        for sub in self._trace_subs:
            entries = getattr(sub, "entries", None)
            if callable(entries):
                entries = entries()
            if entries is not None:
                return list(entries)
        return []

    def canonical_trace(self) -> List[tuple]:
        """The canonical (sorted) trace — the unit of the §6.1 fidelity
        claim.  Two runs are conformant iff these lists are equal."""
        return sorted(self.trace_entries())

    def trace_digest(self) -> str:
        """Hex digest of the canonical trace (order-independent)."""
        import hashlib
        h = hashlib.sha256()
        for entry in self.canonical_trace():
            h.update(repr(entry).encode())
        return h.hexdigest()

    # --- task accounting (worker pool) ------------------------------------

    def task_batch(self, system: str, sizes: Sequence[int]) -> None:
        """One pool dispatch: ``len(sizes)`` tasks, ``sizes[i]`` items each."""
        tasks = len(sizes)
        items = sum(sizes)
        self.count("pool.tasks", tasks)
        self.count("pool.items", items)
        total = self.totals.get(system)
        if total is None:
            total = self.totals[system] = SystemProfile()
        total.tasks += tasks
        total.items += items
        if self._current is not None:
            prof = self._current.system(system)
            prof.tasks += tasks
            prof.items += items

    # --- timers -----------------------------------------------------------

    def window_begin(self, index: int, start_ps: int) -> None:
        """A new lookahead window starts; subsequent system timers and
        task batches are attributed to it."""
        self.count("windows")
        if self.keep_window_profiles:
            self._current = WindowProfile(index=index, start_ps=start_ps)
            self.windows.append(self._current)
            self._window_index[index] = self._current

    def system_time(self, system: str, dt: float) -> None:
        """Attribute ``dt`` seconds to one system in the current window.

        The engine hot path calls this directly (two ``perf_counter``
        reads per system run) rather than through the context manager,
        whose generator machinery is measurable at window rates.
        """
        total = self.totals.get(system)
        if total is None:
            total = self.totals[system] = SystemProfile()
        total.elapsed_s += dt
        if self._current is not None:
            self._current.system(system).elapsed_s += dt

    @contextmanager
    def system_timer(self, system: str) -> Iterator[None]:
        """Time one system's run inside the current window."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.system_time(system, time.perf_counter() - t0)

    # --- cluster aggregation ----------------------------------------------

    def merge_child(
        self,
        tag: str,
        counters: Dict[str, int],
        totals: Dict[str, SystemProfile],
        windows: Sequence[WindowProfile],
    ) -> None:
        """Fold one child engine's bus into this aggregate bus.

        The cluster runtime calls this once per agent at ``finalize``
        with the agent's :class:`AgentReport` streams: counters are
        *summed* (cluster totals), while per-window and whole-run system
        profiles are *tagged* ``<tag>:<system>`` so per-agent timings
        stay distinguishable — ``python -m repro profile --cluster``
        and :func:`repro.partition.measured_machine_times` read them.
        """
        for name, n in counters.items():
            self.count(name, n)
        for system, prof in totals.items():
            name = f"{tag}:{system}"
            total = self.totals.get(name)
            if total is None:
                total = self.totals[name] = SystemProfile()
            total.add(prof)
        if not self.keep_window_profiles:
            return
        for child in windows:
            mine = self._window_index.get(child.index)
            if mine is None:
                mine = WindowProfile(index=child.index,
                                     start_ps=child.start_ps)
                self._window_index[child.index] = mine
                self.windows.append(mine)
            for system, prof in child.systems.items():
                mine.system(f"{tag}:{system}").add(prof)
        self.windows.sort(key=lambda w: w.index)

    # --- reporting --------------------------------------------------------

    def profile_rows(self) -> List[Dict[str, Any]]:
        """Flat per-window/per-system rows for reports and JSON dumps."""
        rows = []
        for win in self.windows:
            for name, prof in sorted(win.systems.items()):
                rows.append({
                    "window": win.index,
                    "start_ps": win.start_ps,
                    "system": name,
                    "items": prof.items,
                    "tasks": prof.tasks,
                    "elapsed_s": prof.elapsed_s,
                })
        return rows
