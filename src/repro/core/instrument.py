"""Instrumentation bus: one structured observation channel per engine.

Every engine owns an :class:`InstrumentationBus` and publishes three
kinds of observations to it; everything that used to be hand-wired
(``op_hook`` threading through constructors, ``PoolStats`` on the worker
pool, direct ``TraceRecorder`` calls inside the systems) is a
*subscriber* instead:

* **op stream** — ``bus.op(code, location, uid)``, one call per
  processed operation in batched processing order.  The machine model's
  access recorders (:mod:`repro.machine.access`) subscribe with
  :meth:`InstrumentationBus.subscribe_ops` and turn the stream into
  address traces for the cache simulator.
* **trace stream** — the packet-visible events of §6.1's fidelity claim
  (enqueue, drop, service start, delivery, flow completion).  A
  :class:`~repro.metrics.TraceRecorder` subscribes with
  :meth:`subscribe_trace`; the bus forwards synchronously, so entry
  order — and therefore the trace digest — is byte-identical to the
  direct wiring it replaces.
* **counters and timers** — named counters, per-system task/item
  accounting from the worker pool, and per-window/per-system wall-clock
  from :meth:`system_timer`.  ``python -m repro profile`` renders these;
  the cost model consumes the event counts as before.

Telemetry (PR 5) adds two more observation kinds behind one master
switch, ``bus.telemetry``:

* **spans** — begin/end wall-clock intervals (run → window → system →
  kernel/commit phases, plus transport-level serialize / send /
  barrier-wait slices recorded by the cluster stack).  ``bus.span(name,
  **attrs)`` is the context-manager API; hot paths that already hold
  ``perf_counter`` readings call :meth:`span_add` directly.  Span
  timestamps are seconds relative to the bus *epoch*; the paired
  ``epoch_wall`` (wall-clock at bus creation) is what lets a cluster bus
  normalize child-agent spans recorded on another machine's clock.
* **metrics** — a :class:`~repro.core.telemetry.MetricsRegistry` of
  counters, gauges, and fixed-bucket histograms (queue depths, link
  utilization, FCTs, barrier waits) whose ``snapshot()``/``merge()``
  rides the same transport report path as the counters.

The hot-path contract: with no subscribers, every publish degrades to a
guarded no-op (``bus.has_ops`` / ``bus.trace_level`` / ``bus.telemetry``
checks), so an uninstrumented run pays one attribute test per publish
site, the same price the old ``if self.op_hook:`` / ``if trace.level:``
guards paid.  With telemetry disabled ``span()`` returns one shared
no-op context manager — zero allocation, zero records.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from .telemetry import MetricsRegistry

#: Machine-model op codes carried on the op stream (kept in sync with
#: ``repro.machine.access`` / ``repro.des.simulator``).
OP_SEND = 0
OP_FORWARD = 1
OP_SERVICE = 2
OP_HOST_RX = 3
OP_WINDOW = 9

#: An op-stream subscriber: ``hook(op_code, location, packet_uid)``.
OpSubscriber = Callable[[int, int, int], None]

#: One recorded span: ``(t0_s, t1_s, name, category, attrs-or-None)``.
#: Times are seconds relative to the owning bus's epoch; ``category``
#: groups spans for the timeline exporter ("run", "window", "system",
#: "transport", "cluster").
SpanRecord = tuple


class _NoopSpan:
    """Shared do-nothing context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: records ``(t0, t1, name, cat, attrs)`` on exit."""

    __slots__ = ("_bus", "_name", "_cat", "_attrs", "_t0")

    def __init__(self, bus: "InstrumentationBus", name: str, cat: str,
                 attrs: Optional[Dict[str, Any]]) -> None:
        self._bus = bus
        self._name = name
        self._cat = cat
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._t0 = self._bus.now()
        return self

    def __exit__(self, *exc: Any) -> bool:
        bus = self._bus
        bus.spans.append(
            (self._t0, bus.now(), self._name, self._cat, self._attrs)
        )
        return False


@dataclass
class SystemProfile:
    """One system's accounting inside one window (or in aggregate)."""

    items: int = 0
    tasks: int = 0
    elapsed_s: float = 0.0

    def add(self, other: "SystemProfile") -> None:
        self.items += other.items
        self.tasks += other.tasks
        self.elapsed_s += other.elapsed_s


@dataclass
class WindowProfile:
    """Per-system accounting of one lookahead window."""

    index: int
    start_ps: int
    systems: Dict[str, SystemProfile] = field(default_factory=dict)

    def system(self, name: str) -> SystemProfile:
        prof = self.systems.get(name)
        if prof is None:
            prof = self.systems[name] = SystemProfile()
        return prof


class InstrumentationBus:
    """Counters, timers, and op/trace streams with pluggable subscribers."""

    def __init__(self, keep_window_profiles: bool = True) -> None:
        self.counters: Dict[str, int] = {}
        self.keep_window_profiles = keep_window_profiles
        #: per-window profiles (bounded by window count; the profiler CLI
        #: and Fig. 13-style breakdowns read these).
        self.windows: List[WindowProfile] = []
        self._window_index: Dict[int, WindowProfile] = {}
        #: whole-run aggregate per system.
        self.totals: Dict[str, SystemProfile] = {}
        self._current: Optional[WindowProfile] = None
        self._op_subs: List[OpSubscriber] = []
        self.has_ops = False
        self._trace_subs: List[Any] = []
        self.trace_level = 0
        #: Master telemetry switch: spans + metric sampling.  Off by
        #: default; every telemetry publish site guards on it.
        self.telemetry = False
        self.spans: List[SpanRecord] = []
        self.metrics = MetricsRegistry()
        # Clock anchors: span timestamps are perf_counter seconds
        # relative to _epoch_perf; epoch_wall locates that zero on the
        # wall clock so buses from different processes can be aligned.
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()

    # --- counters ---------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # --- telemetry: spans -------------------------------------------------

    def enable_telemetry(self, on: bool = True) -> None:
        """Turn span recording and metric sampling on (or off)."""
        self.telemetry = on

    def now(self) -> float:
        """Seconds since the bus epoch (the span timebase)."""
        return time.perf_counter() - self._epoch_perf

    def span(self, name: str, cat: str = "span", **attrs: Any):
        """Context manager recording one span; a shared no-op when
        telemetry is disabled (zero allocation on the cold path)."""
        if not self.telemetry:
            return _NOOP_SPAN
        return _Span(self, name, cat, attrs or None)

    def span_add(self, name: str, t0: float, t1: float, cat: str = "span",
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record a finished span from explicit epoch-relative times —
        the hot path uses this to reuse ``perf_counter`` readings it
        already took.  Callers guard with ``bus.telemetry``."""
        self.spans.append((t0, t1, name, cat, attrs))

    def rel(self, perf_t: float) -> float:
        """Convert a raw ``time.perf_counter()`` reading to span time."""
        return perf_t - self._epoch_perf

    # --- op stream --------------------------------------------------------

    def subscribe_ops(self, hook: OpSubscriber) -> OpSubscriber:
        """Register a machine-model probe; returns it for chaining."""
        self._op_subs.append(hook)
        self.has_ops = True
        return hook

    def op(self, code: int, location: int, uid: int) -> None:
        """Publish one operation (callers guard with ``bus.has_ops``)."""
        for sub in self._op_subs:
            sub(code, location, uid)

    # --- trace stream -----------------------------------------------------

    def subscribe_trace(self, recorder: Any) -> Any:
        """Register a TraceRecorder-shaped subscriber (``enq``/``drop``/
        ``deq``/``deliver``/``flow_done`` methods plus a ``level``)."""
        self._trace_subs.append(recorder)
        self.trace_level = max(self.trace_level,
                               int(getattr(recorder, "level", 0)))
        return recorder

    def unsubscribe_trace(self, old: Any) -> None:
        """Remove one trace subscriber and recompute the trace level
        (memoization teardown; inverse of :meth:`subscribe_trace`)."""
        self._trace_subs = [s for s in self._trace_subs if s is not old]
        self.trace_level = max(
            (int(getattr(s, "level", 0)) for s in self._trace_subs),
            default=0,
        )

    def replace_trace(self, old: Any, new: Any) -> Any:
        """Swap one trace subscriber for another (checkpoint restore)."""
        self._trace_subs = [s for s in self._trace_subs if s is not old]
        self.trace_level = max(
            (int(getattr(s, "level", 0)) for s in self._trace_subs),
            default=0,
        )
        return self.subscribe_trace(new)

    def enq(self, t: int, iface: int, flow: int, is_ack: int, seq: int,
            marked: int) -> None:
        for sub in self._trace_subs:
            sub.enq(t, iface, flow, is_ack, seq, marked)

    def drop(self, t: int, iface: int, flow: int, is_ack: int, seq: int) -> None:
        for sub in self._trace_subs:
            sub.drop(t, iface, flow, is_ack, seq)

    def deq(self, t: int, iface: int, flow: int, is_ack: int, seq: int) -> None:
        for sub in self._trace_subs:
            sub.deq(t, iface, flow, is_ack, seq)

    def deliver(self, t: int, node: int, flow: int, is_ack: int, seq: int) -> None:
        for sub in self._trace_subs:
            sub.deliver(t, node, flow, is_ack, seq)

    def flow_done(self, t: int, node: int, flow: int) -> None:
        for sub in self._trace_subs:
            sub.flow_done(t, node, flow)

    # --- trace canonicalization -------------------------------------------

    def trace_entries(self) -> List[tuple]:
        """Raw trace entries from the first recording subscriber.

        Subscribers expose their buffered entries either as an
        ``entries`` attribute (:class:`~repro.metrics.TraceRecorder`) or
        via an ``entries()``/``sorted_entries()`` accessor; forwarding
        shims without a buffer (e.g. cluster agent relays) are skipped.
        """
        for sub in self._trace_subs:
            entries = getattr(sub, "entries", None)
            if callable(entries):
                entries = entries()
            if entries is not None:
                return list(entries)
        return []

    def canonical_trace(self) -> List[tuple]:
        """The canonical (sorted) trace — the unit of the §6.1 fidelity
        claim.  Two runs are conformant iff these lists are equal."""
        return sorted(self.trace_entries())

    def trace_digest(self) -> str:
        """Hex digest of the canonical trace (order-independent)."""
        import hashlib
        h = hashlib.sha256()
        for entry in self.canonical_trace():
            h.update(repr(entry).encode())
        return h.hexdigest()

    # --- task accounting (worker pool) ------------------------------------

    def task_batch(self, system: str, sizes: Sequence[int]) -> None:
        """One pool dispatch: ``len(sizes)`` tasks, ``sizes[i]`` items each."""
        tasks = len(sizes)
        items = sum(sizes)
        self.count("pool.tasks", tasks)
        self.count("pool.items", items)
        total = self.totals.get(system)
        if total is None:
            total = self.totals[system] = SystemProfile()
        total.tasks += tasks
        total.items += items
        if self._current is not None:
            prof = self._current.system(system)
            prof.tasks += tasks
            prof.items += items

    # --- timers -----------------------------------------------------------

    def window_begin(self, index: int, start_ps: int) -> None:
        """A new lookahead window starts; subsequent system timers and
        task batches are attributed to it."""
        self.count("windows")
        if self.keep_window_profiles:
            self._current = WindowProfile(index=index, start_ps=start_ps)
            self.windows.append(self._current)
            self._window_index[index] = self._current

    def system_time(self, system: str, dt: float) -> None:
        """Attribute ``dt`` seconds to one system in the current window.

        The engine hot path calls this directly (two ``perf_counter``
        reads per system run) rather than through the context manager,
        whose generator machinery is measurable at window rates.
        """
        total = self.totals.get(system)
        if total is None:
            total = self.totals[system] = SystemProfile()
        total.elapsed_s += dt
        if self._current is not None:
            self._current.system(system).elapsed_s += dt

    @contextmanager
    def system_timer(self, system: str) -> Iterator[None]:
        """Time one system's run inside the current window."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.system_time(system, time.perf_counter() - t0)

    # --- cluster aggregation ----------------------------------------------

    def merge_child(
        self,
        tag: str,
        counters: Dict[str, int],
        totals: Dict[str, SystemProfile],
        windows: Sequence[WindowProfile],
        spans: Optional[Sequence[SpanRecord]] = None,
        metrics: Optional[Dict[str, Any]] = None,
        epoch_wall: Optional[float] = None,
    ) -> None:
        """Fold one child engine's bus into this aggregate bus.

        The cluster runtime calls this once per agent at ``finalize``
        with the agent's :class:`AgentReport` streams: counters are
        *summed* (cluster totals), while per-window and whole-run system
        profiles are *tagged* ``<tag>:<system>`` so per-agent timings
        stay distinguishable — ``python -m repro profile --cluster``
        and :func:`repro.partition.measured_machine_times` read them.

        Telemetry streams ride the same call: ``spans`` are renamed
        ``<tag>:<name>`` and shifted from the child's clock into this
        bus's timebase via the wall-clock offset (``epoch_wall`` is the
        child bus's epoch on the shared wall clock); ``metrics`` is the
        child registry's snapshot — counters/histograms summed
        cluster-wide, gauges prefixed ``<tag>:``.
        """
        for name, n in counters.items():
            self.count(name, n)
        if spans:
            offset = ((epoch_wall - self.epoch_wall)
                      if epoch_wall is not None else 0.0)
            for t0, t1, name, cat, attrs in spans:
                self.spans.append(
                    (t0 + offset, t1 + offset, f"{tag}:{name}", cat, attrs)
                )
        if metrics:
            self.metrics.merge(metrics, prefix=f"{tag}:")
        for system, prof in totals.items():
            name = f"{tag}:{system}"
            total = self.totals.get(name)
            if total is None:
                total = self.totals[name] = SystemProfile()
            total.add(prof)
        if not self.keep_window_profiles:
            return
        for child in windows:
            mine = self._window_index.get(child.index)
            if mine is None:
                mine = WindowProfile(index=child.index,
                                     start_ps=child.start_ps)
                self._window_index[child.index] = mine
                self.windows.append(mine)
            for system, prof in child.systems.items():
                mine.system(f"{tag}:{system}").add(prof)
        self.windows.sort(key=lambda w: w.index)

    # --- checkpoint support -----------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """Everything a checkpoint must carry so a restored engine's
        telemetry resumes where the dead engine's left off (spans and
        histograms recorded before the snapshot must survive the kill —
        the fault-recovery timeline-completeness guarantee)."""
        return {
            "counters": dict(self.counters),
            "totals": self.totals,
            "windows": self.windows,
            "spans": list(self.spans),
            "metrics": self.metrics.snapshot(),
            "epoch_wall": self.epoch_wall,
            "telemetry": self.telemetry,
        }

    def adopt_state(self, state: Dict[str, Any]) -> None:
        """Install a checkpointed bus state (restore path).  Restored
        span timestamps are rebased from the dead bus's epoch into this
        bus's timebase, so spans recorded before the crash and spans
        recorded after the restore share one clock."""
        import copy
        self.counters = dict(state["counters"])
        self.totals = copy.deepcopy(state["totals"])
        self.windows = copy.deepcopy(state["windows"])
        self._window_index = {w.index: w for w in self.windows}
        offset = state["epoch_wall"] - self.epoch_wall
        self.spans = [
            (t0 + offset, t1 + offset, name, cat, attrs)
            for t0, t1, name, cat, attrs in state["spans"]
        ]
        self.metrics = MetricsRegistry()
        self.metrics.merge(state["metrics"])
        self.telemetry = bool(state.get("telemetry", self.telemetry))

    # --- reporting --------------------------------------------------------

    def profile_rows(self) -> List[Dict[str, Any]]:
        """Flat per-window/per-system rows for reports and JSON dumps."""
        rows = []
        for win in self.windows:
            for name, prof in sorted(win.systems.items()):
                rows.append({
                    "window": win.index,
                    "start_ps": win.start_ps,
                    "system": name,
                    "items": prof.items,
                    "tasks": prof.tasks,
                    "elapsed_s": prof.elapsed_s,
                })
        return rows
