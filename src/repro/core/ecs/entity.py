"""Entity model: the four entity kinds of DONS (§3.2).

An entity is just a dense index into its kind's :class:`SoATable` —
"usually implemented as a unique identifier", as the paper puts it.
:class:`World` owns the four tables and the mapping from simulation
objects (flows, interfaces) to entity indices.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict

from .components import FieldSpec, SoATable
from ...errors import ConfigError

#: Known table backends.  ``python`` stores columns as lists and sweeps
#: them in the interpreter; ``numpy`` stores typed ndarrays and executes
#: the system kernels through the vectorized variants
#: (:mod:`repro.core.systems.vectorized`).
BACKENDS = ("python", "numpy")


def make_table(backend: str, kind: str, schema) -> "SoATable":
    """Construct one component table on the requested backend."""
    if backend == "python":
        return SoATable(kind, schema)
    if backend == "numpy":
        try:
            from .numpy_table import NumpyTable
        except ImportError as exc:  # pragma: no cover - numpy is baked in
            raise ConfigError(
                f"backend 'numpy' needs numpy installed: {exc}")
        return NumpyTable(kind, schema)
    raise ConfigError(
        f"unknown table backend {backend!r}; known: {', '.join(BACKENDS)}")


class EntityKind(IntEnum):
    """The paper's four entities."""

    SENDER = 0
    RECEIVER = 1
    INGRESS_PORT = 2
    EGRESS_PORT = 3


#: Component schemas.  Senders carry the DCTCP/UDP state machine fields;
#: receivers the reassembly state; ports reference their queues/FIB.
SENDER_SCHEMA = (
    FieldSpec("flow_id", -1),
    FieldSpec("src", -1),
    FieldSpec("dst", -1),
    FieldSpec("transport", 0),
    FieldSpec("size_bytes", 0),
    FieldSpec("total_segs", 0),
    FieldSpec("start_ps", 0),
    # DCTCP machine (mirrors protocols.dctcp.DctcpState).
    FieldSpec("snd_una", 0),
    FieldSpec("next_seq", 0),
    FieldSpec("cwnd", 0.0),
    FieldSpec("ssthresh", float("inf")),
    FieldSpec("alpha", 1.0),
    FieldSpec("acked_win", 0),
    FieldSpec("marked_win", 0),
    FieldSpec("alpha_seq", 0),
    FieldSpec("cut_seq", -1),
    FieldSpec("dupacks", 0),
    FieldSpec("srtt_ps", 0),
    FieldSpec("rttvar_ps", 0),
    FieldSpec("rto_ps", 0),
    FieldSpec("backoff", 1),
    FieldSpec("rtx_deadline", -1),  # -1 = disarmed
    FieldSpec("timer_gen", 0),
    FieldSpec("done", 0),
    FieldSpec("done_ps", -1),
    # UDP pacing cursor.
    FieldSpec("udp_next_seq", 0),
)

RECEIVER_SCHEMA = (
    FieldSpec("flow_id", -1),
    FieldSpec("host", -1),
    FieldSpec("total_segs", 0),
    FieldSpec("needs_ack", 0),
    FieldSpec("expected", 0),
    FieldSpec("unique_received", 0),
    FieldSpec("complete_ps", -1),
    FieldSpec("out_of_order", None, item_bytes=16),  # set per entity
)

INGRESS_SCHEMA = (
    FieldSpec("iface_id", -1),
    FieldSpec("node", -1),
    # The FIB is a shared component (one routing state for the world);
    # per-entity we keep only the owning node, per paper Fig. 6 where
    # IngressPorts of a device share its forwarding table.
)

EGRESS_SCHEMA = (
    FieldSpec("iface_id", -1),
    FieldSpec("node", -1),
    FieldSpec("port_ref", None, item_bytes=8),  # the EgressPort automaton
)


class World:
    """The ECS world: four tables plus shared (singleton) components.

    ``backend`` selects the column substrate for all four tables —
    ``python`` (list columns) or ``numpy`` (typed ndarray columns).
    """

    def __init__(self, backend: str = "python") -> None:
        self.backend = backend
        self.senders = make_table(backend, "sender", SENDER_SCHEMA)
        self.receivers = make_table(backend, "receiver", RECEIVER_SCHEMA)
        self.ingress = make_table(backend, "ingress", INGRESS_SCHEMA)
        self.egress = make_table(backend, "egress", EGRESS_SCHEMA)
        #: flow id -> sender / receiver entity index.
        self.sender_of_flow: Dict[int, int] = {}
        self.receiver_of_flow: Dict[int, int] = {}
        #: interface id -> egress entity index.
        self.egress_of_iface: Dict[int, int] = {}

    def table(self, kind: EntityKind) -> SoATable:
        return (self.senders, self.receivers, self.ingress, self.egress)[kind]

    def memory_bytes(self) -> int:
        """Modeled footprint of all component data."""
        return sum(
            t.memory_bytes()
            for t in (self.senders, self.receivers, self.ingress, self.egress)
        )
