"""Command buffers: the write-conflict fix of Appendix C.

The ForwardSystem has a many-to-one write conflict: several IngressPorts
forward into one EgressPort buffer.  Per the paper, each worker records
its writes in a private command buffer, and the main thread consolidates
all buffers afterwards — the *command pattern*.

Consolidation happens in ascending worker order, so the result is
deterministic regardless of thread scheduling; the TransmitSystem's
merge-sort then establishes the canonical chronological order anyway.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


class CommandBuffer(Generic[T]):
    """Private append-only log of (target, item) writes for one worker."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[int, T]] = []

    def append(self, target: int, item: T) -> None:
        self.entries.append((target, item))

    def append_many(self, target: int, items: Iterable[T]) -> None:
        """Bulk append: many items to one target (one kernel, one slice)."""
        self.entries.extend((target, item) for item in items)

    def extend(self, pairs: Iterable[Tuple[int, T]]) -> None:
        """Bulk append of pre-paired (target, item) writes."""
        self.entries.extend(pairs)

    def merge(self, other: "CommandBuffer[T]") -> "CommandBuffer[T]":
        """Absorb another buffer's entries (in its recorded order)."""
        self.entries.extend(other.entries)
        return self

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)


def merge_buffers(buffers: Sequence[CommandBuffer[T]]) -> CommandBuffer[T]:
    """Fold worker buffers into one, in worker order (deterministic)."""
    out: CommandBuffer[T] = CommandBuffer()
    for buf in buffers:
        out.merge(buf)
    return out


def consolidate(
    buffers: Sequence[CommandBuffer[T]],
    sink: Dict[int, List[T]],
) -> int:
    """Merge worker buffers into per-target lists, in worker order.

    Returns the number of consolidated writes (cost-model input).
    """
    total = 0
    for buf in buffers:
        for target, item in buf.entries:
            sink.setdefault(target, []).append(item)
        total += len(buf.entries)
    return total
