"""Command buffers: the write-conflict fix of Appendix C.

The ForwardSystem has a many-to-one write conflict: several IngressPorts
forward into one EgressPort buffer.  Per the paper, each worker records
its writes in a private command buffer, and the main thread consolidates
all buffers afterwards — the *command pattern*.

Consolidation happens in ascending worker order, so the result is
deterministic regardless of thread scheduling; the TransmitSystem's
merge-sort then establishes the canonical chronological order anyway.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


class CommandBuffer(Generic[T]):
    """Private append-only log of (target, item) writes for one worker."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[int, T]] = []

    def append(self, target: int, item: T) -> None:
        self.entries.append((target, item))

    def __len__(self) -> int:
        return len(self.entries)


def consolidate(
    buffers: Sequence[CommandBuffer[T]],
    sink: Dict[int, List[T]],
) -> int:
    """Merge worker buffers into per-target lists, in worker order.

    Returns the number of consolidated writes (cost-model input).
    """
    total = 0
    for buf in buffers:
        for target, item in buf.entries:
            sink.setdefault(target, []).append(item)
        total += len(buf.entries)
    return total
