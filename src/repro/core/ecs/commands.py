"""Command buffers: the write-conflict fix of Appendix C.

The ForwardSystem has a many-to-one write conflict: several IngressPorts
forward into one EgressPort buffer.  Per the paper, each worker records
its writes in a private command buffer, and the main thread consolidates
all buffers afterwards — the *command pattern*.

Consolidation happens in ascending worker order, so the result is
deterministic regardless of thread scheduling; the TransmitSystem's
merge-sort then establishes the canonical chronological order anyway.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


class CommandBuffer(Generic[T]):
    """Private append-only log of (target, item) writes for one worker."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[int, T]] = []

    def append(self, target: int, item: T) -> None:
        self.entries.append((target, item))

    def append_many(self, target: int, items: Iterable[T]) -> None:
        """Bulk append: many items to one target (one kernel, one slice)."""
        self.entries.extend((target, item) for item in items)

    def extend(self, pairs: Iterable[Tuple[int, T]]) -> None:
        """Bulk append of pre-paired (target, item) writes."""
        self.entries.extend(pairs)

    def merge(self, other: "CommandBuffer[T]") -> "CommandBuffer[T]":
        """Absorb another buffer's entries (in its recorded order)."""
        self.entries.extend(other.entries)
        return self

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)


def merge_buffers(buffers: Sequence[CommandBuffer[T]]) -> CommandBuffer[T]:
    """Fold worker buffers into one, in worker order (deterministic)."""
    out: CommandBuffer[T] = CommandBuffer()
    for buf in buffers:
        out.merge(buf)
    return out


def consolidate(
    buffers: Sequence[CommandBuffer[T]],
    sink: Dict[int, List[T]],
) -> int:
    """Merge worker buffers into per-target lists, in worker order.

    Returns the number of consolidated writes (cost-model input).
    """
    total = 0
    for buf in buffers:
        for target, item in buf.entries:
            sink.setdefault(target, []).append(item)
        total += len(buf.entries)
    return total


#: Below this many entries the per-entry dict path beats building index
#: arrays.  Measured on the perf-smoke workload (tuple payloads, ~26
#: distinct targets): the dict path wins at every batch size the
#: windowed engine produces, because opaque per-entry payloads must be
#: moved one at a time either way and CPython's dict-append loop has the
#: smaller constant.  The threshold is set where the stable argsort
#: could start to amortize (very large replays / bulk imports); the
#: grouped path stays semantically identical and property-tested.
GROUPED_CONSOLIDATE_MIN = 16384


def consolidate_grouped(
    buffers: Sequence[CommandBuffer[T]],
    sink: Dict[int, List[T]],
) -> int:
    """Vectorized :func:`consolidate`: commit whole index arrays at once.

    Concatenates every buffer's entries (worker order), stable-argsorts
    the target indices, and extends each target's sink list with one
    contiguous slice — the NumPy backend's command-buffer commit path.
    The stable sort preserves worker order *within* each target, so the
    per-target item sequences are exactly what :func:`consolidate`
    produces; only the dict's key insertion order differs (sorted by
    target instead of first-write order), which no consumer observes —
    the TransmitSystem re-sorts its port work list anyway.
    """
    n = 0
    for buf in buffers:
        n += len(buf.entries)
    if n < GROUPED_CONSOLIDATE_MIN:
        return consolidate(buffers, sink)
    entries: List[Tuple[int, T]] = []
    for buf in buffers:
        entries.extend(buf.entries)
    import numpy as np

    targets = np.fromiter((e[0] for e in entries), np.int64, n)
    order = np.argsort(targets, kind="stable")
    sorted_targets = targets[order]
    # Boundaries of each equal-target run in the sorted order.
    cuts = np.flatnonzero(sorted_targets[1:] != sorted_targets[:-1]) + 1
    start = 0
    bounds = cuts.tolist() + [n]
    for end in bounds:
        target = int(sorted_targets[start])
        items = [entries[k][1] for k in order[start:end].tolist()]
        bucket = sink.get(target)
        if bucket is None:
            sink[target] = items
        else:
            bucket.extend(items)
        start = end
    return n
