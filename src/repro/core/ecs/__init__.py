"""Entity-Component-System substrate used by the DOD engine."""

from .components import CHUNK_ENTITIES, FieldSpec, SoATable
from .commands import CommandBuffer, consolidate
from .entity import (
    EGRESS_SCHEMA, EntityKind, INGRESS_SCHEMA, RECEIVER_SCHEMA,
    SENDER_SCHEMA, World,
)

__all__ = [
    "CHUNK_ENTITIES", "FieldSpec", "SoATable",
    "CommandBuffer", "consolidate",
    "EntityKind", "World",
    "SENDER_SCHEMA", "RECEIVER_SCHEMA", "INGRESS_SCHEMA", "EGRESS_SCHEMA",
]
