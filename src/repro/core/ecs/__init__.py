"""Entity-Component-System substrate used by the DOD engine."""

from .components import CHUNK_ENTITIES, FieldSpec, SoATable
from .commands import CommandBuffer, consolidate, merge_buffers
from .entity import (
    EGRESS_SCHEMA, EntityKind, INGRESS_SCHEMA, RECEIVER_SCHEMA,
    SENDER_SCHEMA, World,
)

__all__ = [
    "CHUNK_ENTITIES", "FieldSpec", "SoATable",
    "CommandBuffer", "consolidate", "merge_buffers",
    "EntityKind", "World",
    "SENDER_SCHEMA", "RECEIVER_SCHEMA", "INGRESS_SCHEMA", "EGRESS_SCHEMA",
]
