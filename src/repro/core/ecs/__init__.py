"""Entity-Component-System substrate used by the DOD engine."""

from .components import CHUNK_ENTITIES, FieldSpec, SoATable
from .commands import (
    CommandBuffer, consolidate, consolidate_grouped, merge_buffers,
)
from .entity import (
    BACKENDS, EGRESS_SCHEMA, EntityKind, INGRESS_SCHEMA, RECEIVER_SCHEMA,
    SENDER_SCHEMA, World, make_table,
)

__all__ = [
    "CHUNK_ENTITIES", "FieldSpec", "SoATable", "NumpyTable",
    "CommandBuffer", "consolidate", "consolidate_grouped", "merge_buffers",
    "BACKENDS", "EntityKind", "World", "make_table",
    "SENDER_SCHEMA", "RECEIVER_SCHEMA", "INGRESS_SCHEMA", "EGRESS_SCHEMA",
]


def __getattr__(name):
    # NumpyTable is exported lazily so `import repro.core.ecs` works on
    # interpreters without numpy (the python backend needs none).
    if name == "NumpyTable":
        from .numpy_table import NumpyTable
        return NumpyTable
    raise AttributeError(name)
