"""NumPy-backed columnar storage: the vectorized execution substrate.

:class:`NumpyTable` implements the same bulk API as
:class:`~repro.core.ecs.components.SoATable` — ``column`` / ``columns``
/ ``gather`` / ``scatter`` / ``slice`` / ``chunk_slices`` — but stores
each component column as a typed ``np.ndarray`` with amortized-doubling
growth, so gathers and scatters execute as single fancy-indexing
operations instead of interpreted per-element loops.  This is the
physical realization of the layout :class:`SoATable` only models
logically: component values of one field really are contiguous in
memory.

Two contracts keep the backends interchangeable:

* **Scalar boundary.**  Everything a caller reads *out* of the table —
  ``get``, ``gather``, ``slice``, ``load_row``, ``chunk_slices`` — is
  converted to plain Python scalars (``ndarray.tolist``), never NumPy
  scalar types.  Kernel arithmetic therefore runs on exactly the same
  value types as under the Python backend, which is what makes the
  byte-identical-trace claim hold across backends (``repr`` of a NumPy
  scalar differs from the int it equals, which would silently break
  trace digests).  ``column``/``col`` return the live array views for
  vectorized kernels that want them.
* **Uniform errors.**  Out-of-range gather/scatter indices raise
  :class:`~repro.errors.ColumnIndexError` exactly like ``SoATable``;
  empty index arrays are valid no-ops.

dtype selection: a :class:`FieldSpec` with an integer default maps to
``int64`` (bit-exact for the picosecond timestamp arithmetic the systems
do — simulated spans up to ~10^6 s fit), a float default to ``float64``
(IEEE-754 doubles, the same arithmetic CPython floats use), anything
else to ``object`` (per-entity sets, port automata references).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .components import CHUNK_ENTITIES, FieldSpec
from ...errors import ColumnIndexError, ConfigError

#: Initial capacity of a fresh table (doubles from here).
_INITIAL_CAPACITY = 8


def dtype_of(spec: FieldSpec) -> np.dtype:
    """The storage dtype a field's default implies (see module doc)."""
    default = spec.default
    if isinstance(default, bool):
        return np.dtype(object)
    if isinstance(default, int):
        return np.dtype(np.int64)
    if isinstance(default, float):
        return np.dtype(np.float64)
    return np.dtype(object)


class NumpyTable:
    """Columnar storage for one entity kind over typed ndarrays."""

    def __init__(self, kind: str, schema: Sequence[FieldSpec]) -> None:
        if not schema:
            raise ConfigError(f"table {kind!r} needs at least one field")
        names = [f.name for f in schema]
        if len(set(names)) != len(names):
            raise ConfigError(f"table {kind!r} has duplicate fields")
        self.kind = kind
        self.schema: Tuple[FieldSpec, ...] = tuple(schema)
        self._dtypes: Dict[str, np.dtype] = {
            f.name: dtype_of(f) for f in schema
        }
        self._cap = _INITIAL_CAPACITY
        self._arrays: Dict[str, np.ndarray] = {
            f.name: np.empty(self._cap, dtype=self._dtypes[f.name])
            for f in schema
        }
        self._n = 0
        #: Resident working set: column name -> full-length Python list
        #: (see :meth:`resident`).  While present, these lists are the
        #: authoritative values of their columns; :meth:`_sync` flushes
        #: them back into the arrays before any array-level access.
        self._resident: Dict[str, List[Any]] = {}
        self._resident_views: Dict[Tuple[str, ...], Dict[str, List[Any]]] = {}

    # --- resident working set ----------------------------------------------

    def resident(self, names: Sequence[str]) -> Dict[str, List[Any]]:
        """A cached Python-value working set of whole columns.

        Returns ``{name: full-length list}`` materialized once
        (``ndarray.tolist``, one C call per column) and reused across
        calls, so per-window system kernels index it exactly like the
        ``SoATable`` list columns — same value types, same in-place
        mutation — with no per-window gather/scatter.  The arrays remain
        the storage of record *at rest*: any array-level access
        (``column``/``gather``/``scatter``/``add``/pickling) first
        flushes the resident lists back with one whole-column write per
        column and drops the cache (:meth:`_sync`), so checkpoints,
        migration row copies, and bulk reads always observe current
        values.  The flush is the backend's bulk commit: the entire
        index range scatters in one vectorized assignment per column.
        """
        res = self._resident
        missing = [name for name in names if name not in res]
        for name in missing:
            arr = self._arrays.get(name)
            if arr is None:
                raise ConfigError(
                    f"table {self.kind!r} has no field {name!r}")
            res[name] = arr[: self._n].tolist()
        key = tuple(names)
        view = self._resident_views.get(key)
        if view is None or missing:
            view = {name: res[name] for name in names}
            self._resident_views[key] = view
        return view

    def _sync(self) -> None:
        """Flush resident lists into the arrays and drop the cache."""
        if not self._resident:
            return
        n = self._n
        for name, values in self._resident.items():
            arr = self._arrays[name]
            if arr.dtype == object:
                # Element loop: asarray of nested containers would try
                # to broadcast them into a 2-D array.
                for k in range(n):
                    arr[k] = values[k]
            else:
                arr[:n] = values
        self._resident = {}
        self._resident_views = {}

    # --- growth -------------------------------------------------------------

    def _grow_to(self, need: int) -> None:
        """Amortized doubling: grow every column to capacity >= need."""
        if need <= self._cap:
            return
        cap = self._cap
        while cap < need:
            cap *= 2
        for name, arr in self._arrays.items():
            bigger = np.empty(cap, dtype=arr.dtype)
            bigger[: self._n] = arr[: self._n]
            self._arrays[name] = bigger
        self._cap = cap

    # --- entity management ------------------------------------------------

    def add(self, **values: Any) -> int:
        """Append an entity; unspecified fields take their defaults.

        Returns the new entity's dense index.
        """
        for key in values:
            if key not in self._arrays:
                raise ConfigError(f"table {self.kind!r} has no field {key!r}")
        self._sync()
        idx = self._n
        self._grow_to(idx + 1)
        for spec in self.schema:
            self._arrays[spec.name][idx] = values.get(spec.name, spec.default)
        self._n = idx + 1
        return idx

    def add_many(self, count: int) -> range:
        """Append ``count`` default-initialized entities."""
        self._sync()
        start = self._n
        end = start + count
        self._grow_to(end)
        for spec in self.schema:
            self._arrays[spec.name][start:end] = spec.default
        self._n = end
        return range(start, end)

    @property
    def n(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    # --- column access -----------------------------------------------------

    def col(self, name: str) -> np.ndarray:
        """The live column view (alias of :meth:`column`)."""
        return self.column(name)

    def column(self, name: str) -> np.ndarray:
        """Bulk handle to one component column: a length-``n`` view.

        The view stays valid until the next growth (``add``/``add_many``
        past capacity); the engine only grows tables at build time, so
        system kernels can hold handles for a whole run.  Reading an
        element yields a NumPy scalar — vectorized kernels convert at
        the boundary (see module doc); scalar-at-a-time code should use
        :meth:`get`/:meth:`gather`, which convert for you.
        """
        self._sync()
        arr = self._arrays.get(name)
        if arr is None:
            raise ConfigError(f"table {self.kind!r} has no field {name!r}")
        return arr[: self._n]

    def columns(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        """Bulk handles to several columns at once, by name."""
        return {name: self.column(name) for name in names}

    def get(self, idx: int, name: str) -> Any:
        value = self.column(name)[idx]
        # Object columns store Python objects directly; typed columns
        # yield NumPy scalars that must convert at the boundary.
        return value.tolist() if isinstance(value, np.generic) else value

    def set(self, idx: int, name: str, value: Any) -> None:
        self.column(name)[idx] = value

    def load_row(self, idx: int) -> Dict[str, Any]:
        """Materialize one entity's fields as plain Python values."""
        return {spec.name: self.get(idx, spec.name) for spec in self.schema}

    def store_row(self, idx: int, values: Dict[str, Any]) -> None:
        """Write back fields produced by a transition (one write per column)."""
        for name, value in values.items():
            self.column(name)[idx] = value

    # --- bulk columnar access ----------------------------------------------

    def _index_array(self, idxs: Sequence[int], op: str, name: str) -> np.ndarray:
        """Validate and convert an index sequence (uniform error contract)."""
        ix = np.asarray(idxs, dtype=np.int64)
        if ix.ndim != 1:
            ix = ix.reshape(-1)
        if ix.size:
            lo = int(ix.min())
            hi = int(ix.max())
            if lo < 0 or hi >= self._n:
                bad = lo if lo < 0 else hi
                raise ColumnIndexError(
                    f"{op} on {self.kind!r}.{name}: index {bad} out of "
                    f"range for {self._n} entities"
                )
        return ix

    def gather(self, idxs: Sequence[int], names: Sequence[str]) -> Dict[str, List[Any]]:
        """Fancy-indexed read of several entities, column by column.

        One vectorized ``column[idxs]`` per column; results come back as
        plain Python lists (``tolist`` converts NumPy scalars), so the
        values are interchangeable with a ``SoATable`` gather.
        """
        ix = self._index_array(idxs, "gather", names[0] if names else "*")
        return {name: self.column(name)[ix].tolist() for name in names}

    def scatter(self, idxs: Sequence[int], name: str, values: Sequence[Any]) -> None:
        """Vectorized write: ``column[name][idxs] = values`` in one shot."""
        if len(idxs) != len(values):
            raise ConfigError(
                f"scatter into {self.kind!r}.{name}: {len(idxs)} indices "
                f"vs {len(values)} values"
            )
        ix = self._index_array(idxs, "scatter", name)
        arr = self.column(name)
        if arr.dtype == object and not isinstance(values, np.ndarray):
            # np.asarray would try to broadcast nested containers (sets,
            # lists) into a 2-D array; fromiter keeps them opaque.
            vals = np.empty(len(values), dtype=object)
            for k, v in enumerate(values):
                vals[k] = v
            arr[ix] = vals
        else:
            arr[ix] = np.asarray(values, dtype=arr.dtype)

    def slice(self, name: str, start: int, end: int) -> List[Any]:
        """A contiguous segment of one column, as plain Python values."""
        return self.column(name)[start:end].tolist()

    def chunk_slices(self, names: Sequence[str]) -> Iterator[Tuple[int, int, Dict[str, List[Any]]]]:
        """Yield ``(start, end, {name: column[start:end]})`` per chunk.

        Segments are converted to Python lists (the same unit-of-access
        contract as ``SoATable.chunk_slices``, whose list slices copy).
        """
        cols = self.columns(names)
        for start, end in self.chunks():
            yield start, end, {
                name: col[start:end].tolist() for name, col in cols.items()
            }

    # --- chunk geometry (machine model / worker pool) ----------------------

    def chunks(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(start, end)`` entity ranges, one per chunk."""
        for start in range(0, self._n, CHUNK_ENTITIES):
            yield start, min(start + CHUNK_ENTITIES, self._n)

    def chunk_count(self) -> int:
        return (self._n + CHUNK_ENTITIES - 1) // CHUNK_ENTITIES

    def memory_bytes(self) -> int:
        """Modeled physical footprint: columns are dense arrays."""
        per_entity = sum(f.item_bytes for f in self.schema)
        return per_entity * self._n

    # --- pickling (checkpoints / process-transport agents) ------------------

    def __reduce_ex__(self, protocol: int):
        if protocol >= 5:
            # Zero-copy export: hand the pickler trimmed *views* of the
            # typed columns instead of __getstate__'s defensive copies.
            # In-band (no buffer_callback) the view serializes into the
            # stream immediately; out-of-band (the shm checkpoint
            # container) each column becomes a raw PickleBuffer whose
            # only copy is the memcpy into the shared segment.  Object
            # columns cannot export raw and pickle in-band either way.
            self._sync()
            state = self.__dict__.copy()
            state["_arrays"] = {
                name: arr[: self._n] for name, arr in self._arrays.items()
            }
            state["_cap"] = max(self._n, _INITIAL_CAPACITY)
            return (_rebuild_table, (state,))
        return super().__reduce_ex__(protocol)

    def __getstate__(self) -> dict:
        self._sync()  # the arrays must be current before they persist
        state = self.__dict__.copy()
        # Trim to size: a checkpoint should not carry slack capacity.
        state["_arrays"] = {
            name: arr[: self._n].copy() for name, arr in self._arrays.items()
        }
        state["_cap"] = max(self._n, _INITIAL_CAPACITY)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        cap = self._cap
        for name, arr in list(self._arrays.items()):
            if len(arr) < cap or not arr.flags.writeable:
                bigger = np.empty(cap, dtype=arr.dtype)
                bigger[: self._n] = arr[: self._n]
                self._arrays[name] = bigger


def _rebuild_table(state: dict) -> "NumpyTable":
    table = NumpyTable.__new__(NumpyTable)
    table.__setstate__(state)
    return table
