"""Struct-of-arrays component storage (the D in DOD).

A :class:`SoATable` stores one *kind* of entity: each component (field)
is a separate column holding that field's value for every entity,
contiguously, indexed by the entity's dense id — the columnar layout of
paper Fig. 7.  Columns are segmented into fixed-size chunks; chunk
boundaries do not affect semantics but are the unit the machine model
uses to reason about page/cache behaviour and the unit the worker pool
uses to split system execution across threads.

In CPython a "column" is a list (the interpreter owns physical layout);
what this class preserves from Unity DOTS is the *logical* layout — which
fields are stored together, in what order they are swept, and the chunk
geometry — which is exactly what the cache model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from ...errors import ColumnIndexError, ConfigError

#: Entities per chunk (Unity DOTS uses 16 KiB chunks; with the ~16-byte
#: scalar components below this is the same order of entity count).
CHUNK_ENTITIES = 1024


@dataclass(frozen=True)
class FieldSpec:
    """Schema entry of one component column."""

    name: str
    default: Any
    item_bytes: int = 8  # physical size the machine model charges per item


class SoATable:
    """Columnar storage for one entity kind."""

    def __init__(self, kind: str, schema: Sequence[FieldSpec]) -> None:
        if not schema:
            raise ConfigError(f"table {kind!r} needs at least one field")
        names = [f.name for f in schema]
        if len(set(names)) != len(names):
            raise ConfigError(f"table {kind!r} has duplicate fields")
        self.kind = kind
        self.schema: Tuple[FieldSpec, ...] = tuple(schema)
        self._columns: Dict[str, List[Any]] = {f.name: [] for f in schema}
        self._n = 0

    # --- entity management ------------------------------------------------

    def add(self, **values: Any) -> int:
        """Append an entity; unspecified fields take their defaults.

        Returns the new entity's dense index.
        """
        for key in values:
            if key not in self._columns:
                raise ConfigError(f"table {self.kind!r} has no field {key!r}")
        for spec in self.schema:
            self._columns[spec.name].append(values.get(spec.name, spec.default))
        idx = self._n
        self._n += 1
        return idx

    def add_many(self, count: int) -> range:
        """Append ``count`` default-initialized entities."""
        for spec in self.schema:
            self._columns[spec.name].extend([spec.default] * count)
        start = self._n
        self._n += count
        return range(start, self._n)

    @property
    def n(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    # --- column access -----------------------------------------------------

    def col(self, name: str) -> List[Any]:
        """The raw column; systems sweep these directly."""
        return self._columns[name]

    def column(self, name: str) -> List[Any]:
        """Bulk handle to one component column (alias of :meth:`col`).

        Kernels grab column handles once per system run and then index
        them per entity — one attribute lookup per *column*, not per
        entity access, which is what makes the sweep columnar.
        """
        if name not in self._columns:
            raise ConfigError(f"table {self.kind!r} has no field {name!r}")
        return self._columns[name]

    def columns(self, names: Sequence[str]) -> Dict[str, List[Any]]:
        """Bulk handles to several columns at once, by name."""
        return {name: self.column(name) for name in names}

    def get(self, idx: int, name: str) -> Any:
        return self._columns[name][idx]

    def set(self, idx: int, name: str, value: Any) -> None:
        self._columns[name][idx] = value

    def load_row(self, idx: int) -> Dict[str, Any]:
        """Materialize one entity's fields (bridging into pure-function
        protocol transitions; one read per column, the columnar pattern)."""
        return {name: col[idx] for name, col in self._columns.items()}

    def store_row(self, idx: int, values: Dict[str, Any]) -> None:
        """Write back fields produced by a transition (one write per column)."""
        for name, value in values.items():
            self._columns[name][idx] = value

    # --- bulk columnar access ----------------------------------------------

    def _check_idxs(self, idxs: Sequence[int], op: str, name: str) -> None:
        """Uniform bounds check shared (in spirit) with NumpyTable.

        Empty index sequences are valid (a no-op gather/scatter); any
        index outside ``[0, n)`` — including negative indices, which
        Python lists would silently wrap — raises
        :class:`~repro.errors.ColumnIndexError`.
        """
        n = self._n
        for i in idxs:
            if not 0 <= i < n:
                raise ColumnIndexError(
                    f"{op} on {self.kind!r}.{name}: index {i} out of "
                    f"range for {n} entities"
                )

    def gather(self, idxs: Sequence[int], names: Sequence[str]) -> Dict[str, List[Any]]:
        """Read several entities' fields column by column.

        Returns ``{name: [column[i] for i in idxs]}`` — the values of each
        requested column at the requested indices, in ``idxs`` order.  One
        column is swept at a time (the cache-friendly order), which is the
        access pattern the machine model charges for.  An empty ``idxs``
        yields empty lists; out-of-range indices raise
        :class:`~repro.errors.ColumnIndexError`.
        """
        out: Dict[str, List[Any]] = {}
        first = True
        for name in names:
            col = self.column(name)
            if first:
                self._check_idxs(idxs, "gather", name)
                first = False
            out[name] = [col[i] for i in idxs]
        return out

    def scatter(self, idxs: Sequence[int], name: str, values: Sequence[Any]) -> None:
        """Write ``values[k]`` to ``column[name][idxs[k]]`` for every k.

        Empty ``idxs`` is a no-op; out-of-range indices raise
        :class:`~repro.errors.ColumnIndexError` before any write lands
        (the scatter is atomic with respect to validation).
        """
        if len(idxs) != len(values):
            raise ConfigError(
                f"scatter into {self.kind!r}.{name}: {len(idxs)} indices "
                f"vs {len(values)} values"
            )
        col = self.column(name)
        self._check_idxs(idxs, "scatter", name)
        for i, v in zip(idxs, values):
            col[i] = v

    def slice(self, name: str, start: int, end: int) -> List[Any]:
        """A contiguous segment of one column (a chunk-slice view).

        CPython lists copy on slice; what the API pins is the *unit* of
        access — kernels receive whole segments, never single cells.
        """
        return self.column(name)[start:end]

    def chunk_slices(self, names: Sequence[str]) -> Iterator[Tuple[int, int, Dict[str, List[Any]]]]:
        """Yield ``(start, end, {name: column[start:end]})`` per chunk.

        The per-chunk segments are the work slices the planner hands to
        kernels on the worker pool: each slice covers one storage chunk,
        so parallel tasks align with the cache/page geometry the machine
        model reasons about.
        """
        cols = self.columns(names)
        for start, end in self.chunks():
            yield start, end, {
                name: col[start:end] for name, col in cols.items()
            }

    # --- chunk geometry (machine model / worker pool) ----------------------

    def chunks(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(start, end)`` entity ranges, one per chunk."""
        for start in range(0, self._n, CHUNK_ENTITIES):
            yield start, min(start + CHUNK_ENTITIES, self._n)

    def chunk_count(self) -> int:
        return (self._n + CHUNK_ENTITIES - 1) // CHUNK_ENTITIES

    def memory_bytes(self) -> int:
        """Modeled physical footprint: columns are dense arrays."""
        per_entity = sum(f.item_bytes for f in self.schema)
        return per_entity * self._n
