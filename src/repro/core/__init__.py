"""The DONS core: ECS substrate, batch-based engine, four systems."""

from .engine import DodEngine, run_dons
from .runtime import WorkerPool, chunk_ranges
from .window import WindowContext

__all__ = ["DodEngine", "run_dons", "WorkerPool", "chunk_ranges", "WindowContext"]
