"""The DONS core: ECS substrate, batch-based engine, four systems,
and the unified runtime (instrumentation bus + engine runner)."""

from .engine import DodEngine, run_dons
from .instrument import InstrumentationBus, SystemProfile, WindowProfile
from .runner import Engine, EngineRunner, run_engine
from .runtime import WorkerPool, chunk_ranges
from .window import WindowContext

__all__ = [
    "DodEngine", "run_dons",
    "Engine", "EngineRunner", "run_engine",
    "InstrumentationBus", "SystemProfile", "WindowProfile",
    "WorkerPool", "chunk_ranges", "WindowContext",
]
