"""TransmitSystem: chronological egress processing and cross-device moves.

Per §3.2/Appendix C, this system first sorts each EgressPort's pending
packets in chronological order (the ordering-contract key), then replays
the port's timeline for the window — AQM decisions, scheduler picks,
serialization — and moves transmitted packets to the linked IngressPort
or Receiver by registering their future arrival in the engine calendar.

Interleaving arrivals with departures during the replay reconstructs the
exact queue length every packet saw (the paper's TXhistory mechanism),
so drops and ECN marks match the event-driven baseline exactly.

Plan → kernel → commit: :func:`plan_transmit` lists the fed or active
ports; :func:`transmit_kernel` replays one port's window on the pool
(ports are independent entities); :func:`commit_transmit` publishes
trace/op events and registers cross-device arrivals, in port order.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from ..window import Staged, WindowContext
from ...protocols.egress import Emission, EgressPort
from ...protocols.packet import F_CE, F_FLOW, F_ISACK, F_SEQ, Row


def plan_transmit(engine, ctx: WindowContext) -> List[int]:
    """Every port that was fed this window or is still serializing."""
    return sorted(set(ctx.staged) | engine.active_ports)


def transmit_kernel(
    ports: List[EgressPort],
    staged: Dict[int, List[Staged]],
    window_start: int,
    window_end: int,
    full_trace: bool,
    iface_id: int,
):
    """Replay one egress port's window timeline.

    Pure over its port: the merge-sort of its staged arrivals and the
    port automaton replay touch only this port's state.
    """
    port = ports[iface_id]
    arrivals = staged.get(iface_id, [])
    arrivals.sort(
        key=lambda a: (a[0], a[1], a[2][F_FLOW], a[2][F_ISACK], a[2][F_SEQ])
    )
    emissions: List[Emission] = []
    drops: List[Tuple[int, Row]] = []
    enq: Optional[List[Tuple[int, Row]]] = [] if full_trace else None
    port.replay_window(arrivals, window_start, window_end, emissions, drops, enq)
    still_active = len(port.sched) > 0
    return iface_id, emissions, drops, enq, still_active, len(arrivals)


def commit_transmit(engine, ctx: WindowContext, results) -> None:
    """Publish events and register arrivals, in port (task) order."""
    bus = engine.bus
    trace_on = bool(bus.trace_level)
    for iface_id, emissions, drops, enq, still_active, _n in results:
        if bus.has_ops and emissions:
            from ...protocols.packet import packet_uid
            for row, _s, _e in emissions:
                bus.op(2, iface_id, packet_uid(row))  # OP_SERVICE
        iface = engine.ports[iface_id].iface
        if enq:
            for t, row in enq:
                bus.enq(t, iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ],
                        row[F_CE])
        for t, row in drops:
            if trace_on:
                bus.drop(t, iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ])
            engine.results.drops += 1
        ctx.counts.transmit += len(emissions)
        engine.bump_node(iface.node, len(emissions))
        for row, start, end in emissions:
            if trace_on:
                bus.deq(start, iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ])
            engine.deliver(iface.peer_node, end + iface.delay_ps, row)
        if still_active:
            engine.active_ports.add(iface_id)
        else:
            engine.active_ports.discard(iface_id)


def run_transmit_system(engine, ctx: WindowContext) -> None:
    """Replay every active or newly-fed egress port (plan → kernel → commit)."""
    iface_ids = plan_transmit(engine, ctx)
    if not iface_ids:
        return
    full_trace = engine.bus.trace_level >= 2
    kernel = partial(transmit_kernel, engine.ports, ctx.staged,
                     ctx.start, ctx.end, full_trace)
    results = engine.pool.map(
        "transmit", kernel, iface_ids,
        sizes=[len(ctx.staged.get(i, ())) + 1 for i in iface_ids],
    )
    commit_transmit(engine, ctx, results)
