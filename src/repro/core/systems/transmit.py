"""TransmitSystem: chronological egress processing and cross-device moves.

Per §3.2/Appendix C, this system first sorts each EgressPort's pending
packets in chronological order (the ordering-contract key), then replays
the port's timeline for the window — AQM decisions, scheduler picks,
serialization — and moves transmitted packets to the linked IngressPort
or Receiver by registering their future arrival in the engine calendar.

Interleaving arrivals with departures during the replay reconstructs the
exact queue length every packet saw (the paper's TXhistory mechanism),
so drops and ECN marks match the event-driven baseline exactly.

Ports are independent entities; replays run on the worker pool.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..window import WindowContext
from ...protocols.egress import Emission, EgressPort
from ...protocols.packet import F_CE, F_FLOW, F_ISACK, F_SEQ, Row


def run_transmit_system(engine, ctx: WindowContext) -> None:
    """Replay every active or newly-fed egress port for this window."""
    iface_ids = sorted(set(ctx.staged) | engine.active_ports)
    if not iface_ids:
        return
    trace_on = bool(engine.trace.level)
    full_trace = trace_on and engine.trace.level >= 2

    def process(iface_id: int):
        port: EgressPort = engine.ports[iface_id]
        arrivals = ctx.staged.get(iface_id, [])
        arrivals.sort(
            key=lambda a: (a[0], a[1], a[2][F_FLOW], a[2][F_ISACK], a[2][F_SEQ])
        )
        emissions: List[Emission] = []
        drops: List[Tuple[int, Row]] = []
        enq: Optional[List[Tuple[int, Row]]] = [] if full_trace else None
        port.replay_window(arrivals, ctx.start, ctx.end, emissions, drops, enq)
        still_active = len(port.sched) > 0
        return iface_id, emissions, drops, enq, still_active, len(arrivals)

    results = engine.pool.map(
        "transmit", process, iface_ids,
        sizes=[len(ctx.staged.get(i, ())) + 1 for i in iface_ids],
    )

    trace = engine.trace
    hook = engine.op_hook
    for iface_id, emissions, drops, enq, still_active, _n in results:
        if hook and emissions:
            from ...protocols.packet import packet_uid
            for row, _s, _e in emissions:
                hook(2, iface_id, packet_uid(row))  # OP_SERVICE
        iface = engine.ports[iface_id].iface
        if enq:
            for t, row in enq:
                trace.enq(t, iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ],
                          row[F_CE])
        for t, row in drops:
            if trace_on:
                trace.drop(t, iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ])
            engine.results.drops += 1
        ctx.counts.transmit += len(emissions)
        engine.bump_node(iface.node, len(emissions))
        for row, start, end in emissions:
            if trace_on:
                trace.deq(start, iface_id, row[F_FLOW], row[F_ISACK], row[F_SEQ])
            engine.deliver(iface.peer_node, end + iface.delay_ps, row)
        if still_active:
            engine.active_ports.add(iface_id)
        else:
            engine.active_ports.discard(iface_id)
