"""Vectorized (NumPy-backend) variants of the four systems.

Same plan → kernel → commit decomposition, same pure protocol
transitions, same deterministic commit order — but the orchestration
around the kernels is columnar:

* **plan** stages operate on per-window index arrays: the transmit work
  list is a masked selection over the port axis (fed ∪ active), and
  ordering-contract sorts go through one stable ``np.lexsort`` over key
  columns instead of a per-element Python key function
  (:func:`sort_contract`).
* **kernel** dispatch is batched: one pool task per worker sweeping a
  contiguous slice of the entity axis, instead of one task per entity —
  the per-task overhead (argument binding, result boxing, per-task
  commit headers) amortizes over the slice.  Per-window sender/receiver
  state is *gathered* out of the :class:`~repro.core.ecs.NumpyTable`
  columns into compact Python-value columns in one fancy-indexed read
  per component, so the DCTCP/UDP/reassembly state machines run on
  exactly the value types the Python backend feeds them — which is what
  keeps the traces byte-identical.
* **commit** writes back with whole index arrays: one ``scatter`` per
  mutated component column (the resident working set flushes each list
  column in a single vectorized assignment), and the ForwardSystem's
  command buffers consolidate through
  :func:`~repro.core.ecs.consolidate_grouped`, whose stable-argsort
  path engages for very large batches (below the measured crossover it
  delegates to the reference dict consolidation — see the threshold
  note in ``repro.core.ecs.commands``).

Integer timestamp arithmetic stays bit-exact: every value that crosses
from an ndarray into a packet row or trace entry is converted to a
Python scalar first, and the vectorized UDP schedule decomposes its
closed form so ``int64`` cannot overflow (falling back to the scalar
schedule — same floor divisions — when it could).

The commit helpers (``commit_send``/``commit_ack``/``commit_transmit``)
are shared with the Python variants: the backends differ in how work is
planned and dispatched, never in what is committed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .ack import AckCols, ack_kernel, commit_ack
from .forward import ForwardWork, plan_forward
from .send import (
    SENDER_COLS, _DCTCP_FIELDS, commit_send, plan_send, send_kernel,
)
from .transmit import commit_transmit
from ..ecs import CommandBuffer, consolidate_grouped
from ..runtime import chunk_ranges
from ..window import ENTRY_ARRIVAL, Staged, WindowContext
from ...protocols import UdpSchedule
from ...protocols.aqm import AqmKind, should_mark
from ...schedulers.disciplines import FifoScheduler
from ...protocols.packet import (
    F_DST, F_FLOW, F_ISACK, F_SEQ, F_SIZE, HEADER_BYTES, MSS,
    PRIO_FLOW_START, Row, data_row, with_ce,
)
from ...traffic import Transport
from ...units import PS_PER_S

#: Below this many entries a Python key-function sort beats building the
#: key columns; above it the stable lexsort wins.  Order is identical.
VECTOR_SORT_MIN = 32


def _contract_key(a: Tuple[int, int, Row]):
    """The canonical arrival ordering: (t, prio, flow, is_ack, seq)."""
    return (a[0], a[1], a[2][F_FLOW], a[2][F_ISACK], a[2][F_SEQ])


def sort_contract(entries: List[Tuple[int, int, Row]]) -> List[Tuple[int, int, Row]]:
    """Sort staged arrivals by the ordering contract, vectorized.

    Builds the five key columns and stable-sorts them with
    ``np.lexsort`` (least-significant key first), reproducing exactly
    the ``(t, prio, flow, is_ack, seq)`` tie-break order of the Python
    backend's ``list.sort``.  Small batches fall back to the scalar
    in-place sort, where building the key arrays would dominate.
    """
    n = len(entries)
    if n < VECTOR_SORT_MIN:
        if n > 1:
            entries.sort(key=_contract_key)
        return entries
    t = np.empty(n, np.int64)
    prio = np.empty(n, np.int64)
    flow = np.empty(n, np.int64)
    isack = np.empty(n, np.int64)
    seq = np.empty(n, np.int64)
    for k, (tk, pk, row) in enumerate(entries):
        t[k] = tk
        prio[k] = pk
        flow[k] = row[F_FLOW]
        isack[k] = row[F_ISACK]
        seq[k] = row[F_SEQ]
    order = np.lexsort((seq, isack, flow, prio, t))
    return [entries[k] for k in order.tolist()]


#: The transmit tie-break hook, resolved from module globals at kernel
#: run time so `conformance.inject.unstable_transmit_sort` can patch it
#: the way `flipped_transmit_order` patches the Python backend's
#: `transmit_kernel`.
transmit_sort = sort_contract


def _chunked(items: List, workers: int) -> List[List]:
    """Contiguous near-equal slices of a work list, one per pool task."""
    if workers <= 1 or len(items) <= 1:
        return [items]
    return [items[s:e] for s, e in chunk_ranges(len(items), workers)]


# --- SendSystem ------------------------------------------------------------


def _udp_send_kernel(cols, scenario, window_end: int, flow_id: int, k: int):
    """Vectorized UDP pacing: one flow's window as an array expression.

    The closed form ``t(seq) = start + (seq*wire*8*PS)//rate`` is
    evaluated over the whole remaining segment range at once.  To stay
    inside ``int64``, the division is decomposed via
    ``q, r = divmod(wire*8*PS, rate)`` into ``start + seq*q +
    (seq*r)//rate`` — identical floor arithmetic, and for every rate
    that divides the wire term (all realistic ones) ``r == 0``.  When
    the decomposition could still overflow (degenerate rate/size
    combinations), the scalar schedule runs instead; either path
    produces bit-identical timestamps.
    """
    flow = scenario.flows[flow_id]
    rate = scenario.topology.host_iface(flow.src).rate_bps
    sched = UdpSchedule(flow_id, flow.size_bytes, flow.start_ps, rate)
    udp_col = cols["udp_next_seq"]
    seq = udp_col[k]
    total = sched.total_segs
    out: List[Tuple[int, int, Row]] = []
    if seq < total:
        wire8ps = (MSS + HEADER_BYTES) * 8 * PS_PER_S
        q, r = divmod(wire8ps, rate)
        # Python-int bound on the largest timestamp the range can reach.
        t_last = flow.start_ps + ((total - 1) * wire8ps) // rate
        if t_last < 2 ** 63 and (total - 1) * r < 2 ** 63:
            seqs = np.arange(seq, total, dtype=np.int64)
            times = flow.start_ps + seqs * q
            if r:
                times += (seqs * r) // rate
            cut = int(np.searchsorted(times, window_end, side="left"))
            for s, t in zip(seqs[:cut].tolist(), times[:cut].tolist()):
                out.append((t, PRIO_FLOW_START,
                            data_row(flow_id, s, sched.payload(s), t,
                                     flow.src, flow.dst)))
            seq += cut
        else:  # pragma: no cover - degenerate scales, scalar fallback
            while seq < total:
                t = sched.enqueue_time(seq)
                if t >= window_end:
                    break
                out.append((t, PRIO_FLOW_START,
                            data_row(flow_id, seq, sched.payload(seq), t,
                                     flow.src, flow.dst)))
                seq += 1
    udp_col[k] = seq
    udp_wakeup = sched.enqueue_time(seq) if seq < total else None
    return flow_id, out, [], None, udp_wakeup, len(out)


def send_batch_kernel(cols, sender_of_flow, scenario, acks_of, starts,
                      window_end, flow_ids: List[int]):
    """One worker's slice of the sender sweep, flow by flow in order."""
    out = []
    for flow_id in flow_ids:
        if scenario.flows[flow_id].transport == Transport.UDP:
            out.append(_udp_send_kernel(cols, scenario, window_end,
                                        flow_id, sender_of_flow[flow_id]))
        else:
            out.append(send_kernel(cols, sender_of_flow, scenario, acks_of,
                                   starts, window_end, flow_id))
    return out


def run_send_system_np(engine, ctx: WindowContext) -> None:
    """Vectorized SendSystem: resident columns, batched kernels.

    The kernels run against the sender table's resident working set
    (:meth:`~repro.core.ecs.NumpyTable.resident`): whole columns
    materialized to Python values once and committed back to the arrays
    in bulk at sync points, so the per-window loop pays no per-flow
    conversion at all.
    """
    flow_ids, acks_of, starts, deliver_trace = plan_send(engine, ctx)
    if not flow_ids:
        return

    bus = engine.bus
    if bus.trace_level:
        for t, node, row in sorted(
            deliver_trace,
            key=lambda d: (d[0], d[2][F_FLOW], d[2][F_ISACK], d[2][F_SEQ]),
        ):
            bus.deliver(t, node, row[F_FLOW], row[F_ISACK], row[F_SEQ])

    cols = engine.world.senders.resident(SENDER_COLS)
    sender_of_flow = engine.world.sender_of_flow
    chunks = _chunked(flow_ids, engine.pool.workers)
    results = engine.pool.map(
        "send",
        lambda chunk: send_batch_kernel(cols, sender_of_flow,
                                        engine.scenario, acks_of, starts,
                                        ctx.end, chunk),
        chunks,
        sizes=[sum(len(acks_of.get(f, ())) + 1 for f in chunk)
               for chunk in chunks],
    )
    if len(results) == 1:
        commit_send(engine, ctx, results[0])
    else:
        commit_send(engine, ctx, [r for chunk in results for r in chunk])


# --- ACKSystem -------------------------------------------------------------


AckWork = Tuple[int, List[Tuple[int, int, Row]]]


def plan_ack_np(engine, ctx: WindowContext) -> List[AckWork]:
    """Per-host work slices; the canonical sort runs vectorized."""
    work: List[AckWork] = []
    for node, entries in sorted(ctx.node_entries.items()):
        if not engine.scenario.topology.nodes[node].is_host:
            continue
        data = [
            (e[1], e[2], e[3])
            for e in entries
            if e[0] == ENTRY_ARRIVAL and not e[3][F_ISACK]
        ]
        if data:
            work.append((node, sort_contract(data)))
    return work


def ack_batch_kernel(cols: AckCols, receiver_of_flow, flows,
                     items: List[AckWork]):
    """One worker's slice of the receiver sweep, host by host."""
    return [ack_kernel(cols, receiver_of_flow, flows, item) for item in items]


def run_ack_system_np(engine, ctx: WindowContext) -> None:
    """Vectorized ACKSystem: resident columns, batched kernels.

    Like the SendSystem, the reassembly kernels sweep the receiver
    table's resident working set; the bulk write-back happens at the
    table's sync points, not per window.
    """
    work = plan_ack_np(engine, ctx)
    if not work:
        return
    cols = AckCols(**engine.world.receivers.resident(AckCols._fields))
    receiver_of_flow = engine.world.receiver_of_flow
    chunks = _chunked(work, engine.pool.workers)
    results = engine.pool.map(
        "ack",
        lambda chunk: ack_batch_kernel(cols, receiver_of_flow,
                                       engine.scenario.flows, chunk),
        chunks,
        sizes=[sum(len(w[1]) for w in chunk) for chunk in chunks],
    )
    if len(results) == 1:
        commit_ack(engine, ctx, results[0])
    else:
        commit_ack(engine, ctx, [r for chunk in results for r in chunk])


# --- ForwardSystem ---------------------------------------------------------


def forward_batch_kernel(fib, iface_id_of, spray: bool,
                         items: List[ForwardWork]):
    """One worker's slice of the switch sweep: all its nodes' arrivals
    routed into private command buffers (one per node, so the commit's
    per-node accounting matches the scalar path)."""
    out = []
    for node, arrivals in items:
        buf: CommandBuffer = CommandBuffer()
        for t, prio, row in arrivals:
            salt = row[F_SEQ] if spray else None
            port = fib.resolve_port(node, row[F_DST], row[F_FLOW], salt)
            buf.append(iface_id_of(node, port), (t, prio, row))
        out.append((node, len(arrivals), buf))
    return out


def commit_forward_np(engine, ctx: WindowContext, results) -> None:
    """``commit_forward`` with the grouped array consolidation path."""
    bus = engine.bus
    buffers = []
    for node, n, buf in results:
        ctx.counts.forward += n
        engine.bump_node(node, n)
        if bus.has_ops:
            from ...protocols.packet import packet_uid
            for _target, (_t, _prio, row) in buf.entries:
                bus.op(1, node, packet_uid(row))  # OP_FORWARD
        buffers.append(buf)
    consolidate_grouped(buffers, ctx.staged)


def run_forward_system_np(engine, ctx: WindowContext) -> None:
    """Vectorized ForwardSystem: batched routing, grouped consolidation."""
    work = plan_forward(engine, ctx)
    if not work:
        return
    sc = engine.scenario
    chunks = _chunked(work, engine.pool.workers)
    results = engine.pool.map(
        "forward",
        lambda chunk: forward_batch_kernel(
            sc.fib, sc.topology.iface_id, sc.ecmp_mode == "packet", chunk),
        chunks,
        sizes=[sum(len(w[1]) for w in chunk) for chunk in chunks],
    )
    if len(results) == 1:
        commit_forward_np(engine, ctx, results[0])
    else:
        commit_forward_np(engine, ctx, [r for chunk in results for r in chunk])


# --- TransmitSystem --------------------------------------------------------


def plan_transmit_np(engine, ctx: WindowContext) -> List[int]:
    """Masked selection over the port axis: fed ∪ still-serializing.

    ``np.flatnonzero`` of the boolean mask yields ascending iface ids —
    the same list ``sorted(set(staged) | active)`` produces.
    """
    staged = ctx.staged
    active = engine.active_ports
    if len(staged) + len(active) < VECTOR_SORT_MIN:
        return sorted(set(staged) | active)
    mask = np.zeros(len(engine.ports), dtype=bool)
    if staged:
        mask[np.fromiter(staged, np.int64, len(staged))] = True
    if active:
        mask[np.fromiter(active, np.int64, len(active))] = True
    return np.flatnonzero(mask).tolist()


#: 8 * PS_PER_S, the serialization-formula constant (see repro.units).
_PS8 = 8 * PS_PER_S


def _replay_window_fifo(
    port,
    arrivals: List[Staged],
    window_start: int,
    window_end: int,
    emissions: List,
    drops: List[Tuple[int, Row]],
    enq: Optional[List[Tuple[int, Row]]],
) -> None:
    """:meth:`EgressPort.replay_window` specialized for FIFO ports.

    Same interleave, same state transitions, statement for statement —
    but every per-packet helper (``arrive``, ``_dequeue``,
    ``serialization_ps``, the scheduler's single queue, the integer
    EWMA, the DCTCP threshold test) is inlined over local variables,
    with port/stats state written back once at exit.  FIFO ignores the
    classifier (all classes collapse to queue 0, see
    ``FifoScheduler.enqueue``), so the per-packet classifier call is
    skipped outright.  This loop runs once per fed-or-active port per
    window; on the reference workload the dispatch it removes is most
    of the TransmitSystem's non-automaton cost.  Keep in lockstep with
    ``EgressPort.replay_window``/``arrive`` and ``Scheduler._pop``; the
    backend-equivalence suite diffs the backends byte for byte.
    """
    sched = port.sched
    queue = sched.queues[0]
    head = sched._heads[0]
    slen = sched._len
    stats = port.stats
    rate = port.iface.rate_bps
    iface_id = port.iface.iface_id
    cfg = port.config
    aqm = cfg.aqm
    weight_shift = aqm.red_weight_shift
    buffer_bytes = cfg.buffer_bytes
    # DCTCP threshold marking (the default) inlines; other AQM kinds go
    # through the shared decision function.
    ecn_k = (aqm.ecn_threshold_bytes
             if aqm.kind == AqmKind.ECN_THRESHOLD else None)
    sample_queue = port.sample_queue
    queued = port.queued_bytes
    avg = port.avg_bytes
    free_at = port.free_at
    max_q = stats.max_queue_bytes
    n_deq = n_enq = n_drop = n_mark = tx = 0
    cursor = window_start
    i = 0
    n = len(arrivals)
    while True:
        next_arr = arrivals[i][0] if i < n else None
        start: Optional[int] = None
        if slen > 0:
            start = free_at if free_at > cursor else cursor
            if start >= window_end:
                start = None
        if start is not None and (next_arr is None or start <= next_arr):
            row = queue[head]            # Scheduler._pop, inlined
            head += 1
            if head > 64 and head * 2 >= len(queue):
                del queue[:head]
                head = 0
            slen -= 1
            size = row[F_SIZE]
            queued -= size
            n_deq += 1
            tx += size
            end = start + (size * _PS8) // rate
            free_at = end
            emissions.append((row, start, end))
            cursor = start
        elif next_arr is not None:
            t, _prio, row = arrivals[i]
            i += 1
            # EgressPort.arrive, inlined (marking sees the queue
            # occupancy before the packet, per the DCTCP convention)
            size = row[F_SIZE]
            avg += (queued - avg) >> weight_shift
            if queued + size > buffer_bytes:
                n_drop += 1
                drops.append((t, row))
            else:
                if (queued >= ecn_k and not row[F_ISACK]
                        if ecn_k is not None
                        else should_mark(aqm, row, queued, avg, iface_id)):
                    row = with_ce(row)
                    n_mark += 1
                queue.append(row)
                slen += 1
                queued += size
                n_enq += 1
                if queued > max_q:
                    max_q = queued
                if sample_queue:
                    stats.queue_samples.append((t, queued))
                if enq is not None:
                    enq.append((t, row))
            cursor = t
        else:
            break
    sched._heads[0] = head
    sched._len = slen
    port.queued_bytes = queued
    port.avg_bytes = avg
    port.free_at = free_at
    stats.dequeued += n_deq
    stats.enqueued += n_enq
    stats.dropped += n_drop
    stats.marked += n_mark
    stats.tx_bytes += tx
    stats.max_queue_bytes = max_q


def transmit_batch_kernel(
    ports,
    staged: Dict[int, List[Staged]],
    window_start: int,
    window_end: int,
    full_trace: bool,
    iface_ids: List[int],
):
    """One worker's slice of the port axis, replayed port by port."""
    out = []
    sort = transmit_sort  # module attribute: the injectable tie-break
    staged_get = staged.get
    append = out.append
    for iface_id in iface_ids:
        port = ports[iface_id]
        arrivals = staged_get(iface_id)
        if arrivals is None:
            arrivals = []
        elif len(arrivals) > 1:  # 0/1 arrivals: nothing to tie-break
            arrivals = sort(arrivals)
        emissions: List = []
        drops: List[Tuple[int, Row]] = []
        enq: Optional[List[Tuple[int, Row]]] = [] if full_trace else None
        if type(port.sched) is FifoScheduler:
            _replay_window_fifo(port, arrivals, window_start, window_end,
                                emissions, drops, enq)
        else:
            port.replay_window(arrivals, window_start, window_end,
                               emissions, drops, enq)
        append((iface_id, emissions, drops, enq,
                len(port.sched) > 0, len(arrivals)))
    return out


def run_transmit_system_np(engine, ctx: WindowContext) -> None:
    """Vectorized TransmitSystem: masked plan, batched port replay."""
    iface_ids = plan_transmit_np(engine, ctx)
    if not iface_ids:
        return
    full_trace = engine.bus.trace_level >= 2
    chunks = _chunked(iface_ids, engine.pool.workers)
    results = engine.pool.map(
        "transmit",
        lambda chunk: transmit_batch_kernel(
            engine.ports, ctx.staged, ctx.start, ctx.end, full_trace, chunk),
        chunks,
        sizes=[sum(len(ctx.staged.get(i, ())) + 1 for i in chunk)
               for chunk in chunks],
    )
    if len(results) == 1:
        commit_transmit(engine, ctx, results[0])
    else:
        commit_transmit(engine, ctx, [r for chunk in results for r in chunk])
