"""Vectorized (NumPy-backend) variants of the four systems.

Same plan → kernel → commit decomposition, same pure protocol
transitions, same deterministic commit order — but the orchestration
around the kernels is columnar:

* **plan** stages operate on per-window index arrays: the transmit work
  list is a masked selection over the port axis (fed ∪ active), and
  ordering-contract sorts go through one stable ``np.lexsort`` over key
  columns instead of a per-element Python key function
  (:func:`sort_contract`).
* **kernel** dispatch is batched: one pool task per worker sweeping a
  contiguous slice of the entity axis, instead of one task per entity —
  the per-task overhead (argument binding, result boxing, per-task
  commit headers) amortizes over the slice.  Per-window sender/receiver
  state is *gathered* out of the :class:`~repro.core.ecs.NumpyTable`
  columns into compact Python-value columns in one fancy-indexed read
  per component, so the DCTCP/UDP/reassembly state machines run on
  exactly the value types the Python backend feeds them — which is what
  keeps the traces byte-identical.
* **commit** writes back with whole index arrays: one ``scatter`` per
  mutated component column (the resident working set flushes each list
  column in a single vectorized assignment), and the ForwardSystem's
  command buffers consolidate through
  :func:`~repro.core.ecs.consolidate_grouped`, whose stable-argsort
  path engages for very large batches (below the measured crossover it
  delegates to the reference dict consolidation — see the threshold
  note in ``repro.core.ecs.commands``).

Integer timestamp arithmetic stays bit-exact: every value that crosses
from an ndarray into a packet row or trace entry is converted to a
Python scalar first, and the vectorized UDP schedule decomposes its
closed form so ``int64`` cannot overflow (falling back to the scalar
schedule — same floor divisions — when it could).

The commit helpers (``commit_send``/``commit_ack``/``commit_transmit``)
are shared with the Python variants: the backends differ in how work is
planned and dispatched, never in what is committed.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from .ack import AckCols, ack_kernel, commit_ack
from .forward import ForwardWork, plan_forward
from .send import (
    SENDER_COLS, _DCTCP_FIELDS, commit_send, plan_send, send_kernel,
)
from .transmit import commit_transmit
from .. import events as events_mod
from ..ecs import CommandBuffer, consolidate_grouped
from ..runtime import chunk_ranges
from ..window import ENTRY_ARRIVAL, ENTRY_FLOW_START, Staged, WindowContext
from ...protocols import UdpSchedule
from ...protocols.aqm import AqmKind, should_mark
from ...schedulers.disciplines import FifoScheduler
from ...protocols.packet import (
    F_DST, F_FLOW, F_ISACK, F_SEQ, F_SIZE, HEADER_BYTES, MSS,
    PRIO_ARRIVAL, PRIO_FLOW_START, Row, data_row, with_ce,
)
from ...traffic import Transport
from ...units import PS_PER_S

#: Below this many entries a Python key-function sort beats building the
#: key columns; above it the stable lexsort wins.  Order is identical.
VECTOR_SORT_MIN = 32


def _contract_key(a: Tuple[int, int, Row]):
    """The canonical arrival ordering: (t, prio, flow, is_ack, seq)."""
    return (a[0], a[1], a[2][F_FLOW], a[2][F_ISACK], a[2][F_SEQ])


def sort_contract(entries: List[Tuple[int, int, Row]]) -> List[Tuple[int, int, Row]]:
    """Sort staged arrivals by the ordering contract, vectorized.

    Builds the five key columns and stable-sorts them with
    ``np.lexsort`` (least-significant key first), reproducing exactly
    the ``(t, prio, flow, is_ack, seq)`` tie-break order of the Python
    backend's ``list.sort``.  Small batches fall back to the scalar
    in-place sort, where building the key arrays would dominate.
    """
    n = len(entries)
    if n < VECTOR_SORT_MIN:
        if n > 1:
            entries.sort(key=_contract_key)
        return entries
    t = np.empty(n, np.int64)
    prio = np.empty(n, np.int64)
    flow = np.empty(n, np.int64)
    isack = np.empty(n, np.int64)
    seq = np.empty(n, np.int64)
    for k, (tk, pk, row) in enumerate(entries):
        t[k] = tk
        prio[k] = pk
        flow[k] = row[F_FLOW]
        isack[k] = row[F_ISACK]
        seq[k] = row[F_SEQ]
    order = np.lexsort((seq, isack, flow, prio, t))
    return [entries[k] for k in order.tolist()]


#: The transmit tie-break hook, resolved from module globals at kernel
#: run time so `conformance.inject.unstable_transmit_sort` can patch it
#: the way `flipped_transmit_order` patches the Python backend's
#: `transmit_kernel`.
transmit_sort = sort_contract


def _chunked(items: List, workers: int) -> List[List]:
    """Contiguous near-equal slices of a work list, one per pool task."""
    if workers <= 1 or len(items) <= 1:
        return [items]
    return [items[s:e] for s, e in chunk_ranges(len(items), workers)]


# --- SendSystem ------------------------------------------------------------


def _udp_send_kernel(cols, scenario, window_end: int, flow_id: int, k: int):
    """Vectorized UDP pacing: one flow's window as an array expression.

    The closed form ``t(seq) = start + (seq*wire*8*PS)//rate`` is
    evaluated over the whole remaining segment range at once.  To stay
    inside ``int64``, the division is decomposed via
    ``q, r = divmod(wire*8*PS, rate)`` into ``start + seq*q +
    (seq*r)//rate`` — identical floor arithmetic, and for every rate
    that divides the wire term (all realistic ones) ``r == 0``.  When
    the decomposition could still overflow (degenerate rate/size
    combinations), the scalar schedule runs instead; either path
    produces bit-identical timestamps.
    """
    flow = scenario.flows[flow_id]
    rate = scenario.topology.host_iface(flow.src).rate_bps
    sched = UdpSchedule(flow_id, flow.size_bytes, flow.start_ps, rate)
    udp_col = cols["udp_next_seq"]
    seq = udp_col[k]
    total = sched.total_segs
    out: List[Tuple[int, int, Row]] = []
    if seq < total:
        wire8ps = (MSS + HEADER_BYTES) * 8 * PS_PER_S
        q, r = divmod(wire8ps, rate)
        # Python-int bound on the largest timestamp the range can reach.
        t_last = flow.start_ps + ((total - 1) * wire8ps) // rate
        if t_last < 2 ** 63 and (total - 1) * r < 2 ** 63:
            seqs = np.arange(seq, total, dtype=np.int64)
            times = flow.start_ps + seqs * q
            if r:
                times += (seqs * r) // rate
            cut = int(np.searchsorted(times, window_end, side="left"))
            for s, t in zip(seqs[:cut].tolist(), times[:cut].tolist()):
                out.append((t, PRIO_FLOW_START,
                            data_row(flow_id, s, sched.payload(s), t,
                                     flow.src, flow.dst)))
            seq += cut
        else:  # pragma: no cover - degenerate scales, scalar fallback
            while seq < total:
                t = sched.enqueue_time(seq)
                if t >= window_end:
                    break
                out.append((t, PRIO_FLOW_START,
                            data_row(flow_id, seq, sched.payload(seq), t,
                                     flow.src, flow.dst)))
                seq += 1
    udp_col[k] = seq
    udp_wakeup = sched.enqueue_time(seq) if seq < total else None
    return flow_id, out, [], None, udp_wakeup, len(out)


def send_batch_kernel(cols, sender_of_flow, scenario, acks_of, starts,
                      window_end, flow_ids: List[int]):
    """One worker's slice of the sender sweep, flow by flow in order."""
    out = []
    flows = scenario.flows
    tr_at = getattr(flows, "transport_at", None)
    udp = int(Transport.UDP)
    for flow_id in flow_ids:
        is_udp = (tr_at(flow_id) == udp if tr_at is not None
                  else flows[flow_id].transport == Transport.UDP)
        if is_udp:
            out.append(_udp_send_kernel(cols, scenario, window_end,
                                        flow_id, sender_of_flow[flow_id]))
        else:
            out.append(send_kernel(cols, sender_of_flow, scenario, acks_of,
                                   starts, window_end, flow_id))
    return out


def run_send_system_np(engine, ctx: WindowContext) -> None:
    """Vectorized SendSystem: resident columns, batched kernels.

    The kernels run against the sender table's resident working set
    (:meth:`~repro.core.ecs.NumpyTable.resident`): whole columns
    materialized to Python values once and committed back to the arrays
    in bulk at sync points, so the per-window loop pays no per-flow
    conversion at all.
    """
    flow_ids, acks_of, starts, deliver_trace = plan_send(engine, ctx)
    if not flow_ids:
        return

    bus = engine.bus
    if bus.trace_level:
        for t, node, row in sorted(
            deliver_trace,
            key=lambda d: (d[0], d[2][F_FLOW], d[2][F_ISACK], d[2][F_SEQ]),
        ):
            bus.deliver(t, node, row[F_FLOW], row[F_ISACK], row[F_SEQ])

    cols = engine.world.senders.resident(SENDER_COLS)
    sender_of_flow = engine.world.sender_of_flow
    chunks = _chunked(flow_ids, engine.pool.workers)
    results = engine.pool.map(
        "send",
        lambda chunk: send_batch_kernel(cols, sender_of_flow,
                                        engine.scenario, acks_of, starts,
                                        ctx.end, chunk),
        chunks,
        sizes=[sum(len(acks_of.get(f, ())) + 1 for f in chunk)
               for chunk in chunks],
    )
    if len(results) == 1:
        commit_send(engine, ctx, results[0])
    else:
        commit_send(engine, ctx, [r for chunk in results for r in chunk])


# --- ACKSystem -------------------------------------------------------------


AckWork = Tuple[int, List[Tuple[int, int, Row]]]


def plan_ack_np(engine, ctx: WindowContext) -> List[AckWork]:
    """Per-host work slices; the canonical sort runs vectorized."""
    work: List[AckWork] = []
    for node, entries in sorted(ctx.node_entries.items()):
        if not engine.scenario.topology.nodes[node].is_host:
            continue
        data = [
            (e[1], e[2], e[3])
            for e in entries
            if e[0] == ENTRY_ARRIVAL and not e[3][F_ISACK]
        ]
        if data:
            work.append((node, sort_contract(data)))
    return work


def ack_batch_kernel(cols: AckCols, receiver_of_flow, flows,
                     items: List[AckWork]):
    """One worker's slice of the receiver sweep, host by host."""
    return [ack_kernel(cols, receiver_of_flow, flows, item) for item in items]


def run_ack_system_np(engine, ctx: WindowContext) -> None:
    """Vectorized ACKSystem: resident columns, batched kernels.

    Like the SendSystem, the reassembly kernels sweep the receiver
    table's resident working set; the bulk write-back happens at the
    table's sync points, not per window.
    """
    work = plan_ack_np(engine, ctx)
    if not work:
        return
    cols = AckCols(**engine.world.receivers.resident(AckCols._fields))
    receiver_of_flow = engine.world.receiver_of_flow
    chunks = _chunked(work, engine.pool.workers)
    results = engine.pool.map(
        "ack",
        lambda chunk: ack_batch_kernel(cols, receiver_of_flow,
                                       engine.scenario.flows, chunk),
        chunks,
        sizes=[sum(len(w[1]) for w in chunk) for chunk in chunks],
    )
    if len(results) == 1:
        commit_ack(engine, ctx, results[0])
    else:
        commit_ack(engine, ctx, [r for chunk in results for r in chunk])


# --- ForwardSystem ---------------------------------------------------------


def forward_batch_kernel(fib, iface_id_of, spray: bool,
                         items: List[ForwardWork],
                         memo: Optional[Dict] = None):
    """One worker's slice of the switch sweep: all its nodes' arrivals
    routed into private command buffers (one per node, so the commit's
    per-node accounting matches the scalar path).

    ``memo`` caches ``(node, dst, flow) -> egress iface id`` across
    windows: flow-hashed ECMP is pure in that key, so after a flow's
    first packet crosses a switch every later packet's route is a dict
    hit instead of a FIB walk plus hash.  Packet spraying re-salts the
    hash per segment, so the memo is bypassed (``spray=True`` callers
    pass ``memo=None``).
    """
    out = []
    if memo is None:
        for node, arrivals in items:
            buf: CommandBuffer = CommandBuffer()
            for t, prio, row in arrivals:
                salt = row[F_SEQ] if spray else None
                port = fib.resolve_port(node, row[F_DST], row[F_FLOW], salt)
                buf.append(iface_id_of(node, port), (t, prio, row))
            out.append((node, len(arrivals), buf))
        return out
    resolve = fib.resolve_port
    memo_get = memo.get
    for node, arrivals in items:
        buf = CommandBuffer()
        append = buf.append
        for t, prio, row in arrivals:
            key = (node, row[F_DST], row[F_FLOW])
            target = memo_get(key)
            if target is None:
                target = memo[key] = iface_id_of(
                    node, resolve(node, key[1], key[2]))
            append(target, (t, prio, row))
        out.append((node, len(arrivals), buf))
    return out


def commit_forward_np(engine, ctx: WindowContext, results) -> None:
    """``commit_forward`` with the grouped array consolidation path."""
    bus = engine.bus
    buffers = []
    for node, n, buf in results:
        ctx.counts.forward += n
        engine.bump_node(node, n)
        if bus.has_ops:
            from ...protocols.packet import packet_uid
            for _target, (_t, _prio, row) in buf.entries:
                bus.op(1, node, packet_uid(row))  # OP_FORWARD
        buffers.append(buf)
    consolidate_grouped(buffers, ctx.staged)


def _forward_serial_np(engine, ctx: WindowContext, work, memo,
                       spray: bool) -> None:
    """:func:`forward_batch_kernel` fused with its commit for the
    single-worker, probe-off sweep: resolved routes append straight
    into ``ctx.staged`` — no per-node command buffer, no consolidation
    pass.  Per-target arrival order matches the buffered path, which
    also preserves the global (node, arrival) recording order.
    """
    sc = engine.scenario
    resolve = sc.fib.resolve_port
    iface_id_of = sc.topology.iface_id
    staged = ctx.staged
    staged_get = staged.get
    node_events = engine.results.node_events
    memo_get = memo.get if memo is not None else None
    # Flat integer memo keys: (node, dst, flow) packed by exact
    # mixed-radix arithmetic (dst < n_nodes, flow < n_flows), so the
    # per-packet tuple allocation and tuple hash become one int hash.
    n_nodes = len(sc.topology.nodes)
    n_flows = len(sc.flows)
    total = 0
    for node, arrivals in work:
        base = node * n_nodes
        for t, prio, row in arrivals:
            if memo_get is None:
                salt = row[F_SEQ] if spray else None
                target = iface_id_of(
                    node, resolve(node, row[F_DST], row[F_FLOW], salt))
            else:
                key = (base + row[F_DST]) * n_flows + row[F_FLOW]
                target = memo_get(key)
                if target is None:
                    target = memo[key] = iface_id_of(
                        node, resolve(node, row[F_DST], row[F_FLOW]))
            lst = staged_get(target)
            if lst is None:
                staged[target] = [(t, prio, row)]
            else:
                lst.append((t, prio, row))
        n = len(arrivals)
        total += n
        node_events[node] = node_events.get(node, 0) + n
    ctx.counts.forward += total


def _route_memo(engine, spray: bool) -> Optional[Dict]:
    """The engine's cross-window route cache (None when spraying)."""
    if spray:
        return None
    memo = getattr(engine, "_fwd_memo", None)
    if memo is None:
        memo = engine._fwd_memo = {}
    return memo


def run_forward_system_np(engine, ctx: WindowContext) -> None:
    """Vectorized ForwardSystem: batched routing, grouped consolidation."""
    work = plan_forward(engine, ctx)
    if not work:
        return
    sc = engine.scenario
    spray = sc.ecmp_mode == "packet"
    memo = _route_memo(engine, spray)
    chunks = _chunked(work, engine.pool.workers)
    results = engine.pool.map(
        "forward",
        lambda chunk: forward_batch_kernel(
            sc.fib, sc.topology.iface_id, spray, chunk, memo),
        chunks,
        sizes=[sum(len(w[1]) for w in chunk) for chunk in chunks],
    )
    if len(results) == 1:
        commit_forward_np(engine, ctx, results[0])
    else:
        commit_forward_np(engine, ctx, [r for chunk in results for r in chunk])


# --- TransmitSystem --------------------------------------------------------


def plan_transmit_np(engine, ctx: WindowContext) -> List[int]:
    """Masked selection over the port axis: fed ∪ still-serializing.

    ``np.flatnonzero`` of the boolean mask yields ascending iface ids —
    the same list ``sorted(set(staged) | active)`` produces.
    """
    staged = ctx.staged
    active = engine.active_ports
    if len(staged) + len(active) < VECTOR_SORT_MIN:
        return sorted(set(staged) | active)
    mask = np.zeros(len(engine.ports), dtype=bool)
    if staged:
        mask[np.fromiter(staged, np.int64, len(staged))] = True
    if active:
        mask[np.fromiter(active, np.int64, len(active))] = True
    return np.flatnonzero(mask).tolist()


#: 8 * PS_PER_S, the serialization-formula constant (see repro.units).
_PS8 = 8 * PS_PER_S


def _replay_window_fifo(
    port,
    arrivals: List[Staged],
    window_start: int,
    window_end: int,
    emissions: List,
    drops: List[Tuple[int, Row]],
    enq: Optional[List[Tuple[int, Row]]],
    consts: Optional[Tuple[int, int, int, int]] = None,
    sink: Optional[Tuple] = None,
) -> int:
    """:meth:`EgressPort.replay_window` specialized for FIFO ports.

    Same interleave, same state transitions, statement for statement —
    but every per-packet helper (``arrive``, ``_dequeue``,
    ``serialization_ps``, the scheduler's single queue, the integer
    EWMA, the DCTCP threshold test) is inlined over local variables,
    with port/stats state written back once at exit.  FIFO ignores the
    classifier (all classes collapse to queue 0, see
    ``FifoScheduler.enqueue``), so the per-packet classifier call is
    skipped outright.  This loop runs once per fed-or-active port per
    window; on the reference workload the dispatch it removes is most
    of the TransmitSystem's non-automaton cost.  Keep in lockstep with
    ``EgressPort.replay_window``/``arrive`` and ``Scheduler._pop``; the
    backend-equivalence suite diffs the backends byte for byte.

    ``consts`` is the caller's pre-gathered
    ``(rate, weight_shift, buffer_bytes, ecn_k)`` (threshold-AQM ports
    only — it skips the per-call attribute walk).  ``sink`` is the
    caller's ``(buckets, events, register_window, lookahead, floor,
    peer_node, delay_ps)``; when given, dequeued packets are delivered
    straight into the engine's event columns instead of filling
    ``emissions``.  Returns the number of dequeues.
    """
    sched = port.sched
    queue = sched.queues[0]
    head = sched._heads[0]
    slen = sched._len
    stats = port.stats
    if consts is not None:
        rate, weight_shift, buffer_bytes, ecn_k = consts
        aqm = None
        iface_id = -1  # should_mark is unreachable: ecn_k is not None
    else:
        rate = port.iface.rate_bps
        iface_id = port.iface.iface_id
        cfg = port.config
        aqm = cfg.aqm
        weight_shift = aqm.red_weight_shift
        buffer_bytes = cfg.buffer_bytes
        # DCTCP threshold marking (the default) inlines; other AQM
        # kinds go through the shared decision function.
        ecn_k = (aqm.ecn_threshold_bytes
                 if aqm.kind == AqmKind.ECN_THRESHOLD else None)
    if sink is not None:
        buckets, events, reg, L, floor, peer, delay = sink
        last_win = -1
        b_nodes = b_payloads = None
    sample_queue = port.sample_queue
    queued = port.queued_bytes
    avg = port.avg_bytes
    free_at = port.free_at
    max_q = stats.max_queue_bytes
    n_deq = n_enq = n_drop = n_mark = tx = 0
    cursor = window_start
    i = 0
    n = len(arrivals)
    while True:
        next_arr = arrivals[i][0] if i < n else None
        start: Optional[int] = None
        if slen > 0:
            start = free_at if free_at > cursor else cursor
            if start >= window_end:
                start = None
        if start is not None and (next_arr is None or start <= next_arr):
            row = queue[head]            # Scheduler._pop, inlined
            head += 1
            if head > 64 and head * 2 >= len(queue):
                del queue[:head]
                head = 0
            slen -= 1
            size = row[F_SIZE]
            queued -= size
            n_deq += 1
            tx += size
            end = start + (size * _PS8) // rate
            free_at = end
            if sink is None:
                emissions.append((row, start, end))
            else:
                ta = end + delay
                win = ta // L
                if win < floor:
                    win = floor
                if win != last_win:
                    bucket = buckets.get(win)
                    if bucket is None:
                        bucket = buckets[win] = events_mod._Bucket()
                        reg(events, win)
                    last_win = win
                    b_nodes = bucket.nodes.append
                    b_payloads = bucket.payloads.append
                b_nodes(peer)
                b_payloads((ENTRY_ARRIVAL, ta, PRIO_ARRIVAL, row))
            cursor = start
        elif next_arr is not None:
            t, _prio, row = arrivals[i]
            i += 1
            # EgressPort.arrive, inlined (marking sees the queue
            # occupancy before the packet, per the DCTCP convention)
            size = row[F_SIZE]
            avg += (queued - avg) >> weight_shift
            if queued + size > buffer_bytes:
                n_drop += 1
                drops.append((t, row))
            else:
                if (queued >= ecn_k and not row[F_ISACK]
                        if ecn_k is not None
                        else should_mark(aqm, row, queued, avg, iface_id)):
                    row = with_ce(row)
                    n_mark += 1
                queue.append(row)
                slen += 1
                queued += size
                n_enq += 1
                if queued > max_q:
                    max_q = queued
                if sample_queue:
                    stats.queue_samples.append((t, queued))
                if enq is not None:
                    enq.append((t, row))
            cursor = t
        else:
            break
    sched._heads[0] = head
    sched._len = slen
    port.queued_bytes = queued
    port.avg_bytes = avg
    port.free_at = free_at
    stats.dequeued += n_deq
    stats.enqueued += n_enq
    stats.dropped += n_drop
    stats.marked += n_mark
    stats.tx_bytes += tx
    stats.max_queue_bytes = max_q
    return n_deq


def _replay_one_fifo(port, t: int, row, window_start: int, window_end: int,
                     emissions: List, drops: List, rate: int, shift: int,
                     buffer_bytes: int, ecn_k: Optional[int],
                     sink: Optional[Tuple] = None) -> int:
    """:func:`_replay_window_fifo` for exactly one arrival onto a busy
    FIFO line with plain threshold (or no) AQM.

    The interleave splits in two: dequeues whose service start lands at
    or before ``t`` precede the arrival, then the arrival runs the
    inlined AQM step, then the line keeps draining to ``window_end``.
    The caller hands in the port's static constants (rate, EWMA shift,
    buffer, threshold) from its per-port arrays, so the per-call
    attribute walk of the general replay disappears.  Transitions match
    the general loop statement for statement.  ``sink`` (same tuple as
    :func:`_replay_window_fifo`) delivers dequeues straight to the event
    columns; returns the number of dequeues.
    """
    sched = port.sched
    queue = sched.queues[0]
    head = sched._heads[0]
    slen = sched._len
    stats = port.stats
    queued = port.queued_bytes
    free_at = port.free_at
    if sink is not None:
        buckets, events, reg, L, floor, peer, delay = sink
        last_win = -1
        b_nodes = b_payloads = None
    n_deq = tx = 0
    phase_bound = t  # phase 1: service starts at or before the arrival
    start = free_at if free_at > window_start else window_start
    for _phase in (0, 1):
        while slen > 0 and start < window_end and start <= phase_bound:
            out = queue[head]            # Scheduler._pop, inlined
            head += 1
            if head > 64 and head * 2 >= len(queue):
                del queue[:head]
                head = 0
            slen -= 1
            size = out[F_SIZE]
            queued -= size
            n_deq += 1
            tx += size
            end = start + (size * _PS8) // rate
            free_at = end
            if sink is None:
                emissions.append((out, start, end))
            else:
                ta = end + delay
                win = ta // L
                if win < floor:
                    win = floor
                if win != last_win:
                    bucket = buckets.get(win)
                    if bucket is None:
                        bucket = buckets[win] = events_mod._Bucket()
                        reg(events, win)
                    last_win = win
                    b_nodes = bucket.nodes.append
                    b_payloads = bucket.payloads.append
                b_nodes(peer)
                b_payloads((ENTRY_ARRIVAL, ta, PRIO_ARRIVAL, out))
            start = end
        if _phase:
            break
        # the arrival (marking sees the occupancy before the packet)
        size = row[F_SIZE]
        avg = port.avg_bytes
        port.avg_bytes = avg + ((queued - avg) >> shift)
        if queued + size > buffer_bytes:
            stats.dropped += 1
            drops.append((t, row))
        else:
            if ecn_k is not None and queued >= ecn_k and not row[F_ISACK]:
                row = with_ce(row)
                stats.marked += 1
            queue.append(row)
            slen += 1
            queued += size
            stats.enqueued += 1
            if queued > stats.max_queue_bytes:
                stats.max_queue_bytes = queued
            if port.sample_queue:
                stats.queue_samples.append((t, queued))
        # phase 2: drain freely to the window edge
        phase_bound = window_end
        start = free_at if free_at > t else t
    sched._heads[0] = head
    sched._len = slen
    port.queued_bytes = queued
    port.free_at = free_at
    stats.dequeued += n_deq
    stats.tx_bytes += tx
    return n_deq


def _drain_window_fifo(port, window_start: int, window_end: int,
                       emissions: List,
                       rate: Optional[int] = None,
                       sink: Optional[Tuple] = None) -> int:
    """:func:`_replay_window_fifo` for the no-arrival case.

    An active port with nothing staged only *dequeues*: no AQM, no
    EWMA, no drops, no queue growth.  The interleave collapses to
    ``start_1 = max(free_at, window_start); start_{k+1} = end_k`` until
    the line crosses ``window_end`` or the queue drains — so all the
    arrival-side bindings of the full replay are skipped.  Identical
    emissions and port state, by construction.  Callers holding the
    per-port static arrays pass ``rate`` to skip the attribute walk.
    ``sink`` (same tuple as :func:`_replay_window_fifo`) delivers
    dequeues straight to the event columns; returns the dequeue count.
    """
    sched = port.sched
    queue = sched.queues[0]
    head = sched._heads[0]
    slen = sched._len
    stats = port.stats
    if rate is None:
        rate = port.iface.rate_bps
    if sink is not None:
        buckets, events, reg, L, floor, peer, delay = sink
        last_win = -1
        b_nodes = b_payloads = None
    queued = port.queued_bytes
    free_at = port.free_at
    n_deq = tx = 0
    start = free_at if free_at > window_start else window_start
    while slen > 0 and start < window_end:
        row = queue[head]                # Scheduler._pop, inlined
        head += 1
        if head > 64 and head * 2 >= len(queue):
            del queue[:head]
            head = 0
        slen -= 1
        size = row[F_SIZE]
        queued -= size
        n_deq += 1
        tx += size
        end = start + (size * _PS8) // rate
        if sink is None:
            emissions.append((row, start, end))
        else:
            ta = end + delay
            win = ta // L
            if win < floor:
                win = floor
            if win != last_win:
                bucket = buckets.get(win)
                if bucket is None:
                    bucket = buckets[win] = events_mod._Bucket()
                    reg(events, win)
                last_win = win
                b_nodes = bucket.nodes.append
                b_payloads = bucket.payloads.append
            b_nodes(peer)
            b_payloads((ENTRY_ARRIVAL, ta, PRIO_ARRIVAL, row))
        free_at = end
        start = end
    sched._heads[0] = head
    sched._len = slen
    port.queued_bytes = queued
    port.free_at = free_at
    stats.dequeued += n_deq
    stats.tx_bytes += tx
    return n_deq


def transmit_batch_kernel(
    ports,
    staged: Dict[int, List[Staged]],
    window_start: int,
    window_end: int,
    full_trace: bool,
    iface_ids: List[int],
):
    """One worker's slice of the port axis, replayed port by port."""
    out = []
    sort = transmit_sort  # module attribute: the injectable tie-break
    staged_get = staged.get
    append = out.append
    for iface_id in iface_ids:
        port = ports[iface_id]
        arrivals = staged_get(iface_id)
        if arrivals is None:
            if len(port.sched) > 0 and port.free_at >= window_end:
                # Busy line, nothing fed, and the head packet outlasts
                # the window: the replay is a guaranteed no-op (its
                # first service start would land at or past window_end).
                # Most active ports in a large fan-in hit this.
                append((iface_id, (), (), [] if full_trace else None,
                        True, 0))
                continue
            arrivals = []
        elif len(arrivals) > 1:  # 0/1 arrivals: nothing to tie-break
            arrivals = sort(arrivals)
        emissions: List = []
        drops: List[Tuple[int, Row]] = []
        enq: Optional[List[Tuple[int, Row]]] = [] if full_trace else None
        if type(port.sched) is FifoScheduler:
            _replay_window_fifo(port, arrivals, window_start, window_end,
                                emissions, drops, enq)
        else:
            port.replay_window(arrivals, window_start, window_end,
                               emissions, drops, enq)
        append((iface_id, emissions, drops, enq,
                len(port.sched) > 0, len(arrivals)))
    return out


def _transmit_serial_np(engine, ctx: WindowContext,
                        iface_ids: List[int],
                        window_start: int, window_end: int) -> None:
    """Replay *and* commit the port axis in one serial sweep.

    Fuses :func:`transmit_batch_kernel` with ``commit_transmit`` for the
    single-worker, trace-off case (the measured configuration): no
    intermediate result tuples, scratch emission/drop lists reused
    across ports, and each port's deliveries land through the engine's
    bulk :meth:`~repro.core.engine.DodEngine.deliver_emissions` instead
    of one call chain per packet.  Port order, per-port emission order,
    stats and active-set updates are exactly the two-phase path's —
    only the dispatch around them is collapsed.  Trace-on runs keep the
    two-phase path so per-packet ENQ/DEQ/DROP events interleave exactly
    as the Python backend emits them.
    """
    ports = engine.ports
    static = getattr(engine, "_tx_static", None)
    if static is None or len(static[0]) != len(ports):
        # Topology-fixed per-port metadata, gathered once: scheduler
        # kind, endpoint nodes, link delay/rate, and the inlined AQM
        # constants (None where the port is not plain DCTCP-threshold).
        # Dynamic state (sched contents, free_at, EWMA) stays on the
        # port objects — migration moves those, never these.
        static = engine._tx_static = (
            [type(p.sched) is FifoScheduler for p in ports],
            [p.iface.node for p in ports],
            [p.iface.peer_node for p in ports],
            [p.iface.delay_ps for p in ports],
            [p.iface.rate_bps for p in ports],
            [p.config.aqm.red_weight_shift for p in ports],
            [p.config.buffer_bytes for p in ports],
            [p.config.aqm.ecn_threshold_bytes
             if p.config.aqm.kind == AqmKind.ECN_THRESHOLD else None
             for p in ports],
            [p.config.aqm.kind in (AqmKind.ECN_THRESHOLD, AqmKind.NONE)
             for p in ports],
        )
    (fifo_of, node_of, peer_of, delay_of, rate_of, shift_of, buf_of,
     ecn_of, simple_of) = static
    staged_get = ctx.staged.get
    bus = engine.bus
    has_ops = bus.has_ops
    active = engine.active_ports
    node_events = engine.results.node_events
    results = engine.results
    sort = transmit_sort  # module attribute: the injectable tie-break
    # Local deliveries append straight to the event columns; the
    # cluster's AgentEngine keeps the bulk-method dispatch (its peers
    # can live on another partition).
    inline = engine.deliveries_local
    if inline:
        events = engine.events
        buckets = events._buckets
        reg = events_mod.register_window
        L = engine.lookahead
        floor = engine._running_window + 1
        last_win = None
        b_nodes = b_payloads = None
    else:
        deliver_emissions = engine.deliver_emissions
    # With local delivery and no conformance bus the FIFO replay
    # helpers take a delivery sink and append dequeues straight to the
    # event columns — no intermediate emission tuples at all.
    use_sink = inline and not has_ops
    count = 0
    emissions: List = []
    drops: List[Tuple[int, Row]] = []
    for iface_id in iface_ids:
        port = ports[iface_id]
        arrivals = staged_get(iface_id)
        fifo = fifo_of[iface_id]
        n_sunk = 0
        if arrivals is None:
            if port.sched._len > 0 if fifo else len(port.sched) > 0:
                if port.free_at >= window_end:
                    # Busy line, nothing fed, head packet outlasts the
                    # window: guaranteed no-op (see
                    # transmit_batch_kernel).  The port is already in
                    # the active set — keep it there.
                    continue
            if fifo:
                if use_sink:
                    n_sunk = _drain_window_fifo(
                        port, window_start, window_end, emissions,
                        rate_of[iface_id],
                        (buckets, events, reg, L, floor,
                         peer_of[iface_id], delay_of[iface_id]))
                else:
                    _drain_window_fifo(port, window_start, window_end,
                                       emissions, rate_of[iface_id])
            else:
                port.replay_window([], window_start, window_end,
                                   emissions, drops, None)
        elif (fifo and len(arrivals) == 1 and port.sched._len == 0
                and simple_of[iface_id]
                and not port.sample_queue and not has_ops):
            # Single arrival, empty FIFO queue, threshold or no AQM:
            # the replay collapses to "maybe mark, then emit when the
            # line frees" — ~58% of replays on the reference workload
            # (switch egresses and host NICs alike).  Same transitions
            # as _replay_window_fifo with queued == 0, including the
            # EWMA step and the enqueue-or-emit split.
            t, _prio, row = arrivals[0]
            size = row[F_SIZE]
            stats = port.stats
            avg = port.avg_bytes
            port.avg_bytes = avg + ((0 - avg) >> shift_of[iface_id])
            if size > buf_of[iface_id]:
                stats.dropped += 1
                results.drops += 1
                active.discard(iface_id)
                continue
            ecn_k = ecn_of[iface_id]
            if ecn_k is not None and 0 >= ecn_k and not row[F_ISACK]:
                row = with_ce(row)
                stats.marked += 1
            stats.enqueued += 1
            if size > stats.max_queue_bytes:
                stats.max_queue_bytes = size
            free_at = port.free_at
            start = free_at if free_at > t else t
            if start >= window_end:  # stays queued past the window
                sched = port.sched
                sched.queues[0].append(row)
                sched._len += 1
                port.queued_bytes = size
                active.add(iface_id)
                continue
            end = start + (size * _PS8) // rate_of[iface_id]
            port.free_at = end
            stats.dequeued += 1
            stats.tx_bytes += size
            count += 1
            node = node_of[iface_id]
            node_events[node] = node_events.get(node, 0) + 1
            if inline:
                t = end + delay_of[iface_id]
                win = t // L
                if win < floor:
                    win = floor
                if win != last_win:
                    bucket = buckets.get(win)
                    if bucket is None:
                        bucket = buckets[win] = events_mod._Bucket()
                    reg(events, win)
                    last_win = win
                    b_nodes = bucket.nodes.append
                    b_payloads = bucket.payloads.append
                b_nodes(peer_of[iface_id])
                b_payloads((ENTRY_ARRIVAL, t, PRIO_ARRIVAL, row))
            else:
                deliver_emissions(peer_of[iface_id], delay_of[iface_id],
                                  [(row, start, end)])
            active.discard(iface_id)
            continue
        elif fifo and len(arrivals) == 1 and simple_of[iface_id]:
            # One arrival onto a busy line: two-phase drain around the
            # inlined AQM step, constants from the per-port arrays.
            t, _prio, row = arrivals[0]
            if use_sink:
                n_sunk = _replay_one_fifo(
                    port, t, row, window_start, window_end,
                    emissions, drops, rate_of[iface_id],
                    shift_of[iface_id], buf_of[iface_id],
                    ecn_of[iface_id],
                    (buckets, events, reg, L, floor, peer_of[iface_id],
                     delay_of[iface_id]))
            else:
                _replay_one_fifo(port, t, row, window_start, window_end,
                                 emissions, drops, rate_of[iface_id],
                                 shift_of[iface_id], buf_of[iface_id],
                                 ecn_of[iface_id])
        else:
            if len(arrivals) > 1:  # 0/1 arrivals: nothing to tie-break
                arrivals = sort(arrivals)
            if fifo:
                consts = ((rate_of[iface_id], shift_of[iface_id],
                           buf_of[iface_id], ecn_of[iface_id])
                          if ecn_of[iface_id] is not None else None)
                if use_sink:
                    n_sunk = _replay_window_fifo(
                        port, arrivals, window_start, window_end,
                        emissions, drops, None, consts,
                        (buckets, events, reg, L, floor,
                         peer_of[iface_id], delay_of[iface_id]))
                else:
                    _replay_window_fifo(port, arrivals, window_start,
                                        window_end, emissions, drops,
                                        None, consts)
            else:
                port.replay_window(arrivals, window_start, window_end,
                                   emissions, drops, None)
        if has_ops and emissions:
            from ...protocols.packet import packet_uid
            for row, _s, _e in emissions:
                bus.op(2, iface_id, packet_uid(row))  # OP_SERVICE
        if drops:
            results.drops += len(drops)
            drops.clear()
        if n_sunk:
            # Deliveries already landed in the event columns inside the
            # replay helper; only the counters remain.
            count += n_sunk
            node = node_of[iface_id]
            node_events[node] = node_events.get(node, 0) + n_sunk
            if (port.sched._len if fifo else len(port.sched)) > 0:
                active.add(iface_id)
            else:
                active.discard(iface_id)
            continue
        n = len(emissions)
        if n:
            count += n
            node = node_of[iface_id]
            node_events[node] = node_events.get(node, 0) + n
            if inline:
                peer = peer_of[iface_id]
                delay = delay_of[iface_id]
                for row, _start, end in emissions:
                    t = end + delay
                    win = t // L
                    if win < floor:
                        win = floor
                    if win != last_win:
                        bucket = buckets.get(win)
                        if bucket is None:
                            bucket = buckets[win] = events_mod._Bucket()
                        reg(events, win)
                        last_win = win
                        b_nodes = bucket.nodes.append
                        b_payloads = bucket.payloads.append
                    b_nodes(peer)
                    b_payloads((ENTRY_ARRIVAL, t, PRIO_ARRIVAL, row))
            else:
                deliver_emissions(peer_of[iface_id], delay_of[iface_id],
                                  emissions)
            emissions.clear()
        if (port.sched._len if fifo else len(port.sched)) > 0:
            active.add(iface_id)
        else:
            active.discard(iface_id)
    ctx.counts.transmit += count


def run_transmit_system_np(engine, ctx: WindowContext) -> None:
    """Vectorized TransmitSystem: masked plan, batched port replay."""
    iface_ids = plan_transmit_np(engine, ctx)
    if not iface_ids:
        return
    if engine.pool.workers <= 1 and not engine.bus.trace_level:
        _transmit_serial_np(engine, ctx, iface_ids, ctx.start, ctx.end)
        return
    full_trace = engine.bus.trace_level >= 2
    chunks = _chunked(iface_ids, engine.pool.workers)
    results = engine.pool.map(
        "transmit",
        lambda chunk: transmit_batch_kernel(
            engine.ports, ctx.staged, ctx.start, ctx.end, full_trace, chunk),
        chunks,
        sizes=[sum(len(ctx.staged.get(i, ())) + 1 for i in chunk)
               for chunk in chunks],
    )
    if len(results) == 1:
        commit_transmit(engine, ctx, results[0])
    else:
        commit_transmit(engine, ctx, [r for chunk in results for r in chunk])


# --- Fused window pass ------------------------------------------------------


def plan_window_np(engine, ctx: WindowContext):
    """All four systems' plans in one traversal of the window columns.

    The classic path groups the window's entries by node and then walks
    the grouped dict four times (once per system's plan); this consumes
    the raw insert-ordered ``ctx.columns`` in one pass, classifying
    every entry into the ACK, Send and Forward work lists directly.
    Output order is provably identical: grouping preserves insertion
    order, so every per-node (and per-flow — a flow's ACKs all land on
    its one source host) sequence comes out the same whether entries
    are visited node-by-node or in global insert order, and the
    order-sensitive outputs are sorted exactly where the classic plans
    sort them (``plan_ack``/``plan_forward`` sort by node,
    ``plan_send`` by flow id, ACK slices through the same
    :func:`sort_contract`).
    """
    is_host = getattr(engine, "_is_host", None)
    if is_host is None:
        is_host = engine._is_host = [
            n.is_host for n in engine.scenario.topology.nodes]
    ack_data: Dict[int, List[Tuple[int, int, Row]]] = {}
    acks_of: Dict[int, List[Tuple[int, Row]]] = {}
    starts: Dict[int, int] = {}
    visits: List[int] = []
    deliver_trace: List[Tuple[int, int, Row]] = []
    fwd: Dict[int, List[Tuple[int, int, Row]]] = {}
    ack_get = ack_data.get
    acks_get = acks_of.get
    fwd_get = fwd.get
    nodes_col, payloads = ctx.columns
    for i, node in enumerate(nodes_col):
        e = payloads[i]
        tag = e[0]
        if is_host[node]:
            if tag == ENTRY_ARRIVAL:
                row = e[3]
                if row[F_ISACK]:
                    lst = acks_get(row[F_FLOW])
                    if lst is None:
                        acks_of[row[F_FLOW]] = [(e[1], row)]
                    else:
                        lst.append((e[1], row))
                    deliver_trace.append((e[1], node, row))
                else:
                    lst = ack_get(node)
                    if lst is None:
                        ack_data[node] = [(e[1], e[2], row)]
                    else:
                        lst.append((e[1], e[2], row))
            elif tag == ENTRY_FLOW_START:
                starts[e[2]] = e[1]
            elif e[1] >= 0:  # TIMER / UDP; negative = bare wakeup
                visits.append(e[1])
        elif tag == ENTRY_ARRIVAL:
            lst = fwd_get(node)
            if lst is None:
                fwd[node] = [(e[1], e[2], e[3])]
            else:
                lst.append((e[1], e[2], e[3]))
    ack_work = [(node, sort_contract(data))
                for node, data in sorted(ack_data.items())]
    flow_ids = sorted(set(acks_of) | set(starts) | set(visits))
    return (ack_work, (flow_ids, acks_of, starts, deliver_trace),
            sorted(fwd.items()))


def run_window_fused(engine, ctx: WindowContext):
    """One fused pass over the window: plan once, then the four phases
    in paper order over shared column handles.

    Semantically identical to running
    ``run_ack_system_np``/``run_send_system_np``/``run_forward_system_np``
    /``run_transmit_system_np`` back to back — same kernels, same shared
    commit helpers, same ordering contract — but the plan traversal
    happens once, and single-worker runs dispatch kernels directly
    instead of through the pool's task machinery.  Returns the five
    ``perf_counter`` phase marks ``(t0..t4)`` so the engine's profiling
    and telemetry spans stay per-system.
    """
    clock = perf_counter
    pool = engine.pool
    workers = pool.workers
    bus = engine.bus
    world = engine.world
    sc = engine.scenario
    t0 = clock()
    if ctx.columns is not None:
        ack_work, send_plan, forward_work = plan_window_np(engine, ctx)
    else:
        ack_work = ()
        send_plan = None
        forward_work = ()

    if ack_work:
        cols = AckCols(**world.receivers.resident(AckCols._fields))
        receiver_of_flow = world.receiver_of_flow
        if workers > 1 and len(ack_work) > 1:
            chunks = _chunked(ack_work, workers)
            results = pool.map(
                "ack",
                lambda chunk: ack_batch_kernel(cols, receiver_of_flow,
                                               sc.flows, chunk),
                chunks,
                sizes=[sum(len(w[1]) for w in chunk) for chunk in chunks],
            )
            results = (results[0] if len(results) == 1
                       else [r for chunk in results for r in chunk])
        else:
            results = ack_batch_kernel(cols, receiver_of_flow, sc.flows,
                                       ack_work)
        commit_ack(engine, ctx, results)
    t1 = clock()

    if send_plan is not None and send_plan[0]:
        flow_ids, acks_of, starts, deliver_trace = send_plan
        if bus.trace_level:
            for t, node, row in sorted(
                deliver_trace,
                key=lambda d: (d[0], d[2][F_FLOW], d[2][F_ISACK],
                               d[2][F_SEQ]),
            ):
                bus.deliver(t, node, row[F_FLOW], row[F_ISACK], row[F_SEQ])
        cols = world.senders.resident(SENDER_COLS)
        sender_of_flow = world.sender_of_flow
        if workers > 1 and len(flow_ids) > 1:
            chunks = _chunked(flow_ids, workers)
            results = pool.map(
                "send",
                lambda chunk: send_batch_kernel(cols, sender_of_flow, sc,
                                                acks_of, starts, ctx.end,
                                                chunk),
                chunks,
                sizes=[sum(len(acks_of.get(f, ())) + 1 for f in chunk)
                       for chunk in chunks],
            )
            results = (results[0] if len(results) == 1
                       else [r for chunk in results for r in chunk])
        else:
            results = send_batch_kernel(cols, sender_of_flow, sc, acks_of,
                                        starts, ctx.end, flow_ids)
        commit_send(engine, ctx, results)
    t2 = clock()

    if forward_work:
        spray = sc.ecmp_mode == "packet"
        if workers <= 1 and not bus.has_ops:
            # The serial sweep keeps its own flat-int-keyed memo (the
            # buffered kernel's memo is tuple-keyed).
            if spray:
                memo = None
            else:
                memo = getattr(engine, "_fwd_memo_flat", None)
                if memo is None:
                    memo = engine._fwd_memo_flat = {}
            _forward_serial_np(engine, ctx, forward_work, memo, spray)
        elif workers > 1 and len(forward_work) > 1:
            memo = _route_memo(engine, spray)
            chunks = _chunked(forward_work, workers)
            results = pool.map(
                "forward",
                lambda chunk: forward_batch_kernel(
                    sc.fib, sc.topology.iface_id, spray, chunk, memo),
                chunks,
                sizes=[sum(len(w[1]) for w in chunk) for chunk in chunks],
            )
            results = (results[0] if len(results) == 1
                       else [r for chunk in results for r in chunk])
            commit_forward_np(engine, ctx, results)
        else:
            results = forward_batch_kernel(sc.fib, sc.topology.iface_id,
                                           spray, forward_work,
                                           _route_memo(engine, spray))
            commit_forward_np(engine, ctx, results)
    t3 = clock()

    iface_ids = plan_transmit_np(engine, ctx)
    if iface_ids:
        if workers <= 1 and not bus.trace_level:
            # Single worker, no trace stream: replay and commit fuse
            # into one sweep with bulk per-port delivery.
            _transmit_serial_np(engine, ctx, iface_ids, ctx.start, ctx.end)
            t4 = clock()
            return t0, t1, t2, t3, t4
        full_trace = bus.trace_level >= 2
        if workers > 1 and len(iface_ids) > 1:
            chunks = _chunked(iface_ids, workers)
            results = pool.map(
                "transmit",
                lambda chunk: transmit_batch_kernel(
                    engine.ports, ctx.staged, ctx.start, ctx.end,
                    full_trace, chunk),
                chunks,
                sizes=[sum(len(ctx.staged.get(i, ())) + 1 for i in chunk)
                       for chunk in chunks],
            )
            results = (results[0] if len(results) == 1
                       else [r for chunk in results for r in chunk])
        else:
            results = transmit_batch_kernel(engine.ports, ctx.staged,
                                            ctx.start, ctx.end, full_trace,
                                            iface_ids)
        commit_transmit(engine, ctx, results)
    t4 = clock()
    return t0, t1, t2, t3, t4
