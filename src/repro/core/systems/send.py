"""SendSystem: traffic generation and transport state machines (§3.2).

For every Sender entity with work in the current window — delivered
ACKs, a flow start, a pending retransmission deadline, or a paced UDP
schedule — the system replays that flow's events in chronological order
using the *same* pure DCTCP/UDP transitions as the OOD baseline, and
stages the resulting data segments on the source host's NIC queue.

Plan → kernel → commit:

* :func:`plan_send` scans the window's calendar entries and produces the
  sorted flow-id work list plus each flow's ACK deliveries;
* :func:`send_kernel` replays one flow on the worker pool.  Sender state
  lives in the columnar sender table; the kernel reads and writes the
  flow's row through bulk column handles (one indexed access per column
  — the columnar pattern the machine model measures) and returns staged
  segments;
* :func:`commit_send` stages segments, publishes op/trace events, and
  registers wakeups, in flow-id order.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from ..window import (
    ENTRY_ARRIVAL, ENTRY_FLOW_START, WindowContext,
)
from ...protocols import DctcpState, UdpSchedule
from ...protocols.packet import (
    F_ECE, F_FLOW, F_ISACK, F_SEND_TS, F_SEQ, PRIO_ARRIVAL,
    PRIO_FLOW_START, PRIO_TIMER, Row, data_row, segment_payload,
)
from ...traffic import Transport

#: Sender-table columns mirrored into DctcpState (same names both sides).
_DCTCP_FIELDS = (
    "snd_una", "next_seq", "cwnd", "ssthresh", "alpha", "acked_win",
    "marked_win", "alpha_seq", "cut_seq", "dupacks", "srtt_ps",
    "rttvar_ps", "rto_ps", "backoff", "timer_gen",
)

#: Every sender column the kernel sweeps.
SENDER_COLS = _DCTCP_FIELDS + (
    "flow_id", "total_segs", "rtx_deadline", "done", "done_ps",
    "udp_next_seq",
)


def load_dctcp_cols(cols: Dict[str, list], idx: int, params) -> DctcpState:
    """Materialize a flow's sender row from bulk column handles.

    The field moves are written out long-hand (direct attribute stores,
    no ``setattr`` loop): this pair runs once per flow-task per window
    and is the per-row boundary cost the columnar layout is supposed to
    amortize.  Keep the field set in lockstep with ``_DCTCP_FIELDS``.
    """
    state = DctcpState(
        flow_id=cols["flow_id"][idx],
        total_segs=cols["total_segs"][idx],
        params=params,
    )
    state.snd_una = cols["snd_una"][idx]
    state.next_seq = cols["next_seq"][idx]
    state.cwnd = cols["cwnd"][idx]
    state.ssthresh = cols["ssthresh"][idx]
    state.alpha = cols["alpha"][idx]
    state.acked_win = cols["acked_win"][idx]
    state.marked_win = cols["marked_win"][idx]
    state.alpha_seq = cols["alpha_seq"][idx]
    state.cut_seq = cols["cut_seq"][idx]
    state.dupacks = cols["dupacks"][idx]
    state.srtt_ps = cols["srtt_ps"][idx]
    state.rttvar_ps = cols["rttvar_ps"][idx]
    state.rto_ps = cols["rto_ps"][idx]
    state.backoff = cols["backoff"][idx]
    state.timer_gen = cols["timer_gen"][idx]
    deadline = cols["rtx_deadline"][idx]
    state.rtx_deadline = None if deadline < 0 else deadline
    state.done = bool(cols["done"][idx])
    done_ps = cols["done_ps"][idx]
    state.done_ps = None if done_ps < 0 else done_ps
    return state


def store_dctcp_cols(cols: Dict[str, list], idx: int, state: DctcpState) -> None:
    """Write a DctcpState back into the sender row, column by column."""
    cols["snd_una"][idx] = state.snd_una
    cols["next_seq"][idx] = state.next_seq
    cols["cwnd"][idx] = state.cwnd
    cols["ssthresh"][idx] = state.ssthresh
    cols["alpha"][idx] = state.alpha
    cols["acked_win"][idx] = state.acked_win
    cols["marked_win"][idx] = state.marked_win
    cols["alpha_seq"][idx] = state.alpha_seq
    cols["cut_seq"][idx] = state.cut_seq
    cols["dupacks"][idx] = state.dupacks
    cols["srtt_ps"][idx] = state.srtt_ps
    cols["rttvar_ps"][idx] = state.rttvar_ps
    cols["rto_ps"][idx] = state.rto_ps
    cols["backoff"][idx] = state.backoff
    cols["timer_gen"][idx] = state.timer_gen
    cols["rtx_deadline"][idx] = (
        -1 if state.rtx_deadline is None else state.rtx_deadline
    )
    cols["done"][idx] = int(state.done)
    cols["done_ps"][idx] = -1 if state.done_ps is None else state.done_ps


def load_dctcp(table, idx: int, params) -> DctcpState:
    """Row-at-a-time compatibility wrapper over :func:`load_dctcp_cols`."""
    return load_dctcp_cols(table.columns(SENDER_COLS), idx, params)


def store_dctcp(table, idx: int, state: DctcpState) -> None:
    """Row-at-a-time compatibility wrapper over :func:`store_dctcp_cols`."""
    store_dctcp_cols(table.columns(SENDER_COLS), idx, state)


def udp_emission_schedule(
    sched: UdpSchedule, seq: int, window_end: int,
) -> Tuple[List[Tuple[int, int, int]], int, Optional[int]]:
    """One UDP flow's window write-set as data.

    Returns ``(emissions, next_seq, wakeup)`` where ``emissions`` is the
    ``(enqueue time, seq, payload bytes)`` list of segments the flow
    emits before ``window_end``, ``next_seq`` the advanced pacing
    cursor, and ``wakeup`` the next enqueue time past the window (or
    ``None`` when the schedule is exhausted).  Both the send kernel and
    the memoization probe (:mod:`repro.core.memo`) evaluate the UDP
    branch through this one function, so a cached window's predicted
    emissions are the executed ones by construction.
    """
    out: List[Tuple[int, int, int]] = []
    total = sched.total_segs
    while seq < total:
        t = sched.enqueue_time(seq)
        if t >= window_end:
            break
        out.append((t, seq, sched.payload(seq)))
        seq += 1
    wakeup = sched.enqueue_time(seq) if seq < total else None
    return out, seq, wakeup


#: Per-flow events inside a window: (time, kind, row-or-None).
FlowEvent = Tuple[int, int, Optional[Row]]

#: plan output: (flow ids, acks per flow, starts per flow, trace deliveries)
SendPlan = Tuple[
    List[int],
    Dict[int, List[Tuple[int, Row]]],
    Dict[int, int],
    List[Tuple[int, int, Row]],
]


def plan_send(engine, ctx: WindowContext) -> SendPlan:
    """Group this window's host entries by flow, in flow-id order."""
    topo = engine.scenario.topology
    acks_of: Dict[int, List[Tuple[int, Row]]] = {}
    starts: Dict[int, int] = {}
    visits: List[int] = []
    deliver_trace: List[Tuple[int, int, Row]] = []
    for node, entries in ctx.node_entries.items():
        if not topo.nodes[node].is_host:
            continue
        for e in entries:
            tag = e[0]
            if tag == ENTRY_ARRIVAL:
                if e[3][F_ISACK]:
                    acks_of.setdefault(e[3][F_FLOW], []).append((e[1], e[3]))
                    deliver_trace.append((e[1], node, e[3]))
            elif tag == ENTRY_FLOW_START:
                starts[e[2]] = e[1]
            else:  # ENTRY_TIMER / ENTRY_UDP wakeups
                if e[1] >= 0:  # negative ids are bare window wakeups
                    visits.append(e[1])
    flow_ids = sorted(set(acks_of) | set(starts) | set(visits))
    return flow_ids, acks_of, starts, deliver_trace


def send_kernel(
    cols: Dict[str, list],
    sender_of_flow: Dict[int, int],
    scenario,
    acks_of: Dict[int, List[Tuple[int, Row]]],
    starts: Dict[int, int],
    window_end: int,
    flow_id: int,
):
    """Replay one flow's window; returns staged segments + stats.

    Pure over the flow's sender row: each flow id maps to exactly one
    row, and a flow appears in at most one task.
    """
    topo = scenario.topology
    flow = scenario.flows[flow_id]
    sidx = sender_of_flow[flow_id]
    out: List[Tuple[int, int, Row]] = []  # (t, prio, row)
    rtts: List[Tuple[int, int, int]] = []
    wakeup: Optional[int] = None  # rtx deadline to register
    events = 0

    if flow.transport == Transport.UDP:
        sched = UdpSchedule(flow_id, flow.size_bytes, flow.start_ps,
                            topo.host_iface(flow.src).rate_bps)
        udp_col = cols["udp_next_seq"]
        ems, seq, udp_wakeup = udp_emission_schedule(
            sched, udp_col[sidx], window_end)
        for t, s, payload in ems:
            out.append((t, PRIO_FLOW_START,
                        data_row(flow_id, s, payload, t,
                                 flow.src, flow.dst)))
        udp_col[sidx] = seq
        return flow_id, out, rtts, None, udp_wakeup, len(ems)

    # --- window CCA (DCTCP / RENO): per-flow chronological replay ---
    state = load_dctcp_cols(cols, sidx, scenario.cca_params(flow.transport))
    evs: List[FlowEvent] = [
        (t, PRIO_ARRIVAL, row) for t, row in acks_of.get(flow_id, ())
    ]
    if flow_id in starts:
        evs.append((starts[flow_id], PRIO_FLOW_START, None))
    evs.sort(key=lambda e: (e[0], e[1], e[2][F_SEQ] if e[2] else 0))

    def emit(seqs: List[int], now: int, prio: int) -> None:
        for seq in seqs:
            payload = segment_payload(flow.size_bytes, seq)
            out.append((now, prio,
                        data_row(flow_id, seq, payload, now,
                                 flow.src, flow.dst)))

    i, n = 0, len(evs)
    while True:
        deadline = state.rtx_deadline
        fire = (
            deadline is not None
            and deadline < window_end
            and (i >= n or deadline < evs[i][0])
        )
        if fire:
            emit(state.on_timeout(deadline), deadline, PRIO_TIMER)
            events += 1
            continue
        if i >= n:
            break
        t, kind, row = evs[i]
        i += 1
        events += 1
        if kind == PRIO_ARRIVAL:
            assert row is not None
            rtts.append((t, t - row[F_SEND_TS], flow_id))
            emit(state.on_ack(row[F_SEQ], row[F_ECE], row[F_SEND_TS], t),
                 t, PRIO_ARRIVAL)
        else:  # flow start
            emit(state.on_start(t), t, PRIO_FLOW_START)

    if state.rtx_deadline is not None and not state.done:
        wakeup = state.rtx_deadline
    store_dctcp_cols(cols, sidx, state)
    return flow_id, out, rtts, wakeup, None, events


def commit_send(engine, ctx: WindowContext, results) -> None:
    """Stage kernel outputs and register wakeups, in flow-id order."""
    from ..window import ENTRY_TIMER, ENTRY_UDP
    topo = engine.scenario.topology
    bus = engine.bus
    flows = engine.scenario.flows
    nic_of = getattr(engine, "_flow_nic", None)
    if nic_of is None:
        src_list = getattr(flows, "src_list", None)
        host_iface = topo.host_iface
        if src_list is not None:
            # Columnar traffic: map sources without Flow facades.
            nic_of = engine._flow_nic = [
                host_iface(s).iface_id for s in src_list()]
        else:
            nic_of = engine._flow_nic = [
                host_iface(f.src).iface_id for f in flows]
    staged = ctx.staged
    counts = ctx.counts
    node_events = engine.results.node_events
    rtt_extend = engine.results.rtt_samples.extend
    has_ops = bus.has_ops
    for flow_id, out, rtts, rtx_wakeup, udp_wakeup, events in results:
        flow = flows[flow_id]
        src = flow.src
        segments = 0
        if has_ops:
            from ...protocols.packet import packet_uid
            for _ in rtts:
                bus.op(3, src, (flow_id << 25) | (1 << 24))  # ack handled
            for _t, _prio, row in out:
                bus.op(0, src, packet_uid(row))  # OP_SEND
        if out:
            segments = len(out)
            nic = nic_of[flow_id]
            lst = staged.get(nic)
            if lst is None:
                staged[nic] = list(out)
            else:
                lst.extend(out)
            counts.send += segments
        if rtts:
            counts.ack += len(rtts)  # ack deliveries handled at the sender
            rtt_extend(rtts)
        n_ev = segments + len(rtts)
        if n_ev:
            node_events[src] = node_events.get(src, 0) + n_ev
        if rtx_wakeup is not None:
            engine.register_wakeup(rtx_wakeup, src, ENTRY_TIMER, flow_id)
        if udp_wakeup is not None:
            engine.register_wakeup(udp_wakeup, src, ENTRY_UDP, flow_id)


def run_send_system(engine, ctx: WindowContext) -> None:
    """Visit every sender with window work (plan → kernel → commit)."""
    flow_ids, acks_of, starts, deliver_trace = plan_send(engine, ctx)
    if not flow_ids:
        return

    bus = engine.bus
    if bus.trace_level:
        for t, node, row in sorted(
            deliver_trace,
            key=lambda d: (d[0], d[2][F_FLOW], d[2][F_ISACK], d[2][F_SEQ]),
        ):
            bus.deliver(t, node, row[F_FLOW], row[F_ISACK], row[F_SEQ])

    cols = engine.world.senders.columns(SENDER_COLS)
    kernel = partial(send_kernel, cols, engine.world.sender_of_flow,
                     engine.scenario, acks_of, starts, ctx.end)
    results = engine.pool.map(
        "send", kernel, flow_ids,
        sizes=[len(acks_of.get(f, ())) + 1 for f in flow_ids],
    )
    commit_send(engine, ctx, results)
