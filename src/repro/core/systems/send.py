"""SendSystem: traffic generation and transport state machines (§3.2).

For every Sender entity with work in the current window — delivered
ACKs, a flow start, a pending retransmission deadline, or a paced UDP
schedule — the system replays that flow's events in chronological order
using the *same* pure DCTCP/UDP transitions as the OOD baseline, and
stages the resulting data segments on the source host's NIC queue.

Sender state lives in the columnar sender table; each visit loads the
flow's row into a :class:`~repro.protocols.DctcpState`, applies the
transitions, and stores the row back (one read/write per column — the
columnar access pattern the machine model measures).

Flows are independent entities, so visits are chunked across the worker
pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..window import (
    ENTRY_ARRIVAL, ENTRY_FLOW_START, ENTRY_TIMER, ENTRY_UDP, WindowContext,
)
from ...protocols import DctcpState, UdpSchedule
from ...protocols.packet import (
    F_ECE, F_FLOW, F_ISACK, F_SEND_TS, F_SEQ, PRIO_ARRIVAL,
    PRIO_FLOW_START, PRIO_TIMER, Row, data_row, segment_payload,
)
from ...traffic import Transport

#: Sender-table columns mirrored into DctcpState (same names both sides).
_DCTCP_FIELDS = (
    "snd_una", "next_seq", "cwnd", "ssthresh", "alpha", "acked_win",
    "marked_win", "alpha_seq", "cut_seq", "dupacks", "srtt_ps",
    "rttvar_ps", "rto_ps", "backoff", "timer_gen",
)


def load_dctcp(table, idx: int, params) -> DctcpState:
    """Materialize a flow's sender row as a DctcpState."""
    state = DctcpState(
        flow_id=table.get(idx, "flow_id"),
        total_segs=table.get(idx, "total_segs"),
        params=params,
    )
    for name in _DCTCP_FIELDS:
        setattr(state, name, table.get(idx, name))
    deadline = table.get(idx, "rtx_deadline")
    state.rtx_deadline = None if deadline < 0 else deadline
    state.done = bool(table.get(idx, "done"))
    done_ps = table.get(idx, "done_ps")
    state.done_ps = None if done_ps < 0 else done_ps
    return state


def store_dctcp(table, idx: int, state: DctcpState) -> None:
    """Write a DctcpState back into the sender row."""
    for name in _DCTCP_FIELDS:
        table.set(idx, name, getattr(state, name))
    table.set(idx, "rtx_deadline",
              -1 if state.rtx_deadline is None else state.rtx_deadline)
    table.set(idx, "done", int(state.done))
    table.set(idx, "done_ps", -1 if state.done_ps is None else state.done_ps)


#: Per-flow events inside a window: (time, kind, row-or-None).
FlowEvent = Tuple[int, int, Optional[Row]]


def run_send_system(engine, ctx: WindowContext) -> None:
    """Visit every sender with window work, in flow-id order."""
    topo = engine.scenario.topology
    # flow id -> (acks, has_start, visit_only)
    acks_of: Dict[int, List[Tuple[int, Row]]] = {}
    starts: Dict[int, int] = {}
    visits: List[int] = []
    deliver_trace: List[Tuple[int, int, Row]] = []
    for node, entries in ctx.node_entries.items():
        if not topo.nodes[node].is_host:
            continue
        for e in entries:
            tag = e[0]
            if tag == ENTRY_ARRIVAL:
                if e[3][F_ISACK]:
                    acks_of.setdefault(e[3][F_FLOW], []).append((e[1], e[3]))
                    deliver_trace.append((e[1], node, e[3]))
            elif tag == ENTRY_FLOW_START:
                starts[e[2]] = e[1]
            else:  # ENTRY_TIMER / ENTRY_UDP wakeups
                if e[1] >= 0:  # negative ids are bare window wakeups
                    visits.append(e[1])

    flow_ids = sorted(set(acks_of) | set(starts) | set(visits))
    if not flow_ids:
        return

    if engine.trace.level:
        for t, node, row in sorted(
            deliver_trace,
            key=lambda d: (d[0], d[2][F_FLOW], d[2][F_ISACK], d[2][F_SEQ]),
        ):
            engine.trace.deliver(t, node, row[F_FLOW], row[F_ISACK], row[F_SEQ])

    world = engine.world
    table = world.senders

    def visit(flow_id: int):
        """Replay one flow's window; returns staged segments + stats."""
        flow = engine.scenario.flows[flow_id]
        sidx = world.sender_of_flow[flow_id]
        out: List[Tuple[int, int, Row]] = []  # (t, prio, row)
        rtts: List[Tuple[int, int, int]] = []
        wakeup: Optional[int] = None  # rtx deadline to register
        events = 0

        if flow.transport == Transport.UDP:
            size = flow.size_bytes
            sched = UdpSchedule(flow_id, size, flow.start_ps,
                                topo.host_iface(flow.src).rate_bps)
            seq = table.get(sidx, "udp_next_seq")
            total = sched.total_segs
            while seq < total:
                t = sched.enqueue_time(seq)
                if t >= ctx.end:
                    break
                row = data_row(flow_id, seq, sched.payload(seq), t,
                               flow.src, flow.dst)
                out.append((t, PRIO_FLOW_START, row))
                events += 1
                seq += 1
            table.set(sidx, "udp_next_seq", seq)
            udp_wakeup = sched.enqueue_time(seq) if seq < total else None
            return flow_id, out, rtts, None, udp_wakeup, events

        # --- window CCA (DCTCP / RENO): per-flow chronological replay ---
        state = load_dctcp(table, sidx,
                           engine.scenario.cca_params(flow.transport))
        evs: List[FlowEvent] = [
            (t, PRIO_ARRIVAL, row) for t, row in acks_of.get(flow_id, ())
        ]
        if flow_id in starts:
            evs.append((starts[flow_id], PRIO_FLOW_START, None))
        evs.sort(key=lambda e: (e[0], e[1], e[2][F_SEQ] if e[2] else 0))

        def emit(seqs: List[int], now: int, prio: int) -> None:
            for seq in seqs:
                payload = segment_payload(flow.size_bytes, seq)
                out.append((now, prio,
                            data_row(flow_id, seq, payload, now,
                                     flow.src, flow.dst)))

        i, n = 0, len(evs)
        while True:
            deadline = state.rtx_deadline
            fire = (
                deadline is not None
                and deadline < ctx.end
                and (i >= n or deadline < evs[i][0])
            )
            if fire:
                emit(state.on_timeout(deadline), deadline, PRIO_TIMER)
                events += 1
                continue
            if i >= n:
                break
            t, kind, row = evs[i]
            i += 1
            events += 1
            if kind == PRIO_ARRIVAL:
                assert row is not None
                rtts.append((t, t - row[F_SEND_TS], flow_id))
                emit(state.on_ack(row[F_SEQ], row[F_ECE], row[F_SEND_TS], t),
                     t, PRIO_ARRIVAL)
            else:  # flow start
                emit(state.on_start(t), t, PRIO_FLOW_START)

        if state.rtx_deadline is not None and not state.done:
            wakeup = state.rtx_deadline
        store_dctcp(table, sidx, state)
        return flow_id, out, rtts, wakeup, None, events

    results = engine.pool.map(
        "send", visit, flow_ids,
        sizes=[len(acks_of.get(f, ())) + 1 for f in flow_ids],
    )

    hook = engine.op_hook
    for flow_id, out, rtts, rtx_wakeup, udp_wakeup, events in results:
        flow = engine.scenario.flows[flow_id]
        nic = topo.host_iface(flow.src).iface_id
        segments = 0
        if hook:
            from ...protocols.packet import packet_uid
            for _ in rtts:
                hook(3, flow.src, (flow_id << 25) | (1 << 24))  # ack handled
            for _t, _prio, row in out:
                hook(0, flow.src, packet_uid(row))  # OP_SEND
        for t, prio, row in out:
            ctx.stage(nic, t, prio, row)
            segments += 1
        ctx.counts.send += segments
        ctx.counts.ack += len(rtts)  # ack deliveries processed at the sender
        engine.bump_node(flow.src, segments + len(rtts))
        engine.results.rtt_samples.extend(rtts)
        if rtx_wakeup is not None:
            engine.register_wakeup(rtx_wakeup, flow.src, ENTRY_TIMER, flow_id)
        if udp_wakeup is not None:
            engine.register_wakeup(udp_wakeup, flow.src, ENTRY_UDP, flow_id)
