"""ForwardSystem: ingress -> egress moves at switches (§3.2).

For every switch arrival of the window, look up the FIB (shared routing
component), resolve the ECMP port, and register the packet on the chosen
EgressPort's buffer.  Because many IngressPorts can target one
EgressPort, writes go through per-task command buffers consolidated by
the main thread (Appendix C's write-conflict fix); chronological order is
established later by the TransmitSystem's merge sort, so forwarding
itself is embarrassingly parallel.
"""

from __future__ import annotations

from typing import List, Tuple

from ..ecs import CommandBuffer, consolidate
from ..window import ENTRY_ARRIVAL, WindowContext
from ...protocols.packet import F_DST, F_FLOW, F_SEQ, Row


def run_forward_system(engine, ctx: WindowContext) -> None:
    """Forward all switch arrivals of this window."""
    topo = engine.scenario.topology
    work: List[Tuple[int, List[Tuple[int, int, Row]]]] = []
    for node, entries in sorted(ctx.node_entries.items()):
        if topo.nodes[node].is_host:
            continue
        arrivals = [(e[1], e[2], e[3]) for e in entries if e[0] == ENTRY_ARRIVAL]
        if arrivals:
            work.append((node, arrivals))
    if not work:
        return

    fib = engine.scenario.fib
    spray = engine.scenario.ecmp_mode == "packet"

    def process(item: Tuple[int, List[Tuple[int, int, Row]]]):
        node, arrivals = item
        buf: CommandBuffer = CommandBuffer()
        for t, prio, row in arrivals:
            salt = row[F_SEQ] if spray else None
            port = fib.resolve_port(node, row[F_DST], row[F_FLOW], salt)
            buf.append(topo.iface_id(node, port), (t, prio, row))
        return node, len(arrivals), buf

    results = engine.pool.map(
        "forward", process, work, sizes=[len(w[1]) for w in work]
    )
    hook = engine.op_hook
    buffers = []
    for node, n, buf in results:
        ctx.counts.forward += n
        engine.bump_node(node, n)
        if hook:
            from ...protocols.packet import packet_uid
            for _target, (_t, _prio, row) in buf.entries:
                hook(1, node, packet_uid(row))  # OP_FORWARD
        buffers.append(buf)
    consolidate(buffers, ctx.staged)
