"""ForwardSystem: ingress -> egress moves at switches (§3.2).

For every switch arrival of the window, look up the FIB (shared routing
component), resolve the ECMP port, and register the packet on the chosen
EgressPort's buffer.  Because many IngressPorts can target one
EgressPort, writes go through per-task command buffers consolidated by
the main thread (Appendix C's write-conflict fix); chronological order is
established later by the TransmitSystem's merge sort, so forwarding
itself is embarrassingly parallel.

Plan → kernel → commit: :func:`plan_forward` slices the window's switch
arrivals per node; :func:`forward_kernel` resolves routes into a private
:class:`~repro.core.ecs.CommandBuffer`; :func:`commit_forward` publishes
counters/ops and consolidates the buffers in task order.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from ..ecs import CommandBuffer, consolidate
from ..window import ENTRY_ARRIVAL, WindowContext
from ...protocols.packet import F_DST, F_FLOW, F_SEQ, Row

#: One task: (switch node, its window arrivals).
ForwardWork = Tuple[int, List[Tuple[int, int, Row]]]


def plan_forward(engine, ctx: WindowContext) -> List[ForwardWork]:
    """Per-switch work slices of this window's arrivals."""
    topo = engine.scenario.topology
    work: List[ForwardWork] = []
    for node, entries in sorted(ctx.node_entries.items()):
        if topo.nodes[node].is_host:
            continue
        arrivals = [(e[1], e[2], e[3]) for e in entries if e[0] == ENTRY_ARRIVAL]
        if arrivals:
            work.append((node, arrivals))
    return work


def forward_kernel(fib, iface_id_of, spray: bool, item: ForwardWork):
    """Route one switch's arrivals into a private command buffer.

    Pure: reads the shared (immutable) FIB, writes only its own buffer.
    """
    node, arrivals = item
    buf: CommandBuffer = CommandBuffer()
    for t, prio, row in arrivals:
        salt = row[F_SEQ] if spray else None
        port = fib.resolve_port(node, row[F_DST], row[F_FLOW], salt)
        buf.append(iface_id_of(node, port), (t, prio, row))
    return node, len(arrivals), buf


def commit_forward(engine, ctx: WindowContext, results) -> None:
    """Publish per-node counts/ops, then consolidate in task order."""
    bus = engine.bus
    buffers = []
    for node, n, buf in results:
        ctx.counts.forward += n
        engine.bump_node(node, n)
        if bus.has_ops:
            from ...protocols.packet import packet_uid
            for _target, (_t, _prio, row) in buf.entries:
                bus.op(1, node, packet_uid(row))  # OP_FORWARD
        buffers.append(buf)
    consolidate(buffers, ctx.staged)


def run_forward_system(engine, ctx: WindowContext) -> None:
    """Forward all switch arrivals of this window (plan → kernel → commit)."""
    work = plan_forward(engine, ctx)
    if not work:
        return
    kernel = partial(
        forward_kernel,
        engine.scenario.fib,
        engine.scenario.topology.iface_id,
        engine.scenario.ecmp_mode == "packet",
    )
    results = engine.pool.map(
        "forward", kernel, work, sizes=[len(w[1]) for w in work]
    )
    commit_forward(engine, ctx, results)
