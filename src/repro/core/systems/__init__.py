"""The four systems of the DOD engine, executed in LCC-safe order:
ACKSystem, SendSystem, ForwardSystem, TransmitSystem (§3.3).

Each system is written in the plan → kernel → commit shape: ``plan_*``
builds per-chunk work slices on the main thread, ``*_kernel`` is a pure
function over column slices run on the worker pool, and ``commit_*``
consolidates the kernel outputs deterministically.

Every system exists in two interchangeable implementations — the Python
reference (scalar orchestration over list columns) and the vectorized
NumPy variants (:mod:`repro.core.systems.vectorized`).
:func:`system_set` resolves a backend name to its four ``run_*``
entry points; the engine dispatches through that tuple."""

from .ack import ack_kernel, commit_ack, plan_ack, run_ack_system
from .send import commit_send, plan_send, run_send_system, send_kernel
from .forward import (
    commit_forward, forward_kernel, plan_forward, run_forward_system,
)
from .transmit import (
    commit_transmit, plan_transmit, run_transmit_system, transmit_kernel,
)
from ...errors import ConfigError

#: run-system entry points in execution order (ack, send, forward, transmit).
SystemSet = tuple


def system_set(backend: str = "python") -> SystemSet:
    """The four ``run_*_system`` callables for one table backend.

    The numpy variants are imported lazily so the Python backend works
    on interpreters without numpy installed.
    """
    if backend == "python":
        return (run_ack_system, run_send_system,
                run_forward_system, run_transmit_system)
    if backend == "numpy":
        try:
            from . import vectorized
        except ImportError as exc:  # pragma: no cover - numpy is baked in
            raise ConfigError(
                f"backend 'numpy' needs numpy installed: {exc}")
        return (vectorized.run_ack_system_np, vectorized.run_send_system_np,
                vectorized.run_forward_system_np,
                vectorized.run_transmit_system_np)
    from ..ecs import BACKENDS
    raise ConfigError(
        f"unknown system backend {backend!r}; known: {', '.join(BACKENDS)}")


__all__ = [
    "run_ack_system", "run_send_system",
    "run_forward_system", "run_transmit_system",
    "plan_ack", "ack_kernel", "commit_ack",
    "plan_send", "send_kernel", "commit_send",
    "plan_forward", "forward_kernel", "commit_forward",
    "plan_transmit", "transmit_kernel", "commit_transmit",
    "system_set",
]
