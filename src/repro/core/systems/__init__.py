"""The four systems of the DOD engine, executed in LCC-safe order:
ACKSystem, SendSystem, ForwardSystem, TransmitSystem (§3.3).

Each system is written in the plan → kernel → commit shape: ``plan_*``
builds per-chunk work slices on the main thread, ``*_kernel`` is a pure
function over column slices run on the worker pool, and ``commit_*``
consolidates the kernel outputs deterministically."""

from .ack import ack_kernel, commit_ack, plan_ack, run_ack_system
from .send import commit_send, plan_send, run_send_system, send_kernel
from .forward import (
    commit_forward, forward_kernel, plan_forward, run_forward_system,
)
from .transmit import (
    commit_transmit, plan_transmit, run_transmit_system, transmit_kernel,
)

__all__ = [
    "run_ack_system", "run_send_system",
    "run_forward_system", "run_transmit_system",
    "plan_ack", "ack_kernel", "commit_ack",
    "plan_send", "send_kernel", "commit_send",
    "plan_forward", "forward_kernel", "commit_forward",
    "plan_transmit", "transmit_kernel", "commit_transmit",
]
