"""The four systems of the DOD engine, executed in LCC-safe order:
ACKSystem, SendSystem, ForwardSystem, TransmitSystem (§3.3)."""

from .ack import run_ack_system
from .send import run_send_system
from .forward import run_forward_system
from .transmit import run_transmit_system

__all__ = [
    "run_ack_system", "run_send_system",
    "run_forward_system", "run_transmit_system",
]
