"""ACKSystem: receiver-side processing of delivered data packets (§3.2).

For every Receiver entity with data deliveries in the current window,
the system checks sequence numbers, tracks flow completion, and registers
ACK packets toward the paired Sender — i.e. it stages them on the
receiving host's NIC egress queue at the data packet's arrival time.

Entities (receivers grouped by host) are independent, so the work is
chunked across the worker pool; ACK registrations go through per-task
lists consolidated in task order (command-buffer pattern).
"""

from __future__ import annotations

from typing import List, Tuple

from ..window import ENTRY_ARRIVAL, WindowContext
from ...protocols.packet import (
    F_CE,
    F_FLOW,
    F_ISACK,
    F_SEND_TS,
    F_SEQ,
    PRIO_ARRIVAL,
    Row,
    ack_row,
)


def run_ack_system(engine, ctx: WindowContext) -> None:
    """Process all data deliveries of this window."""
    # Gather (host, sorted data arrivals) work items.
    work: List[Tuple[int, List[Tuple[int, int, Row]]]] = []
    for node, entries in sorted(ctx.node_entries.items()):
        if not engine.scenario.topology.nodes[node].is_host:
            continue
        data = [
            (e[1], e[2], e[3])
            for e in entries
            if e[0] == ENTRY_ARRIVAL and not e[3][F_ISACK]
        ]
        if not data:
            continue
        data.sort(key=lambda a: (a[0], a[1], a[2][F_FLOW], a[2][F_ISACK], a[2][F_SEQ]))
        work.append((node, data))
    if not work:
        return

    world = engine.world
    rec = world.receivers
    expected_col = rec.col("expected")
    ooo_col = rec.col("out_of_order")
    unique_col = rec.col("unique_received")
    complete_col = rec.col("complete_ps")
    total_col = rec.col("total_segs")
    needs_ack_col = rec.col("needs_ack")

    def process(item: Tuple[int, List[Tuple[int, int, Row]]]):
        """One host's deliveries; returns staged ACKs and completions."""
        node, arrivals = item
        acks: List[Tuple[int, int, Row]] = []
        completions: List[Tuple[int, int]] = []
        n = 0
        for t, _prio, row in arrivals:
            n += 1
            flow_id = row[F_FLOW]
            ridx = world.receiver_of_flow[flow_id]
            seq = row[F_SEQ]
            # Inline cumulative-reassembly over the component columns.
            expected = expected_col[ridx]
            is_new = False
            if seq == expected:
                is_new = True
                expected += 1
                ooo = ooo_col[ridx]
                if ooo:
                    while expected in ooo:
                        ooo.remove(expected)
                        expected += 1
                expected_col[ridx] = expected
            elif seq > expected:
                ooo = ooo_col[ridx]
                if seq not in ooo:
                    is_new = True
                    ooo.add(seq)
            if is_new:
                unique_col[ridx] += 1
                if unique_col[ridx] == total_col[ridx] and complete_col[ridx] < 0:
                    complete_col[ridx] = t
                    completions.append((flow_id, t))
            if needs_ack_col[ridx]:
                flow = engine.scenario.flows[flow_id]
                out = ack_row(
                    flow_id, expected_col[ridx], row[F_CE], row[F_SEND_TS],
                    flow.dst, flow.src,
                )
                acks.append((t, node, out))
        return node, arrivals, acks, completions, n

    results = engine.pool.map(
        "ack", process, work, sizes=[len(w[1]) for w in work]
    )

    trace = engine.trace
    hook = engine.op_hook
    for node, arrivals, acks, completions, n in results:
        ctx.counts.ack += n
        engine.bump_node(node, n)
        if hook:
            from ...protocols.packet import packet_uid
            for _t, _prio, row in arrivals:
                hook(3, node, packet_uid(row))  # OP_HOST_RX
        if trace.level:
            for t, _prio, row in arrivals:
                trace.deliver(t, node, row[F_FLOW], row[F_ISACK], row[F_SEQ])
        for t, host, out in acks:
            iface = engine.scenario.topology.host_iface(host)
            ctx.stage(iface.iface_id, t, PRIO_ARRIVAL, out)
        for flow_id, t in completions:
            engine.results.flows[flow_id].complete_ps = t
            if trace.level:
                trace.flow_done(t, engine.scenario.flows[flow_id].dst, flow_id)
