"""ACKSystem: receiver-side processing of delivered data packets (§3.2).

For every Receiver entity with data deliveries in the current window,
the system checks sequence numbers, tracks flow completion, and registers
ACK packets toward the paired Sender — i.e. it stages them on the
receiving host's NIC egress queue at the data packet's arrival time.

The system is written in the engine's plan → kernel → commit shape
(paper Fig. 7 made literal):

* :func:`plan_ack` runs on the main thread and builds the per-host work
  slices (one task per receiving host, deliveries sorted canonically);
* :func:`ack_kernel` is the data-parallel stage: it sweeps the receiver
  component columns for one host's deliveries and returns staged ACKs
  plus completions.  Hosts own disjoint receiver rows, so kernels never
  contend — the command-buffer argument of Appendix C;
* :func:`commit_ack` consolidates kernel outputs deterministically on
  the main thread: counters, op/trace stream publishes, staging.
"""

from __future__ import annotations

from functools import partial
from itertools import repeat
from typing import Dict, List, NamedTuple, Tuple

from ..window import ENTRY_ARRIVAL, WindowContext
from ...protocols.packet import (
    F_CE,
    F_FLOW,
    F_ISACK,
    F_SEND_TS,
    F_SEQ,
    PRIO_ARRIVAL,
    Row,
    ack_row,
)

#: One task: (host node, canonically sorted data deliveries).
AckWork = Tuple[int, List[Tuple[int, int, Row]]]


class AckCols(NamedTuple):
    """Bulk handles to the receiver columns the kernel sweeps."""

    expected: list
    out_of_order: list
    unique_received: list
    complete_ps: list
    total_segs: list
    needs_ack: list


def plan_ack(engine, ctx: WindowContext) -> List[AckWork]:
    """Build per-host work slices from this window's calendar entries."""
    work: List[AckWork] = []
    for node, entries in sorted(ctx.node_entries.items()):
        if not engine.scenario.topology.nodes[node].is_host:
            continue
        data = [
            (e[1], e[2], e[3])
            for e in entries
            if e[0] == ENTRY_ARRIVAL and not e[3][F_ISACK]
        ]
        if not data:
            continue
        data.sort(key=lambda a: (a[0], a[1], a[2][F_FLOW], a[2][F_ISACK], a[2][F_SEQ]))
        work.append((node, data))
    return work


def ack_kernel(
    cols: AckCols,
    receiver_of_flow: Dict[int, int],
    flows,
    item: AckWork,
):
    """One host's deliveries; returns staged ACKs and completions.

    Pure over its column slice: the only writes are to the receiver rows
    of this host's flows, which no other task touches.
    """
    node, arrivals = item
    expected_col = cols.expected
    ooo_col = cols.out_of_order
    unique_col = cols.unique_received
    complete_col = cols.complete_ps
    total_col = cols.total_segs
    needs_ack_col = cols.needs_ack
    acks: List[Tuple[int, int, Row]] = []
    completions: List[Tuple[int, int]] = []
    n = 0
    for t, _prio, row in arrivals:
        n += 1
        flow_id = row[F_FLOW]
        ridx = receiver_of_flow[flow_id]
        seq = row[F_SEQ]
        # Inline cumulative-reassembly over the component columns.
        expected = expected_col[ridx]
        is_new = False
        if seq == expected:
            is_new = True
            expected += 1
            ooo = ooo_col[ridx]
            if ooo:
                while expected in ooo:
                    ooo.remove(expected)
                    expected += 1
            expected_col[ridx] = expected
        elif seq > expected:
            ooo = ooo_col[ridx]
            if seq not in ooo:
                is_new = True
                ooo.add(seq)
        if is_new:
            unique_col[ridx] += 1
            if unique_col[ridx] == total_col[ridx] and complete_col[ridx] < 0:
                complete_col[ridx] = t
                completions.append((flow_id, t))
        if needs_ack_col[ridx]:
            flow = flows[flow_id]
            out = ack_row(
                flow_id, expected_col[ridx], row[F_CE], row[F_SEND_TS],
                flow.dst, flow.src,
            )
            acks.append((t, node, out))
    return node, arrivals, acks, completions, n


def commit_ack(engine, ctx: WindowContext, results) -> None:
    """Consolidate kernel outputs on the main thread, in task order."""
    bus = engine.bus
    trace_on = bool(bus.trace_level)
    for node, arrivals, acks, completions, n in results:
        ctx.counts.ack += n
        engine.bump_node(node, n)
        if bus.has_ops:
            from ...protocols.packet import packet_uid
            for _t, _prio, row in arrivals:
                bus.op(3, node, packet_uid(row))  # OP_HOST_RX
        if trace_on:
            for t, _prio, row in arrivals:
                bus.deliver(t, node, row[F_FLOW], row[F_ISACK], row[F_SEQ])
        if acks:
            host_iface = engine.scenario.topology.host_iface
            ctx.stage_batch(
                [host_iface(a[1]).iface_id for a in acks],
                [a[0] for a in acks],
                repeat(PRIO_ARRIVAL),
                [a[2] for a in acks],
            )
        for flow_id, t in completions:
            engine.results.flows[flow_id].complete_ps = t
            if trace_on:
                bus.flow_done(t, engine.scenario.flows[flow_id].dst, flow_id)


def run_ack_system(engine, ctx: WindowContext) -> None:
    """Process all data deliveries of this window (plan → kernel → commit)."""
    work = plan_ack(engine, ctx)
    if not work:
        return
    rec = engine.world.receivers
    cols = AckCols(*(rec.column(name) for name in AckCols._fields))
    kernel = partial(ack_kernel, cols, engine.world.receiver_of_flow,
                     engine.scenario.flows)
    results = engine.pool.map(
        "ack", kernel, work, sizes=[len(w[1]) for w in work]
    )
    commit_ack(engine, ctx, results)
