"""Checkpointing and fault tolerance (paper §8, Discussion).

"DONS utilizes checkpointing to periodically preserve the run-time state
of the simulation ... the internal state of the simulator, including the
current simulation time, object positions and attributes, and other
necessary variables and data structures", with replication across
multiple locations against single-point failures.

A checkpoint captures everything the batch engine needs to resume —
the window cursor, the columnar pending-event store (columns plus its
window-occupancy index), every egress port's queue/line state, the
component tables, accumulated results — as one pickled blob.
Restoring into a fresh engine and continuing produces *exactly* the
trace the uninterrupted run would have produced (asserted in
tests/core/test_checkpoint.py), because the engine state between two
windows is a pure function of the windows executed so far.
"""

from __future__ import annotations

import copy
import hashlib
import io
import os
import pickle
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .engine import DodEngine
from ..errors import SimulationError

#: Format tag so stale checkpoints fail loudly instead of misloading.
#: v2: the scalar ``calendar``/``win_heap``/``win_queued`` triplet was
#: replaced by the single columnar ``events`` store (EventColumns).
FORMAT = "dons-checkpoint-v2"


@dataclass
class Checkpoint:
    """A resumable snapshot of a paused engine."""

    format: str
    scenario_name: str
    current_window: int
    payload: bytes  # pickled engine state

    def digest(self) -> str:
        return hashlib.blake2b(self.payload, digest_size=16).hexdigest()


def _engine_state(engine: DodEngine, current_window: int) -> dict:
    state = {
        "current_window": current_window,
        "events": engine.events,
        "active_ports": engine.active_ports,
        "ports": engine.ports,
        "world": engine.world,
        "results": engine.results,
        "trace": engine.trace,
        "carried_staged": engine._carried_staged,
    }
    if engine.bus.telemetry:
        # Telemetry buffers (spans, histograms, counters) must survive a
        # kill: a restored agent re-runs only the windows since the
        # snapshot, so everything recorded before it would otherwise be
        # dropped and recovered runs would report holey timelines.
        # Gated on the telemetry switch so untelemetered checkpoints
        # stay byte-for-byte what they were.
        state["bus_state"] = engine.bus.export_state()
        state["tx_prev"] = engine._tx_prev
    return state


def take_checkpoint(engine: DodEngine, current_window: int) -> Checkpoint:
    """Snapshot a paused engine (between windows)."""
    state = copy.deepcopy(_engine_state(engine, current_window))
    return Checkpoint(
        format=FORMAT,
        scenario_name=engine.scenario.name,
        current_window=current_window,
        payload=pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
    )


def _install_state(engine: DodEngine, state: dict) -> int:
    """Adopt a deserialized state dict into a *built* engine; returns
    the window cursor to resume from."""
    engine.events = state["events"]
    engine.active_ports = state["active_ports"]
    engine.ports = state["ports"]
    engine.world = state["world"]
    engine.results = state["results"]
    engine.attach_trace(state["trace"])
    engine._carried_staged = state.get("carried_staged", {})
    engine._running_window = state["current_window"]
    engine._cursor = state["current_window"]
    bus_state = state.get("bus_state")
    if bus_state is not None:
        engine.bus.adopt_state(bus_state)
        engine._tx_prev = state.get("tx_prev", {})
    # The memoization cache is never serialized (its deltas are cheap to
    # re-capture); invalidate instead so a restored engine can't apply a
    # delta captured on the pre-restore state timeline.
    memo = getattr(engine, "_memo", None)
    if memo is not None:
        memo.clear()
    return state["current_window"]


def restore_checkpoint(engine: DodEngine, checkpoint: Checkpoint) -> int:
    """Load a checkpoint into a *built* engine for the same scenario.

    Returns the window cursor to resume from.
    """
    if checkpoint.format != FORMAT:
        raise SimulationError(f"unknown checkpoint format {checkpoint.format!r}")
    if checkpoint.scenario_name != engine.scenario.name:
        raise SimulationError(
            f"checkpoint is for scenario {checkpoint.scenario_name!r}, "
            f"engine runs {engine.scenario.name!r}"
        )
    return _install_state(engine, pickle.loads(checkpoint.payload))


# --- zero-copy (out-of-band) snapshot container -----------------------------
#
# The shared-memory transport moves checkpoint payloads as one-off shm
# segments.  Pickling the engine state at protocol 5 with a
# ``buffer_callback`` exports every columnar buffer (NumpyTable columns,
# event-store arrays) as a raw out-of-band block: the container is then
# the small object-graph pickle plus a length-prefixed run of raw
# buffers, and the only copy each column pays is the memcpy into the
# segment.  The classic in-band pickle remains the format everywhere
# else; ``restore_snapshot`` dispatches on the magic prefix.

OOB_MAGIC = b"DONS-SNP5\x00"
_OOB_HEAD = struct.Struct("<qq")    # current_window, body_len
_OOB_COUNT = struct.Struct("<q")


def state_oob_parts(engine: DodEngine, current_window: int) -> List:
    """Snapshot as a list of bytes-like parts (concatenation = payload).

    The raw-buffer parts *alias live engine arrays* — the caller must
    copy them out (e.g. into a shared segment) before the engine runs
    another window.
    """
    buffers: List[pickle.PickleBuffer] = []
    body = pickle.dumps(_engine_state(engine, current_window), protocol=5,
                        buffer_callback=buffers.append)
    parts = [OOB_MAGIC, _OOB_HEAD.pack(current_window, len(body)), body,
             _OOB_COUNT.pack(len(buffers))]
    for buf in buffers:
        raw = buf.raw()
        parts.append(_OOB_COUNT.pack(raw.nbytes))
        parts.append(raw)
    return parts


def is_oob_payload(payload) -> bool:
    """True if ``payload`` is an out-of-band snapshot container."""
    return bytes(payload[:len(OOB_MAGIC)]) == OOB_MAGIC


def loads_oob_state(payload) -> Tuple[int, dict]:
    """Decode an out-of-band container: ``(current_window, state dict)``.

    Buffers are materialized as ``bytearray`` copies so the rebuilt
    arrays are writable (a ``bytes`` buffer would make them readonly).
    """
    view = memoryview(payload)
    off = len(OOB_MAGIC)
    window, body_len = _OOB_HEAD.unpack_from(view, off)
    off += _OOB_HEAD.size
    body = view[off:off + body_len]
    off += body_len
    (n_bufs,) = _OOB_COUNT.unpack_from(view, off)
    off += _OOB_COUNT.size
    buffers = []
    for _ in range(n_bufs):
        (nbytes,) = _OOB_COUNT.unpack_from(view, off)
        off += _OOB_COUNT.size
        buffers.append(bytearray(view[off:off + nbytes]))
        off += nbytes
    return window, pickle.loads(body, buffers=buffers)


def restore_snapshot(engine: DodEngine, payload: bytes, window: int,
                     scenario_name: str) -> int:
    """Restore a raw snapshot payload of either format into a *built*
    engine — the transport-facing twin of :func:`restore_checkpoint`."""
    if is_oob_payload(payload):
        _window, state = loads_oob_state(payload)
        return _install_state(engine, state)
    return restore_checkpoint(
        engine, Checkpoint(FORMAT, scenario_name, window, payload))


class CheckpointStore:
    """Replicated persistent storage for checkpoints (§8: "replicate
    checkpoints across multiple locations to mitigate the risks of
    single-point failures")."""

    def __init__(self, locations: Sequence[str]) -> None:
        if not locations:
            raise SimulationError("need at least one checkpoint location")
        self.locations = list(locations)
        for loc in self.locations:
            os.makedirs(loc, exist_ok=True)

    def _path(self, location: str, name: str) -> str:
        return os.path.join(location, f"{name}.ckpt")

    def save(self, name: str, checkpoint: Checkpoint) -> List[str]:
        """Write the checkpoint to every replica location."""
        blob = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        paths = []
        for loc in self.locations:
            path = self._path(loc, name)
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)  # atomic publish
            paths.append(path)
        return paths

    def load(self, name: str) -> Checkpoint:
        """Read from the first healthy replica."""
        last_error: Optional[Exception] = None
        for loc in self.locations:
            path = self._path(loc, name)
            try:
                with open(path, "rb") as fh:
                    ckpt = pickle.loads(fh.read())
                if ckpt.format != FORMAT:
                    raise SimulationError("bad checkpoint format")
                return ckpt
            except (OSError, pickle.UnpicklingError, SimulationError) as exc:
                last_error = exc
        raise SimulationError(
            f"no replica of {name!r} is readable: {last_error}"
        )


class CheckpointingEngine(DodEngine):
    """A DodEngine that snapshots itself every N windows.

    ``run()`` behaves exactly like the base engine (checkpointing is
    observationally transparent); ``resume_from`` continues a previous
    run from its latest stored snapshot.
    """

    def __init__(self, *args, store: Optional[CheckpointStore] = None,
                 every_windows: int = 100, name: str = "run",
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.store = store
        self.every_windows = max(1, every_windows)
        self.checkpoint_name = name
        self.checkpoints_taken = 0
        self._windows_done = 0

    def process_window(self, index: int):
        ctx = super().process_window(index)
        self._windows_done += 1
        if self.store is not None and self._windows_done % self.every_windows == 0:
            self.store.save(self.checkpoint_name,
                            take_checkpoint(self, index))
            self.checkpoints_taken += 1
        return ctx

    def resume_from(self, checkpoint: Checkpoint):
        """Restore state and run the remainder of the simulation."""
        if not self._built:
            self.build()
        restore_checkpoint(self, checkpoint)
        from .runner import EngineRunner
        return EngineRunner(self).run()
