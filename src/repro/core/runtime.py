"""Thread-pool run-time environment of the DOD engine (§3.3).

Within a machine DONS runs one logical process; each system's work is
split into independent tasks (chunks of entities) executed on a worker
pool.  Because tasks within one system share no mutable state (writes go
through command buffers), results are identical whatever the thread
interleaving — the pool returns per-task results *in task order* and the
engine consolidates deterministically.

CPython's GIL means the pool cannot show real speedups here (DESIGN.md);
what it preserves is the execution structure — task granularity, barrier
per system, per-task accounting — which is what the cost model consumes
to reproduce the paper's utilization and speedup numbers.

Task accounting is published to the owning engine's
:class:`~repro.core.instrument.InstrumentationBus` (``pool.tasks`` /
``pool.items`` counters plus per-system profiles), which replaced the
pool-local ``PoolStats``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from .instrument import InstrumentationBus

T = TypeVar("T")
R = TypeVar("R")


class WorkerPool:
    """Deterministic map over independent tasks."""

    def __init__(self, workers: int = 1,
                 bus: Optional[InstrumentationBus] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.bus = bus if bus is not None else InstrumentationBus()
        self._pool: Optional[ThreadPoolExecutor] = None
        if workers > 1:
            self._pool = ThreadPoolExecutor(max_workers=workers)

    def map(
        self,
        system: str,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        sizes: Optional[Sequence[int]] = None,
    ) -> List[R]:
        """Run ``fn`` over ``tasks``; results returned in task order.

        ``sizes`` (items per task) feeds utilization accounting; defaults
        to 1 per task.
        """
        self.bus.task_batch(
            system, list(sizes) if sizes is not None else [1] * len(tasks)
        )
        if not tasks:
            return []
        if self._pool is None:
            return [fn(t) for t in tasks]
        return list(self._pool.map(fn, tasks))

    def close(self) -> None:
        """Release the executor's threads (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    #: Backwards-compatible alias; ``close`` is the lifecycle API.
    shutdown = close

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def chunk_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``parts`` near-equal ranges."""
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out
