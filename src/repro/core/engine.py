"""The DONS engine: batch-based, data-oriented discrete event simulation.

This is the paper's primary contribution (§3): instead of one global
event heap, simulated time advances in *lookahead windows* whose length
is the smallest link delay.  Within each window the four systems run in
the LCC-safe order — ACKSystem, SendSystem, ForwardSystem,
TransmitSystem — and each system processes *all* entities of its aspect
together, data-parallel across a worker pool.

Deliveries, flow starts and timer wakeups are kept in a columnar
pending-event store (:class:`~repro.core.events.EventColumns`): one
bucket of parallel ``node``/``tag``/``time``/``prio``/``payload``
columns per pending window, plus a window-occupancy index that makes
``peek_next_window`` O(1).  The LCC argument (§3.3) shows up as an
invariant here: every entry of window *w* was inserted by a window
strictly before *w* (link delay >= lookahead), so a window's inputs are
complete before it runs, and no synchronization is ever needed within a
machine.  The same discipline is what makes multi-window batching
(``advance(max_windows=K)``, ``REPRO_BATCH_WINDOWS``) safe: a span of
windows whose inputs are already complete can run back-to-back with no
intervening scheduling work — see docs/ARCHITECTURE.md, "Why K-window
batching is safe".

All observation goes through the engine's
:class:`~repro.core.instrument.InstrumentationBus`: the trace recorder,
machine-model access probes, and the profiler subscribe to it instead of
being threaded through constructors.  The outer drive loop lives in
:class:`~repro.core.runner.EngineRunner`; the engine implements the
``build``/``advance``/``finalize`` protocol.

The engine produces the same :class:`~repro.metrics.SimResults` as the
OOD baseline, and — the headline fidelity claim — byte-identical event
traces (see ``tests/integration/test_engine_equivalence.py``).
"""

from __future__ import annotations

import os
import struct
from hashlib import blake2b
from time import perf_counter
from typing import Dict, List, Optional, Set

from .ecs import World
from .events import EventColumns
from .instrument import OP_WINDOW, InstrumentationBus
from .runner import EngineRunner
from .runtime import WorkerPool
from .systems import system_set
from .window import (
    ENTRY_ARRIVAL, ENTRY_FLOW_START, ENTRY_TIMER, ENTRY_UDP, Entry,
    WindowContext,
)
from ..errors import SimulationError
from ..metrics import SimResults, TraceLevel, TraceRecorder
from ..metrics.results import FlowResult
from ..protocols import EgressPort
from ..protocols.packet import PRIO_ARRIVAL, Row, segment_count
from ..scenario import Scenario
from ..traffic import Transport


class DodEngine:
    """Single-machine DONS: one logical process, many worker threads."""

    name = "dons"

    def __init__(
        self,
        scenario: Scenario,
        trace_level: TraceLevel = TraceLevel.NONE,
        workers: int = 1,
        max_windows: Optional[int] = None,
        lookahead_override: Optional[int] = None,
        system_order: str = "paper",
        sample_queues: bool = False,
        backend: Optional[str] = None,
        telemetry: Optional[bool] = None,
        batch_windows: Optional[int] = None,
        ffwd: Optional[bool] = None,
    ) -> None:
        """``lookahead_override`` shrinks the batch below the minimum
        link delay (correct but slower — the ablation of the §3.3 design
        choice).  ``system_order='naive'`` runs the systems in the naive
        Send-Forward-Transmit-ACK order the paper rejects; ACK outputs
        then miss their window's TransmitSystem and drift by one batch —
        the LCC violation §3.3 proves the paper order avoids.

        ``backend`` selects the ECS substrate and system variants:
        ``"python"`` (list columns, scalar orchestration — the
        deterministic reference) or ``"numpy"`` (typed ndarray columns,
        vectorized plan/commit).  ``None`` resolves the
        ``REPRO_BACKEND`` environment variable, defaulting to
        ``"python"`` — which is how the CI backend matrix runs the whole
        suite under each backend without touching test code.

        ``telemetry`` turns on span recording and metric sampling on the
        engine's bus (``None`` resolves ``REPRO_TELEMETRY``).  Telemetry
        only reads clocks and port counters — the event trace, and
        therefore the conformance digest, is identical either way.

        ``batch_windows`` is the default window budget of one
        :meth:`advance` call (``None`` resolves ``REPRO_BATCH_WINDOWS``,
        defaulting to 1).  Budgets above 1 run up to K consecutive
        windows per advance; the trace stays byte-identical because
        each window's inputs were complete before the batch started
        (the LCC discipline).

        ``ffwd`` enables the window-signature memoization +
        fast-forwarding cache (``None`` resolves ``REPRO_FFWD``,
        defaulting to off).  The cache only ever activates under the
        static gates checked by :meth:`_maybe_init_memo` — paper system
        order, local deliveries, no RED / packet spraying / queue
        sampling, at least one UDP flow — and the ``dons-numpy-ffwd``
        conformance oracle holds the trace digest byte-identical with
        it on or off.  See docs/MEMOIZATION.md.
        """
        self.scenario = scenario
        if backend is None:
            backend = os.environ.get("REPRO_BACKEND") or "python"
        self.backend = backend
        self._systems = system_set(backend)
        self.bus = InstrumentationBus()
        if telemetry is None:
            telemetry = os.environ.get("REPRO_TELEMETRY", "") not in (
                "", "0", "false", "off")
        if telemetry:
            self.bus.enable_telemetry()
        self._tx_prev: Dict[int, int] = {}
        self.trace = self.bus.subscribe_trace(TraceRecorder(trace_level))
        self.pool = WorkerPool(workers, bus=self.bus)
        self.max_windows = max_windows
        if batch_windows is None:
            batch_windows = int(os.environ.get("REPRO_BATCH_WINDOWS") or 1)
        self.batch_windows = max(1, batch_windows)
        if system_order not in ("paper", "naive"):
            raise SimulationError(f"unknown system order {system_order!r}")
        self.system_order = system_order
        self._carried_staged: Dict[int, list] = {}
        self._running_window = -1
        self.sample_queues = sample_queues
        if ffwd is None:
            ffwd = os.environ.get("REPRO_FFWD", "") not in (
                "", "0", "false", "off")
        self.ffwd = ffwd
        self._memo = None

        self.lookahead = scenario.lookahead_ps
        if lookahead_override is not None:
            if not 0 < lookahead_override <= self.lookahead:
                raise SimulationError(
                    "lookahead override must be in (0, min link delay]: "
                    f"{lookahead_override} vs {self.lookahead}"
                )
            self.lookahead = lookahead_override
        if self.lookahead <= 0:
            raise SimulationError("lookahead must be positive")

        self.world = World(backend)
        self.ports: List[EgressPort] = []
        self.results = SimResults(self.name, scenario.name, 0)

        # Columnar pending-event store + window-occupancy index.
        self.events = EventColumns()
        self.active_ports: Set[int] = set()
        self._built = False
        self._finalized = False
        self._cursor = -1
        self._windows_run = 0

        # Fused single-pass window execution is a vectorized-backend
        # specialization of the paper order; the reference backend keeps
        # the four separate system runs.
        self._fused_run = None
        if backend == "numpy" and system_order == "paper":
            from .systems.vectorized import run_window_fused
            self._fused_run = run_window_fused

    # --- construction -------------------------------------------------------

    @property
    def built(self) -> bool:
        return self._built

    @property
    def telemetry(self) -> bool:
        return self.bus.telemetry

    def attach_trace(self, recorder: TraceRecorder) -> TraceRecorder:
        """Swap in a different trace recorder (checkpoint restore path)."""
        self.bus.replace_trace(self.trace, recorder)
        self.trace = recorder
        return recorder

    def build(self) -> None:
        """Simulation Builder: entities, ports, and initial flow starts."""
        sc = self.scenario
        topo = sc.topology
        from ..protocols.egress import TableClassifier
        classifier = TableClassifier(sc.classifier_table())

        for iface in topo.interfaces:
            cfg = (
                sc.host_egress if topo.nodes[iface.node].is_host
                else sc.switch_egress
            )
            self.ports.append(EgressPort(iface, cfg, classifier,
                                         sample_queue=self.sample_queues))
            eidx = self.world.egress.add(
                iface_id=iface.iface_id, node=iface.node,
                port_ref=self.ports[-1],
            )
            self.world.egress_of_iface[iface.iface_id] = eidx
            self.world.ingress.add(iface_id=iface.iface_id, node=iface.peer_node)

        if hasattr(sc.flows, "iter_batches"):
            self._build_flows_columnar(sc)
        else:
            for flow in sc.flows:
                total = segment_count(flow.size_bytes)
                cca = sc.cca_params(flow.transport)
                sidx = self.world.senders.add(
                    flow_id=flow.flow_id, src=flow.src, dst=flow.dst,
                    transport=int(flow.transport), size_bytes=flow.size_bytes,
                    total_segs=total, start_ps=flow.start_ps,
                    cwnd=cca.init_cwnd, rto_ps=cca.init_rto_ps,
                )
                self.world.sender_of_flow[flow.flow_id] = sidx
                ridx = self.world.receivers.add(
                    flow_id=flow.flow_id, host=flow.dst, total_segs=total,
                    needs_ack=int(flow.transport != Transport.UDP),
                    out_of_order=set(),
                )
                self.world.receiver_of_flow[flow.flow_id] = ridx
                self.results.flows[flow.flow_id] = FlowResult(
                    flow.flow_id, flow.start_ps, None, flow.size_bytes
                )
                if flow.transport == Transport.UDP:
                    # UDP pacing is driven by wakeup visits.
                    self._insert(flow.start_ps, flow.src,
                                 (ENTRY_UDP, flow.flow_id))
                else:
                    self._insert(flow.start_ps, flow.src,
                                 (ENTRY_FLOW_START, flow.start_ps,
                                  flow.flow_id))
        self._built = True
        self._maybe_init_memo()

    @staticmethod
    def _assign_column(table, name: str, lo: int, hi: int, values) -> None:
        """Write one batch into a component column, backend-agnostic.

        List columns (Python backend) take plain-int lists — the scalar
        boundary that keeps traces byte-identical; ndarray columns take
        the arrays directly.
        """
        col = table.column(name)
        if isinstance(col, list):
            col[lo:hi] = values.tolist()
        else:
            col[lo:hi] = values

    def _build_flows_columnar(self, sc: Scenario) -> None:
        """Bulk sender/receiver construction from columnar traffic.

        Consumes :meth:`~repro.traffic.FlowColumns.iter_batches` — per
        batch, every per-flow quantity (segment totals, CCA initial
        windows, ACK requirements) is computed vectorized and written
        with one slice assignment per component column.  No Flow object
        is ever materialized; the semantics match the scalar loop in
        :meth:`build` row for row.
        """
        import numpy as np
        from ..protocols.packet import MSS
        flows = sc.flows
        world = self.world
        n = len(flows)
        s_base = world.senders.add_many(n).start
        r_base = world.receivers.add_many(n).start
        dctcp, reno = sc.dctcp, sc.reno
        results_flows = self.results.flows
        insert = self._insert
        oo_col = world.receivers.column("out_of_order")
        udp = int(Transport.UDP)
        dctcp_code = int(Transport.DCTCP)
        for first, cols in flows.iter_batches():
            src = cols["src"]
            dst = cols["dst"]
            size = cols["size_bytes"]
            start = cols["start_ps"]
            transport = cols["transport"]
            k = len(src)
            lo_s, hi_s = s_base + first, s_base + first + k
            lo_r, hi_r = r_base + first, r_base + first + k
            fid = np.arange(first, first + k, dtype=np.int64)
            total = (size + MSS - 1) // MSS
            is_dctcp = transport == dctcp_code
            cwnd = np.where(is_dctcp, float(dctcp.init_cwnd),
                            float(reno.init_cwnd))
            rto = np.where(is_dctcp, dctcp.init_rto_ps, reno.init_rto_ps)
            assign = self._assign_column
            senders, receivers = world.senders, world.receivers
            assign(senders, "flow_id", lo_s, hi_s, fid)
            assign(senders, "src", lo_s, hi_s, src)
            assign(senders, "dst", lo_s, hi_s, dst)
            assign(senders, "transport", lo_s, hi_s, transport)
            assign(senders, "size_bytes", lo_s, hi_s, size)
            assign(senders, "total_segs", lo_s, hi_s, total)
            assign(senders, "start_ps", lo_s, hi_s, start)
            assign(senders, "cwnd", lo_s, hi_s, cwnd)
            assign(senders, "rto_ps", lo_s, hi_s, rto)
            assign(receivers, "flow_id", lo_r, hi_r, fid)
            assign(receivers, "host", lo_r, hi_r, dst)
            assign(receivers, "total_segs", lo_r, hi_r, total)
            assign(receivers, "needs_ack", lo_r, hi_r,
                   (transport != udp).astype(np.int64))
            for i in range(lo_r, hi_r):
                oo_col[i] = set()
            src_l = src.tolist()
            size_l = size.tolist()
            start_l = start.tolist()
            transport_l = transport.tolist()
            fid_l = fid.tolist()
            for f, s_node, st, sz, tr in zip(fid_l, src_l, start_l,
                                             size_l, transport_l):
                results_flows[f] = FlowResult(f, st, None, sz)
                if tr == udp:
                    insert(st, s_node, (ENTRY_UDP, f))
                else:
                    insert(st, s_node, (ENTRY_FLOW_START, st, f))
        world.sender_of_flow.update(
            zip(range(n), range(s_base, s_base + n)))
        world.receiver_of_flow.update(
            zip(range(n), range(r_base, r_base + n)))

    def _maybe_init_memo(self) -> None:
        """Attach a :class:`~repro.core.memo.WindowMemoCache` when the
        static eligibility gates hold.

        The gates keep fast-forwarding inside the closed world the
        signature can encode (see docs/MEMOIZATION.md): the paper
        system order (the naive ablation carries staged packets across
        windows), local deliveries only (cluster agents clear
        ``deliveries_local`` — a window with cross-agent traffic must
        run for real so its outbox fills), no queue sampling (samples
        are absolute-time pairs), no RED and no packet-mode ECMP (both
        hash raw sequence numbers, which the per-flow rebase erases),
        and at least one UDP flow (the per-window probe only ever
        memoizes pure-UDP windows, so without UDP flows the cache could
        never hit).
        """
        if not self.ffwd or self._memo is not None:
            return
        sc = self.scenario
        from ..protocols.aqm import AqmKind
        has_udp = getattr(sc.flows, "has_udp", None)
        if has_udp is None:
            has_udp = any(f.transport == Transport.UDP for f in sc.flows)
        if (self.system_order != "paper"
                or not self.deliveries_local
                or self.sample_queues
                or sc.host_egress.aqm.kind == AqmKind.RED
                or sc.switch_egress.aqm.kind == AqmKind.RED
                or sc.ecmp_mode == "packet"
                or not has_udp):
            return
        from .memo import WindowMemoCache
        self._memo = WindowMemoCache(self)

    # --- calendar -------------------------------------------------------------

    def _window_of(self, t: int) -> int:
        return t // self.lookahead

    def _insert(self, t: int, node: int, entry: Entry) -> None:
        win = self._window_of(t)
        # Under the paper order, LCC guarantees win > the running window;
        # the naive-order ablation can violate that (its whole point), so
        # late entries are clamped forward instead of silently lost.
        if win <= self._running_window:
            win = self._running_window + 1
        self.events.insert(win, node, entry)

    def deliver(self, node: int, t: int, row: Row) -> None:
        """TransmitSystem callback: a packet reaches ``node`` at ``t``."""
        self._insert(t, node, (ENTRY_ARRIVAL, t, PRIO_ARRIVAL, row))

    #: True when every delivery lands in the local event store — the
    #: fused transmit sweep may then append to the columns directly.
    #: The cluster AgentEngine clears it (peers can live off-partition).
    deliveries_local = True

    def deliver_emissions(self, node: int, delay_ps: int, emissions) -> None:
        """Bulk :meth:`deliver`: one port's window emissions at once.

        Every emission of an egress port lands on the same peer after
        the same link delay, so the delivery loop collapses into one
        columnar append (:meth:`EventColumns.insert_arrivals`) — same
        entries, same order, same LCC clamp.  The cluster AgentEngine
        overrides this to route whole spans to the outbox when the peer
        lives on another partition.
        """
        self.events.insert_arrivals(node, emissions, delay_ps,
                                    self.lookahead,
                                    self._running_window + 1)

    def register_wakeup(self, t: int, node: int, tag: int, flow_id: int) -> None:
        """SendSystem callback: revisit ``flow_id`` in the window of ``t``."""
        self._insert(t, node, (tag, flow_id))

    def bump_node(self, node: int, count: int = 1) -> None:
        if count:
            self.results.node_events[node] = (
                self.results.node_events.get(node, 0) + count
            )

    # --- main loop --------------------------------------------------------------

    def _next_window(self, current: int) -> Optional[int]:
        return self.events.next_window(current, bool(self.active_ports))

    def peek_next_window(self, current: int) -> Optional[int]:
        """The next window index with pending work, without consuming it.

        O(1) off the occupancy index.  Used by the distributed
        coordinator to agree on the cluster-wide window (§4.2: every
        Runner executes the same batch) and by the batcher to prove a
        span of windows is free of new scheduling work.
        """
        return self.events.peek_next(current, bool(self.active_ports))

    def window_signature(self) -> str:
        """Hash of the engine's pending-window state (hex, 128-bit).

        Covers the cursor, the lookahead, every pending event column
        (including payload rows) and the active-port set — everything
        that determines the remainder of the run.  The encoding is
        little-endian int64 streams (see
        :meth:`EventColumns.signature_bytes`), so the digest is stable
        across ECS backends: the future memoization/fast-forwarding
        cache keys on it.
        """
        h = blake2b(digest_size=16)
        h.update(struct.pack("<qq", self._cursor, self.lookahead))
        h.update(self.events.signature_bytes())
        active = sorted(self.active_ports)
        h.update(struct.pack(f"<q{len(active)}q", len(active), *active))
        return h.hexdigest()

    def process_window(self, index: int) -> WindowContext:
        """Execute one lookahead batch: the four systems in §3.3 order."""
        L = self.lookahead
        bus = self.bus
        telemetry = bus.telemetry
        if telemetry:
            _w0 = bus.now()
        self._running_window = index
        start = index * L
        end = start + L
        duration = self.scenario.duration_ps
        t_cut = None
        if duration is not None and end > duration + 1:
            # The duration cut falls inside this window.  The baseline
            # processes events with t <= duration and nothing after, so
            # clamp the window (end is exclusive) and drop pending
            # entries past the cut; timer/UDP wakeups carry no timestamp
            # and re-derive their firing times against ctx.end.
            end = duration + 1
            t_cut = duration
        if self._fused_run is not None:
            # The fused plan traverses the raw insert-ordered columns;
            # no per-node grouping dict is ever built.
            ctx = WindowContext(
                index=index, start=start, end=end, node_entries={},
                columns=self.events.pop_window_columns(index, t_cut),
            )
        else:
            ctx = WindowContext(
                index=index, start=start, end=end,
                node_entries=self.events.pop_window(index, t_cut),
            )
        bus.window_begin(index, start)
        if bus.has_ops:
            bus.op(OP_WINDOW, 0, 0)  # buffer arenas recycle
        run_ack, run_send, run_forward, run_transmit = self._systems
        if self.system_order == "paper":
            # The paper's execution order (§3.3): ACK, Send, Forward,
            # Transmit.  Timed inline — bus.system_time costs two clock
            # reads per system, nothing else on the hot path.  The
            # vectorized backend runs the same four phases through one
            # fused pass (one plan traversal, shared column handles).
            if self._fused_run is not None:
                t0, t1, t2, t3, t4 = self._fused_run(self, ctx)
            else:
                clock = perf_counter
                t0 = clock()
                run_ack(self, ctx)
                t1 = clock()
                run_send(self, ctx)
                t2 = clock()
                run_forward(self, ctx)
                t3 = clock()
                run_transmit(self, ctx)
                t4 = clock()
            bus.system_time("ack", t1 - t0)
            bus.system_time("send", t2 - t1)
            bus.system_time("forward", t3 - t2)
            bus.system_time("transmit", t4 - t3)
            if telemetry:
                # System spans reuse the timing reads above — the only
                # extra hot-path cost is four list appends.
                rel = bus.rel
                bus.span_add("ack", rel(t0), rel(t1), "system")
                bus.span_add("send", rel(t1), rel(t2), "system")
                bus.span_add("forward", rel(t2), rel(t3), "system")
                bus.span_add("transmit", rel(t3), rel(t4), "system")
        else:
            # Naive order (ablation): ACK last.  Its staged packets miss
            # this window's TransmitSystem and carry into the next batch.
            if self._carried_staged:
                for iface_id, staged in self._carried_staged.items():
                    ctx.staged.setdefault(iface_id, []).extend(staged)
                self._carried_staged = {}
            with bus.system_timer("send"):
                run_send(self, ctx)
            with bus.system_timer("forward"):
                run_forward(self, ctx)
            with bus.system_timer("transmit"):
                run_transmit(self, ctx)
            before = {k: len(v) for k, v in ctx.staged.items()}
            with bus.system_timer("ack"):
                run_ack(self, ctx)
            self._carried_staged = {
                k: v[before.get(k, 0):]
                for k, v in ctx.staged.items()
                if len(v) > before.get(k, 0)
            }
            if self._carried_staged:
                # Something is pending: the next window must run.
                self._insert((ctx.index + 1) * self.lookahead, 0, (ENTRY_TIMER, -1))
        self.results.end_time_ps = ctx.end
        if ctx.counts.total:
            self.results.events.add(ctx.counts)
            self.results.window_breakdown.append(
                (start, ctx.counts.ack, ctx.counts.send,
                 ctx.counts.forward, ctx.counts.transmit)
            )
        if telemetry:
            self._sample_window_metrics(ctx)
            bus.span_add("window", _w0, bus.now(), "window",
                         {"index": index, "start_ps": start})
        return ctx

    def _sample_window_metrics(self, ctx: WindowContext) -> None:
        """End-of-window metric sampling (telemetry only; read-only).

        Busy ports are sampled for queue depth and per-window link
        utilization (tx-bytes delta against the last sample, normalized
        by line rate x window length).  Bounded by the active-port set,
        not the topology size.
        """
        from .telemetry import QUEUE_DEPTH_BUCKETS, UTILIZATION_BUCKETS
        metrics = self.bus.metrics
        depth = metrics.histogram("port.queue_depth_bytes",
                                  QUEUE_DEPTH_BUCKETS)
        util = metrics.histogram("link.window_utilization",
                                 UTILIZATION_BUCKETS)
        window_ps = ctx.end - ctx.start
        tx_prev = self._tx_prev
        for iface_id in self.active_ports:
            port = self.ports[iface_id]
            depth.record(port.queued_bytes)
            tx = port.stats.tx_bytes
            sent = tx - tx_prev.get(iface_id, 0)
            if sent:
                tx_prev[iface_id] = tx
                capacity = port.iface.rate_bps * window_ps * 1e-12
                if capacity > 0:
                    util.record(min(1.0, sent * 8.0 / capacity))

    def advance(self, max_windows: Optional[int] = None) -> bool:
        """Run up to ``max_windows`` pending lookahead windows.

        ``None`` resolves the engine's ``batch_windows`` default (1
        unless configured).  With a budget of 1 this is exactly the
        classic one-window step; larger budgets run consecutive windows
        back-to-back — safe because the LCC discipline completed every
        window's inputs before this call — and, on the fused backend,
        merge runs of queue-drain-only windows into single port-replay
        spans (:meth:`_drain_span`).

        Returns ``False`` once no runnable window remains (or duration
        / ``max_windows`` is reached), exactly as before.
        """
        budget = max_windows if max_windows is not None else self.batch_windows
        if budget < 1:
            budget = 1
        if self.max_windows is not None:
            remaining = self.max_windows - self._windows_run
            if remaining < budget:
                budget = remaining if remaining > 1 else 1
        duration = self.scenario.duration_ps
        L = self.lookahead
        batched = budget > 1
        progressed = 0
        while budget > 0:
            nxt = self._next_window(self._cursor)
            if nxt is None:
                break
            if duration is not None and nxt * L > duration:
                break
            if (budget > 1 and self._fused_run is not None
                    and self.active_ports
                    and not self.events.has_window(nxt)
                    and not self.bus.has_ops and not self.bus.telemetry):
                ran = self._drain_span(nxt, budget)
            else:
                self._cursor = nxt
                memo = self._memo
                if memo is None or not memo.run_window(nxt):
                    self.process_window(nxt)
                ran = 1
            self._windows_run += ran
            progressed += ran
            budget -= ran
            if (self.max_windows is not None
                    and self._windows_run >= self.max_windows):
                if batched:
                    self._note_batch(progressed)
                return False
        if batched and progressed:
            self._note_batch(progressed)
        return progressed > 0 and budget == 0

    def progress(self) -> Dict[str, Any]:
        """In-flight progress snapshot (read-only; safe mid-run).

        The live observability plane (:mod:`repro.metrics.live`) and the
        ``--progress`` meter sample this between ``advance()`` calls:
        windows executed, simulated time reached, events committed, and
        the completed fraction of the duration cut (``None`` when the
        scenario has no cut to measure against).
        """
        cursor = self._cursor
        sim_ps = (cursor + 1) * self.lookahead if cursor >= 0 else 0
        duration = self.scenario.duration_ps
        return {
            "windows": self._windows_run,
            "sim_ps": sim_ps,
            "duration_ps": duration,
            "events": self.results.events.total,
            "done": min(1.0, sim_ps / duration) if duration else None,
        }

    def _note_batch(self, n: int) -> None:
        """Batched-advance observability: counter always, histogram when
        telemetry is live (neither feeds the trace digest)."""
        bus = self.bus
        bus.count("engine.batch_windows", n)
        if bus.telemetry:
            from .telemetry import BATCH_SIZE_BUCKETS
            bus.metrics.record("window.batch_size", n, BATCH_SIZE_BUCKETS)

    def _drain_span(self, first: int, budget: int) -> int:
        """Run a span of consecutive drain-only windows as one replay.

        Preconditions (checked by :meth:`advance`): fused vectorized
        backend, window ``first`` has no pending entries, ports are
        active, no op probes, no telemetry.  Within such a span the only
        work is TransmitSystem replaying busy egress ports, so the span
        collapses to one work-conserving replay per port over
        ``[first*L, bound*L)`` — equivalent to per-window replays
        because a busy FIFO port's next emission time is independent of
        window boundaries.

        The span's upper ``bound`` is clamped so that, provably, no
        in-span emission's *delivery* (emission end + link delay) lands
        inside the span, no occupied window is crossed, and the
        duration cut stays outside; whenever the bound degenerates the
        method falls back to the classic single window.  Returns the
        number of windows consumed.
        """
        L = self.lookahead
        bound = first + budget
        occ = self.events.peek_occupied(first)
        if occ is not None and occ < bound:
            bound = occ
        duration = self.scenario.duration_ps
        if duration is not None:
            # First window whose end would need the duration clamp.
            cut = (duration + 1) // L
            if cut < bound:
                bound = cut
        ports = self.ports
        if bound > first + 1:
            from ..protocols.packet import F_SIZE
            from ..schedulers.disciplines import FifoScheduler
            from .systems.vectorized import _PS8
            span_start = first * L
            for iface_id in self.active_ports:
                port = ports[iface_id]
                sched = port.sched
                if type(sched) is not FifoScheduler:
                    # Stateful disciplines (DRR credit, RR pointer) are
                    # cheap to keep on the per-window path.
                    bound = first + 1
                    break
                # The port's first in-span emission: starts when the
                # line frees (clamped into the span), serializes the
                # head packet, and delivers one link delay later.  No
                # other port can beat its own head.
                start = port.free_at
                if start < span_start:
                    start = span_start
                end = start + (sched._peek(0)[F_SIZE] * _PS8) \
                    // port.iface.rate_bps
                delivery = (end + port.iface.delay_ps) // L
                if delivery < bound:
                    bound = delivery
                if bound <= first + 1:
                    # Already degenerate — no later port can raise the
                    # bound back up, so the rest of the scan is wasted
                    # work (the K=8 batch regression: wide active-port
                    # sets paid a full scan per failed span attempt).
                    break
        if bound <= first + 1:
            self._cursor = first
            memo = self._memo
            if memo is None or not memo.run_window(first):
                self.process_window(first)
            return 1
        # Merged replay over [first, bound): per-window bookkeeping
        # (window_begin, breakdown rows, event counts, deliveries) is
        # reconstructed from emission timestamps so the run is
        # indistinguishable from the per-window path.
        from ..protocols.packet import F_FLOW, F_ISACK, F_SEQ
        from .systems.vectorized import transmit_batch_kernel
        bus = self.bus
        n_windows = bound - first
        self._running_window = first
        self._cursor = bound - 1
        span_start = first * L
        span_end = bound * L
        full_trace = bus.trace_level >= 2
        trace_on = bool(bus.trace_level)
        clock = perf_counter
        t0 = clock()
        iface_ids = sorted(self.active_ports)
        results = transmit_batch_kernel(ports, {}, span_start, span_end,
                                        full_trace, iface_ids)
        per_win = [0] * n_windows
        deliver = self.deliver
        for iface_id, emissions, _drops, _enq, still_active, _n in results:
            iface = ports[iface_id].iface
            self.bump_node(iface.node, len(emissions))
            delay = iface.delay_ps
            peer = iface.peer_node
            for row, start, end in emissions:
                if trace_on:
                    bus.deq(start, iface_id, row[F_FLOW], row[F_ISACK],
                            row[F_SEQ])
                deliver(peer, end + delay, row)
                per_win[start // L - first] += 1
            if not still_active:
                self.active_ports.discard(iface_id)
        t1 = clock()
        res = self.results
        for j in range(n_windows):
            bus.window_begin(first + j, (first + j) * L)
            c = per_win[j]
            if c:
                res.events.transmit += c
                res.window_breakdown.append(
                    ((first + j) * L, 0, 0, 0, c))
        bus.system_time("transmit", t1 - t0)
        res.end_time_ps = span_end
        return n_windows

    def run(self) -> SimResults:
        """Run to completion (or duration / max_windows)."""
        return EngineRunner(self).run()

    def finalize(self) -> SimResults:
        """Assemble results and release the worker pool (idempotent)."""
        if not self._finalized:
            self._finalized = True
            res = self.results
            res.trace = self.trace
            res.rtt_samples.sort()
            for port in self.ports:
                res.marks += port.stats.marked
                res.tx_bytes += port.stats.tx_bytes
            if self.bus.telemetry:
                self._final_metrics()
        self.pool.close()
        return self.results

    def _final_metrics(self) -> None:
        """Whole-run metric rollups recorded once at finalize."""
        from .telemetry import FCT_US_BUCKETS
        metrics = self.bus.metrics
        fct = metrics.histogram("flow.completion_time_us", FCT_US_BUCKETS)
        for flow in self.results.flows.values():
            if flow.complete_ps is not None:
                fct.record((flow.complete_ps - flow.start_ps) * 1e-6)
        drops = marks = enq = deq = 0
        max_depth = 0
        for port in self.ports:
            stats = port.stats
            drops += stats.dropped
            marks += stats.marked
            enq += stats.enqueued
            deq += stats.dequeued
            if stats.max_queue_bytes > max_depth:
                max_depth = stats.max_queue_bytes
        metrics.count("port.drops", drops)
        metrics.count("port.ecn_marks", marks)
        metrics.count("port.enqueued", enq)
        metrics.count("port.dequeued", deq)
        metrics.gauge("port.max_queue_bytes", float(max_depth))


def run_dons(
    scenario: Scenario,
    trace_level: TraceLevel = TraceLevel.NONE,
    workers: int = 1,
    backend: Optional[str] = None,
    telemetry: Optional[bool] = None,
    batch_windows: Optional[int] = None,
    ffwd: Optional[bool] = None,
) -> SimResults:
    """Convenience one-shot run of the DOD engine."""
    return DodEngine(scenario, trace_level, workers, backend=backend,
                     telemetry=telemetry,
                     batch_windows=batch_windows, ffwd=ffwd).run()
