"""Columnar pending-event store for the DOD engine.

The paper's point (§3) is that *all* simulation state should live in
contiguous, batch-friendly form — not just the entity tables.  The
original engine kept its pending work in nested scalar dicts
(``calendar[window][node] -> [entry, ...]``); this module replaces that
with :class:`EventColumns`, one bucket of parallel columns per pending
window:

``nodes[i] / tags[i] / times[i] / prios[i] / payloads[i]``

``payloads`` holds the original entry tuples (the payload-ref column),
so handing a window to the systems is pure grouping — no per-entry
reconstruction.  ``tags``/``times``/``prios`` are *derived* integer
columns (``-1`` where the entry kind carries no timestamp/priority),
computed on demand from the payload rows: only ``nodes`` and
``payloads`` are materialized, so the hot insert paths append twice per
entry, while the cold consumers (the
:meth:`EventColumns.signature_bytes` encoding, migration copies, the
NumPy array views) derive the integer columns when asked.  Columns are
appended in insertion order, which is exactly the order the scalar calendar
preserved — so grouping a bucket by node reproduces the old
``Dict[node, List[Entry]]`` byte-for-byte, and no per-window sort is
needed (the insert stream *is* the stable order).

Scheduling runs off a window-occupancy index maintained next to the
buckets: a min-heap of pending window indices plus a membership set.
That makes ``peek_next_window`` O(1) (top of heap) and keeps
``next_window`` amortized O(log W).  Occupancy registration goes
through the module-level :data:`register_window` hook so the
conformance harness can plant a stale-index bug
(:func:`repro.conformance.inject.stale_window_index`) and prove the
differential fuzz loop catches exactly this class of corruption.

Both ECS backends share this store: the columns are plain Python lists
(the ``python`` backend's native column type, cf. ``SoATable``); the
NumPy backend materializes ndarray views on demand via
:meth:`EventColumns.as_arrays`.  The byte encoding behind
``signature_bytes`` is little-endian int64 streams either way, which is
what makes ``DodEngine.window_signature()`` backend-stable.
"""

from __future__ import annotations

import heapq
import struct
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .window import ENTRY_ARRIVAL, ENTRY_FLOW_START, Entry
from ..protocols.packet import PRIO_ARRIVAL

__all__ = ["EventColumns", "register_window"]

_pack_header = struct.Struct("<qq").pack


class _Bucket:
    """Parallel columns for one pending window (insertion-ordered).

    Only ``nodes`` and ``payloads`` are materialized — they are the two
    columns every hot path appends to.  The derived integer columns
    (``tags``/``times``/``prios``) are pure functions of the payload
    rows, so they are computed on demand by the cold consumers
    (signature encoding, migration copies, array views) instead of
    being kept in sync on every insert.
    """

    __slots__ = ("nodes", "payloads")

    def __init__(self) -> None:
        self.nodes: List[int] = []
        self.payloads: List[Entry] = []

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def tags(self) -> List[int]:
        return [e[0] for e in self.payloads]

    @property
    def times(self) -> List[int]:
        """Entry timestamps; ``-1`` where the kind carries none
        (TIMER / UDP wakeups re-derive firing times in-window)."""
        return [e[1] if e[0] <= ENTRY_FLOW_START else -1
                for e in self.payloads]

    @property
    def prios(self) -> List[int]:
        return [e[2] if e[0] == ENTRY_ARRIVAL else -1
                for e in self.payloads]


def _register_window(events: "EventColumns", win: int) -> None:
    """Default occupancy registration: queue ``win`` exactly once."""
    if win not in events._queued:
        events._queued.add(win)
        heapq.heappush(events._heap, win)


#: Injectable occupancy-registration hook.  Resolved at call time by
#: :meth:`EventColumns.insert`, so the conformance harness can swap in a
#: corrupted version (see ``inject.stale_window_index``) that both ECS
#: backends inherit.
register_window: Callable[["EventColumns", int], None] = _register_window


class EventColumns:
    """Pending events as per-window parallel columns + occupancy index."""

    __slots__ = ("_buckets", "_heap", "_queued")

    def __init__(self) -> None:
        self._buckets: Dict[int, _Bucket] = {}
        self._heap: List[int] = []
        self._queued: set = set()

    # --- writers ----------------------------------------------------------

    def insert(self, win: int, node: int, entry: Entry) -> None:
        """Append one entry to ``win``'s columns and register occupancy."""
        bucket = self._buckets.get(win)
        if bucket is None:
            bucket = self._buckets[win] = _Bucket()
        bucket.nodes.append(node)
        bucket.payloads.append(entry)
        register_window(self, win)

    def insert_entries(self, win: int, node: int,
                       entries: List[Entry]) -> None:
        """Bulk append (state migration): all of ``entries`` at ``node``."""
        for entry in entries:
            self.insert(win, node, entry)

    def touch(self, win: int) -> None:
        """Register ``win`` as occupied without adding entries (used when
        a migrated active port must force its owner's next window)."""
        register_window(self, win)

    def insert_arrivals(self, node: int, emissions, delay_ps: int,
                        lookahead: int, floor: int) -> None:
        """Bulk arrival delivery for one egress port's window emissions.

        ``emissions`` is the TransmitSystem's ``(row, start, end)`` list;
        every packet lands on the port's single ``node`` peer at
        ``end + delay_ps``, in a window no earlier than ``floor`` (the
        LCC clamp — see ``DodEngine._insert``).  Appending straight to
        the columns here is byte-equivalent to one :meth:`insert` per
        packet, but hoists the window arithmetic and column lookups out
        of the per-packet call chain; the vectorized backend's fused
        transmit commit rides on it.
        """
        buckets = self._buckets
        for row, _start, end in emissions:
            t = end + delay_ps
            win = t // lookahead
            if win < floor:
                win = floor
            bucket = buckets.get(win)
            if bucket is None:
                bucket = buckets[win] = _Bucket()
            bucket.nodes.append(node)
            bucket.payloads.append((ENTRY_ARRIVAL, t, PRIO_ARRIVAL, row))
            register_window(self, win)

    # --- window scheduling ------------------------------------------------

    def _prune(self, current: int) -> None:
        heap = self._heap
        while heap and heap[0] <= current:
            self._queued.discard(heapq.heappop(heap))

    def next_window(self, current: int, active: bool) -> Optional[int]:
        """Smallest runnable window after ``current`` — and consume it
        from the occupancy index if it came from there."""
        self._prune(current)
        heap = self._heap
        candidates = []
        if active:
            candidates.append(current + 1)
        if heap:
            candidates.append(heap[0])
        if not candidates:
            return None
        nxt = min(candidates)
        if heap and heap[0] == nxt:
            self._queued.discard(heapq.heappop(heap))
        return nxt

    def peek_next(self, current: int, active: bool) -> Optional[int]:
        """:meth:`next_window` without consuming — O(1) off the index."""
        self._prune(current)
        heap = self._heap
        candidates = []
        if active:
            candidates.append(current + 1)
        if heap:
            candidates.append(heap[0])
        return min(candidates) if candidates else None

    def peek_occupied(self, current: int) -> Optional[int]:
        """Smallest *occupied* window index > ``current`` (ignores active
        ports) — the batcher's bound on how far a drain span may run."""
        self._prune(current)
        return self._heap[0] if self._heap else None

    # --- readers ----------------------------------------------------------

    def has_window(self, win: int) -> bool:
        return win in self._buckets

    def windows(self) -> List[int]:
        """Pending window indices, ascending."""
        return sorted(self._buckets)

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def __bool__(self) -> bool:
        return bool(self._buckets)

    def _grouped(self, bucket: _Bucket) -> Dict[int, List[Entry]]:
        """Group one bucket's payload column by node.

        Columns are in insertion order, so the node-key order and each
        per-node entry order match the scalar calendar exactly.
        """
        out: Dict[int, List[Entry]] = {}
        payloads = bucket.payloads
        for i, node in enumerate(bucket.nodes):
            lst = out.get(node)
            if lst is None:
                out[node] = [payloads[i]]
            else:
                lst.append(payloads[i])
        return out

    def entries_of(self, win: int) -> Dict[int, List[Entry]]:
        """Non-consuming grouped view of one window (tests, migration)."""
        bucket = self._buckets.get(win)
        return self._grouped(bucket) if bucket is not None else {}

    # --- delta stage/apply (memoization support) ---------------------------

    def window_entries(
        self, win: int,
    ) -> Optional[Tuple[List[int], List[Entry]]]:
        """Non-consuming raw ``(nodes, payloads)`` columns of one window.

        The memoization probe (:mod:`repro.core.memo`) walks the columns
        to build the window's execution signature *before* deciding
        whether to run or fast-forward, so unlike
        :meth:`pop_window_columns` the bucket stays in place.
        """
        bucket = self._buckets.get(win)
        if bucket is None:
            return None
        return bucket.nodes, bucket.payloads

    def bucket_sizes(self) -> Dict[int, int]:
        """``{window: entry count}`` over every pending bucket — the
        capture diff's before/after snapshot of staged future events."""
        return {win: len(b) for win, b in self._buckets.items()}

    def window_slice(
        self, win: int, start: int,
    ) -> Optional[Tuple[List[int], List[Entry]]]:
        """Columns of ``win`` from position ``start`` on (the entries a
        captured window appended to a pre-existing bucket)."""
        bucket = self._buckets.get(win)
        if bucket is None:
            return None
        return bucket.nodes[start:], bucket.payloads[start:]

    def discard_window(self, win: int) -> None:
        """Drop one window's bucket without grouping it (fast-forward:
        the delta replaces execution, so the entries are never run; the
        occupancy-index entry was already consumed by ``next_window``)."""
        self._buckets.pop(win, None)

    def items(self) -> Iterator[Tuple[int, Dict[int, List[Entry]]]]:
        """Iterate ``(window, grouped entries)`` over pending windows."""
        for win in sorted(self._buckets):
            yield win, self._grouped(self._buckets[win])

    def pending_nodes(self) -> Iterator[Tuple[int, List[int]]]:
        """Iterate ``(window, node column)`` ascending, without grouping.

        The quiet-horizon scan only needs *which nodes* hold pending
        work per window — handing out the raw node column avoids
        building the grouped dicts :meth:`items` would."""
        buckets = self._buckets
        for win in sorted(buckets):
            yield win, buckets[win].nodes

    def pop_window(self, win: int,
                   t_cut: Optional[int] = None) -> Dict[int, List[Entry]]:
        """Remove and return ``win``'s entries grouped by node.

        ``t_cut`` applies the duration cut: timestamped entries
        (ARRIVAL / FLOW_START) with ``t > t_cut`` are dropped, and nodes
        whose entries all fall past the cut are omitted — the same
        filter the engine applied to the scalar calendar.
        """
        bucket = self._buckets.pop(win, None)
        if bucket is None:
            return {}
        grouped = self._grouped(bucket)
        if t_cut is None:
            return grouped
        return {
            node: kept for node, entries in grouped.items()
            if (kept := [
                e for e in entries
                if e[0] > ENTRY_FLOW_START or e[1] <= t_cut
            ])
        }

    def pop_window_columns(
        self, win: int, t_cut: Optional[int] = None,
    ) -> Optional[Tuple[List[int], List[Entry]]]:
        """Remove ``win`` and return its raw ``(nodes, payloads)`` columns.

        The fused vectorized plan consumes the columns directly — same
        entries, same global insertion order — skipping the per-node
        grouping dict :meth:`pop_window` builds.  ``t_cut`` applies the
        same duration cut (timestamped entries past the cut drop out).
        Returns ``None`` when the window holds no entries.
        """
        bucket = self._buckets.pop(win, None)
        if bucket is None:
            return None
        nodes, payloads = bucket.nodes, bucket.payloads
        if t_cut is None:
            return nodes, payloads
        keep_n: List[int] = []
        keep_p: List[Entry] = []
        for i, e in enumerate(payloads):
            if e[0] > ENTRY_FLOW_START or e[1] <= t_cut:
                keep_n.append(nodes[i])
                keep_p.append(e)
        return keep_n, keep_p

    # --- structural edits (cluster build / migration) ---------------------

    def retain_nodes(self, keep: Callable[[int], bool]) -> None:
        """Drop every entry whose node fails ``keep``.

        Emptied buckets are removed but their occupancy-index entries
        are deliberately left behind: an agent still *schedules* the
        windows it was built with (and runs them as no-ops), matching
        the scalar engine's pruning semantics.
        """
        for win in list(self._buckets):
            bucket = self._buckets[win]
            if all(keep(n) for n in bucket.nodes):
                continue
            fresh = _Bucket()
            for i, node in enumerate(bucket.nodes):
                if keep(node):
                    fresh.nodes.append(node)
                    fresh.payloads.append(bucket.payloads[i])
            if fresh.nodes:
                self._buckets[win] = fresh
            else:
                del self._buckets[win]

    def take_node(self, node: int) -> List[Tuple[int, List[Entry]]]:
        """Remove and return all of ``node``'s entries as
        ``[(window, entries), ...]`` (state migration's unit of work)."""
        moved: List[Tuple[int, List[Entry]]] = []
        for win in sorted(self._buckets):
            bucket = self._buckets[win]
            if node not in bucket.nodes:
                continue
            taken = [bucket.payloads[i]
                     for i, n in enumerate(bucket.nodes) if n == node]
            moved.append((win, taken))
            self.retain_at(win, lambda n: n != node)
        return moved

    def retain_at(self, win: int, keep: Callable[[int], bool]) -> None:
        """`retain_nodes` restricted to one window."""
        bucket = self._buckets.get(win)
        if bucket is None:
            return
        fresh = _Bucket()
        for i, node in enumerate(bucket.nodes):
            if keep(node):
                fresh.nodes.append(node)
                fresh.payloads.append(bucket.payloads[i])
        if fresh.nodes:
            self._buckets[win] = fresh
        else:
            del self._buckets[win]

    # --- backend views ----------------------------------------------------

    def as_arrays(self, win: int):
        """NumPy int64 views of one window's derived columns
        ``(nodes, tags, times, prios)`` — the vectorized backend's entry
        point for masked column math.  Raises ``KeyError`` on an
        unoccupied window."""
        import numpy as np
        bucket = self._buckets[win]
        return (np.asarray(bucket.nodes, dtype=np.int64),
                np.asarray(bucket.tags, dtype=np.int64),
                np.asarray(bucket.times, dtype=np.int64),
                np.asarray(bucket.prios, dtype=np.int64))

    # --- signature --------------------------------------------------------

    def signature_bytes(self) -> bytes:
        """Canonical byte encoding of the pending-event columns.

        Windows ascending; per window the four derived int columns then
        the payload rows, all as little-endian int64 — ``struct.pack``
        here and ``ndarray.tobytes()`` on the NumPy side produce the
        same stream, so the digest built on top is backend-stable.
        """
        parts: List[bytes] = []
        for win in sorted(self._buckets):
            bucket = self._buckets[win]
            n = len(bucket.nodes)
            parts.append(_pack_header(win, n))
            cols = struct.Struct(f"<{n}q").pack
            parts.append(cols(*bucket.nodes))
            parts.append(cols(*bucket.tags))
            parts.append(cols(*bucket.times))
            parts.append(cols(*bucket.prios))
            for entry in bucket.payloads:
                if entry[0] == ENTRY_ARRIVAL:
                    row = entry[3]
                    parts.append(
                        struct.pack(f"<q{len(row)}q", len(row), *row))
                else:
                    parts.append(struct.pack("<2q", 1, entry[-1]))
        return b"".join(parts)
