"""The unified engine runtime: one drive-and-collect loop for all engines.

Every simulator family used to hand-roll the same outer loop — build the
scenario state, advance until exhausted, assemble results, tear down the
worker pool.  :class:`EngineRunner` owns that loop once; an engine only
has to implement the small :class:`Engine` protocol:

* ``build()`` — construct entities/state from the scenario (idempotence
  is the engine's concern; the runner calls it once if ``built`` is
  false).
* ``advance() -> bool`` — execute one unit of progress (a lookahead
  window for the DOD engine, one event for the OOD baseline) and return
  whether more work remains.
* ``finalize() -> SimResults`` — assemble results and release resources
  (worker pools, open files).  The runner calls it from a ``finally``
  block, so resources are reclaimed even when a run raises.

``repro.cli``, the benchmarks, and the distributed stack all collect
results through this path instead of private copies of it: a
:class:`~repro.cluster.runtime.ClusterEngine` implements the same
protocol with *one cluster-wide lookahead window* as its ``advance()``
unit, so ``DonsManager`` runs, ``python -m repro profile --cluster`` and
checkpoint resume (``ClusterController.run_from`` sets the engine's
window cursor, then hands it to an ``EngineRunner``) all share this
loop.  Engines that support resumption expose their position as a
cursor the caller may reposition *before* ``run()``; the runner itself
stays cursor-agnostic — ``advance()`` is always "do the next unit".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

if TYPE_CHECKING:
    from .instrument import InstrumentationBus
    from ..metrics import SimResults


@runtime_checkable
class Engine(Protocol):
    """What the runner needs from a simulator."""

    name: str
    results: "SimResults"
    bus: "InstrumentationBus"
    built: bool

    def build(self) -> None:
        """Instantiate scenario state (entities, ports, initial events)."""

    def advance(self) -> bool:
        """Execute one unit of progress; False when the run is exhausted."""

    def finalize(self) -> "SimResults":
        """Assemble results and release resources (idempotent)."""


class EngineRunner:
    """Drives one engine from build to finalized results.

    ``on_step`` is an optional per-advance callback ``fn(steps)`` — the
    CLI's ``--progress`` line hangs off it; exceptions it raises
    propagate (it is a driver hook, not a subscriber).
    """

    def __init__(self, engine: "Engine", max_steps: Optional[int] = None,
                 on_step=None) -> None:
        self.engine = engine
        self.max_steps = max_steps
        self.on_step = on_step
        self.steps = 0

    def run(self) -> "SimResults":
        """Build if needed, advance to exhaustion, always finalize."""
        engine = self.engine
        bus = getattr(engine, "bus", None)
        record = bus is not None and getattr(bus, "telemetry", False)
        if record:
            t0 = bus.now()
        if not engine.built:
            engine.build()
        if record:
            bus.span_add("build", t0, bus.now(), "run",
                         {"engine": engine.name})
        on_step = self.on_step
        try:
            while engine.advance():
                self.steps += 1
                if on_step is not None:
                    on_step(self.steps)
                if self.max_steps is not None and self.steps >= self.max_steps:
                    break
        finally:
            engine.finalize()
            if record:
                bus.span_add("run", t0, bus.now(), "run",
                             {"engine": engine.name, "steps": self.steps})
        return engine.results


def chain_hooks(*hooks):
    """Compose per-step callbacks into one ``on_step``.

    ``EngineRunner`` takes a single hook; the CLI sometimes needs two on
    the same run (the ``--progress`` stderr meter *and* the live
    observability sampler).  ``None`` entries are dropped; a single
    survivor is returned as-is so the common one-hook path pays nothing.
    """
    live = [h for h in hooks if h is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def chained(steps: int) -> None:
        for hook in live:
            hook(steps)

    return chained


def run_engine(engine: "Engine") -> "SimResults":
    """One-shot convenience: ``EngineRunner(engine).run()``."""
    return EngineRunner(engine).run()
