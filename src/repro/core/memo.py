"""Window-signature memoization and fast-forwarding (ROADMAP: the
single biggest raw-speed lever).

Steady-state traffic — heartbeats, fixed-rate flows, collective phases —
makes the engine execute the *same* lookahead window over and over: the
same pending entries, the same port queues, the same receiver state, all
shifted in time and sequence space.  "Supercharging Packet-level Network
Simulation of Large Model Training" (PAPERS.md) shows such workloads let
a simulator recognize a repeated window signature, cache the window's
effect, and skip re-execution entirely.  This module implements that for
the DOD engine:

* :class:`WindowMemoCache` computes, per window, a full **execution
  signature**: the pending-event columns of the window plus the mutable
  slice of state the window will read — the union egress ports' queues,
  line/credit state and AQM averages, the receivers' reassembly state,
  and the UDP senders' pacing cursors.  Everything time- or
  sequence-like is **rebased** (times against the window start, sequence
  numbers against each flow's pacing cursor), so two windows that are
  translations of each other in (time x sequence) space hash equal.
* On a **miss** the window executes normally through
  ``DodEngine.process_window`` while a trace tap and a state diff
  capture a :class:`WindowDelta`: port/sender/receiver scatter-writes,
  staged future events, stats/counter increments, and the trace ops —
  the window's write-set as data.
* On a **hit** the delta is applied in O(changed-state) and the engine
  fast-forwards past the window without running any system.  Every Nth
  hit is **validated** by re-executing the window and comparing the
  fresh delta against the cached one; a mismatch evicts the entry
  (``memo.validate_fail``) and keeps the executed result.

Soundness rests on a closed-world argument: the signature is only
attempted when every input the window can read is in the encoded set.
The gates (see :meth:`WindowMemoCache.eligible` and
``DodEngine._maybe_init_memo``) restrict fast-forwarding to windows
whose work is pure UDP steady-state — no DCTCP/RENO senders touched, no
RED (hashes raw sequence numbers), no packet spraying (ditto), no
cross-agent deliveries (cluster agents disable the cache entirely), no
op probes, no duration cut inside the window.  Within those gates every
engine transition commutes with the (time, sequence) translation, which
is what makes replaying a rebased delta byte-identical to re-execution —
the property the ``dons-numpy-ffwd`` conformance oracle and the
memo-on/off digest tests enforce.

There is no simulation-time RNG to capture: ECMP hashing is a pure
function of static identifiers and traffic generation happens before
``build()`` (see docs/MEMOIZATION.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import events as events_mod
from .events import _Bucket
from .window import ENTRY_ARRIVAL, ENTRY_UDP
from ..protocols.packet import (
    F_DST, F_FLOW, F_ISACK, F_SEND_TS, F_SEQ, HEADER_BYTES, MSS, Row,
)
from ..metrics.trace import TraceRecorder
from ..protocols.udp import UdpSchedule
from ..schedulers.disciplines import (
    DeficitRoundRobinScheduler, RoundRobinScheduler,
)
from ..units import PS_PER_S

__all__ = ["WindowMemoCache", "WindowDelta", "capture_filter"]

#: Re-execute and compare every Nth hit (replay-based validation).
#: Each validation costs one full window execution, so N is a direct
#: term in the fast-forward speedup bound (1/N of the plain cost); 32
#: keeps the standing overhead ~3% while still re-checking every cached
#: delta many times over a steady run.
VALIDATE_EVERY = 32

#: FIFO capacity bound of the per-engine cache.
MAX_ENTRIES = 4096

#: Zero stats increment (shared tuple, compared against on apply).
_NO_STATS = (0, 0, 0, 0, 0)


def _identity_filter(delta: "WindowDelta") -> "WindowDelta":
    return delta


#: Injectable capture hook.  Resolved at call time by
#: :meth:`WindowMemoCache.run_window` just before a freshly captured
#: delta is stored, so the conformance harness can plant a
#: stale-cache-delta bug (:func:`repro.conformance.inject.stale_cache_delta`)
#: and prove the differential fuzz loop catches exactly this class of
#: corruption.
capture_filter: Callable[["WindowDelta"], "WindowDelta"] = _identity_filter


# The unpack encoders below are hot-path; they hard-code the canonical
# 9-field row layout, so pin it (packet.py defines the truth).
assert (F_FLOW, F_ISACK, F_SEQ, F_SEND_TS) == (0, 1, 2, 6)


def _enc_row(row: Row, base: int, start: int) -> Tuple:
    """Rebase one packet row into the window's (time, seq) frame."""
    f, ack, seq, size, ce, ece, ts, src, dst = row
    return (f, ack, seq - base, size, ce, ece, ts - start, src, dst)


def _dec_row(enc: Tuple, base_of: Dict[int, int], start: int) -> Row:
    """Inverse of :func:`_enc_row` in the applying window's frame."""
    f, ack, seq, size, ce, ece, ts, src, dst = enc
    return (f, ack, seq + base_of[f], size, ce, ece, ts + start, src, dst)


@dataclass(frozen=True)
class WindowDelta:
    """One window's write-set as data (everything execution changed).

    All members are plain nested tuples rebased into the window frame,
    so two captures of behaviourally identical windows compare equal —
    that equality is what replay-based validation checks.
    """

    #: (iface_id, post_port_encoding, stats_increment_5tuple) per
    #: union port; the post encoding has the probe encoding's shape and
    #: is applied piecewise against the hit probe's pre encodings.
    ports: Tuple
    #: (flow_id, cursor_advance) — UDP pacing cursors moved.
    senders: Tuple
    #: (flow_id, expected_rel, unique_rel, ooo_rel, complete_rel|-1).
    receivers: Tuple
    #: (flow_id, completion_time_rel) — flows finished in this window.
    completions: Tuple
    #: (window_offset, node, entry_encoding) appended to future windows.
    staged: Tuple
    #: Rebased trace ops (enq/deq/drop/deliver/flow_done bus calls).
    tape: Tuple
    #: (ack, send, forward, transmit) event counts of the window.
    counts: Tuple
    #: (node, increment) results.node_events deltas.
    node_incr: Tuple
    #: results.drops increment.
    drops_incr: int


class _Probe:
    """One eligibility probe: the signature key plus the pre-state the
    capture diff and the hit apply both need."""

    __slots__ = ("win", "start", "end", "key", "union_ports", "port_encs",
                 "port_stats_pre", "base_of", "entry_flows", "recv_flows",
                 "recv_pre")

    def __init__(self, win: int, start: int, end: int) -> None:
        self.win = win
        self.start = start
        self.end = end
        self.key: Tuple = ()
        self.union_ports: Tuple[int, ...] = ()
        self.port_encs: Dict[int, Tuple] = {}
        self.port_stats_pre: Dict[int, Tuple] = {}
        self.base_of: Dict[int, int] = {}
        self.entry_flows: Tuple[int, ...] = ()
        self.recv_flows: Tuple[int, ...] = ()
        self.recv_pre: Dict[int, Tuple] = {}


class _TraceTap:
    """Trace-stream subscriber that records raw bus ops during capture.

    ``level`` stays 0 so subscribing never raises the bus's trace level
    (the tap observes only what the run would have published anyway),
    and there is deliberately no ``entries`` attribute so
    ``InstrumentationBus.trace_entries`` skips it.
    """

    level = 0

    __slots__ = ("active", "ops")

    def __init__(self) -> None:
        self.active = False
        self.ops: List[Tuple] = []

    def enq(self, t, iface, flow, is_ack, seq, marked):
        if self.active:
            self.ops.append(("enq", t, iface, flow, is_ack, seq, marked))

    def drop(self, t, iface, flow, is_ack, seq):
        if self.active:
            self.ops.append(("drop", t, iface, flow, is_ack, seq))

    def deq(self, t, iface, flow, is_ack, seq):
        if self.active:
            self.ops.append(("deq", t, iface, flow, is_ack, seq))

    def deliver(self, t, node, flow, is_ack, seq):
        if self.active:
            self.ops.append(("del", t, node, flow, is_ack, seq))

    def flow_done(self, t, node, flow):
        if self.active:
            self.ops.append(("fd", t, node, flow))


class WindowMemoCache:
    """Per-engine signature -> delta cache with fast-forward apply.

    Constructed by ``DodEngine._maybe_init_memo`` only when the static
    gates hold (paper system order, local deliveries, no RED / packet
    spray / queue sampling, at least one UDP flow).  Never persisted:
    checkpoints invalidate it on restore (``core.checkpoint``), and
    cluster agents never build one (``deliveries_local`` is cleared on
    ``AgentEngine`` — a window with cross-agent traffic pending must
    run for real so its outbox fills).
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.cache: Dict[Tuple, WindowDelta] = {}
        self.hits = 0
        self._tap = _TraceTap()
        engine.bus.subscribe_trace(self._tap)
        scenario = engine.scenario
        from ..traffic import Transport
        udp_ids = getattr(scenario.flows, "udp_flow_ids", None)
        if udp_ids is not None:
            # Columnar traffic: read the transport column directly.
            self._udp_flows = frozenset(udp_ids())
        else:
            self._udp_flows = frozenset(
                f.flow_id for f in scenario.flows
                if f.transport == Transport.UDP)
        self._scheds: Dict[int, UdpSchedule] = {}
        self._nics: Dict[int, int] = {}
        self._routes: Dict[Tuple[int, int, int], int] = {}
        self._is_host = tuple(
            n.is_host for n in scenario.topology.nodes)
        #: Static per-flow facts filled by :meth:`_sched_of`: segment
        #: count and (for NIC rates whose per-segment wire time is an
        #: exact picosecond count — every evaluation rate) the pacing
        #: interval; ``None`` marks exotic rates that must compute.
        self._totals: Dict[int, int] = {}
        self._pace: Dict[int, Optional[int]] = {}
        #: Rebased ENTRY_UDP encodings keyed on (flow, phase, rem) —
        #: see :meth:`_udp_entry_enc`; tiny (a handful of phases per
        #: flow) and saves recomputing the emission schedule on the
        #: probe hot path every window.
        self._udp_enc: Dict[Tuple, Tuple] = {}
        #: Static per-port facts: (scheduler kind code, the shared
        #: empty rows tuple) — lets :meth:`_enc_port` skip the per-class
        #: row walk entirely for drained ports (the common steady case).
        self._port_meta: Dict[int, Tuple] = {}
        #: Prepared apply plans, keyed like :attr:`cache` and evicted
        #: with it; see the staged-events loop in :meth:`_apply`.
        self._plans: Dict[Tuple, Tuple] = {}

    # --- lifecycle --------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached delta (checkpoint restore / migration)."""
        self.cache.clear()
        self._plans.clear()

    # --- main entry -------------------------------------------------------

    def run_window(self, win: int) -> bool:
        """Try to fast-forward window ``win``.

        Returns ``True`` when the window was fully handled here — by a
        delta apply, or by a capturing / validating execution — and
        ``False`` when the window is ineligible and the engine must run
        ``process_window`` itself.
        """
        probe = self._probe(win)
        bus = self.engine.bus
        if probe is None:
            bus.count("memo.ineligible")
            return False
        cached = self.cache.get(probe.key)
        if cached is None:
            bus.count("memo.miss")
            delta = self._execute_capture(win, probe)
            if delta is not None:
                delta = capture_filter(delta)
                cache = self.cache
                if len(cache) >= MAX_ENTRIES:
                    evicted = next(iter(cache))
                    cache.pop(evicted)
                    self._plans.pop(evicted, None)
                cache[probe.key] = delta
            else:
                bus.count("memo.uncacheable")
            return True
        self.hits += 1
        if self.hits % VALIDATE_EVERY == 0:
            # Replay-based validation: execute for real and compare the
            # fresh write-set against the cached one.
            bus.count("memo.validate")
            fresh = self._execute_capture(win, probe)
            if fresh != cached:
                del self.cache[probe.key]
                self._plans.pop(probe.key, None)
                bus.count("memo.validate_fail")
            else:
                bus.count("memo.hit")
            return True
        self._apply(win, probe, cached)
        bus.count("memo.hit")
        return True

    # --- probe ------------------------------------------------------------

    def _probe(self, win: int) -> Optional[_Probe]:
        """Compute the window's execution signature, or ``None`` when
        any input falls outside the encodable closed world.

        One fused pass: closed-world membership checks bail out inline
        while encoding (mixed workloads mostly reject on the first
        non-UDP entry, long before any port is touched).  Per-flow
        pacing cursors come through one bulk column handle per probe —
        both backends expose ``column`` (list / ndarray view) — and
        anchor the sequence rebase.
        """
        engine = self.engine
        L = engine.lookahead
        start = win * L
        end = start + L
        duration = engine.scenario.duration_ps
        if duration is not None and end > duration + 1:
            return None  # the duration cut truncates this window
        if engine.bus.has_ops or engine._carried_staged:
            return None
        got = engine.events.window_entries(win)
        nodes, payloads = got if got is not None else ((), ())

        udp_flows = self._udp_flows
        probe = _Probe(win, start, end)
        sender_of_flow = engine.world.sender_of_flow
        next_seq_col = engine.world.senders.column("udp_next_seq")
        base_of = probe.base_of
        is_host = self._is_host
        ports = engine.ports
        active = engine.active_ports
        union = set(active)
        entries_enc: List[Tuple] = []
        entry_flows = set()
        recv_counts: Dict[int, int] = {}
        udp_entry_enc = self._udp_entry_enc
        routes = self._routes
        for node, e in zip(nodes, payloads):
            tag = e[0]
            if tag == ENTRY_UDP:
                fid = e[1]
                if fid not in udp_flows:
                    return None
                entry_flows.add(fid)
                b = base_of.get(fid)
                if b is None:
                    b = base_of[fid] = int(
                        next_seq_col[sender_of_flow[fid]])
                ems_rel, wakeup_rel = udp_entry_enc(fid, b, start, end)
                entries_enc.append(("u", node, fid, ems_rel, wakeup_rel))
                if ems_rel:
                    union.add(self._nic_of(fid))
            elif tag == ENTRY_ARRIVAL:
                row = e[3]
                f, ack, seq, size, ce, ece, ts, src, dst = row
                if ack or f not in udp_flows:
                    return None
                b = base_of.get(f)
                if b is None:
                    b = base_of[f] = int(next_seq_col[sender_of_flow[f]])
                entries_enc.append(
                    ("a", node, e[1] - start, e[2],
                     (f, ack, seq - b, size, ce, ece, ts - start,
                      src, dst)))
                if is_host[node]:
                    recv_counts[f] = recv_counts.get(f, 0) + 1
                else:
                    iface = routes.get((node, dst, f))
                    if iface is None:
                        iface = self._route(node, row)
                    union.add(iface)
            else:
                return None  # FLOW_START / TIMER: a CCA flow is live

        union_sorted = tuple(sorted(union))
        probe.union_ports = union_sorted
        ports_enc: List[Tuple] = []
        port_encs = probe.port_encs
        def resolve(f: int) -> int:
            return int(next_seq_col[sender_of_flow[f]])
        for iface_id in union_sorted:
            enc = self._enc_port(ports[iface_id], iface_id,
                                 iface_id in active, base_of, resolve,
                                 start)
            if enc is None:
                return None  # a queued row fell outside the UDP world
            ports_enc.append(enc)
            port_encs[iface_id] = enc

        probe.entry_flows = tuple(sorted(entry_flows))
        recv_flows = tuple(sorted(recv_counts))
        probe.recv_flows = recv_flows
        receivers = engine.world.receivers
        receiver_of_flow = engine.world.receiver_of_flow
        flows_enc: List[Tuple] = []
        if recv_flows:
            rcols = receivers.columns(
                ("expected", "unique_received", "complete_ps",
                 "out_of_order"))
            exp_col, uni_col = rcols["expected"], rcols["unique_received"]
            comp_col, ooo_col = rcols["complete_ps"], rcols["out_of_order"]
        for fid in recv_flows:
            ridx = receiver_of_flow[fid]
            b = base_of[fid]
            expected = int(exp_col[ridx])
            unique = int(uni_col[ridx])
            self._sched_of(fid)  # ensure the static facts are cached
            total = self._totals[fid]  # == receiver total_segs (static)
            complete = int(comp_col[ridx])
            ooo = ooo_col[ridx]
            n_arr = recv_counts[fid]
            remaining = total - unique
            # Saturate far-from-complete states: completion can fire in
            # this window only when remaining <= new uniques <= n_arr,
            # so any remainder beyond the window's arrival budget is
            # behaviourally equivalent.
            sat = remaining if remaining <= n_arr else n_arr + 1
            flows_enc.append(
                (fid, expected - b, unique - b, sat,
                 0 if complete < 0 else 1,
                 tuple(sorted(x - b for x in ooo))))
            probe.recv_pre[fid] = flows_enc[-1]

        probe.key = (tuple(entries_enc), tuple(ports_enc), tuple(flows_enc))
        return probe

    def _sched_of(self, fid: int) -> UdpSchedule:
        sched = self._scheds.get(fid)
        if sched is None:
            flow = self.engine.scenario.flows[fid]
            topo = self.engine.scenario.topology
            sched = self._scheds[fid] = UdpSchedule(
                fid, flow.size_bytes, flow.start_ps,
                topo.host_iface(flow.src).rate_bps)
            self._totals[fid] = sched.total_segs
            wire8 = (MSS + HEADER_BYTES) * 8 * PS_PER_S
            rate = sched.nic_rate_bps
            self._pace[fid] = wire8 // rate if wire8 % rate == 0 else None
        return sched

    def _udp_entry_enc(self, fid: int, b: int, start: int,
                       end: int) -> Tuple[Tuple, int]:
        """Rebased ``(emissions, wakeup)`` encoding of one ENTRY_UDP.

        For linear pacing (exact per-segment wire time) the rebased
        schedule is a pure function of the window phase and the capped
        remaining-segment count at fixed L, so it is served from
        ``_udp_enc`` instead of walking the schedule every window.
        """
        sched = self._sched_of(fid)
        per = self._pace[fid]
        total = self._totals[fid]
        if per is None:
            ems, _nxt, wakeup = _udp_emissions(sched, b, end)
            return (tuple((t - start, p) for t, _s, p in ems),
                    -1 if wakeup is None else wakeup - start)
        if b >= total:
            return ((), -1)
        phase = sched.enqueue_time(b) - start
        L = end - start
        n_unb = (L - phase + per - 1) // per if phase < L else 0
        rem = total - b
        # Beyond n_unb + 1 the exact remainder is unobservable: every
        # in-window payload is a full MSS and the wakeup lands at
        # phase + n_unb * per regardless.
        key = (fid, phase, rem if rem <= n_unb else n_unb + 1)
        enc = self._udp_enc.get(key)
        if enc is None:
            ems, _nxt, wakeup = _udp_emissions(sched, b, end)
            enc = self._udp_enc[key] = (
                tuple((t - start, p) for t, _s, p in ems),
                -1 if wakeup is None else wakeup - start)
        return enc

    def _enc_port(self, port, iface_id: int, active_flag: bool,
                  base_of: Dict[int, int],
                  resolve: Optional[Callable[[int], int]],
                  start: int) -> Optional[Tuple]:
        """Canonical rebased encoding of one egress port's mutable state.

        Returns ``None`` when a queued row falls outside the UDP closed
        world, or — in strict mode (``resolve=None``, used by the
        capture diff) — when a row's flow escaped the probe's base map.
        ``free_at`` collapses to ``(0,)`` whenever the line freed at or
        before the window start — the replay clamps service starts to
        the window cursor, so any such value is behaviourally identical.
        ``max_queue_bytes`` is in the key so the delta's post value is
        an exact absolute write.  Deliberately *excluded*: ``avg_bytes``
        (the RED EWMA converges asymptotically, so it never repeats —
        and RED is one of the memo's static disable gates, making the
        column write-only whenever the cache is live) and ``in_service``
        (baseline-only state the windowed path never reads).
        """
        sched = port.sched
        meta = self._port_meta.get(iface_id)
        if meta is None:
            kind = type(sched)
            code = (1 if kind is RoundRobinScheduler
                    else 2 if kind is DeficitRoundRobinScheduler else 0)
            meta = self._port_meta[iface_id] = (
                code, ((),) * len(sched.queues))
        code, empty_rows = meta
        if sched._len == 0:
            rows_tuple = empty_rows
        else:
            udp_flows = self._udp_flows
            heads = sched._heads
            rows_enc = []
            for cls, q in enumerate(sched.queues):
                cls_rows = []
                for r in q[heads[cls]:]:
                    f, ack, seq, size, ce, ece, ts, src, dst = r
                    if ack or f not in udp_flows:
                        return None
                    b = base_of.get(f)
                    if b is None:
                        if resolve is None:
                            return None  # flow escaped the base map
                        b = base_of[f] = resolve(f)
                    cls_rows.append((f, ack, seq - b, size, ce, ece,
                                     ts - start, src, dst))
                rows_enc.append(tuple(cls_rows))
            rows_tuple = tuple(rows_enc)
        if code == 0:
            extras: Tuple = ()
        elif code == 1:
            extras = (sched._next,)
        else:
            extras = (tuple(sched.deficit), sched._current, sched._granted)
        free_at = port.free_at
        free_enc = (1, free_at - start) if free_at > start else (0,)
        return (iface_id, 1 if active_flag else 0, free_enc,
                port.queued_bytes, port.stats.max_queue_bytes,
                extras, rows_tuple)

    def _nic_of(self, fid: int) -> int:
        nic = self._nics.get(fid)
        if nic is None:
            flow = self.engine.scenario.flows[fid]
            topo = self.engine.scenario.topology
            nic = self._nics[fid] = topo.host_iface(flow.src).iface_id
        return nic

    def _route(self, node: int, row: Row) -> int:
        """Predict the ForwardSystem's egress choice (flow-mode ECMP is
        a pure function of static identifiers — the packet-spray gate
        keeps sequence-salted hashing out)."""
        key = (node, row[F_DST], row[F_FLOW])
        iface = self._routes.get(key)
        if iface is None:
            scenario = self.engine.scenario
            port = scenario.fib.resolve_port(
                node, row[F_DST], row[F_FLOW], None)
            iface = self._routes[key] = scenario.topology.iface_id(
                node, port)
        return iface

    # --- capture ----------------------------------------------------------

    def _execute_capture(self, win: int,
                         probe: _Probe) -> Optional[WindowDelta]:
        """Run the window for real and diff its write-set."""
        engine = self.engine
        events = engine.events
        res = engine.results
        pre_sizes = events.bucket_sizes()
        pre_sizes.pop(win, None)
        pre_node_events = dict(res.node_events)
        pre_drops = res.drops
        pre_rtt = len(res.rtt_samples)
        # The stats baseline is only needed by the capture diff, so it
        # is taken here rather than on every (mostly hitting) probe.
        ports = engine.ports
        stats_pre = probe.port_stats_pre
        for iface_id in probe.union_ports:
            s = ports[iface_id].stats
            stats_pre[iface_id] = (s.enqueued, s.dequeued, s.dropped,
                                   s.marked, s.tx_bytes)
        tap = self._tap
        tap.ops = []
        tap.active = True
        try:
            ctx = engine.process_window(win)
        finally:
            tap.active = False
        ops = tap.ops
        tap.ops = []
        return self._diff(probe, ctx, pre_sizes, pre_node_events,
                          pre_drops, pre_rtt, ops)

    def _diff(self, probe: _Probe, ctx, pre_sizes, pre_node_events,
              pre_drops: int, pre_rtt: int, ops) -> Optional[WindowDelta]:
        engine = self.engine
        res = engine.results
        if len(res.rtt_samples) != pre_rtt or engine._carried_staged:
            return None
        union = set(probe.union_ports)
        if not set(ctx.staged) <= union:
            return None  # the port prediction missed a staging target
        base_of = probe.base_of
        start = probe.start

        events = engine.events
        post_sizes = events.bucket_sizes()
        if probe.win in post_sizes:
            return None
        staged_enc: List[Tuple] = []
        for w in sorted(post_sizes):
            n = post_sizes[w]
            pre_n = pre_sizes.get(w, 0)
            if n < pre_n:
                return None
            if n == pre_n:
                continue
            got = events.window_slice(w, pre_n)
            if got is None:
                return None
            off = w - probe.win
            for node, e in zip(*got):
                tag = e[0]
                if tag == ENTRY_UDP:
                    if e[1] not in base_of:
                        return None
                    staged_enc.append((off, node, ("u", e[1])))
                elif tag == ENTRY_ARRIVAL:
                    row = e[3]
                    b = base_of.get(row[F_FLOW])
                    if b is None:
                        return None
                    staged_enc.append(
                        (off, node,
                         ("a", e[1] - start, e[2], _enc_row(row, b, start))))
                else:
                    return None
        for w, n in pre_sizes.items():
            if post_sizes.get(w, 0) < n:
                return None  # a pre-existing bucket shrank

        ports = engine.ports
        active = engine.active_ports
        port_items: List[Tuple] = []
        for iface_id in probe.union_ports:
            port = ports[iface_id]
            # Strict mode: a queued row whose flow escaped the probe's
            # base map cannot be rebased consistently -> uncacheable.
            post_enc = self._enc_port(port, iface_id, iface_id in active,
                                      base_of, None, start)
            if post_enc is None:
                return None
            s = port.stats
            p = probe.port_stats_pre[iface_id]
            port_items.append((iface_id, post_enc,
                               (s.enqueued - p[0], s.dequeued - p[1],
                                s.dropped - p[2], s.marked - p[3],
                                s.tx_bytes - p[4])))

        senders = engine.world.senders
        sender_of_flow = engine.world.sender_of_flow
        sender_items: List[Tuple] = []
        for fid in probe.entry_flows:
            rel = senders.get(sender_of_flow[fid],
                              "udp_next_seq") - base_of[fid]
            if rel:
                sender_items.append((fid, rel))

        receivers = engine.world.receivers
        receiver_of_flow = engine.world.receiver_of_flow
        recv_items: List[Tuple] = []
        completions: List[Tuple] = []
        for fid in probe.recv_flows:
            ridx = receiver_of_flow[fid]
            b = base_of[fid]
            expected = receivers.get(ridx, "expected") - b
            unique = receivers.get(ridx, "unique_received") - b
            ooo = tuple(sorted(
                x - b for x in receivers.get(ridx, "out_of_order")))
            complete = receivers.get(ridx, "complete_ps")
            pre = probe.recv_pre[fid]
            comp_rel = -1
            if pre[4] == 0 and complete >= 0:
                comp_rel = complete - start
                completions.append((fid, comp_rel))
            recv_items.append((fid, expected, unique, ooo, comp_rel))

        tape: List[Tuple] = []
        for op in ops:
            kind = op[0]
            if kind == "fd":
                flow = op[3]
                if flow not in base_of:
                    return None
                tape.append(("fd", op[1] - start, op[2], flow))
            else:
                flow = op[3]
                b = base_of.get(flow)
                if b is None:
                    return None
                rebased = (kind, op[1] - start, op[2], flow, op[4],
                           op[5] - b)
                if kind == "enq":
                    rebased += (op[6],)
                tape.append(rebased)

        counts = (ctx.counts.ack, ctx.counts.send,
                  ctx.counts.forward, ctx.counts.transmit)
        node_incr = tuple(sorted(
            (n, c - pre_node_events.get(n, 0))
            for n, c in res.node_events.items()
            if c != pre_node_events.get(n, 0)))
        return WindowDelta(
            ports=tuple(port_items),
            senders=tuple(sender_items),
            receivers=tuple(recv_items),
            completions=tuple(completions),
            staged=tuple(staged_enc),
            tape=tuple(tape),
            counts=counts,
            node_incr=node_incr,
            drops_incr=res.drops - pre_drops,
        )

    # --- apply ------------------------------------------------------------

    def _apply(self, win: int, probe: _Probe, delta: WindowDelta) -> None:
        """Fast-forward: scatter the delta into the engine state."""
        engine = self.engine
        bus = engine.bus
        telemetry = bus.telemetry
        if telemetry:
            t0 = bus.now()
        start = probe.start
        base_of = probe.base_of
        bus.window_begin(win, start)
        engine._running_window = win
        engine.events.discard_window(win)

        ports = engine.ports
        active = engine.active_ports
        for iface_id, post_enc, stats_incr in delta.ports:
            port = ports[iface_id]
            pre_enc = probe.port_encs[iface_id]
            if post_enc != pre_enc:
                _, act, free_enc, queued, maxq, extras, rows = post_enc
                (p_act, p_free, p_queued, p_maxq, p_extras,
                 p_rows) = pre_enc[1:]
                if free_enc != p_free:
                    port.free_at = start + free_enc[1]
                if queued != p_queued:
                    port.queued_bytes = queued
                if maxq != p_maxq:
                    port.stats.max_queue_bytes = maxq
                sched = port.sched
                if rows != p_rows:
                    queues: List[List[Row]] = []
                    total = 0
                    for cls_rows in rows:
                        lst = [_dec_row(r, base_of, start) for r in cls_rows]
                        total += len(lst)
                        queues.append(lst)
                    sched.queues = queues
                    sched._heads = [0] * len(queues)
                    sched._len = total
                if extras != p_extras:
                    kind = type(sched)
                    if kind is RoundRobinScheduler:
                        sched._next = extras[0]
                    elif kind is DeficitRoundRobinScheduler:
                        sched.deficit = list(extras[0])
                        sched._current = extras[1]
                        sched._granted = extras[2]
                if act != p_act:
                    if act:
                        active.add(iface_id)
                    else:
                        active.discard(iface_id)
            if stats_incr != _NO_STATS:
                s = port.stats
                s.enqueued += stats_incr[0]
                s.dequeued += stats_incr[1]
                s.dropped += stats_incr[2]
                s.marked += stats_incr[3]
                s.tx_bytes += stats_incr[4]

        # Scatter the entity writes through column handles fetched once
        # per apply (``set`` would re-resolve the column every call).
        sender_of_flow = engine.world.sender_of_flow
        if delta.senders:
            next_col = engine.world.senders.column("udp_next_seq")
            for fid, rel in delta.senders:
                next_col[sender_of_flow[fid]] = base_of[fid] + rel

        receivers = engine.world.receivers
        receiver_of_flow = engine.world.receiver_of_flow
        if delta.receivers:
            rcols = receivers.columns(
                ("expected", "unique_received", "out_of_order",
                 "complete_ps"))
            exp_col, uni_col = rcols["expected"], rcols["unique_received"]
            ooo_col, comp_col = rcols["out_of_order"], rcols["complete_ps"]
            for fid, expected, unique, ooo, comp_rel in delta.receivers:
                pre = probe.recv_pre[fid]
                ridx = receiver_of_flow[fid]
                b = base_of[fid]
                if expected != pre[1]:
                    exp_col[ridx] = b + expected
                if unique != pre[2]:
                    uni_col[ridx] = b + unique
                if ooo != pre[5]:
                    ooo_col[ridx] = {b + x for x in ooo}
                if comp_rel >= 0:
                    comp_col[ridx] = start + comp_rel

        # Staged future events: append straight to the buckets (the
        # per-entry ``insert`` call chain is measurable at packet rate).
        # The occupancy hook is still resolved through the events module
        # so the injectable stale-index bug reaches this path too.
        # Staged future events: append straight to the buckets (the
        # per-entry ``insert`` call chain is measurable at packet rate),
        # driven by a per-cache-entry prepared plan — ENTRY_UDP payloads
        # prebuilt (they are window-invariant), arrival fields flattened,
        # entries grouped by target window with in-bucket order kept.
        # The occupancy hook is still resolved through the events module
        # so the injectable stale-index bug reaches this path too.
        events = engine.events
        buckets = events._buckets
        register = events_mod.register_window
        default_hook = register is events_mod._register_window
        queued = events._queued
        plan = self._plans.get(probe.key)
        if plan is None:
            groups: Dict[int, List] = {}
            for off, node, enc in delta.staged:
                if enc[0] == "u":
                    item = (node, (ENTRY_UDP, enc[1]), None)
                else:
                    item = (node, None, (enc[1], enc[2]) + enc[3])
                groups.setdefault(off, []).append(item)
            plan = self._plans[probe.key] = tuple(
                (off, tuple(items)) for off, items in groups.items())
        for off, items in plan:
            w = win + off
            bucket = buckets.get(w)
            if bucket is None:
                bucket = buckets[w] = _Bucket()
            nodes_app = bucket.nodes.append
            pays_app = bucket.payloads.append
            for node, pay, fl in items:
                nodes_app(node)
                if pay is not None:
                    pays_app(pay)
                else:
                    rt, p, f, ack, sq, sz, ce, ece, ts, s, d = fl
                    pays_app((ENTRY_ARRIVAL, start + rt, p,
                              (f, ack, sq + base_of[f], sz, ce, ece,
                               ts + start, s, d)))
            if not default_hook or w not in queued:
                register(events, w)

        # The tape exists solely to re-publish the window's trace ops.
        # At trace level 0 every known subscriber shape (the engine's
        # TraceRecorder, the memo's own inactive capture tap) drops each
        # op on its level guard, so the whole replay can be skipped;
        # an unknown subscriber shape forces the replay to stay safe.
        if bus.trace_level > 0 or any(
                not isinstance(s, (TraceRecorder, _TraceTap))
                for s in bus._trace_subs):
            tape = delta.tape
        else:
            tape = ()
        bus_enq, bus_deq = bus.enq, bus.deq
        bus_deliver, bus_drop = bus.deliver, bus.drop
        for op in tape:
            kind = op[0]
            if kind == "fd":
                bus.flow_done(start + op[1], op[2], op[3])
                continue
            t = start + op[1]
            seq = base_of[op[3]] + op[5]
            if kind == "enq":
                bus_enq(t, op[2], op[3], op[4], seq, op[6])
            elif kind == "deq":
                bus_deq(t, op[2], op[3], op[4], seq)
            elif kind == "del":
                bus_deliver(t, op[2], op[3], op[4], seq)
            else:
                bus_drop(t, op[2], op[3], op[4], seq)

        res = engine.results
        for fid, rel in delta.completions:
            res.flows[fid].complete_ps = start + rel
        a, s_, f, tr = delta.counts
        if a or s_ or f or tr:
            ev = res.events
            ev.ack += a
            ev.send += s_
            ev.forward += f
            ev.transmit += tr
            res.window_breakdown.append((start, a, s_, f, tr))
        res.end_time_ps = probe.end
        for node, d in delta.node_incr:
            res.node_events[node] = res.node_events.get(node, 0) + d
        res.drops += delta.drops_incr

        if telemetry:
            from types import SimpleNamespace
            engine._sample_window_metrics(
                SimpleNamespace(start=start, end=probe.end))
            t1 = bus.now()
            from .telemetry import MEMO_APPLY_MS_BUCKETS
            bus.metrics.record("memo.apply_ms", (t1 - t0) * 1e3,
                               MEMO_APPLY_MS_BUCKETS)
            bus.span_add("window", t0, t1, "window",
                         {"index": win, "start_ps": start, "memo": True})


def _udp_emissions(sched: UdpSchedule, seq: int, window_end: int):
    """The UDP send write-set as data (shared with ``systems.send``)."""
    from .systems.send import udp_emission_schedule
    return udp_emission_schedule(sched, seq, window_end)


