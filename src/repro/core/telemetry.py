"""Metric primitives of the telemetry layer: counters, gauges, histograms.

The :class:`~repro.core.instrument.InstrumentationBus` always carried
named counters; this module adds the two shapes a distributed run needs
on top of them and packages all three behind one
:class:`MetricsRegistry` with a ``snapshot()``/``merge()`` protocol:

* **gauges** — last-written values ("agent 1 waited 3.2 ms at the
  barrier this run").  On a cluster merge gauges are *prefixed* with the
  child tag so per-agent values stay distinguishable — barrier-wait and
  busy-time gauges are what :func:`repro.partition.refit_cluster_spec`
  consumes to close the measure → repartition loop.
* **fixed-bucket histograms** — distributions whose per-sample cost must
  stay O(log buckets) with zero allocation (queue depth at window end,
  per-window link utilization, flow completion times).  Bucket
  boundaries are fixed at creation, so two machines' histograms of the
  same metric merge by adding counts — the snapshot of a child agent
  rides the existing transport report path and folds into the cluster
  registry without resampling.

Everything a snapshot contains is plain ``dict``/``list``/numbers, so it
pickles across a ProcessTransport pipe and serializes to the JSON/CSV
exporters (:mod:`repro.metrics.timeline`) unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Histogram", "MetricsRegistry",
    "QUEUE_DEPTH_BUCKETS", "UTILIZATION_BUCKETS", "FCT_US_BUCKETS",
    "WAIT_MS_BUCKETS", "BATCH_SIZE_BUCKETS", "MEMO_APPLY_MS_BUCKETS",
]

#: Queue depth at window end, bytes (powers of four up to 64 MB).
QUEUE_DEPTH_BUCKETS: Tuple[float, ...] = tuple(
    4 ** k for k in range(5, 14)
)
#: Per-link utilization of one window, fraction of line rate.
UTILIZATION_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0,
)
#: Flow completion times, microseconds (log-ish sweep).
FCT_US_BUCKETS: Tuple[float, ...] = (
    10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000, 200000,
)
#: Barrier-wait / idle times, milliseconds.
WAIT_MS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000,
)
#: Windows executed by one batched ``advance()`` call (powers of two up
#: to the largest REPRO_BATCH_WINDOWS anyone should reasonably set).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256,
)
#: Wall-clock of one memoized-window delta apply, milliseconds — the
#: fast-forward path's cost; compare against the ``window`` spans of
#: executed windows to see the speedup (docs/MEMOIZATION.md).
MEMO_APPLY_MS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10,
)


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` holds samples ``<=
    buckets[i]`` (and above the previous bound); the final slot is the
    overflow bucket.  ``record`` is branch-free apart from one bisect."""

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Sequence[float]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def record(self, value: float, n: int = 1) -> None:
        self.counts[bisect_left(self.buckets, value)] += n
        self.count += n
        self.sum += value * n

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket bound holding the q-quantile (0 <= q <= 1);
        overflow samples report the top bound."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return (self.buckets[i] if i < len(self.buckets)
                        else self.buckets[-1])
        return self.buckets[-1]

    def cumulative(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs ending at ``+Inf``.

        The native layout is per-bucket (``counts[i]`` alone holds the
        samples in bucket *i*); OpenMetrics exposition requires each
        bucket to include everything below it and a final ``+Inf``
        bucket equal to the total count — this is that view
        (:func:`repro.metrics.live.openmetrics_text` emits it).
        """
        out: List[Tuple[float, int]] = []
        cum = 0
        for bound, n in zip(self.buckets, self.counts):
            cum += n
            out.append((bound, cum))
        out.append((float("inf"), self.count))
        return out

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        if tuple(snap["buckets"]) != self.buckets:
            raise ValueError(
                f"histogram bucket mismatch: {snap['buckets']} vs "
                f"{list(self.buckets)}"
            )
        for i, c in enumerate(snap["counts"]):
            self.counts[i] += c
        self.count += snap["count"]
        self.sum += snap["sum"]


class MetricsRegistry:
    """Named counters, gauges, and histograms with snapshot/merge."""

    __slots__ = ("counters", "gauges", "_hists")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._hists: Dict[str, Histogram] = {}

    # --- writers ----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Create-or-get; ``buckets`` is required on first use."""
        hist = self._hists.get(name)
        if hist is None:
            if buckets is None:
                raise ValueError(
                    f"histogram {name!r} does not exist and no buckets given"
                )
            hist = self._hists[name] = Histogram(buckets)
        return hist

    def record(self, name: str, value: float,
               buckets: Optional[Sequence[float]] = None) -> None:
        self.histogram(name, buckets).record(value)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return self._hists

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self._hists)

    # --- snapshot / merge -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view: picklable across transports, JSON-ready."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {n: h.snapshot() for n, h in self._hists.items()},
        }

    def merge(self, snap: Dict[str, Any], prefix: str = "") -> None:
        """Fold a snapshot in: counters and histograms are *summed*
        under their own names (cluster-wide totals/distributions);
        gauges are prefixed (per-agent values must stay per-agent)."""
        for name, n in snap.get("counters", {}).items():
            self.count(name, n)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(prefix + name, value)
        for name, hsnap in snap.get("histograms", {}).items():
            self.histogram(name, hsnap["buckets"]).merge_snapshot(hsnap)
