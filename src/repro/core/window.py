"""Per-window context shared by the four systems.

A lookahead window's inputs are fully determined before the window's
systems run (the LCC argument of §3.3): all packet deliveries, flow
starts and timer wakeups with timestamps inside the window were produced
by earlier windows.  :class:`WindowContext` is that input slice plus the
staging area the systems fill for the TransmitSystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..metrics.results import EventCounts
from ..protocols.packet import Row

# Calendar entry tags.
ENTRY_ARRIVAL = 0     # (ENTRY_ARRIVAL, t, prio, row): delivery at this node
ENTRY_FLOW_START = 1  # (ENTRY_FLOW_START, t, flow_id)
ENTRY_TIMER = 2       # (ENTRY_TIMER, flow_id): visit flow, check deadline
ENTRY_UDP = 3         # (ENTRY_UDP, flow_id): visit flow, emit paced segs

Entry = Tuple  # heterogeneous small tuples, see tags above
Staged = Tuple[int, int, Row]  # (t, prio, row) awaiting an egress queue


@dataclass
class WindowContext:
    """One lookahead batch."""

    index: int
    start: int
    end: int
    #: node -> calendar entries landing in this window.
    node_entries: Dict[int, List[Entry]]
    #: egress iface id -> arrivals staged by ACK/Send/Forward systems.
    staged: Dict[int, List[Staged]] = field(default_factory=dict)
    #: raw ``(nodes, payloads)`` columns of this window — set instead of
    #: ``node_entries`` on the fused vectorized path, whose single plan
    #: traversal consumes the insert-ordered columns without grouping.
    columns: Optional[Tuple[List[int], List[Entry]]] = None
    #: events processed per system in this window (Fig. 13 breakdown).
    counts: EventCounts = field(default_factory=EventCounts)

    def stage(self, iface_id: int, t: int, prio: int, row: Row) -> None:
        self.staged.setdefault(iface_id, []).append((t, prio, row))

    def stage_batch(self, ifaces, ts, prios, rows) -> None:
        """Bulk :meth:`stage`: parallel column slices, one staged arrival
        per index.

        Kernels hand back whole columns instead of issuing row-at-a-time
        appends; entries are grouped per egress iface in column order,
        so the result is exactly the equivalent sequence of ``stage``
        calls.  ``ifaces``/``ts``/``prios``/``rows`` may be any
        equal-length iterables (``prios`` is commonly
        ``itertools.repeat(PRIO_ARRIVAL)``); iteration stops at the
        shortest, matching ``zip``.
        """
        staged = self.staged
        get = staged.get
        for iface_id, t, prio, row in zip(ifaces, ts, prios, rows):
            lst = get(iface_id)
            if lst is None:
                lst = staged[iface_id] = []
            lst.append((t, prio, row))
