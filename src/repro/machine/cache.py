"""Set-associative cache simulator with a stream prefetcher.

Stands in for the hardware L3 + PMU of the paper's evaluation (Fig. 2a,
Fig. 12b): cache behaviour is a pure function of the memory-access
stream and the cache geometry, so we measure the miss rate of each
engine by replaying the address streams its data layout actually
generates (see ``repro.machine.access``).

The prefetcher matters: streaming over columnar arrays misses once per
line *without* prefetch, but every modern LLC hides sequential streams
almost completely — which is why the paper's DOD engine reports < 0.15%
L3 miss rate.  We model the standard next-N-line stream prefetcher:
an access that continues a detected ascending stream pulls the next
``prefetch_degree`` lines in.  Scattered OOD object accesses defeat it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the modeled last-level cache."""

    size_bytes: int = 32 * 1024 * 1024   # Xeon-class L3
    line_bytes: int = 64
    ways: int = 16
    prefetch_degree: int = 4
    stream_table: int = 32               # concurrently tracked streams

    def __post_init__(self) -> None:
        lines = self.size_bytes // self.line_bytes
        if lines % self.ways:
            raise ConfigError("cache lines must divide evenly into ways")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.ways


@dataclass
class CacheStats:
    """Outcome of a replay."""

    accesses: int = 0
    misses: int = 0
    prefetched_hits: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def miss_rate_percent(self) -> float:
        return 100.0 * self.miss_rate


class CacheSim:
    """LRU set-associative cache + next-line stream prefetcher."""

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config
        self._sets: List[Dict[int, int]] = [dict() for _ in range(config.num_sets)]
        self._tick = 0
        self._streams: Dict[int, int] = {}  # last line -> stream hits
        self._prefetched: set = set()
        self.stats = CacheStats()

    # --- internals ----------------------------------------------------------

    def _touch_line(self, line: int, is_prefetch: bool = False) -> bool:
        """Install/refresh a line; returns True on hit."""
        cfg = self.config
        s = self._sets[line % cfg.num_sets]
        self._tick += 1
        if line in s:
            s[line] = self._tick
            return True
        if len(s) >= cfg.ways:
            victim = min(s, key=s.get)
            del s[victim]
            self._prefetched.discard(victim)
        s[line] = self._tick
        if is_prefetch:
            self._prefetched.add(line)
        return False

    def _prefetch_check(self, line: int) -> None:
        """Detect ascending streams and pull lines ahead."""
        cfg = self.config
        streams = self._streams
        if line - 1 in streams or line in streams:
            # Continuation of a stream: move the tracker forward.
            hits = streams.pop(line - 1, streams.pop(line, 0)) + 1
            streams[line] = hits
            if hits >= 2:
                for d in range(1, cfg.prefetch_degree + 1):
                    self._touch_line(line + d, is_prefetch=True)
        else:
            streams[line] = 0
        if len(streams) > cfg.stream_table:
            # Evict the oldest tracked stream (dict preserves insertion).
            streams.pop(next(iter(streams)))

    # --- public API -------------------------------------------------------------

    def access(self, addr: int) -> bool:
        """One load/store; returns True on hit."""
        line = addr // self.config.line_bytes
        hit = self._touch_line(line)
        self.stats.accesses += 1
        if hit:
            if line in self._prefetched:
                self._prefetched.discard(line)
                self.stats.prefetched_hits += 1
        else:
            self.stats.misses += 1
        self._prefetch_check(line)
        return hit

    def run(self, addrs: Iterable[int], warmup: float = 0.0) -> CacheStats:
        """Replay a stream and return the accumulated stats.

        ``warmup`` discards the first fraction of accesses from the
        statistics (the cache state still evolves).  Sampled replays of
        long-running simulations use this to measure the steady state
        rather than compulsory cold misses, which real runs amortize
        over orders of magnitude more accesses than we replay.
        """
        addrs = list(addrs)
        cut = int(len(addrs) * warmup)
        for addr in addrs[:cut]:
            self.access(addr)
        self.stats = CacheStats()
        for addr in addrs[cut:]:
            self.access(addr)
        return self.stats


def measure_miss_rate(addrs: Iterable[int],
                      config: CacheConfig = CacheConfig(),
                      warmup: float = 0.0) -> CacheStats:
    """One-shot replay with a fresh cache."""
    return CacheSim(config).run(addrs, warmup)
