"""CPU-utilization model (Fig. 12c, Fig. 13).

Utilization is reported top-style: 100% = one busy core, a 32-core
server tops out at 3200%.  A core counts as busy whenever it holds a
task — including cycles stalled on DRAM — which is why DONS can report
2634% utilization while its *throughput* is bandwidth-capped at ~10
concurrent streams (see ``calibration.DOD_MEM_PARALLEL_STREAMS``): the
two observations are consistent, and this module models the busy-core
view while ``cost.dons_time_s`` models the throughput view.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from . import calibration as cal
from .calibration import MachineSpec, XEON_SERVER
from .cost import per_event_ns


def ood_utilization_percent(processes: int,
                            lp_events: Sequence[int]) -> float:
    """Multi-process baseline: each LP pins a core; the slowest LP
    defines the span and the others idle once their window is done."""
    if not lp_events or max(lp_events) == 0:
        return 100.0 * max(1, processes)
    span = max(lp_events)
    busy = sum(lp_events) / span
    return 100.0 * busy


def _window_spans(
    window_breakdown: Sequence[Tuple[int, int, int, int, int]],
    cmr_percent: float,
    machine: MachineSpec,
    cores: int,
):
    """Yield (window_t_ps, system, n_items, span_ns, busy_cores)."""
    streams = max(1, min(cores, cal.DOD_MEM_PARALLEL_STREAMS))
    c_ev = per_event_ns(cmr_percent, machine)
    names = ("ack", "send", "forward", "transmit")
    for entry in window_breakdown:
        for name, n in zip(names, entry[1:5]):
            if n <= 0:
                continue
            span = math.ceil(n / streams) * c_ev + cal.DOD_BARRIER_NS
            busy = min(float(cores), float(n))
            yield entry[0], name, n, span, busy


def dons_utilization_percent(
    window_breakdown: Sequence[Tuple[int, int, int, int, int]],
    cmr_percent: float,
    machine: MachineSpec = XEON_SERVER,
    workers: int = None,
) -> float:
    """Span-weighted busy-core average (Fig. 12c)."""
    cores = workers if workers is not None else machine.cores
    total_span = 0.0
    weighted = 0.0
    for _t, _name, _n, span, busy in _window_spans(
            window_breakdown, cmr_percent, machine, cores):
        total_span += span
        weighted += busy * span
    if total_span == 0.0:
        return 0.0
    return 100.0 * weighted / total_span


def dons_system_timeline(
    window_breakdown: Sequence[Tuple[int, int, int, int, int]],
    cmr_percent: float,
    machine: MachineSpec = XEON_SERVER,
    workers: int = None,
) -> List[Dict[str, float]]:
    """Fig. 13: per window, the busy-core count of each system."""
    cores = workers if workers is not None else machine.cores
    rows: Dict[int, Dict[str, float]] = {}
    for t, name, _n, _span, busy in _window_spans(
            window_breakdown, cmr_percent, machine, cores):
        row = rows.setdefault(t, {"t_ps": float(t), "ack": 0.0,
                                  "send": 0.0, "forward": 0.0,
                                  "transmit": 0.0})
        row[name] = busy
    return [rows[t] for t in sorted(rows)]
