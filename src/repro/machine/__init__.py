"""The machine model: the documented substitution for the paper's
hardware (DESIGN.md).  Cache simulator + per-architecture access models,
memory accounting, and the calibrated time-cost model."""

from .cache import CacheConfig, CacheSim, CacheStats, measure_miss_rate
from .access import (
    DodAccessModel, LayoutParams, OodAccessModel,
    OP_FORWARD, OP_HOST_RX, OP_SEND, OP_SERVICE, OP_WINDOW,
)
from .calibration import MACBOOK_M1, MachineSpec, XEON_SERVER
from .memory import (
    StructuralCounts, dons_memory_bytes, max_fattree, memory_by_simulator,
    ns3_memory_bytes, omnet_memory_bytes, ood_state_bytes,
)
from .cost import (
    DonsTimeBreakdown, apa_time_s, cluster_time_s, dons_time_s,
    eq1_machine_time_s, format_duration, multiprocess_time_s,
    omnet_cluster_time_s, per_event_ns, sequential_time_s,
)
from .cpu import (
    dons_system_timeline, dons_utilization_percent, ood_utilization_percent,
)

__all__ = [
    "CacheConfig", "CacheSim", "CacheStats", "measure_miss_rate",
    "DodAccessModel", "LayoutParams", "OodAccessModel",
    "OP_FORWARD", "OP_HOST_RX", "OP_SEND", "OP_SERVICE", "OP_WINDOW",
    "MACBOOK_M1", "MachineSpec", "XEON_SERVER",
    "StructuralCounts", "dons_memory_bytes", "max_fattree",
    "memory_by_simulator", "ns3_memory_bytes", "omnet_memory_bytes",
    "ood_state_bytes",
    "DonsTimeBreakdown", "apa_time_s", "cluster_time_s", "dons_time_s",
    "eq1_machine_time_s", "format_duration", "multiprocess_time_s",
    "omnet_cluster_time_s", "per_event_ns", "sequential_time_s",
    "dons_system_timeline", "dons_utilization_percent",
    "ood_utilization_percent",
]
