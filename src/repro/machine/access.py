"""Memory-access models: how each engine's data layout touches memory.

Both engines publish one op per processed operation, in actual
processing order, on their instrumentation bus; the recorders below
subscribe via ``engine.bus.subscribe_ops(recorder)`` and are called as

    recorder(op_code, location, packet_uid)

The recorders here turn those operation streams into *address* streams
using each architecture's layout model, and the cache simulator replays
the addresses.  The OOD-vs-DOD miss-rate gap of Fig. 2a / Fig. 12b then
*emerges* from two real differences, not from hardcoded numbers:

* **Layout** — the OOD model allocates one multi-line heap object per
  packet (reused through a free list, so reuse order is scattered
  relative to processing order) and spreads per-node FIB tables over a
  large region; the DOD model maps the same operations onto compact
  per-field columns and per-window buffers swept sequentially.
* **Order** — the OOD engine interleaves nodes event by event; the DOD
  engine processes one behavioural aspect of *all* devices per window,
  node-batched, so table and column lines are reused while hot.

Op codes are shared with ``repro.des.simulator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .cache import CacheConfig, CacheSim, CacheStats
from ..rng import ecmp_hash

# Op codes (kept in sync with repro.des.simulator).
OP_SEND = 0
OP_FORWARD = 1
OP_SERVICE = 2
OP_HOST_RX = 3
OP_WINDOW = 9  # DOD engine only: a new lookahead window begins

_LINE = 64


@dataclass(frozen=True)
class LayoutParams:
    """Sizes of the modeled data structures (bytes)."""

    # --- OOD heap ---
    packet_obj_bytes: int = 192        # ns-3 Packet + tags + metadata
    payload_buf_bytes: int = 1536      # the byte buffer behind a Packet
    payload_lines_touched: int = 4     # lines copied per buffer handling
    event_obj_bytes: int = 96          # one heap node per scheduled event
    heap_spread: int = 4               # interleaved unrelated allocations
    conn_obj_bytes: int = 512          # socket/TCB object per flow
    port_obj_bytes: int = 384          # NetDevice + queue object
    fib_entry_bytes: int = 64          # per-destination routing entry
    # --- DOD columns ---
    column_item_bytes: int = 8
    buffer_row_bytes: int = 72         # 9 packet fields
    fib_nexthop_bytes: int = 4         # dense next-hop array


class OodAccessModel:
    """Op-stream probe for the OOD baseline: scattered heap objects."""

    def __init__(
        self,
        num_nodes: int,
        num_ifaces: int,
        num_hosts: int,
        params: LayoutParams = LayoutParams(),
        max_addresses: int = 400_000,
    ) -> None:
        self.p = params
        self.max_addresses = max_addresses
        self.addresses: List[int] = []
        # Region bases: FIB tables first (the big footprint), then objects.
        self._fib_base = 0
        self._fib_node_stride = num_hosts * params.fib_entry_bytes
        fib_end = self._fib_base + num_nodes * self._fib_node_stride
        self._port_base = fib_end
        port_end = self._port_base + num_ifaces * params.port_obj_bytes
        self._conn_base = port_end
        self._heap_base = port_end + (1 << 28)  # connection region headroom
        self._bump = self._heap_base
        self._free: List[int] = []
        self._addr_of_uid = {}
        # Payload byte buffers live in their own arena (ns-3 Buffer pool);
        # event objects churn in a third one.
        self._buf_bump = self._heap_base + (1 << 30)
        self._buf_free: List[int] = []
        self._buf_of_uid = {}
        self._ev_bump = self._heap_base + (1 << 31)
        self._ev_free: List[int] = []
        self._ev_clock = 0
        self._num_hosts = max(1, num_hosts)

    # --- allocator ---------------------------------------------------------

    def _alloc(self, uid: int) -> int:
        if self._free:
            addr = self._free.pop()
        else:
            addr = self._bump
            # Interleaved allocations from other subsystems fragment the
            # heap: consecutive packets are not adjacent.
            self._bump += self.p.packet_obj_bytes * self.p.heap_spread
        self._addr_of_uid[uid] = addr
        return addr

    def _packet_addr(self, uid: int) -> int:
        addr = self._addr_of_uid.get(uid)
        if addr is None:
            addr = self._alloc(uid)
        return addr

    def _buffer_addr(self, uid: int) -> int:
        """Payload byte-buffer of a packet (allocated on first touch)."""
        addr = self._buf_of_uid.get(uid)
        if addr is None:
            if self._buf_free:
                addr = self._buf_free.pop()
            else:
                addr = self._buf_bump
                self._buf_bump += self.p.payload_buf_bytes * 2
            self._buf_of_uid[uid] = addr
        return addr

    def _touch_payload(self, uid: int) -> None:
        base = self._buffer_addr(uid)
        self._emit(*(base + 64 * i
                     for i in range(self.p.payload_lines_touched)))

    def _touch_event_node(self) -> None:
        """Every processed op popped (and a successor pushed) one event
        object from the scheduler heap — allocator churn ns-3 pays and a
        batch engine does not."""
        if self._ev_free:
            addr = self._ev_free.pop()
        else:
            addr = self._ev_bump
            self._ev_bump += self.p.event_obj_bytes * self.p.heap_spread
        self._emit(addr)
        # Events free quickly but out of order; recycle with a lag.
        self._ev_clock += 1
        if self._ev_clock % 3:
            self._ev_free.append(addr)

    def _emit(self, *addrs: int) -> None:
        if len(self.addresses) < self.max_addresses:
            self.addresses.extend(addrs)

    # --- the hook -------------------------------------------------------------

    def __call__(self, op: int, location: int, uid: int) -> None:
        p = self.p
        self._touch_event_node()
        if op == OP_SEND:
            conn = self._conn_base + (uid >> 25) * p.conn_obj_bytes
            pkt = self._alloc(uid)
            # touch the connection state and initialize two packet lines
            self._emit(conn, conn + 64, pkt, pkt + 64, pkt + 128)
            self._touch_payload(uid)  # copy application bytes in
        elif op == OP_FORWARD:
            pkt = self._packet_addr(uid)
            # A flow's destination is fixed: its FIB slot at a node is
            # stable across all its packets.
            dest_slot = ecmp_hash(uid >> 25, location) % self._num_hosts
            fib = (self._fib_base + location * self._fib_node_stride
                   + dest_slot * p.fib_entry_bytes)
            self._emit(pkt, pkt + 64, fib)
        elif op == OP_SERVICE:
            pkt = self._packet_addr(uid)
            port = self._port_base + location * p.port_obj_bytes
            self._emit(port, port + 64, pkt, pkt + 128)
            self._touch_payload(uid)  # serialize the byte buffer out
        elif op == OP_HOST_RX:
            pkt = self._packet_addr(uid)
            conn = self._conn_base + (uid >> 25) * p.conn_obj_bytes
            self._emit(pkt, pkt + 64, pkt + 128, conn)
            # Delivery frees the packet object; the slot is reused later,
            # out of order with respect to processing (heap scatter).
            addr = self._addr_of_uid.pop(uid, None)
            if addr is not None:
                self._free.append(addr)
            buf = self._buf_of_uid.pop(uid, None)
            if buf is not None:
                self._buf_free.append(buf)

    @property
    def saturated(self) -> bool:
        return len(self.addresses) >= self.max_addresses

    def measure(self, config: CacheConfig = CacheConfig(),
                warmup: float = 0.3) -> CacheStats:
        """Steady-state miss rate of the recorded stream."""
        return CacheSim(config).run(self.addresses, warmup)


class DodAccessModel:
    """Op-stream probe for the DOD engine: compact columns, sequential sweeps."""

    #: Columns touched per op (field loads/stores on the hot path).
    SEND_COLS = 6
    RECV_COLS = 4

    def __init__(
        self,
        num_nodes: int,
        num_ifaces: int,
        num_hosts: int,
        num_flows: int,
        params: LayoutParams = LayoutParams(),
        max_addresses: int = 400_000,
    ) -> None:
        self.p = params
        self.max_addresses = max_addresses
        self.addresses: List[int] = []
        self._num_hosts = max(1, num_hosts)
        item = params.column_item_bytes
        # Sender component columns, receiver columns, then the dense FIB,
        # then per-window packet buffers.
        self._send_cols = [i * (num_flows * item + _LINE) for i in range(self.SEND_COLS)]
        base = self._send_cols[-1] + num_flows * item + _LINE
        self._recv_cols = [base + i * (num_flows * item + _LINE)
                           for i in range(self.RECV_COLS)]
        base = self._recv_cols[-1] + num_flows * item + _LINE
        self._fib_base = base
        self._fib_node_stride = num_hosts * params.fib_nexthop_bytes
        base += num_nodes * self._fib_node_stride
        self._buffer_base = base
        self._buffer_cursor = base

    def _emit(self, *addrs: int) -> None:
        if len(self.addresses) < self.max_addresses:
            self.addresses.extend(addrs)

    def _buffer_row(self) -> int:
        """Next slot of the current window's packet buffer (sequential)."""
        addr = self._buffer_cursor
        self._buffer_cursor += self.p.buffer_row_bytes
        return addr

    def __call__(self, op: int, location: int, uid: int) -> None:
        p = self.p
        if op == OP_WINDOW:
            # New window: buffers are recycled from the top (arena reset),
            # which is what keeps the working set small.
            self._buffer_cursor = self._buffer_base
            return
        flow = uid >> 25
        if op == OP_SEND:
            item = p.column_item_bytes
            self._emit(*(base + flow * item for base in self._send_cols))
            row = self._buffer_row()
            self._emit(row, row + 64)
        elif op == OP_FORWARD:
            dest_slot = ecmp_hash(flow, location) % self._num_hosts
            fib = (self._fib_base + location * self._fib_node_stride
                   + dest_slot * p.fib_nexthop_bytes)
            row = self._buffer_row()
            self._emit(row, row + 64, fib)
        elif op == OP_SERVICE:
            row = self._buffer_row()
            self._emit(row, row + 64)
        elif op == OP_HOST_RX:
            item = p.column_item_bytes
            self._emit(*(base + flow * item for base in self._recv_cols))

    @property
    def saturated(self) -> bool:
        return len(self.addresses) >= self.max_addresses

    def measure(self, config: CacheConfig = CacheConfig(),
                warmup: float = 0.3) -> CacheStats:
        """Steady-state miss rate of the recorded stream."""
        return CacheSim(config).run(self.addresses, warmup)
