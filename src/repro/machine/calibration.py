"""Calibration constants of the machine model.

Per DESIGN.md, these few physical constants are calibrated once against
absolute anchors the paper reports, then held fixed across *every*
experiment — all relative results (who wins, by what factor, where
crossovers fall) come from measured event counts, measured load balance
and the cache model, not from per-experiment tuning.

Anchors used:

* Fig. 2b — ns-3, FatTree16, 32 processes: 132.5 GB (~4.1 GB per LP).
* §6.1 — ns-3/OMNeT++ max out a 128 GB server at FatTree32;
  DONS uses 12.6 GB for FatTree32 and fits FatTree48.
* §6.1 — OMNeT++ simulates FatTree16 x 1000 ms in ~7.8 h on an M1;
  DONS takes 22 min (21x).
* Table 1 — OMNeT++, FatTree64, 4 machines: 9 d 14 h; DQN 2 h 56 m.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GIB, MIB


# --- memory model ---------------------------------------------------------
# OOD family (ns-3 / OMNeT++): solving the two FatTree anchors
#   1.376e6 * entry + 6144 * iface = 4.1 GB     (FatTree16 per LP)
#   77.6e6  * entry + 49152 * iface ~ 126 GB    (FatTree32, 128 GB server)
# gives entry ~ 1.4 KB and iface ~ 353 KB (NetDevice + default queues).
OOD_FIB_ENTRY_BYTES = 1_400
OOD_IFACE_BYTES = 353 * 1024
OOD_NODE_BYTES = 4 * 1024
OOD_BASE_BYTES = 64 * MIB

# DOD family: dense arrays. 16 B per FIB entry (next-hop sets), per-port
# buffer arenas, plus the component tables measured directly from the ECS.
DOD_FIB_ENTRY_BYTES = 16
DOD_IFACE_BUFFER_BYTES = 256 * 1024
DOD_NODE_BYTES = 256
DOD_BASE_BYTES = 256 * MIB

# --- time-cost model --------------------------------------------------------
# Base per-event cost on one core with a perfect cache, and the penalty
# per percentage point of L3 miss rate.  With ns-3's measured ~4.5% CMR
# this lands at ~1.8 us/event (0.55 M events/s, OMNeT++/ns-3 class), and
# with DONS's ~0.1% CMR at ~0.62 us/event — reproducing the single-core
# gap the paper attributes to data layout.
BASE_EVENT_NS = 600.0
CMR_PENALTY_PER_PERCENT = 0.45

# Thread-pool overheads of the DOD engine: per-window cost of one
# system barrier, and per-task dispatch cost.
DOD_BARRIER_NS = 8_000.0
DOD_TASK_DISPATCH_NS = 700.0

# A streaming columnar engine is DRAM-bandwidth-bound before it is
# core-bound: beyond ~this many concurrent sweeps the memory system
# saturates and extra cores only busy-wait (they still report as
# utilized to `top`, which reconciles the paper's 22x speedup with its
# 2634% CPU utilization on 32 cores).
DOD_MEM_PARALLEL_STREAMS = 10

# Per-lookahead-window synchronization of MPI-parallel OOD simulators:
# a null-message exchange + barrier across processes costs on the order
# of an inter-process RTT.  With 1 us lookahead windows this is what
# makes badly-scaled parallel ns-3 slower than serial (Fig. 3, Fig. 11).
MPI_WINDOW_SYNC_NS = 100_000.0

# Multi-LP (MPI-style) baseline: cost per synchronization round and per
# null/data message (marshalling + kernel crossing), on top of event
# processing.  These are what make badly-partitioned parallel ns-3
# slower than serial (Fig. 3).
LP_SYNC_ROUND_NS = 25_000.0
LP_MESSAGE_NS = 2_500.0

# Cluster (distributed DONS / OMNeT++): Eq. (1) parameters.
CLUSTER_LINK_BPS = 40_000_000_000        # 40 Gbps fabric (paper setup)
CLUSTER_RPC_NS = 15_000.0                # per-batch RPC overhead
CLUSTER_BARRIER_NS = 40_000.0            # FINISH-signal round per window

# DQN-style APA throughput: packets scored per second per GPU.  Solved
# from Table 1 (FatTree64 full-mesh at 0.3 load = 1.64e11 packets per
# simulated second; 4 GPUs finish in 2 h 56 m).
APA_PACKETS_PER_GPU_PER_S = 3.9e6
APA_SETUP_S = 120.0

# Cluster parallel efficiencies, calibrated against Table 1.
# OMNeT++: the two FatTree64 anchors (9d14h on 4 machines, 7d19h on 8)
# imply effective speedups of ~4.4 and ~5.3 over one core — per-core
# efficiency *falls* with cluster size as conservative-sync stalls grow:
#     eff(m) = OMNET_CLUSTER_EFF_BASE / m ** OMNET_CLUSTER_EFF_DECAY
# Distributed DONS runs near its single-machine streaming limit.
OMNET_CLUSTER_EFF_BASE = 0.09
OMNET_CLUSTER_EFF_DECAY = 0.65
DONS_CLUSTER_EFFICIENCY = 0.85


def omnet_cluster_efficiency(machines: int) -> float:
    """Per-core efficiency of distributed OMNeT++ on ``machines``."""
    return OMNET_CLUSTER_EFF_BASE / max(machines, 1) ** OMNET_CLUSTER_EFF_DECAY


@dataclass(frozen=True)
class MachineSpec:
    """A physical machine of the evaluation."""

    name: str
    cores: int
    mem_bytes: int
    l3_bytes: int
    #: relative per-core speed (1.0 = evaluation Xeon core)
    core_speed: float = 1.0

    @property
    def events_per_core_per_s(self) -> float:
        return self.core_speed * 1e9 / BASE_EVENT_NS


#: The paper's two platforms.
XEON_SERVER = MachineSpec("xeon-32c-128g", cores=32, mem_bytes=128 * GIB,
                          l3_bytes=32 * MIB, core_speed=1.0)
MACBOOK_M1 = MachineSpec("macbook-air-m1", cores=8, mem_bytes=8 * GIB,
                         l3_bytes=12 * MIB, core_speed=1.15)
