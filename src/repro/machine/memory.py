"""Memory model: modeled resident footprint of each simulator family.

Reproduces Fig. 2b (ns-3 memory vs #processes), Fig. 12a (memory by
simulator and topology) and the §6.1 scale-limit analysis (which
simulator can hold which FatTree in 128 GB / 8 GB).

Footprints are computed from *structural counts* — nodes, interfaces,
FIB entries — priced with the calibrated per-structure constants of
``repro.machine.calibration``.  Counts come either from a built topology
/ FIB or, for 65k-server topologies nobody should build in RAM, from the
closed-form :func:`~repro.topology.fattree_counts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from . import calibration as cal
from ..topology import Topology, fattree_counts


@dataclass(frozen=True)
class StructuralCounts:
    """What the memory model needs to know about a scenario."""

    nodes: int
    hosts: int
    interfaces: int
    fib_entries: int

    @classmethod
    def from_topology(cls, topo: Topology) -> "StructuralCounts":
        hosts = topo.num_hosts
        # Full routing state: every node stores a route to every host
        # (what both ns-3 global routing and DONS's builder install).
        return cls(
            nodes=topo.num_nodes,
            hosts=hosts,
            interfaces=topo.num_interfaces,
            fib_entries=(topo.num_nodes - 1) * hosts,
        )

    @classmethod
    def from_fattree_k(cls, k: int) -> "StructuralCounts":
        c = fattree_counts(k)
        return cls(
            nodes=c["nodes"],
            hosts=c["hosts"],
            interfaces=c["interfaces"],
            fib_entries=(c["nodes"] - 1) * c["hosts"],
        )


def ood_state_bytes(counts: StructuralCounts) -> int:
    """Footprint of one complete OOD simulation state (one LP)."""
    return (
        cal.OOD_BASE_BYTES
        + counts.nodes * cal.OOD_NODE_BYTES
        + counts.interfaces * cal.OOD_IFACE_BYTES
        + counts.fib_entries * cal.OOD_FIB_ENTRY_BYTES
    )


def ns3_memory_bytes(counts: StructuralCounts, processes: int = 1) -> int:
    """ns-3 multi-process: every LP duplicates the full state (paper P2)."""
    return ood_state_bytes(counts) * max(1, processes)


def omnet_memory_bytes(counts: StructuralCounts, processes: int = 1) -> int:
    """OMNeT++ partitions modules across LPs: memory ~ flat in #LPs
    (Fig. 2b), with a small per-LP runtime overhead."""
    per_lp_overhead = cal.OOD_BASE_BYTES // 16
    return ood_state_bytes(counts) + max(0, processes - 1) * per_lp_overhead


def dons_memory_bytes(counts: StructuralCounts,
                      measured_component_bytes: int = 0) -> int:
    """DONS single process: dense columnar state.

    ``measured_component_bytes`` (from ``World.memory_bytes()``) is added
    when an actual run is available; for closed-form projections it is
    approximated inside the node/interface terms.
    """
    return (
        cal.DOD_BASE_BYTES
        + counts.nodes * cal.DOD_NODE_BYTES
        + counts.interfaces * cal.DOD_IFACE_BUFFER_BYTES
        + counts.fib_entries * cal.DOD_FIB_ENTRY_BYTES
        + measured_component_bytes
    )


def memory_by_simulator(counts: StructuralCounts,
                        processes: int = 1) -> Dict[str, int]:
    """Fig. 12a row: bytes per simulator for one scenario."""
    return {
        "ns-3": ns3_memory_bytes(counts, processes),
        "omnet++": omnet_memory_bytes(counts, processes),
        "dons": dons_memory_bytes(counts),
    }


def max_fattree(mem_bytes: int, simulator: str, processes: int = 1,
                k_max: int = 128) -> int:
    """Largest even k whose FatTree fits in ``mem_bytes`` (§6.1 'Scale')."""
    best = 0
    for k in range(2, k_max + 1, 2):
        counts = StructuralCounts.from_fattree_k(k)
        if simulator == "ns-3":
            need = ns3_memory_bytes(counts, processes)
        elif simulator == "omnet++":
            need = omnet_memory_bytes(counts, processes)
        elif simulator == "dons":
            need = dons_memory_bytes(counts)
        else:
            raise ValueError(f"unknown simulator {simulator!r}")
        if need <= mem_bytes:
            best = k
        else:
            break
    return best
