"""Time-cost model: modeled wall-clock for every simulator family.

This is the substitution for the paper's testbed wall-clocks (DESIGN.md):
completion time is assembled from *measured* quantities — event counts,
per-LP/per-machine load balance, synchronization rounds and message
counts from the actually-executed algorithms, and the cache model's miss
rates — priced with the fixed calibration constants.

The formulae:

* sequential OOD:      T = E * c(cmr)
* multi-process OOD:   T = max_lp E_lp * c(cmr) + R * c_sync + M * c_msg
* DONS single machine: T = sum_w sum_s ( ceil(n_ws / cores) * c(cmr)
                                          + barrier )
* DONS cluster (Eq. 1): T_a = E_a / P_a + tau_a / B_a;  T = max_a T_a
* DQN (APA):           T = setup + packets / (gpus * rate)

where c(cmr) = BASE_EVENT_NS * (1 + CMR_PENALTY * cmr%) — the measured
cache miss rate is what makes the same event count cost more on the
OOD architecture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from . import calibration as cal
from .calibration import MachineSpec, XEON_SERVER


def per_event_ns(cmr_percent: float, machine: MachineSpec = XEON_SERVER) -> float:
    """Cost of one simulation event on one core, given the L3 miss rate."""
    return (cal.BASE_EVENT_NS / machine.core_speed) * (
        1.0 + cal.CMR_PENALTY_PER_PERCENT * cmr_percent
    )


# --- sequential & multi-process OOD -----------------------------------------


def sequential_time_s(
    events: int,
    cmr_percent: float,
    machine: MachineSpec = XEON_SERVER,
) -> float:
    """Single-process ns-3/OMNeT++-style run (one core)."""
    return events * per_event_ns(cmr_percent, machine) * 1e-9


def cost_cmr(measured_percent: float, is_dod: bool = False) -> float:
    """Map a scaled-replay miss rate to the cost model's input band.

    The scaled-L3 replays can overshoot on the largest scaled topologies
    (their flows are ~100x shorter than the paper's, so cold misses
    amortize less); the hardware band the paper measures tops out around
    6% for the OOD family and 0.15% for DONS, and the cost model should
    not extrapolate beyond physics.
    """
    if is_dod:
        return min(measured_percent, 0.15)
    return min(measured_percent, 6.0)


def multiprocess_paper_scale_s(
    events: int,
    windows: int,
    cmr_percent: float,
    n_procs: int,
    max_share: float,
    burstiness: float,
    machine: MachineSpec = XEON_SERVER,
    sync_scale: float = 1.0,
) -> float:
    """MPI-parallel OOD run projected to paper scale, window-structured.

    Conservative parallel DES advances in lookahead windows: each window
    costs the slowest LP's compute plus one synchronization exchange.

    Args:
        events: Total events of the projected run.
        windows: Lookahead windows (sim seconds / 1 us).
        n_procs: Logical processes.
        max_share: Heaviest LP's share of total events (measured from an
            executed partition; 1/n_procs is perfect balance).
        burstiness: Ratio of a busy window's load to the mean window
            load (measured from the per-window breakdown); per-window
            max-over-LPs scales with it.
    """
    c_ev = per_event_ns(cmr_percent, machine)
    per_window_events = events / max(windows, 1)
    lp_window = per_window_events * min(1.0, max_share * burstiness)
    sync = (cal.MPI_WINDOW_SYNC_NS * sync_scale
            * max(1.0, math.log2(max(n_procs, 2))))
    return windows * (lp_window * c_ev + sync) * 1e-9


def multiprocess_time_s(
    lp_events: Sequence[int],
    cmr_percent: float,
    sync_rounds: int,
    messages: int,
    machine: MachineSpec = XEON_SERVER,
) -> float:
    """Multi-LP conservative run on one machine (one core per LP).

    ``sync_rounds`` / ``messages`` come from the executed null-message
    algorithm (:class:`repro.des.ParallelRunStats`: rounds, null + data
    messages).  The slowest LP sets the compute term; synchronization is
    serialized on top — which is how a bad partition ends up slower than
    one process (Fig. 3).
    """
    if not lp_events:
        return 0.0
    compute = max(lp_events) * per_event_ns(cmr_percent, machine)
    sync = sync_rounds * cal.LP_SYNC_ROUND_NS + messages * cal.LP_MESSAGE_NS
    return (compute + sync) * 1e-9


# --- DONS single machine ---------------------------------------------------------


@dataclass
class DonsTimeBreakdown:
    """Modeled DONS wall-clock plus utilization details."""

    total_s: float
    work_s: float          # pure event-processing work (all cores combined)
    barrier_s: float
    utilization: float     # work / (total * cores), in [0, 1]
    per_system_s: Dict[str, float]


def dons_time_s(
    window_breakdown: Sequence[Tuple[int, int, int, int, int]],
    cmr_percent: float,
    machine: MachineSpec = XEON_SERVER,
    workers: Optional[int] = None,
) -> DonsTimeBreakdown:
    """DONS on one machine, from the engine's per-window system counts.

    Each window runs its four systems back to back; a system with n items
    on c cores spans ceil(n/c) event-times (entity chunks balance well),
    plus one barrier.  Small windows therefore parallelize poorly — which
    is why the paper's speedup grows from 3x on FatTree4 to 22x on
    FatTree32.
    """
    cores = workers if workers is not None else machine.cores
    cores = max(1, min(cores, cal.DOD_MEM_PARALLEL_STREAMS))
    c_ev = per_event_ns(cmr_percent, machine)
    names = ("ack", "send", "forward", "transmit")
    span_ns = 0.0
    work_ns = 0.0
    barrier_ns = 0.0
    per_system = dict.fromkeys(names, 0.0)
    for entry in window_breakdown:
        counts = entry[1:5]
        for name, n in zip(names, counts):
            if n <= 0:
                continue
            s = math.ceil(n / cores) * c_ev + cal.DOD_BARRIER_NS
            span_ns += s
            barrier_ns += cal.DOD_BARRIER_NS
            work_ns += n * c_ev
            per_system[name] += s * 1e-9
    total_s = span_ns * 1e-9
    util = (work_ns / (span_ns * cores)) if span_ns > 0 else 0.0
    return DonsTimeBreakdown(
        total_s=total_s,
        work_s=work_ns * 1e-9,
        barrier_s=barrier_ns * 1e-9,
        utilization=util,
        per_system_s=per_system,
    )


def dons_time_uniform(
    events: int,
    windows: int,
    system_shares: Sequence[float],
    cmr_percent: float,
    machine: MachineSpec = XEON_SERVER,
    workers: Optional[int] = None,
) -> DonsTimeBreakdown:
    """DONS wall-clock for a *projected* run (paper-scale extrapolation).

    Events are spread uniformly over ``windows`` lookahead batches and
    split across the four systems by ``system_shares`` (measured from a
    scaled run of the same scenario family).  Equivalent to
    :func:`dons_time_s` on a synthetic uniform breakdown, in O(1).
    """
    cores = max(1, min(workers if workers is not None else machine.cores,
                       cal.DOD_MEM_PARALLEL_STREAMS))
    c_ev = per_event_ns(cmr_percent, machine)
    shares = list(system_shares)
    total_share = sum(shares) or 1.0
    span_ns = 0.0
    work_ns = 0.0
    per_system: Dict[str, float] = {}
    names = ("ack", "send", "forward", "transmit")
    per_window_events = events / max(windows, 1)
    for name, share in zip(names, shares):
        n = per_window_events * share / total_share
        if n <= 0:
            continue
        s = (math.ceil(n / cores) * c_ev + cal.DOD_BARRIER_NS) * windows
        span_ns += s
        work_ns += n * windows * c_ev
        per_system[name] = s * 1e-9
    util = work_ns / (span_ns * cores) if span_ns > 0 else 0.0
    return DonsTimeBreakdown(
        total_s=span_ns * 1e-9,
        work_s=work_ns * 1e-9,
        barrier_s=4 * windows * cal.DOD_BARRIER_NS * 1e-9,
        utilization=util,
        per_system_s=per_system,
    )


# --- DONS / OMNeT++ cluster (Eq. 1-2) ------------------------------------------


def eq1_machine_time_s(
    events: int,
    egress_bytes: int,
    machine: MachineSpec = XEON_SERVER,
    cmr_percent: float = 0.12,
    parallel_efficiency: float = cal.DONS_CLUSTER_EFFICIENCY,
    link_bps: int = cal.CLUSTER_LINK_BPS,
    bandwidth_capped: bool = True,
) -> float:
    """T_a = E_a / P_a + tau_a / B_a for one machine (paper Eq. 1).

    ``bandwidth_capped`` applies the DRAM-stream limit of the DOD engine;
    the OOD cluster model passes False (its efficiency constant already
    reflects its own bottleneck).
    """
    cores = machine.cores
    if bandwidth_capped:
        cores = min(cores, cal.DOD_MEM_PARALLEL_STREAMS)
    p_a = (cores * parallel_efficiency
           / (per_event_ns(cmr_percent, machine) * 1e-9))
    compute = events / p_a if p_a > 0 else 0.0
    comms = egress_bytes * 8.0 / link_bps
    return compute + comms


def cluster_time_s(
    part_events: Sequence[int],
    part_egress_bytes: Sequence[int],
    windows: int,
    machine: MachineSpec = XEON_SERVER,
    cmr_percent: float = 0.12,
    parallel_efficiency: float = 0.85,
) -> float:
    """Distributed DONS: Eq. (2) max over machines plus the per-window
    FINISH-signal barrier of §4.2."""
    per_machine = [
        eq1_machine_time_s(e, b, machine, cmr_percent, parallel_efficiency)
        for e, b in zip(part_events, part_egress_bytes)
    ]
    barrier = windows * (cal.CLUSTER_BARRIER_NS + cal.CLUSTER_RPC_NS) * 1e-9
    return (max(per_machine) if per_machine else 0.0) + barrier


def omnet_cluster_time_s(
    part_events: Sequence[int],
    part_egress_bytes: Sequence[int],
    windows: int,
    machine: MachineSpec = XEON_SERVER,
    cmr_percent: float = 4.5,
    mpi_efficiency: Optional[float] = None,
) -> float:
    """Distributed OMNeT++ with all cores per machine: same Eq. (1)
    structure but OOD per-event cost and a parallel efficiency that
    *decays* with cluster size (conservative-sync stalls; calibrated
    against both Table 1 anchors — see calibration module)."""
    if mpi_efficiency is None:
        mpi_efficiency = cal.omnet_cluster_efficiency(len(part_events))
    per_machine = [
        eq1_machine_time_s(e, b, machine, cmr_percent, mpi_efficiency,
                           bandwidth_capped=False)
        for e, b in zip(part_events, part_egress_bytes)
    ]
    n = max(1, len(part_events))
    sync = windows * (cal.LP_SYNC_ROUND_NS * n) * 1e-9
    return (max(per_machine) if per_machine else 0.0) + sync


# --- APA (DQN) -------------------------------------------------------------------


def apa_time_s(packets: int, gpus: int) -> float:
    """DeepQueueNet-style inference sweep over all packets."""
    if gpus < 1:
        raise ValueError("APA needs at least one GPU")
    return cal.APA_SETUP_S + packets / (gpus * cal.APA_PACKETS_PER_GPU_PER_S)


# --- formatting helpers ------------------------------------------------------------


def format_duration(seconds: float) -> str:
    """Render like the paper's tables: '9d 14h 24m', '2h 56m', '48s'."""
    s = int(round(seconds))
    d, s = divmod(s, 86400)
    h, s = divmod(s, 3600)
    m, s = divmod(s, 60)
    if d:
        return f"{d}d {h}h {m}m"
    if h:
        return f"{h}h {m}m"
    if m:
        return f"{m}m {s}s"
    return f"{s}s"
