"""Leaf-spine (2-tier Clos) topology.

Not in the paper's evaluation, but the most common modern DCN fabric and
a natural target for a DONS-style simulator; included as a library
feature (and exercised by tests/examples).  Every leaf connects to every
spine; hosts hang off leaves.
"""

from __future__ import annotations

from .graph import Topology
from ..errors import TopologyError
from ..units import GBPS, us


def leaf_spine(
    leaves: int,
    spines: int,
    hosts_per_leaf: int,
    host_rate_bps: int = 100 * GBPS,
    fabric_rate_bps: int = 400 * GBPS,
    delay_ps: int = us(1),
) -> Topology:
    """Build a leaf-spine fabric.

    Args:
        leaves / spines: Switch counts (full bipartite fabric).
        hosts_per_leaf: Servers attached to each leaf.
        host_rate_bps / fabric_rate_bps: Access vs fabric link rates.
        delay_ps: Propagation delay of every link.
    """
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise TopologyError("leaf-spine needs >=1 leaf, spine and host")
    topo = Topology(f"LeafSpine{leaves}x{spines}")
    spine_ids = [topo.add_switch(f"spine{s}") for s in range(spines)]
    for l in range(leaves):
        leaf = topo.add_switch(f"leaf{l}")
        for h in range(hosts_per_leaf):
            host = topo.add_host(f"h{l}-{h}")
            topo.add_link(host, leaf, host_rate_bps, delay_ps)
        for spine in spine_ids:
            topo.add_link(leaf, spine, fabric_rate_bps, delay_ps)
    return topo.freeze()
