"""Network topologies: the graph model and the generators the paper uses."""

from .graph import Interface, Link, Node, NodeKind, Topology
from .fattree import fattree, fattree_counts
from .dumbbell import dumbbell
from .wan import abilene, geant
from .isp import isp_wan
from .leafspine import leaf_spine

__all__ = [
    "Interface", "Link", "Node", "NodeKind", "Topology",
    "fattree", "fattree_counts", "dumbbell", "abilene", "geant", "isp_wan",
    "leaf_spine",
]
