"""Dumbbell topology: n senders and n receivers sharing one bottleneck.

Not part of the paper's evaluation but the canonical congestion-control
scenario; used by the quickstart example and by many unit tests because
queue dynamics at the single bottleneck are easy to reason about.
"""

from __future__ import annotations

from .graph import Topology
from ..errors import TopologyError
from ..units import GBPS, us


def dumbbell(
    pairs: int,
    edge_rate_bps: int = 10 * GBPS,
    bottleneck_rate_bps: int = 10 * GBPS,
    delay_ps: int = us(1),
    bottleneck_delay_ps: int = us(1),
) -> Topology:
    """Build a dumbbell with ``pairs`` host pairs.

    Hosts 0..pairs-1 are the left side, hosts pairs..2*pairs-1 the right
    side; two switches are joined by the bottleneck link.
    """
    if pairs < 1:
        raise TopologyError("dumbbell needs at least one host pair")
    topo = Topology(f"Dumbbell{pairs}")
    left = [topo.add_host(f"l{i}") for i in range(pairs)]
    right = [topo.add_host(f"r{i}") for i in range(pairs)]
    sw_l = topo.add_switch("swL")
    sw_r = topo.add_switch("swR")
    for h in left:
        topo.add_link(h, sw_l, edge_rate_bps, delay_ps)
    for h in right:
        topo.add_link(h, sw_r, edge_rate_bps, delay_ps)
    topo.add_link(sw_l, sw_r, bottleneck_rate_bps, bottleneck_delay_ps)
    return topo.freeze()
