"""Wide-area topologies used in Fig. 11e/f: Abilene and GEANT.

The paper attaches one traffic server to each router and runs full-mesh
dynamic flows between the servers.  :func:`abilene` and :func:`geant`
reproduce the published router-level graphs (12 routers / 15 links and
23 routers / 36 links respectively) with one host per router, matching
the paper's setup.

Link delays are derived from rough great-circle distances (5 us per
1000 km is close enough; only relative magnitudes matter for the
reproduction) and are clamped so the smallest delay — the DOD engine's
lookahead — stays reasonable.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .graph import Topology
from ..units import GBPS, us

# (a, b, delay_us) triples over router names. Delays loosely follow
# geographic distance between the POPs of the 2004 Abilene backbone.
_ABILENE_ROUTERS: Sequence[str] = (
    "NewYork", "Chicago", "WashingtonDC", "Seattle", "Sunnyvale",
    "LosAngeles", "Denver", "KansasCity", "Houston", "Atlanta",
    "Indianapolis", "AtlantaM5",
)

_ABILENE_LINKS: Sequence[Tuple[str, str, float]] = (
    ("NewYork", "Chicago", 18.0),
    ("NewYork", "WashingtonDC", 6.0),
    ("Chicago", "Indianapolis", 5.0),
    ("WashingtonDC", "Atlanta", 14.0),
    ("Seattle", "Sunnyvale", 18.0),
    ("Seattle", "Denver", 25.0),
    ("Sunnyvale", "LosAngeles", 9.0),
    ("Sunnyvale", "Denver", 23.0),
    ("LosAngeles", "Houston", 33.0),
    ("Denver", "KansasCity", 12.0),
    ("KansasCity", "Houston", 17.0),
    ("KansasCity", "Indianapolis", 11.0),
    ("Houston", "Atlanta", 19.0),
    ("Atlanta", "AtlantaM5", 1.0),
    ("Indianapolis", "AtlantaM5", 12.0),
)

# 23 routers / 36 links snapshot of the GEANT pan-European backbone
# (Uhlig et al., CCR 2006).
_GEANT_ROUTERS: Sequence[str] = (
    "AT", "BE", "CH", "CZ", "DE", "ES", "FR", "GR", "HR", "HU",
    "IE", "IL", "IT", "LU", "NL", "NY", "PL", "PT", "SE", "SI",
    "SK", "UK", "DK",
)

_GEANT_LINKS: Sequence[Tuple[str, str, float]] = (
    ("AT", "CH", 4.0), ("AT", "CZ", 2.0), ("AT", "DE", 3.0),
    ("AT", "HU", 2.0), ("AT", "IT", 4.0), ("AT", "SI", 2.0),
    ("AT", "SK", 1.0), ("BE", "FR", 2.0), ("BE", "NL", 1.0),
    ("CH", "DE", 3.0), ("CH", "FR", 3.0), ("CH", "IT", 3.0),
    ("CZ", "DE", 2.0), ("CZ", "PL", 3.0), ("CZ", "SK", 2.0),
    ("DE", "DK", 3.0), ("DE", "FR", 4.0), ("DE", "IT", 5.0),
    ("DE", "NL", 2.0), ("DE", "SE", 5.0), ("DE", "NY", 31.0),
    ("DK", "SE", 2.0), ("ES", "FR", 4.0), ("ES", "IT", 5.0),
    ("ES", "PT", 3.0), ("FR", "LU", 2.0), ("FR", "UK", 2.0),
    ("GR", "IT", 5.0), ("HR", "HU", 2.0), ("HR", "SI", 1.0),
    ("HU", "SK", 1.0), ("IE", "UK", 2.0), ("IL", "IT", 11.0),
    ("NL", "UK", 2.0), ("NY", "UK", 28.0), ("PL", "SE", 4.0),
)


def _wan_from_table(
    name: str,
    routers: Sequence[str],
    links: Sequence[Tuple[str, str, float]],
    backbone_rate_bps: int,
    access_rate_bps: int,
    access_delay_us: float,
) -> Topology:
    topo = Topology(name)
    index: Dict[str, int] = {}
    for router in routers:
        index[router] = topo.add_switch(router)
    for a, b, delay_us_ in links:
        topo.add_link(index[a], index[b], backbone_rate_bps, us(delay_us_))
    # One traffic server per router, per the paper's WAN experiments.
    for router in routers:
        host = topo.add_host(f"srv-{router}")
        topo.add_link(host, index[router], access_rate_bps, us(access_delay_us))
    return topo.freeze()


def abilene(
    backbone_rate_bps: int = 10 * GBPS,
    access_rate_bps: int = 10 * GBPS,
) -> Topology:
    """The Abilene backbone (12 routers, 15 links) with one server per POP."""
    return _wan_from_table(
        "Abilene", _ABILENE_ROUTERS, _ABILENE_LINKS,
        backbone_rate_bps, access_rate_bps, access_delay_us=1.0,
    )


def geant(
    backbone_rate_bps: int = 10 * GBPS,
    access_rate_bps: int = 10 * GBPS,
) -> Topology:
    """The GEANT backbone (23 routers, 36 links) with one server per POP."""
    return _wan_from_table(
        "GEANT", _GEANT_ROUTERS, _GEANT_LINKS,
        backbone_rate_bps, access_rate_bps, access_delay_us=1.0,
    )
