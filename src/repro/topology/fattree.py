"""k-ary FatTree topology (Al-Fares et al., SIGCOMM 2008).

The paper's single-machine and cluster experiments all use FatTree(k)
data centers: FatTree4 (16 servers) through FatTree64 (65,536 servers).
A k-ary FatTree has k pods; each pod has k/2 edge and k/2 aggregation
switches; (k/2)^2 core switches connect the pods; each edge switch hosts
k/2 servers.  Totals: (k^3)/4 hosts, (5k^2)/4 switches, (3k^3)/4 links.
"""

from __future__ import annotations

from .graph import Topology
from ..errors import TopologyError
from ..units import GBPS, us


def fattree(
    k: int,
    rate_bps: int = 100 * GBPS,
    delay_ps: int = us(1),
) -> Topology:
    """Build FatTree(k) with uniform link rate and delay.

    Args:
        k: Arity; must be even and >= 2.
        rate_bps: Line rate of every link (the paper uses 100 Gbps).
        delay_ps: Propagation delay of every link.

    Returns:
        A frozen :class:`Topology` named ``FatTree{k}``.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"FatTree arity must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology(f"FatTree{k}")

    core = [
        topo.add_switch(f"core{i}-{j}")
        for i in range(half)
        for j in range(half)
    ]
    agg = [[topo.add_switch(f"agg{p}-{i}") for i in range(half)] for p in range(k)]
    edge = [[topo.add_switch(f"edge{p}-{i}") for i in range(half)] for p in range(k)]
    for p in range(k):
        for e in range(half):
            for h in range(half):
                host = topo.add_host(f"h{p}-{e}-{h}")
                topo.add_link(host, edge[p][e], rate_bps, delay_ps)

    for p in range(k):
        for e in range(half):
            for a in range(half):
                topo.add_link(edge[p][e], agg[p][a], rate_bps, delay_ps)
        # Aggregation switch a of every pod connects to core row a.
        for a in range(half):
            for j in range(half):
                topo.add_link(agg[p][a], core[a * half + j], rate_bps, delay_ps)

    return topo.freeze()


def fattree_counts(k: int) -> dict:
    """Closed-form element counts of FatTree(k), used by the memory model
    and the scale-limit bench without building 65k-server topologies."""
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"FatTree arity must be even and >= 2, got {k}")
    hosts = k ** 3 // 4
    switches = 5 * k ** 2 // 4
    links = 3 * k ** 3 // 4
    return {
        "k": k,
        "hosts": hosts,
        "switches": switches,
        "nodes": hosts + switches,
        "links": links,
        "interfaces": 2 * links,
    }
