"""Core topology model: nodes, links, and directed interfaces.

A :class:`Topology` is the single description of the simulated network
shared by every engine, the routing builder, the load estimator and the
partitioner.  Nodes are hosts or switches; links are full duplex with a
rate and a propagation delay per direction.

Besides the node/link view, the topology exposes a flat *interface* view:
every (node, port) pair is a directed egress interface with a globally
unique dense id.  The DOD engine stores per-interface component arrays
indexed by these ids; the OOD baseline builds one port object per id.
Keeping the numbering in the topology guarantees the two engines agree on
what "port 3 of node 17" means.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import TopologyError
from ..units import GBPS, us


class NodeKind(IntEnum):
    """Role of a node in the network."""

    HOST = 0
    SWITCH = 1


@dataclass(frozen=True)
class Node:
    """A device in the topology.

    Attributes:
        node_id: Dense id, equal to the node's index in ``Topology.nodes``.
        kind: Host or switch.
        name: Human-readable label used in reports and traces.
    """

    node_id: int
    kind: NodeKind
    name: str

    @property
    def is_host(self) -> bool:
        return self.kind == NodeKind.HOST


@dataclass(frozen=True)
class Link:
    """A full-duplex link between two nodes.

    Attributes:
        link_id: Dense id, equal to the link's index in ``Topology.links``.
        node_a / node_b: Endpoint node ids.
        port_a / port_b: Port index of the link on each endpoint.
        rate_bps: Line rate of each direction, in bits per second.
        delay_ps: Propagation delay of each direction, in picoseconds.
    """

    link_id: int
    node_a: int
    node_b: int
    port_a: int
    port_b: int
    rate_bps: int
    delay_ps: int

    def other(self, node_id: int) -> int:
        """Return the endpoint opposite ``node_id``."""
        if node_id == self.node_a:
            return self.node_b
        if node_id == self.node_b:
            return self.node_a
        raise TopologyError(f"node {node_id} is not on link {self.link_id}")


@dataclass(frozen=True)
class Interface:
    """A directed egress interface: packets leave ``node`` through ``port``.

    ``peer_node`` receives those packets after ``delay_ps``; ``peer_iface``
    is the reverse-direction interface (used for ACK paths and for
    cut-detection in the partitioner).
    """

    iface_id: int
    node: int
    port: int
    link_id: int
    peer_node: int
    peer_port: int
    peer_iface: int
    rate_bps: int
    delay_ps: int


class Topology:
    """Mutable builder and immutable-after-freeze description of a network.

    Typical usage::

        topo = Topology("dumbbell")
        a = topo.add_host("h0")
        b = topo.add_host("h1")
        s = topo.add_switch("s0")
        topo.add_link(a, s, rate_bps=10 * GBPS, delay_ps=us(1))
        topo.add_link(b, s, rate_bps=10 * GBPS, delay_ps=us(1))
        topo.freeze()

    After :meth:`freeze` the interface table is built and the topology is
    read-only.  Engines require a frozen topology.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.links: List[Link] = []
        self._ports_per_node: List[int] = []
        self._adjacency: List[List[int]] = []  # node -> list of link ids
        self._frozen = False
        self.interfaces: List[Interface] = []
        self._iface_index: Dict[Tuple[int, int], int] = {}

    # --- construction ------------------------------------------------

    def _add_node(self, kind: NodeKind, name: Optional[str]) -> int:
        if self._frozen:
            raise TopologyError("topology is frozen")
        node_id = len(self.nodes)
        label = name if name is not None else f"{kind.name.lower()}{node_id}"
        self.nodes.append(Node(node_id, kind, label))
        self._ports_per_node.append(0)
        self._adjacency.append([])
        return node_id

    def add_host(self, name: Optional[str] = None) -> int:
        """Add a host and return its node id."""
        return self._add_node(NodeKind.HOST, name)

    def add_switch(self, name: Optional[str] = None) -> int:
        """Add a switch and return its node id."""
        return self._add_node(NodeKind.SWITCH, name)

    def add_link(
        self,
        node_a: int,
        node_b: int,
        rate_bps: int = 100 * GBPS,
        delay_ps: int = us(1),
    ) -> int:
        """Connect two nodes and return the new link id."""
        if self._frozen:
            raise TopologyError("topology is frozen")
        if node_a == node_b:
            raise TopologyError("self-loops are not allowed")
        for nid in (node_a, node_b):
            if not 0 <= nid < len(self.nodes):
                raise TopologyError(f"unknown node id {nid}")
        if rate_bps <= 0 or delay_ps <= 0:
            raise TopologyError("rate and delay must be positive")
        link_id = len(self.links)
        port_a = self._ports_per_node[node_a]
        port_b = self._ports_per_node[node_b]
        self._ports_per_node[node_a] += 1
        self._ports_per_node[node_b] += 1
        link = Link(link_id, node_a, node_b, port_a, port_b, rate_bps, delay_ps)
        self.links.append(link)
        self._adjacency[node_a].append(link_id)
        self._adjacency[node_b].append(link_id)
        return link_id

    def freeze(self) -> "Topology":
        """Validate, build the interface table and make the topology read-only."""
        if self._frozen:
            return self
        if not self.nodes:
            raise TopologyError("topology has no nodes")
        for node in self.nodes:
            if node.is_host and self._ports_per_node[node.node_id] != 1:
                raise TopologyError(
                    f"host {node.name} must have exactly one link, has "
                    f"{self._ports_per_node[node.node_id]}"
                )
        self._build_interfaces()
        self._frozen = True
        return self

    def _build_interfaces(self) -> None:
        iface_id = 0
        # First pass: assign ids in (node, port) order so the numbering is
        # independent of link insertion order details.
        for link in self.links:
            for node, port in ((link.node_a, link.port_a), (link.node_b, link.port_b)):
                self._iface_index[(node, port)] = -1
        for node in self.nodes:
            for port in range(self._ports_per_node[node.node_id]):
                self._iface_index[(node.node_id, port)] = iface_id
                iface_id += 1
        self.interfaces = [None] * iface_id  # type: ignore[list-item]
        for link in self.links:
            ia = self._iface_index[(link.node_a, link.port_a)]
            ib = self._iface_index[(link.node_b, link.port_b)]
            self.interfaces[ia] = Interface(
                ia, link.node_a, link.port_a, link.link_id,
                link.node_b, link.port_b, ib, link.rate_bps, link.delay_ps,
            )
            self.interfaces[ib] = Interface(
                ib, link.node_b, link.port_b, link.link_id,
                link.node_a, link.port_a, ia, link.rate_bps, link.delay_ps,
            )

    # --- queries -------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def num_interfaces(self) -> int:
        return len(self.interfaces)

    @property
    def hosts(self) -> List[int]:
        """Node ids of all hosts, ascending."""
        return [n.node_id for n in self.nodes if n.is_host]

    @property
    def switches(self) -> List[int]:
        """Node ids of all switches, ascending."""
        return [n.node_id for n in self.nodes if not n.is_host]

    @property
    def num_hosts(self) -> int:
        return sum(1 for n in self.nodes if n.is_host)

    def ports_of(self, node_id: int) -> int:
        """Number of ports on ``node_id``."""
        return self._ports_per_node[node_id]

    def links_of(self, node_id: int) -> List[Link]:
        """Links incident to ``node_id``."""
        return [self.links[lid] for lid in self._adjacency[node_id]]

    def neighbors(self, node_id: int) -> Iterator[Tuple[int, Link]]:
        """Yield ``(neighbor_node_id, link)`` pairs for ``node_id``."""
        for lid in self._adjacency[node_id]:
            link = self.links[lid]
            yield link.other(node_id), link

    def iface(self, node_id: int, port: int) -> Interface:
        """The egress interface of ``port`` on ``node_id``."""
        try:
            return self.interfaces[self._iface_index[(node_id, port)]]
        except KeyError:
            raise TopologyError(f"node {node_id} has no port {port}") from None

    def iface_id(self, node_id: int, port: int) -> int:
        """Dense interface id of ``(node_id, port)``."""
        try:
            return self._iface_index[(node_id, port)]
        except KeyError:
            raise TopologyError(f"node {node_id} has no port {port}") from None

    def host_iface(self, host_id: int) -> Interface:
        """The single egress interface of a host (its NIC)."""
        node = self.nodes[host_id]
        if not node.is_host:
            raise TopologyError(f"node {host_id} is not a host")
        return self.iface(host_id, 0)

    def min_link_delay_ps(self) -> int:
        """Smallest propagation delay — the lookahead of the DOD engine."""
        if not self.links:
            raise TopologyError("topology has no links")
        return min(link.delay_ps for link in self.links)

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, nodes={self.num_nodes}, "
            f"hosts={self.num_hosts}, links={self.num_links})"
        )
