"""Synthetic hierarchical ISP WAN generator.

Table 2/3 of the paper partition a proprietary ISP topology with ~13k
core routers and ~32k links spanning a backbone, provincial networks and
metropolitan area networks, with "very irregular" connectivity.  That
topology is not public, so this module generates the closest synthetic
equivalent: a three-tier hierarchy

* a densely meshed national **backbone** ring with random chords,
* **provincial** networks hanging off backbone routers, built as random
  trees with extra cross links (irregular degree),
* **metro** networks hanging off provincial routers, built as stars with
  occasional rings,

plus traffic servers attached to a sampled subset of metro routers.
Degree distribution ends up heavy-tailed and the graph has both dense and
sparse regions — the properties the partitioning experiments exercise.

The substitution is recorded in DESIGN.md: the experiments only need
*scale + irregularity + skewed traffic*, all of which this generator
provides under a fixed seed.
"""

from __future__ import annotations

from typing import List

from .graph import Topology
from ..rng import substream
from ..units import GBPS, us


def isp_wan(
    backbone_routers: int = 40,
    provinces: int = 12,
    provincial_routers: int = 24,
    metros_per_province: int = 6,
    metro_routers: int = 8,
    servers_per_metro: int = 1,
    seed: int = 2023,
    backbone_rate_bps: int = 100 * GBPS,
    provincial_rate_bps: int = 40 * GBPS,
    metro_rate_bps: int = 10 * GBPS,
) -> Topology:
    """Generate a hierarchical ISP WAN.

    The defaults build a mid-size instance (~2k routers) suitable for
    tests; the Table 2/3 benches scale the parameters up to the paper's
    ~13k routers.  All randomness derives from ``seed``.
    """
    rng = substream(seed, 0xB0)
    topo = Topology(f"ISP-WAN(seed={seed})")

    # --- backbone: ring + random chords --------------------------------
    backbone: List[int] = [topo.add_switch(f"bb{i}") for i in range(backbone_routers)]
    for i in range(backbone_routers):
        topo.add_link(
            backbone[i], backbone[(i + 1) % backbone_routers],
            backbone_rate_bps, us(float(rng.integers(5, 40))),
        )
    n_chords = max(1, backbone_routers // 2)
    for _ in range(n_chords):
        a, b = rng.choice(backbone_routers, size=2, replace=False)
        if abs(int(a) - int(b)) in (0, 1, backbone_routers - 1):
            continue
        topo.add_link(
            backbone[int(a)], backbone[int(b)],
            backbone_rate_bps, us(float(rng.integers(5, 40))),
        )

    # --- provinces: random trees + cross links -------------------------
    all_metro_routers: List[int] = []
    for p in range(provinces):
        attach = backbone[int(rng.integers(backbone_routers))]
        prov: List[int] = []
        for i in range(provincial_routers):
            r = topo.add_switch(f"p{p}r{i}")
            if prov:
                parent = prov[int(rng.integers(len(prov)))]
            else:
                parent = attach
            topo.add_link(r, parent, provincial_rate_bps, us(float(rng.integers(2, 15))))
            prov.append(r)
        # Irregular cross links within the province (about 25% extra).
        for _ in range(max(1, provincial_routers // 4)):
            a, b = rng.choice(provincial_routers, size=2, replace=False)
            if int(a) != int(b):
                topo.add_link(
                    prov[int(a)], prov[int(b)],
                    provincial_rate_bps, us(float(rng.integers(2, 15))),
                )
        # Dual-home some provinces to a second backbone router.
        if rng.random() < 0.5:
            second = backbone[int(rng.integers(backbone_routers))]
            if second != attach:
                topo.add_link(prov[0], second, provincial_rate_bps,
                              us(float(rng.integers(5, 30))))

        # --- metros: stars with occasional rings ------------------------
        for m in range(metros_per_province):
            hub_parent = prov[int(rng.integers(len(prov)))]
            hub = topo.add_switch(f"p{p}m{m}hub")
            topo.add_link(hub, hub_parent, metro_rate_bps, us(float(rng.integers(1, 5))))
            ring = rng.random() < 0.3
            metro: List[int] = [hub]
            for i in range(metro_routers - 1):
                r = topo.add_switch(f"p{p}m{m}r{i}")
                topo.add_link(r, hub, metro_rate_bps, us(float(rng.integers(1, 4))))
                metro.append(r)
            if ring and len(metro) > 3:
                for i in range(1, len(metro) - 1):
                    topo.add_link(metro[i], metro[i + 1], metro_rate_bps,
                                  us(float(rng.integers(1, 4))))
            all_metro_routers.extend(metro)

    # --- traffic servers ------------------------------------------------
    n_servers = max(2, servers_per_metro * provinces * metros_per_province)
    picks = rng.choice(len(all_metro_routers), size=min(n_servers, len(all_metro_routers)),
                       replace=False)
    for i, idx in enumerate(sorted(int(x) for x in picks)):
        host = topo.add_host(f"srv{i}")
        topo.add_link(host, all_metro_routers[idx], metro_rate_bps, us(1))

    return topo.freeze()
