"""Command-line interface: run, compare, profile, and plan simulations.

    python -m repro run --topology fattree:4 --flows mesh:load=0.3 \
        --engine dons --workers 4
    python -m repro compare --topology dumbbell:4 --flows fixed:n=8
    python -m repro profile --topology fattree:4 --flows fixed:n=32
    python -m repro plan --topology isp --machines 8
    python -m repro viz --topology abilene --flows mesh:max=100 \
        --out-dir ./viz-out
    python -m repro fuzz --seed 0 --runs 25 --shrink

Topology specs: ``fattree:K``, ``dumbbell:PAIRS``, ``abilene``, ``geant``,
``isp[:SEED]``.  Flow specs: ``mesh:key=value,...`` (load, seed, max,
duration_ms, sizes in {web,fb,tiny}), ``fixed:n=..,size=..[,transport=
dctcp|reno|udp]``, ``wan_twin:max=..,classes=..,arrival=onoff|poisson|
empirical`` (pair with ``--classes N --scheduler sp|drr``), or
``storage:blocks=..,block_kb=..,arrival=poisson|onoff|periodic``
(hosts[0] is the namenode; pair with ``--classes 2 --scheduler sp``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

from .errors import ConfigError, ReproError
from .metrics import TraceLevel
from .scenario import Scenario, make_scenario
from .schedulers import SchedulerKind
from .topology import Topology, abilene, dumbbell, fattree, geant, isp_wan
from .traffic import (
    DISTRIBUTIONS,
    Flow,
    Transport,
    fixed_flows,
    full_mesh_dynamic,
)
from .units import GBPS, ms, ps_to_us

_SIZE_ALIASES = {"web": "web-search", "fb": "fb-cache", "tiny": "tiny"}
_TRANSPORTS = {"dctcp": Transport.DCTCP, "udp": Transport.UDP,
               "reno": Transport.RENO}


def _parse_kv(spec: str) -> Dict[str, str]:
    if not spec:
        return {}
    out = {}
    for part in spec.split(","):
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"expected key=value, got {part!r}")
        key, value = part.split("=", 1)
        out[key.strip()] = value.strip()
    return out


def build_topology(spec: str) -> Topology:
    """Parse a topology spec string."""
    name, _, arg = spec.partition(":")
    if name == "fattree":
        return fattree(int(arg or 4), rate_bps=10 * GBPS)
    if name == "dumbbell":
        return dumbbell(int(arg or 4))
    if name == "abilene":
        return abilene()
    if name == "geant":
        return geant()
    if name == "isp":
        return isp_wan(seed=int(arg or 2023))
    raise ConfigError(f"unknown topology {name!r}")


def build_flows(spec: str, topo: Topology) -> List[Flow]:
    """Parse a flow-generator spec string."""
    name, _, arg = spec.partition(":")
    kv = _parse_kv(arg)
    hosts = topo.hosts
    if name == "mesh":
        sizes = DISTRIBUTIONS[_SIZE_ALIASES.get(kv.get("sizes", "tiny"),
                                                kv.get("sizes", "tiny"))]
        return full_mesh_dynamic(
            hosts,
            duration_ps=ms(float(kv.get("duration_ms", 1.0))),
            load=float(kv.get("load", 0.3)),
            host_rate_bps=10 * GBPS,
            sizes=sizes,
            seed=int(kv.get("seed", 1)),
            max_flows=int(kv["max"]) if "max" in kv else 500,
        )
    if name == "fixed":
        transport = _TRANSPORTS[kv.get("transport", "dctcp")]
        return fixed_flows(
            hosts,
            n_flows=int(kv.get("n", 16)),
            size_bytes=int(kv.get("size", 100_000)),
            transport=transport,
            seed=int(kv.get("seed", 1)),
        )
    if name == "wan_twin":
        from .bench.workloads import wan_twin_flow_columns
        return wan_twin_flow_columns(
            hosts, int(kv.get("seed", 1)),
            horizon_ps=ms(float(kv.get("duration_ms", 0.5))),
            n_flows=int(kv["max"]) if "max" in kv else 500,
            classes=int(kv.get("classes", 3)),
            load=float(kv.get("load", 0.3)),
            arrival=kv.get("arrival", "onoff"),
        )
    if name == "storage":
        from .bench.workloads import storage_flow_columns
        return storage_flow_columns(
            hosts, int(kv.get("seed", 1)),
            horizon_ps=ms(float(kv.get("duration_ms", 0.5))),
            blocks=int(kv.get("blocks", 64)),
            block_bytes=int(kv.get("block_kb", 256)) * 1024,
            arrival=kv.get("arrival", "poisson"),
        )
    raise ConfigError(f"unknown flow generator {name!r}")


def build_scenario(args) -> Scenario:
    if getattr(args, "load", None):
        from .scenario_io import scenario_from_json
        with open(args.load) as fh:
            scenario = scenario_from_json(fh)
    else:
        topo = build_topology(args.topology)
        flows = build_flows(args.flows, topo)
        scenario = make_scenario(
            topo, flows,
            scheduler=SchedulerKind(args.scheduler),
            num_classes=args.classes,
            buffer_bytes=args.buffer_kb * 1024,
        )
    if getattr(args, "save", None):
        from .scenario_io import scenario_to_json
        with open(args.save, "w") as fh:
            scenario_to_json(scenario, out=fh)
        print(f"scenario saved to {args.save}")
    return scenario


def _summary(results) -> str:
    fcts = results.fcts_ps()
    lines = [
        f"engine          : {results.engine}",
        f"events          : {results.events.total} "
        f"(send {results.events.send}, forward {results.events.forward}, "
        f"transmit {results.events.transmit}, ack {results.events.ack})",
        f"flows completed : {results.completed()}/{len(results.flows)}",
        f"drops / marks   : {results.drops} / {results.marks}",
    ]
    if fcts:
        fcts = sorted(fcts)
        lines.append(
            f"FCT us p50/p99  : {ps_to_us(fcts[len(fcts) // 2]):.1f} / "
            f"{ps_to_us(fcts[-max(1, len(fcts) // 100)]):.1f}"
        )
    return "\n".join(lines)


class _Progress:
    """One-line stderr progress/ETA meter for long runs.

    Hangs off :class:`~repro.core.runner.EngineRunner`'s ``on_step``
    hook; shows windows done, events/s, percent complete with an ETA,
    and (for a telemetered cluster run) the per-agent lag of the last
    window.  Suppressed entirely when stderr is not a TTY, so piped and
    CI output stays clean.
    """

    def __init__(self, engine, duration_ps, lookahead_ps,
                 stream=None) -> None:
        self.engine = engine
        self.duration = duration_ps
        self.lookahead = lookahead_ps
        self.stream = sys.stderr if stream is None else stream
        isatty = getattr(self.stream, "isatty", None)
        self.enabled = bool(isatty and isatty())
        self.t0 = time.perf_counter()
        self._last = 0.0
        self._wrote = False

    def __call__(self, steps: int) -> None:
        if not self.enabled:
            return
        now = time.perf_counter()
        if now - self._last < 0.2:  # 5 Hz is plenty for a human
            return
        self._last = now
        elapsed = now - self.t0
        prog = getattr(self.engine, "progress", None)
        p = prog() if callable(prog) else {}
        parts = [f"{p.get('windows', steps)} windows"]
        events = p.get("events")
        if events is None:
            ev = getattr(getattr(self.engine, "results", None), "events",
                         None)
            events = ev.total if ev is not None else 0
        if elapsed > 0:
            parts.append(f"{events / elapsed:,.0f} ev/s")
        frac = p.get("done")
        if frac is None and self.duration and self.lookahead:
            cursor = getattr(self.engine, "_cursor", -1)
            if cursor > 0:
                frac = min(1.0, cursor * self.lookahead / self.duration)
        if frac and elapsed > 0:
            eta = elapsed * (1.0 - frac) / frac
            parts.append(f"{frac * 100:3.0f}% eta {eta:5.1f}s")
        else:
            # No duration cut to project against: show elapsed instead.
            parts.append(f"t+{elapsed:.1f}s")
        times = getattr(getattr(self.engine, "transport", None),
                        "window_times", None)
        if times:
            parts.append(f"lag {(max(times) - min(times)) * 1e3:.2f}ms")
        self._wrote = True
        print("\r" + " | ".join(parts) + "\x1b[K", end="",
              file=self.stream, flush=True)

    def close(self) -> None:
        """Clear the meter line so normal output starts clean."""
        if self.enabled and self._wrote:
            print("\r\x1b[K", end="", file=self.stream, flush=True)


def _progress_for(args, engine, scenario) -> Optional[_Progress]:
    if not getattr(args, "progress", False):
        return None
    return _Progress(engine, scenario.duration_ps, scenario.lookahead_ps)


def _live_for(args, engine):
    """Attach the live observability plane when the invocation asks for
    it: ``profile --live FILE`` / ``stats --watch`` (NDJSON stream),
    ``--metrics-port`` or ``$REPRO_METRICS_PORT`` (OpenMetrics
    endpoint).  Returns a started ``LivePlane`` or ``None``."""
    target = getattr(args, "live", None)
    watch = getattr(args, "watch", False)
    port = getattr(args, "metrics_port", None)
    if (target is None and not watch and port is None
            and not os.environ.get("REPRO_METRICS_PORT")):
        return None
    from .metrics.live import LivePlane
    if watch or target == "-":
        plane = LivePlane(engine, stream=sys.stderr, metrics_port=port)
    else:
        plane = LivePlane(engine, path=target, metrics_port=port)
    if plane.server is not None:
        print(f"metrics endpoint: {plane.server.url}", file=sys.stderr)
    return plane


def cmd_run(args) -> int:
    scenario = build_scenario(args)
    if args.engine == "dons":
        from .core.engine import run_dons
        results = run_dons(scenario, workers=args.workers,
                           backend=args.backend)
    else:
        from .des import run_baseline
        results = run_baseline(scenario)
    print(_summary(results))
    return 0


def cmd_compare(args) -> int:
    scenario = build_scenario(args)
    from .core.engine import run_dons
    from .des import run_baseline
    a = run_baseline(scenario, TraceLevel.FULL)
    b = run_dons(scenario, TraceLevel.FULL, workers=args.workers,
                 backend=args.backend)
    same = a.trace.digest() == b.trace.digest()
    print(_summary(b))
    print(f"trace digests   : ood={a.trace.digest()}")
    print(f"                  dons={b.trace.digest()}")
    print(f"identical       : {same}")
    return 0 if same else 1


def cmd_profile(args) -> int:
    """Run the DOD engine (or a cluster of agents) and print the
    instrumentation-bus breakdown: per-window, per-system wall-clock /
    tasks / items, then totals.  With ``--cluster N`` the run is
    distributed over N agents and every row is tagged ``a<id>:<system>``
    — the timings are the *measured* per-agent window costs the merged
    cluster bus collected."""
    import json
    scenario = build_scenario(args)
    telemetry = bool(args.timeline) or None  # None: REPRO_TELEMETRY decides
    if args.cluster:
        from .cluster import DonsManager
        from .partition import ClusterSpec, measured_machine_times
        from .partition import plan_scenario
        mgr = DonsManager(scenario, ClusterSpec.homogeneous(args.cluster),
                          workers_per_agent=args.workers,
                          transport=args.transport,
                          backend=args.backend,
                          telemetry=bool(telemetry))
        engine = mgr._engine(plan_scenario(scenario, mgr.cluster).partition)
        progress = _progress_for(args, engine, scenario)
        live = _live_for(args, engine)
        try:
            from .core.runner import EngineRunner, chain_hooks
            EngineRunner(engine, on_step=chain_hooks(
                progress, live.on_step if live else None)).run()
        finally:
            if progress:
                progress.close()
            if live:
                live.close()
        results, bus = engine.results, engine.bus
        agent_times = measured_machine_times(bus, args.cluster)
    else:
        from .core.engine import DodEngine
        from .core.runner import EngineRunner, chain_hooks
        eng = DodEngine(scenario, workers=args.workers,
                        backend=args.backend, telemetry=telemetry,
                        ffwd=args.ffwd)
        progress = _progress_for(args, eng, scenario)
        live = _live_for(args, eng)
        try:
            results = EngineRunner(eng, on_step=chain_hooks(
                progress, live.on_step if live else None)).run()
        finally:
            if progress:
                progress.close()
            if live:
                live.close()
        bus = eng.bus
        agent_times = None
    if args.timeline:
        from .metrics.timeline import write_timeline
        write_timeline(bus, args.timeline, manifest=dict(
            command="profile", scenario=scenario.name,
            backend=args.backend or os.environ.get("REPRO_BACKEND") or "python",
            transport=args.transport if args.cluster else None,
            cluster=args.cluster or None, workers=args.workers,
            ffwd=(bool(args.ffwd if args.ffwd is not None
                       else os.environ.get("REPRO_FFWD") == "1")
                  and not args.cluster),
        ))
        print(f"timeline written to {args.timeline}", file=sys.stderr)
    rows = bus.profile_rows()
    if args.json:
        json.dump({"counters": bus.counters, "rows": rows,
                   "agent_times_s": agent_times},
                  sys.stdout, indent=2)
        print()
        return 0
    print(_summary(results))
    print()
    width = max([12] + [len(r["system"]) for r in rows])
    print(f"{'window':>6} {'start_us':>9} {'system':<{width}} "
          f"{'tasks':>6} {'items':>8} {'ms':>8}")
    per_window = 4 * (args.cluster or 1)
    shown = rows if args.all_windows else rows[-per_window * args.tail:]
    if len(shown) < len(rows):
        print(f"  ... ({len(rows) - len(shown)} earlier rows; "
              f"--all-windows to show)")
    for row in shown:
        print(f"{row['window']:>6} {ps_to_us(row['start_ps']):>9.1f} "
              f"{row['system']:<{width}} {row['tasks']:>6} {row['items']:>8} "
              f"{row['elapsed_s'] * 1000:>8.3f}")
    print()
    print(f"{'totals':<{width + 4}} {'tasks':>6} {'items':>8} {'ms':>8}")
    for name, prof in sorted(bus.totals.items()):
        print(f"{name:<{width + 4}} {prof.tasks:>6} {prof.items:>8} "
              f"{prof.elapsed_s * 1000:>8.3f}")
    print(f"windows {bus.counters.get('windows', 0):>{width + 5}}")
    if agent_times is not None:
        print()
        print("per-agent wall-clock (measured T_a):")
        for agent, seconds in enumerate(agent_times):
            print(f"  a{agent}: {seconds * 1000:.3f} ms")
    return 0


def cmd_stats(args) -> int:
    """Run one scenario with telemetry on and dump everything the bus
    measured — counters, gauges, histograms, per-system totals, and (for
    cluster runs) the per-agent busy / barrier-wait series — as JSON or
    CSV, to stdout or ``--out FILE`` (with a provenance manifest)."""
    import json
    from .core.runner import EngineRunner
    scenario = build_scenario(args)
    if args.cluster:
        from .cluster import DonsManager
        from .partition import ClusterSpec, plan_scenario
        mgr = DonsManager(scenario, ClusterSpec.homogeneous(args.cluster),
                          workers_per_agent=args.workers,
                          transport=args.transport,
                          backend=args.backend, telemetry=True)
        engine = mgr._engine(plan_scenario(scenario, mgr.cluster).partition)
    else:
        from .core.engine import DodEngine
        engine = DodEngine(scenario, workers=args.workers,
                           backend=args.backend, telemetry=True,
                           ffwd=args.ffwd)
    live = _live_for(args, engine)
    try:
        EngineRunner(engine,
                     on_step=live.on_step if live else None).run()
    finally:
        if live:
            live.close()
    bus = engine.bus
    from .metrics.timeline import stats_csv, stats_dict, write_stats
    if args.out:
        write_stats(bus, args.out, fmt=args.format, manifest=dict(
            command="stats", scenario=scenario.name,
            backend=args.backend or os.environ.get("REPRO_BACKEND")
            or "python",
            transport=args.transport if args.cluster else None,
            cluster=args.cluster or None, workers=args.workers,
        ))
        print(f"stats written to {args.out}")
    elif args.format == "csv":
        sys.stdout.write(stats_csv(bus))
    else:
        json.dump(stats_dict(bus), sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def cmd_fuzz(args) -> int:
    from .conformance.runner import cmd_fuzz as run_fuzz_cli
    return run_fuzz_cli(args)


def cmd_plan(args) -> int:
    scenario = build_scenario(args)
    from .partition import ClusterSpec, machine_times, plan_scenario
    from .partition.loadest import estimate_scenario_loads
    cluster = ClusterSpec.homogeneous(args.machines)
    loads = estimate_scenario_loads(scenario)
    plan = plan_scenario(scenario, cluster, loads)
    print(f"machines        : {args.machines}")
    print(f"planning time   : {plan.planning_time_s * 1000:.1f} ms")
    print(f"bisections      : {plan.bisections} "
          f"({plan.rejected_bisections} rejected)")
    print(f"estimated T     : {plan.estimated_time_s:.6f}")
    sizes = plan.partition.part_sizes()
    times = machine_times(scenario.topology, plan.partition, loads, cluster)
    for machine, (size, t) in enumerate(zip(sizes, times)):
        print(f"  machine {machine}: {size:5d} nodes  T_a={t:.6f}")
    return 0


def cmd_viz(args) -> int:
    scenario = build_scenario(args)
    from .core.engine import run_dons
    from .partition.loadest import estimate_scenario_loads
    from .viz import (flow_gantt_svg, link_utilization_svg,
                      window_breakdown_heatmap)
    results = run_dons(scenario, workers=args.workers,
                       backend=args.backend)
    os.makedirs(args.out_dir, exist_ok=True)
    gantt = os.path.join(args.out_dir, "flows.svg")
    with open(gantt, "w") as fh:
        fh.write(flow_gantt_svg(results, scenario))
    loads = estimate_scenario_loads(scenario)
    links = os.path.join(args.out_dir, "links.svg")
    with open(links, "w") as fh:
        fh.write(link_utilization_svg(loads, scenario, results.end_time_ps))
    print(_summary(results))
    print(f"\nper-system window load:")
    print(window_breakdown_heatmap(results))
    print(f"\nwrote {gantt}\nwrote {links}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DONS reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--topology", default="dumbbell:4",
                        help="fattree:K | dumbbell:N | abilene | geant | isp")
    common.add_argument("--flows", default="fixed:n=8,size=100000",
                        help="mesh:... | fixed:... | wan_twin:... | "
                             "storage:...")
    common.add_argument("--scheduler", default="fifo",
                        choices=[k.value for k in SchedulerKind])
    common.add_argument("--classes", type=int, default=3)
    common.add_argument("--buffer-kb", type=int, default=4096)
    common.add_argument("--workers", type=int, default=1)
    common.add_argument("--backend", choices=["python", "numpy"],
                        default=None,
                        help="ECS table/system backend for the DOD engine "
                             "(default: $REPRO_BACKEND, then python)")
    common.add_argument("--save", metavar="FILE",
                        help="write the scenario JSON before running")
    common.add_argument("--load", metavar="FILE",
                        help="load a scenario JSON instead of building one")

    run = sub.add_parser("run", parents=[common],
                         help="run one scenario on one engine")
    run.add_argument("--engine", choices=["dons", "ood"], default="dons")
    run.set_defaults(fn=cmd_run)

    compare = sub.add_parser("compare", parents=[common],
                             help="run both engines, compare traces")
    compare.set_defaults(fn=cmd_compare)

    profile = sub.add_parser(
        "profile", parents=[common],
        help="run the DOD engine (or --cluster N agents), print "
             "per-window per-system breakdown")
    profile.add_argument("--json", action="store_true",
                         help="dump counters and rows as JSON")
    profile.add_argument("--all-windows", action="store_true",
                         help="print every window (default: the last few)")
    profile.add_argument("--tail", type=int, default=5,
                         help="windows to show without --all-windows")
    profile.add_argument("--cluster", type=int, default=0, metavar="N",
                         help="distribute over N agents; rows come from "
                              "the merged cluster bus tagged a<id>:system")
    profile.add_argument("--transport", choices=["local", "process", "shm"],
                         default="local",
                         help="how cluster agents are hosted (with --cluster)")
    profile.add_argument("--timeline", metavar="FILE",
                         help="enable telemetry and export the run as "
                              "Chrome trace JSON (open in Perfetto)")
    profile.add_argument("--ffwd", action=argparse.BooleanOptionalAction,
                         default=None,
                         help="window-signature memo fast-forwarding for "
                              "steady-state traffic (default: $REPRO_FFWD, "
                              "then off; ignored with --cluster, where the "
                              "memo is per-agent and auto-disabled while "
                              "cross-agent traffic is pending)")
    profile.add_argument("--progress", action="store_true",
                         help="stderr progress/ETA line (TTY only)")
    profile.add_argument("--live", metavar="FILE",
                         help="stream NDJSON progress records to FILE "
                              "('-' = stderr) while the run executes; with "
                              "--timeline the flight recorder also arms and "
                              "dumps FILE.flight.json on crash/SIGUSR1")
    profile.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve OpenMetrics text at "
                              "http://127.0.0.1:PORT/metrics during the run "
                              "(0 = ephemeral port, printed to stderr; "
                              "default: $REPRO_METRICS_PORT)")
    profile.set_defaults(fn=cmd_profile)

    stats = sub.add_parser(
        "stats", parents=[common],
        help="run with telemetry and dump counters / gauges / histograms")
    stats.add_argument("--cluster", type=int, default=0, metavar="N",
                       help="distribute over N agents")
    stats.add_argument("--transport", choices=["local", "process", "shm"],
                       default="local",
                       help="how cluster agents are hosted (with --cluster)")
    stats.add_argument("--out", metavar="FILE",
                       help="write to FILE (plus FILE.manifest.json) "
                            "instead of stdout")
    stats.add_argument("--format", choices=["json", "csv"], default="json")
    stats.add_argument("--watch", action="store_true",
                       help="stream NDJSON progress records to stderr "
                            "while the run executes (the live plane; "
                            "stdout still gets the final stats)")
    stats.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve OpenMetrics text at "
                            "http://127.0.0.1:PORT/metrics during the run "
                            "(0 = ephemeral port; default: "
                            "$REPRO_METRICS_PORT)")
    stats.add_argument("--ffwd", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="window-signature memo fast-forwarding, as in "
                            "profile --ffwd — lets the memo.* counters "
                            "show up in the exported stats (default: "
                            "$REPRO_FFWD, then off)")
    stats.set_defaults(fn=cmd_stats)

    plan = sub.add_parser("plan", parents=[common],
                          help="plan distributed execution")
    plan.add_argument("--machines", type=int, default=4)
    plan.set_defaults(fn=cmd_plan)

    viz = sub.add_parser("viz", parents=[common],
                         help="run and render SVG/ASCII visualizations")
    viz.add_argument("--out-dir", default="viz-out")
    viz.set_defaults(fn=cmd_viz)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing: generated scenarios "
             "through every engine stack, traces must be byte-identical "
             "and satisfy the reference-free invariants")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="fuzz stream seed (same seed = same scenarios)")
    fuzz.add_argument("--runs", type=int, default=25,
                      help="generated scenarios to check")
    fuzz.add_argument("--shrink", action="store_true",
                      help="shrink the first failure to a minimal spec")
    fuzz.add_argument("--oracles", metavar="A,B,...",
                      help="comma-separated oracle set (first is the "
                           "reference); default: the acceptance set")
    fuzz.add_argument("--artifact-dir", metavar="DIR",
                      help="write a JSON repro artifact for a failure")
    fuzz.add_argument("--replay", metavar="FILE",
                      help="re-check one saved spec / corpus entry / "
                           "repro artifact instead of fuzzing")
    fuzz.add_argument("--progress", action="store_true",
                      help="stderr progress line (TTY only)")
    fuzz.set_defaults(fn=cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed (e.g. piped into head); exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
