"""NetVision-lite: flow-level visualization of simulation results (§8).

The paper ships a Unity-based visualization front-end (NetVision) that
offers "a flow-level visualization of network behavior and key
performance metrics".  This module is the dependency-free equivalent:

* :func:`flow_gantt_svg` — per-flow lifetime chart (start -> completion);
* :func:`link_utilization_svg` — per-link offered-load bars;
* :func:`sparkline` / :func:`ascii_heatmap` — terminal renderings of
  time series (queue depth, per-window load) for quick inspection.

Everything renders to plain SVG/ASCII strings with no third-party
dependencies, so results can be inspected anywhere the library runs.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence, Tuple

from ..metrics import SimResults
from ..partition.loadest import LoadModel
from ..scenario import Scenario
from ..units import ps_to_us

_SVG_HEADER = ('<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
               'height="{h}" viewBox="0 0 {w} {h}">')
#: Flow bars cycle over this qualitative palette.
_PALETTE = ("#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
            "#edc948", "#b07aa1", "#9c755f")

_BAR_H = 14
_MARGIN = 120


def _svg(width: int, height: int, body: List[str]) -> str:
    return "\n".join(
        [_SVG_HEADER.format(w=width, h=height)] + body + ["</svg>"]
    )


def flow_gantt_svg(results: SimResults, scenario: Scenario,
                   max_flows: int = 64, width: int = 900) -> str:
    """Per-flow lifetime chart: one bar from start to completion.

    Unfinished flows render as open-ended hatched bars.
    """
    flows = sorted(results.flows.values(), key=lambda f: f.flow_id)[:max_flows]
    if not flows:
        return _svg(width, 40, ["<text x='4' y='20'>no flows</text>"])
    horizon = max(
        (f.complete_ps or results.end_time_ps) for f in flows
    ) or 1
    scale = (width - _MARGIN - 20) / horizon
    body = []
    for i, fr in enumerate(flows):
        y = 24 + i * (_BAR_H + 4)
        color = _PALETTE[fr.flow_id % len(_PALETTE)]
        end = fr.complete_ps if fr.complete_ps is not None else results.end_time_ps
        x0 = _MARGIN + fr.start_ps * scale
        w = max(1.0, (end - fr.start_ps) * scale)
        flow = scenario.flows[fr.flow_id]
        label = html.escape(
            f"f{fr.flow_id} {flow.src}->{flow.dst} "
            f"{flow.size_bytes // 1000}KB"
        )
        body.append(f'<text x="4" y="{y + 11}" font-size="10" '
                    f'font-family="monospace">{label}</text>')
        dash = '' if fr.complete_ps is not None else ' stroke-dasharray="3,2"'
        fill = color if fr.complete_ps is not None else "none"
        body.append(
            f'<rect x="{x0:.1f}" y="{y}" width="{w:.1f}" height="{_BAR_H}" '
            f'fill="{fill}" stroke="{color}"{dash}/>'
        )
        if fr.fct_ps is not None:
            body.append(
                f'<text x="{x0 + w + 4:.1f}" y="{y + 11}" font-size="9" '
                f'fill="#555">{ps_to_us(fr.fct_ps):.1f}us</text>'
            )
    height = 30 + len(flows) * (_BAR_H + 4)
    body.insert(0, f'<text x="4" y="14" font-size="12" font-weight="bold">'
                   f'Flow lifetimes — {html.escape(results.scenario_name)}'
                   f'</text>')
    return _svg(width, height, body)


def link_utilization_svg(loads: LoadModel, scenario: Scenario,
                         horizon_ps: int, top: int = 24,
                         width: int = 700) -> str:
    """Offered load / capacity bars for the busiest links."""
    topo = scenario.topology
    utils: List[Tuple[float, str]] = []
    for link in topo.links:
        cap_bytes = link.rate_bps / 8.0 * (horizon_ps / 1e12)
        if cap_bytes <= 0:
            continue
        util = loads.link_load[link.link_id] / cap_bytes
        a, b = topo.nodes[link.node_a].name, topo.nodes[link.node_b].name
        utils.append((util, f"{a}-{b}"))
    utils.sort(reverse=True)
    utils = utils[:top]
    body = [f'<text x="4" y="14" font-size="12" font-weight="bold">'
            f'Link utilization (offered/capacity)</text>']
    max_util = max((u for u, _ in utils), default=1.0) or 1.0
    bar_w = width - 240
    for i, (util, name) in enumerate(utils):
        y = 26 + i * 16
        w = max(1.0, bar_w * min(util / max(max_util, 1.0), 1.0))
        color = "#e15759" if util > 1.0 else "#4e79a7"
        body.append(f'<text x="4" y="{y + 10}" font-size="9" '
                    f'font-family="monospace">{html.escape(name[:30])}</text>')
        body.append(f'<rect x="200" y="{y}" width="{w:.1f}" height="12" '
                    f'fill="{color}"/>')
        body.append(f'<text x="{205 + w:.1f}" y="{y + 10}" font-size="9">'
                    f'{util:.2f}</text>')
    return _svg(width, 32 + len(utils) * 16, body)


_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line ASCII rendering of a series (downsampled to ``width``)."""
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [
            max(values[int(i * step):max(int(i * step) + 1,
                                         int((i + 1) * step))])
            for i in range(width)
        ]
    top = max(values) or 1.0
    idx = [min(int(v / top * (len(_SPARK_CHARS) - 1)), len(_SPARK_CHARS) - 1)
           for v in values]
    return "".join(_SPARK_CHARS[i] for i in idx)


def ascii_heatmap(rows: Dict[str, Sequence[float]], width: int = 60) -> str:
    """Stacked labeled sparklines (e.g. per-system load over windows)."""
    if not rows:
        return ""
    label_w = max(len(k) for k in rows) + 1
    return "\n".join(
        f"{name.ljust(label_w)}|{sparkline(series, width)}|"
        for name, series in rows.items()
    )


def window_breakdown_heatmap(results: SimResults, width: int = 60) -> str:
    """Fig. 13 as ASCII: per-system events across lookahead windows."""
    wb = results.window_breakdown
    if not wb:
        return "(no windows recorded)"
    series = {
        "ack": [w[1] for w in wb],
        "send": [w[2] for w in wb],
        "forward": [w[3] for w in wb],
        "transmit": [w[4] for w in wb],
    }
    return ascii_heatmap(series, width)
