"""NetVision-lite: dependency-free flow-level visualization (§8)."""

from .render import (
    ascii_heatmap, flow_gantt_svg, link_utilization_svg, sparkline,
    window_breakdown_heatmap,
)

__all__ = [
    "ascii_heatmap", "flow_gantt_svg", "link_utilization_svg",
    "sparkline", "window_breakdown_heatmap",
]
