"""Live observability plane: stream a run while it executes.

Everything :mod:`repro.metrics.timeline` exports is post-mortem — it
reads the bus after ``finalize()``.  This module is the in-flight
counterpart, four pieces reading the same
:class:`~repro.core.instrument.InstrumentationBus` /
:class:`~repro.core.telemetry.MetricsRegistry` without perturbing the
simulation (the trace digest is byte-identical with the plane on or
off):

* :class:`LivePlane` — a wall-clock-throttled sampler hung off
  :class:`~repro.core.runner.EngineRunner`'s per-window ``on_step``
  hook.  Every ``$REPRO_LIVE_INTERVAL_MS`` (default 500) it emits one
  NDJSON progress record — sim time, windows done, events committed,
  events/s, memo hit rate, shm transport counters, per-agent busy /
  barrier-wait — to a file or stream, and republishes the same snapshot
  to the metrics endpoint.  ``python -m repro profile --live FILE`` and
  ``python -m repro stats --watch`` are the CLI front ends.
* :class:`MetricsServer` — a localhost HTTP listener
  (``$REPRO_METRICS_PORT``; port 0 picks an ephemeral port) serving the
  latest snapshot at ``/metrics`` in OpenMetrics text exposition format,
  scrapeable by Prometheus.  The serving thread only ever reads an
  immutable published string — it never touches live engine state.
* :class:`FlightRecorder` — a bounded ring buffer over the bus's span
  stream holding the last N windows.  On a crash, a fault-injection
  kill, or ``SIGUSR1`` it dumps a Chrome-trace-compatible artifact
  (validated by :func:`repro.metrics.timeline.validate_chrome_trace`,
  the same gate CI runs on full timelines).  Spans only exist when
  telemetry is on, so the recorder arms itself only then.
* :class:`ClusterWatchdog` — coordinator-side stall/slowness detection
  for :class:`~repro.cluster.runtime.ClusterEngine`.  It folds every
  window's measured per-agent reply times into per-agent baselines,
  flags agents whose current window exceeds the learned threshold,
  emits ``watchdog.*`` counters and NDJSON events into the live stream,
  and accumulates the per-agent busy seconds that
  :func:`repro.partition.refit_cluster_spec` consumes as
  ``measured_times``.

The NDJSON record schema is pinned by ``LIVE_SCHEMA_VERSION`` (and by
``tests/metrics/test_live.py``); every record carries the full key set
with ``null`` for not-applicable fields, so consumers never branch on
key presence.
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = [
    "LIVE_SCHEMA_VERSION", "LIVE_RECORD_KEYS",
    "LivePlane", "MetricsServer", "FlightRecorder", "ClusterWatchdog",
    "openmetrics_text", "validate_openmetrics",
]

#: Version stamp of the NDJSON progress-record schema (the ``v`` field).
LIVE_SCHEMA_VERSION = 1

#: Every NDJSON record carries exactly this key set (``null`` marks a
#: field the run cannot measure — e.g. agent series on a serial engine).
LIVE_RECORD_KEYS = (
    "v", "kind", "wall_s", "windows", "sim_ps", "events", "events_per_s",
    "done", "memo_hit_rate", "shm_frames", "shm_bytes", "shm_fallbacks",
    "agents_busy_s", "agents_wait_s",
)

#: Sampler throttle (wall-clock milliseconds between NDJSON records).
DEFAULT_INTERVAL_MS = 500.0
ENV_INTERVAL = "REPRO_LIVE_INTERVAL_MS"
#: OpenMetrics endpoint port; unset disables the listener, 0 = ephemeral.
ENV_PORT = "REPRO_METRICS_PORT"

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_AGENT_RE = re.compile(r"^a(\d+):(.+)$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\+?Inf|NaN))$"
)


def _metric_name(name: str) -> Tuple[str, str]:
    """Map one bus metric name to ``(family, labels)``.

    ``a<i>:rest`` names (the cluster merge's per-agent tag) become one
    shared ``repro_agent_<rest>`` family with an ``agent="<i>"`` label;
    everything else is sanitized under the ``repro_`` prefix.
    """
    match = _AGENT_RE.match(name)
    if match:
        rest = _NAME_RE.sub("_", match.group(2))
        return f"repro_agent_{rest}", f'agent="{match.group(1)}"'
    return "repro_" + _NAME_RE.sub("_", name), ""


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


#: Progress-record fields republished as gauges on the endpoint.
_LIVE_GAUGES = (
    ("windows", "repro_windows_done", "lookahead windows executed"),
    ("sim_ps", "repro_sim_time_picoseconds", "simulated time reached"),
    ("events", "repro_events_committed", "simulation events committed"),
    ("events_per_s", "repro_events_per_second", "throughput (cumulative)"),
    ("wall_s", "repro_wall_clock_seconds", "wall-clock since attach"),
    ("done", "repro_run_completion_ratio", "fraction of the duration cut"),
    ("memo_hit_rate", "repro_memo_hit_rate", "window-memo hit fraction"),
)


def openmetrics_text(record: Dict[str, Any],
                     counters: Optional[Dict[str, int]] = None,
                     metrics: Optional[Dict[str, Any]] = None) -> str:
    """Render one live snapshot as OpenMetrics text exposition format.

    ``record`` is an NDJSON progress record (its numeric fields become
    gauges), ``counters`` the bus's counter dict (families suffixed
    ``_total``), ``metrics`` a
    :meth:`~repro.core.telemetry.MetricsRegistry.snapshot` (gauges pass
    through, histograms are emitted with the cumulative bucket counts
    and ``+Inf`` bound the format requires).  Ends with the mandatory
    ``# EOF`` terminator.
    """
    lines: List[str] = []
    for key, family, help_text in _LIVE_GAUGES:
        value = record.get(key)
        if value is None:
            continue
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"{family} {_fmt(value)}")
    for name in sorted(counters or ()):
        family, labels = _metric_name(name)
        lines.append(f"# TYPE {family} counter")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{family}_total{suffix} {_fmt(counters[name])}")
    metrics = metrics or {}
    # Agent-tagged gauges share one family; group before emitting so the
    # TYPE line appears exactly once per family.
    families: Dict[str, List[str]] = {}
    for name in sorted(metrics.get("counters", ())):
        family, labels = _metric_name(name)
        suffix = f"{{{labels}}}" if labels else ""
        families.setdefault(family + " counter", []).append(
            f"{family}_total{suffix} {_fmt(metrics['counters'][name])}")
    for name in sorted(metrics.get("gauges", ())):
        family, labels = _metric_name(name)
        suffix = f"{{{labels}}}" if labels else ""
        families.setdefault(family + " gauge", []).append(
            f"{family}{suffix} {_fmt(metrics['gauges'][name])}")
    for key in sorted(families):
        family, kind = key.rsplit(" ", 1)
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(families[key])
    for name in sorted(metrics.get("histograms", ())):
        snap = metrics["histograms"][name]
        family, _labels = _metric_name(name)
        lines.append(f"# TYPE {family} histogram")
        cum = 0
        for bound, count in zip(snap["buckets"], snap["counts"]):
            cum += count
            lines.append(f'{family}_bucket{{le="{_fmt(bound)}"}} {cum}')
        lines.append(f'{family}_bucket{{le="+Inf"}} {snap["count"]}')
        lines.append(f"{family}_count {snap['count']}")
        lines.append(f"{family}_sum {_fmt(snap['sum'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_openmetrics(text: str) -> List[Tuple[str, str, float]]:
    """Check one exposition payload against the subset we emit.

    Verifies the ``# EOF`` terminator, that every sample belongs to a
    ``# TYPE``-declared family (with the ``_total`` suffix on counters
    and cumulative, ``+Inf``-terminated buckets on histograms), and that
    sample lines parse.  Raises :class:`ReproError` on the first
    violation; returns the parsed ``(name, labels, value)`` samples.
    """
    if not text.endswith("# EOF\n"):
        raise ReproError("openmetrics: missing '# EOF' terminator")
    types: Dict[str, str] = {}
    samples: List[Tuple[str, str, float]] = []
    hist_state: Dict[str, Dict[str, Any]] = {}
    for i, line in enumerate(text.splitlines()):
        if not line:
            raise ReproError(f"openmetrics: blank line {i}")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if parts[1] == "EOF":
                continue
            if parts[1] not in ("TYPE", "HELP", "UNIT"):
                raise ReproError(f"openmetrics: bad comment line {i}: "
                                 f"{line!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "info", "unknown"):
                    raise ReproError(
                        f"openmetrics: bad TYPE line {i}: {line!r}")
                if parts[2] in types:
                    raise ReproError(
                        f"openmetrics: duplicate TYPE for {parts[2]!r}")
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ReproError(f"openmetrics: unparsable sample line {i}: "
                             f"{line!r}")
        name, labels = match.group("name"), match.group("labels") or ""
        value = float(match.group("value").replace("Inf", "inf"))
        family = name
        for suffix in ("_total", "_bucket", "_count", "_sum"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and base in types:
                family = base
                break
        kind = types.get(family)
        if kind is None:
            raise ReproError(
                f"openmetrics: sample {name!r} has no TYPE metadata")
        if kind == "counter" and not name.endswith("_total"):
            raise ReproError(
                f"openmetrics: counter sample {name!r} lacks _total")
        if kind == "histogram" and name.endswith("_bucket"):
            le = dict(
                pair.split("=", 1) for pair in labels.split(",") if pair
            ).get("le", "").strip('"')
            state = hist_state.setdefault(
                family, {"last_le": None, "last_cum": None})
            bound = float(le.replace("Inf", "inf"))
            if state["last_le"] is not None and bound <= state["last_le"]:
                raise ReproError(
                    f"openmetrics: {family} buckets not sorted at {le}")
            if (state["last_cum"] is not None
                    and value < state["last_cum"]):
                raise ReproError(
                    f"openmetrics: {family} buckets not cumulative at {le}")
            state["last_le"], state["last_cum"] = bound, value
            if bound == float("inf"):
                state["inf"] = value
        if kind == "histogram" and name.endswith("_count"):
            inf = hist_state.get(family, {}).get("inf")
            if inf is not None and inf != value:
                raise ReproError(
                    f"openmetrics: {family} +Inf bucket {inf} != "
                    f"count {value}")
        samples.append((name, labels, value))
    return samples


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.rstrip("/") not in ("", "/metrics"):
            self.send_error(404)
            return
        payload = self.server.payload  # type: ignore[attr-defined]
        body = payload.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args: Any) -> None:
        """Scrapes must not spam the run's stderr."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self._lock = threading.Lock()
        self._payload = "# EOF\n"

    @property
    def payload(self) -> str:
        with self._lock:
            return self._payload

    @payload.setter
    def payload(self, text: str) -> None:
        with self._lock:
            self._payload = text


class MetricsServer:
    """Localhost OpenMetrics endpoint serving the last published snapshot.

    The sampler thread *pushes* rendered text with :meth:`publish`; the
    HTTP thread only ever reads that immutable string, so a Prometheus
    scrape can never observe (or block on) live engine state.
    """

    def __init__(self, port: Optional[int] = None) -> None:
        if port is None:
            port = int(os.environ.get(ENV_PORT) or 0)
        self._http = _Server(("127.0.0.1", port), _MetricsHandler)
        self.port: int = self._http.server_address[1]
        self.url = f"http://127.0.0.1:{self.port}/metrics"
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-metrics",
            daemon=True)
        self._thread.start()

    def publish(self, text: str) -> None:
        self._http.payload = text

    def close(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        self._thread.join(timeout=5)


class FlightRecorder:
    """Bounded ring over the bus's span stream: the last N windows.

    :meth:`poll` (called per window by the live plane) absorbs spans the
    bus appended since the previous poll and evicts whole windows beyond
    ``max_windows``, so a multi-hour run holds a constant-size black
    box.  :meth:`dump` renders the ring through the same
    :func:`~repro.metrics.timeline.chrome_trace_events` /
    :func:`~repro.metrics.timeline.validate_chrome_trace` pair CI runs
    on full timelines — a flight dump is always loadable in Perfetto.
    """

    def __init__(self, bus: Any, max_windows: int = 64) -> None:
        self.bus = bus
        self.max_windows = max(1, max_windows)
        self._taken = 0
        self._ring: deque = deque()
        self._window_t0: deque = deque()

    def poll(self) -> None:
        """Absorb new spans; evict windows beyond the ring bound."""
        spans = self.bus.spans
        n = len(spans)
        if n == self._taken:
            return
        for span in spans[self._taken:n]:
            self._ring.append(span)
            if span[2] == "window":
                self._window_t0.append(span[0])
        self._taken = n
        while len(self._window_t0) > self.max_windows:
            self._window_t0.popleft()
            horizon = self._window_t0[0]
            # Span-buffer order is span *end* order; drop everything
            # that finished before the oldest kept window began.
            ring = self._ring
            while ring and ring[0][1] <= horizon:
                ring.popleft()

    @property
    def windows(self) -> int:
        return len(self._window_t0)

    def dump(self, path: str) -> Optional[str]:
        """Write the ring as a validated Chrome-trace artifact.

        Returns the path, or ``None`` when the ring is empty (telemetry
        off: there is nothing to record, and an empty artifact would
        read as a successful dump).
        """
        from .timeline import (
            TELEMETRY_SCHEMA_VERSION, chrome_trace_events,
            validate_chrome_trace,
        )
        self.poll()
        if not self._ring:
            return None
        events = chrome_trace_events(SimpleNamespace(spans=list(self._ring)))
        validate_chrome_trace(events)
        data = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "format": "chrome-trace-events",
                "schema_version": TELEMETRY_SCHEMA_VERSION,
                "flight_recorder": {"windows": self.windows,
                                    "max_windows": self.max_windows},
            },
        }
        with open(path, "w") as fh:
            json.dump(data, fh, indent=1)
            fh.write("\n")
        return path


class ClusterWatchdog:
    """Coordinator-side stall/slowness detection over window reply times.

    Fed by :meth:`ClusterEngine.advance` with the transport's measured
    per-agent ``window_times`` (the same series the barrier-wait gauges
    are built from).  Per agent it keeps an EWMA of normal window cost;
    once ``warmup`` windows are seen, a window exceeding
    ``slow_factor`` × the learned mean is flagged ``slow`` and one
    exceeding ``stall_factor`` × the mean (and the ``min_stall_s``
    floor) is flagged ``stalled``.  Flagged samples do not update the
    baseline, so a stall cannot poison the threshold that caught it.

    Emissions: ``watchdog.checks`` / ``watchdog.slow`` /
    ``watchdog.stalled`` counters on the cluster bus, plus event dicts
    the live plane drains into the NDJSON stream via
    :meth:`pop_events`.  The accumulated per-agent busy seconds
    (:meth:`measured_times`) are the ``measured_times`` sequence
    :func:`repro.partition.refit_cluster_spec` consumes — the watchdog
    keeps the measure → repartition loop closed even when full
    telemetry is off.
    """

    def __init__(self, num_agents: int, slow_factor: float = 4.0,
                 stall_factor: float = 20.0, min_slow_s: float = 1e-3,
                 min_stall_s: float = 0.05, warmup: int = 3,
                 ewma_alpha: float = 0.2, max_events: int = 256) -> None:
        self.slow_factor = slow_factor
        self.stall_factor = stall_factor
        self.min_slow_s = min_slow_s
        self.min_stall_s = min_stall_s
        self.warmup = max(1, warmup)
        self.ewma_alpha = ewma_alpha
        self.busy_s = [0.0] * num_agents
        self.wait_s = [0.0] * num_agents
        self.last_reply_wall = [0.0] * num_agents
        self.flags = [0] * num_agents
        self._mean = [0.0] * num_agents
        self._seen = [0] * num_agents
        self._events: deque = deque(maxlen=max_events)

    def observe(self, window: int, times: List[float],
                bus: Any = None) -> List[Dict[str, Any]]:
        """Fold one window's per-agent reply times in; returns (and
        queues) the events this window raised."""
        if not times:
            return []
        raised: List[Dict[str, Any]] = []
        t_max = max(times)
        now = time.time()
        for agent, t in enumerate(times):
            self.busy_s[agent] += t
            self.wait_s[agent] += t_max - t
            self.last_reply_wall[agent] = now
            seen, mean = self._seen[agent], self._mean[agent]
            kind = None
            if seen >= self.warmup:
                stall_thr = max(self.min_stall_s, self.stall_factor * mean)
                slow_thr = max(self.min_slow_s, self.slow_factor * mean)
                if t > stall_thr:
                    kind, threshold = "stalled", stall_thr
                elif t > slow_thr:
                    kind, threshold = "slow", slow_thr
            if kind is not None:
                event = {"event": kind, "agent": agent, "window": window,
                         "window_s": round(t, 6),
                         "threshold_s": round(threshold, 6)}
                self._events.append(event)
                raised.append(event)
                self.flags[agent] += 1
                if bus is not None:
                    bus.count(f"watchdog.{kind}")
            else:
                # Healthy sample: update the learned baseline.
                self._seen[agent] = seen + 1
                self._mean[agent] = (
                    t if seen == 0
                    else (1.0 - self.ewma_alpha) * mean + self.ewma_alpha * t
                )
        if bus is not None:
            bus.count("watchdog.checks")
        return raised

    def pop_events(self) -> List[Dict[str, Any]]:
        """Drain queued events (the live plane's NDJSON feed)."""
        out = list(self._events)
        self._events.clear()
        return out

    def measured_times(self) -> List[float]:
        """Cumulative per-agent busy seconds — the shape
        ``refit_cluster_spec`` takes as ``measured_times``."""
        return list(self.busy_s)


class LivePlane:
    """The in-flight sampler: one object wiring all live outputs.

    Attach with ``EngineRunner(engine, on_step=plane.on_step)`` (or
    chain it next to the ``--progress`` meter with
    :func:`repro.core.runner.chain_hooks`).  Use as a context manager:
    ``__exit__`` emits a final record, dumps the flight recorder on an
    exception, and releases the HTTP listener and stream.

    The sampler only *reads* engine state — counters, the results event
    totals, the window cursor — and never toggles telemetry, installs
    subscribers, or touches the event calendar, which is how the
    trace-digest neutrality invariant holds by construction.
    """

    def __init__(self, engine: Any, path: Optional[str] = None,
                 stream: Any = None, interval_ms: Optional[float] = None,
                 metrics_port: Optional[int] = None,
                 flight: Any = "auto", flight_path: Optional[str] = None,
                 flight_windows: int = 64) -> None:
        self.engine = engine
        bus = engine.bus
        if interval_ms is None:
            interval_ms = float(os.environ.get(ENV_INTERVAL)
                                or DEFAULT_INTERVAL_MS)
        self.interval_s = max(0.0, interval_ms) / 1e3
        self._stream = stream
        self._owns_stream = False
        if stream is None and path is not None:
            self._stream = open(path, "w")
            self._owns_stream = True
        self.server: Optional[MetricsServer] = None
        if metrics_port is None and os.environ.get(ENV_PORT):
            metrics_port = int(os.environ[ENV_PORT])
        if metrics_port is not None:
            self.server = MetricsServer(metrics_port)
        if flight == "auto":
            flight = bool(getattr(bus, "telemetry", False))
        self.recorder: Optional[FlightRecorder] = None
        if flight:
            self.recorder = FlightRecorder(bus, flight_windows)
        if flight_path is None:
            flight_path = (f"{path}.flight.json"
                           if path and path != os.devnull
                           else "repro-flight.json")
        self.flight_path = flight_path
        self.records_emitted = 0
        self._t0 = time.perf_counter()
        self._last = 0.0  # first on_step always samples
        self._steps = 0
        self._recoveries_seen = 0
        self._old_sigusr1: Any = None
        self._closed = False
        if (self.recorder is not None and hasattr(signal, "SIGUSR1")
                and threading.current_thread() is threading.main_thread()):
            self._old_sigusr1 = signal.signal(signal.SIGUSR1, self._on_sigusr1)

    # --- sampling ---------------------------------------------------------

    def on_step(self, steps: int) -> None:
        """Per-window hook: cheap bookkeeping, throttled emission."""
        self._steps = steps
        if self.recorder is not None:
            self.recorder.poll()
        now = time.perf_counter()
        if now - self._last < self.interval_s:
            return
        self._last = now
        self.sample(now=now)

    def _record(self, kind: str, now: float) -> Dict[str, Any]:
        engine = self.engine
        prog = getattr(engine, "progress", None)
        p = prog() if callable(prog) else {}
        counters = engine.bus.counters
        wall = now - self._t0
        events = p.get("events", 0)
        hits = counters.get("memo.hit", 0)
        lookups = hits + counters.get("memo.miss", 0)
        watchdog = getattr(engine, "watchdog", None)
        busy = wait = None
        if watchdog is not None:
            busy = [round(s, 6) for s in watchdog.busy_s]
            wait = [round(s, 6) for s in watchdog.wait_s]
        elif getattr(engine, "_busy_s", None):
            busy = [round(s, 6) for s in engine._busy_s]
            wait = [round(s, 6) for s in engine._wait_s]
        return {
            "v": LIVE_SCHEMA_VERSION,
            "kind": kind,
            "wall_s": round(wall, 6),
            "windows": p.get("windows", self._steps),
            "sim_ps": p.get("sim_ps", 0),
            "events": events,
            "events_per_s": round(events / wall, 3) if wall > 0 else 0.0,
            "done": p.get("done"),
            "memo_hit_rate": round(hits / lookups, 6) if lookups else None,
            "shm_frames": counters.get("transport.shm_frames", 0),
            "shm_bytes": counters.get("transport.shm_bytes", 0),
            "shm_fallbacks": counters.get("transport.shm_fallbacks", 0),
            "agents_busy_s": busy,
            "agents_wait_s": wait,
        }

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._stream is not None:
            self._stream.write(json.dumps(record, separators=(",", ":"))
                               + "\n")
            self._stream.flush()
        self.records_emitted += 1

    def sample(self, kind: str = "progress",
               now: Optional[float] = None) -> Dict[str, Any]:
        """Emit one NDJSON record (plus queued watchdog events) and
        republish the OpenMetrics snapshot.  Returns the record."""
        if now is None:
            now = time.perf_counter()
        engine = self.engine
        record = self._record(kind, now)
        watchdog = getattr(engine, "watchdog", None)
        if watchdog is not None:
            for event in watchdog.pop_events():
                self._emit({"v": LIVE_SCHEMA_VERSION, "kind": "watchdog",
                            "wall_s": record["wall_s"], **event})
        recoveries = getattr(engine, "recoveries", None)
        if recoveries is not None and len(recoveries) > self._recoveries_seen:
            self._recoveries_seen = len(recoveries)
            dumped = self.dump_flight()
            if dumped:
                self._emit({"v": LIVE_SCHEMA_VERSION, "kind": "flight",
                            "wall_s": record["wall_s"], "path": dumped,
                            "trigger": "fault-recovery"})
        self._emit(record)
        if self.server is not None:
            bus = engine.bus
            self.server.publish(openmetrics_text(
                record, dict(bus.counters), bus.metrics.snapshot()))
        return record

    # --- flight recorder triggers -----------------------------------------

    def dump_flight(self) -> Optional[str]:
        if self.recorder is None:
            return None
        return self.recorder.dump(self.flight_path)

    def _on_sigusr1(self, _signum: int, _frame: Any) -> None:
        dumped = self.dump_flight()
        if dumped:
            self._emit({"v": LIVE_SCHEMA_VERSION, "kind": "flight",
                        "wall_s": round(time.perf_counter() - self._t0, 6),
                        "path": dumped, "trigger": "sigusr1"})

    # --- lifecycle --------------------------------------------------------

    def close(self, final: bool = True) -> None:
        """Emit the final record and release every resource (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            if final:
                self.sample(kind="final")
        finally:
            if self._old_sigusr1 is not None:
                signal.signal(signal.SIGUSR1, self._old_sigusr1)
                self._old_sigusr1 = None
            if self.server is not None:
                self.server.close()
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "LivePlane":
        return self

    def __exit__(self, exc_type: Any, _exc: Any, _tb: Any) -> bool:
        if exc_type is not None:
            # Crash: preserve the black box before releasing anything.
            try:
                self.dump_flight()
            except Exception:  # the dump must never mask the real error
                pass
            self.close(final=False)
        else:
            self.close()
        return False
