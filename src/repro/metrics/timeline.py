"""Telemetry exporters: Perfetto timelines, metric dumps, run manifests.

Three ways out of an :class:`~repro.core.instrument.InstrumentationBus`:

* :func:`chrome_trace_events` / :func:`write_timeline` — the bus's span
  buffer as Chrome trace event format JSON (load in Perfetto or
  ``about://tracing``).  Span names tagged ``a<id>:`` by the cluster
  merge land on that agent's process track (pid ``id + 1``); the
  coordinator's own per-agent slices (category ``"cluster"``, e.g.
  barrier-wait) go on a second thread row of the same process so they
  never interleave with the agent's own run/window/system spans.
  Begin/end records are emitted as matched ``B``/``E`` pairs with
  strictly nested, monotone timestamps — :func:`validate_chrome_trace`
  checks exactly that and is what CI runs against every exported file.
* :func:`stats_dict` / :func:`write_stats` — counters, gauges,
  histograms, per-system totals as JSON or CSV.  For cluster buses the
  coordinator's per-agent busy / barrier-wait gauges are also flattened
  into ``agent_busy_s`` / ``agent_barrier_wait_s`` lists — the exact
  shape :func:`repro.partition.refit_cluster_spec` takes as
  ``measured_times``, closing the measure → repartition loop.
* :func:`run_manifest` / :func:`write_manifest` — a small provenance
  record (seed, backend, transport, git revision, schema version)
  written next to every artifact as ``<artifact>.manifest.json``.
"""

from __future__ import annotations

import csv
import io
import json
import os
import subprocess
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = [
    "TELEMETRY_SCHEMA_VERSION", "TIMELINE_FORMAT", "MANIFEST_FORMAT",
    "chrome_trace_events", "write_timeline",
    "validate_chrome_trace", "validate_timeline_file",
    "stats_dict", "stats_csv", "write_stats",
    "run_manifest", "write_manifest",
]

#: Version stamp shared by every telemetry artifact this layer writes.
#: v2: perf-smoke reports grew the fast-forward entries (dons_steady_s,
#: dons_ffwd_s, ratio_ffwd_over_plain, ffwd_hits, batch_best_k) and the
#: counter set gained the memo.* family with the memo.apply_ms histogram.
#: v3: stats reports grew the derived ``memo`` (hit/miss/hit_rate) and
#: ``transport_shm`` (frames/bytes/fallbacks) sections, and the live
#: observability plane (repro.metrics.live) started stamping its flight
#: recorder dumps with this version.
TELEMETRY_SCHEMA_VERSION = 3
TIMELINE_FORMAT = "chrome-trace-events"
MANIFEST_FORMAT = "repro-run-manifest-v1"


def _split_track(name: str, cat: str) -> Tuple[int, int, str]:
    """Map one span to its (pid, tid, display-name) track.

    ``a<id>:`` prefixes select the agent's process; coordinator-recorded
    slices about an agent (category ``"cluster"``) take thread 1 so they
    cannot break the nesting of the agent's own spans on thread 0.
    """
    tag, sep, rest = name.partition(":")
    if sep and len(tag) > 1 and tag[0] == "a" and tag[1:].isdigit():
        return int(tag[1:]) + 1, (1 if cat == "cluster" else 0), rest
    return 0, 0, name


def chrome_trace_events(
    bus: Any,
    process_names: Optional[Dict[int, str]] = None,
) -> List[Dict[str, Any]]:
    """Render the bus's span buffer as Chrome trace events.

    Per (pid, tid) track, spans are emitted as properly nested matched
    B/E pairs: children are clamped into their parent when clock jitter
    makes them overhang, so a schema validator (and Perfetto) always
    sees a well-formed stack.  Timestamps are microseconds, shifted so
    the earliest span starts at 0.
    """
    tracks: Dict[Tuple[int, int], List[Tuple[float, float, str, str, Any]]] = {}
    for t0, t1, name, cat, attrs in bus.spans:
        pid, tid, display = _split_track(name, cat)
        tracks.setdefault((pid, tid), []).append(
            (t0, t1, display, cat, attrs)
        )
    if not tracks:
        return []
    base = min(s[0] for spans in tracks.values() for s in spans)

    def us(t: float) -> float:
        return round((t - base) * 1e6, 3)

    events: List[Dict[str, Any]] = []
    names = process_names or {}
    for pid in sorted({pid for pid, _tid in tracks}):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "ts": 0,
            "args": {"name": names.get(
                pid, "run" if pid == 0 else f"agent {pid - 1}")},
        })
    body: List[Dict[str, Any]] = []
    for (pid, tid), spans in sorted(tracks.items()):
        # Outermost-first order; the stack then yields matched nesting.
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: List[Tuple[float, str, str]] = []  # (end, name, cat)

        def pop() -> None:
            end, name, cat = stack.pop()
            body.append({"ph": "E", "name": name, "cat": cat,
                         "pid": pid, "tid": tid, "ts": us(end)})

        for t0, t1, name, cat, attrs in spans:
            while stack and stack[-1][0] <= t0:
                pop()
            if stack and t1 > stack[-1][0]:
                t1 = stack[-1][0]
            if t1 < t0:
                t1 = t0
            event: Dict[str, Any] = {"ph": "B", "name": name, "cat": cat,
                                     "pid": pid, "tid": tid, "ts": us(t0)}
            if attrs:
                event["args"] = dict(attrs)
            body.append(event)
            stack.append((t1, name, cat))
        while stack:
            pop()
    body.sort(key=lambda e: e["ts"])
    return events + body


def write_timeline(bus: Any, path: str,
                   process_names: Optional[Dict[int, str]] = None,
                   manifest: Optional[Dict[str, Any]] = None) -> str:
    """Write the bus's spans as a Chrome trace JSON file (plus a
    ``<path>.manifest.json`` provenance record when ``manifest`` is
    given) and return the timeline path."""
    data = {
        "traceEvents": chrome_trace_events(bus, process_names),
        "displayTimeUnit": "ms",
        "otherData": {"format": TIMELINE_FORMAT,
                      "schema_version": TELEMETRY_SCHEMA_VERSION},
    }
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1)
        fh.write("\n")
    if manifest is not None:
        write_manifest(path, **manifest)
    return path


def validate_chrome_trace(data: Any) -> List[Dict[str, Any]]:
    """Check a timeline against the Chrome trace event schema subset we
    emit: required keys per event, monotone non-decreasing ``ts``, and
    per-track matched B/E pairs.  Raises :class:`ReproError` on the
    first violation; returns the event list for further inspection."""
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ReproError("timeline: missing traceEvents list")
    elif isinstance(data, list):
        events = data
    else:
        raise ReproError("timeline: expected an object or an array")
    last_ts = None
    stacks: Dict[Tuple[Any, Any], List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ReproError(f"timeline: event {i} is not an object")
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                raise ReproError(f"timeline: event {i} lacks {key!r}")
        ph = event["ph"]
        if ph == "M":
            continue
        if ph not in ("B", "E"):
            raise ReproError(f"timeline: event {i} has unexpected "
                             f"phase {ph!r}")
        if "name" not in event:
            raise ReproError(f"timeline: event {i} ({ph}) lacks 'name'")
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            raise ReproError(f"timeline: event {i} ts is not numeric")
        if last_ts is not None and ts < last_ts:
            raise ReproError(
                f"timeline: ts not monotone at event {i} "
                f"({ts} < {last_ts})")
        last_ts = ts
        stack = stacks.setdefault((event["pid"], event["tid"]), [])
        if ph == "B":
            stack.append(event["name"])
        else:
            if not stack:
                raise ReproError(
                    f"timeline: unmatched E {event['name']!r} at event {i}")
            begun = stack.pop()
            if begun != event["name"]:
                raise ReproError(
                    f"timeline: E {event['name']!r} closes B {begun!r} "
                    f"at event {i}")
    for (pid, tid), stack in stacks.items():
        if stack:
            raise ReproError(
                f"timeline: unclosed spans {stack} on pid {pid} tid {tid}")
    return events


def validate_timeline_file(path: str) -> List[Dict[str, Any]]:
    """Load and validate one exported timeline file."""
    with open(path) as fh:
        return validate_chrome_trace(json.load(fh))


# --- metric dumps ----------------------------------------------------------

def _agent_series(gauges: Dict[str, float], suffix: str) -> Optional[List[float]]:
    """Collect ``a<id>:<suffix>`` gauges into a dense per-agent list."""
    found: Dict[int, float] = {}
    for name, value in gauges.items():
        tag, sep, rest = name.partition(":")
        if (sep and rest == suffix and len(tag) > 1 and tag[0] == "a"
                and tag[1:].isdigit()):
            found[int(tag[1:])] = value
    if not found:
        return None
    return [found.get(i, 0.0) for i in range(max(found) + 1)]


def stats_dict(bus: Any) -> Dict[str, Any]:
    """One JSON-ready report of everything the bus measured: counters,
    the metrics registry snapshot, per-system totals, and (for cluster
    buses) the per-agent busy / barrier-wait series in the shape
    ``refit_cluster_spec`` consumes as ``measured_times``."""
    out: Dict[str, Any] = {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "counters": dict(bus.counters),
        "metrics": bus.metrics.snapshot(),
        "totals": {
            name: {"items": prof.items, "tasks": prof.tasks,
                   "elapsed_s": prof.elapsed_s}
            for name, prof in sorted(bus.totals.items())
        },
        "spans": len(bus.spans),
    }
    busy = _agent_series(bus.metrics.gauges, "busy_s")
    wait = _agent_series(bus.metrics.gauges, "barrier_wait_s")
    if busy is not None or wait is not None:
        n = max(len(busy or ()), len(wait or ()))
        out["agent_busy_s"] = (busy or [0.0] * n)
        out["agent_barrier_wait_s"] = (wait or [0.0] * n)
    counters = bus.counters
    hits = counters.get("memo.hit", 0)
    lookups = hits + counters.get("memo.miss", 0)
    if lookups or any(k.startswith("memo.") for k in counters):
        out["memo"] = {
            "hit": hits,
            "miss": counters.get("memo.miss", 0),
            "ineligible": counters.get("memo.ineligible", 0),
            "uncacheable": counters.get("memo.uncacheable", 0),
            "validate_fail": counters.get("memo.validate_fail", 0),
            "hit_rate": hits / lookups if lookups else 0.0,
        }
    if any(k.startswith("transport.shm_") for k in counters):
        out["transport_shm"] = {
            "frames": counters.get("transport.shm_frames", 0),
            "bytes": counters.get("transport.shm_bytes", 0),
            "fallbacks": counters.get("transport.shm_fallbacks", 0),
        }
    return out


def stats_csv(bus: Any) -> str:
    """The same report flattened to ``kind,name,field,value`` rows."""
    report = stats_dict(bus)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["kind", "name", "field", "value"])
    for name, value in sorted(report["counters"].items()):
        writer.writerow(["counter", name, "count", value])
    metrics = report["metrics"]
    for name, value in sorted(metrics["counters"].items()):
        writer.writerow(["metric_counter", name, "count", value])
    for name, value in sorted(metrics["gauges"].items()):
        writer.writerow(["gauge", name, "value", value])
    for name, snap in sorted(metrics["histograms"].items()):
        writer.writerow(["histogram", name, "count", snap["count"]])
        writer.writerow(["histogram", name, "sum", snap["sum"]])
        bounds = snap["buckets"] + ["inf"]
        for bound, count in zip(bounds, snap["counts"]):
            writer.writerow(["histogram", name, f"le_{bound}", count])
    for name, prof in sorted(report["totals"].items()):
        for field_name, value in prof.items():
            writer.writerow(["total", name, field_name, value])
    for key in ("agent_busy_s", "agent_barrier_wait_s"):
        for agent, value in enumerate(report.get(key, ())):
            writer.writerow(["agent", f"a{agent}", key[6:], value])
    for section in ("memo", "transport_shm"):
        for field_name, value in sorted(report.get(section, {}).items()):
            writer.writerow([section, section, field_name, value])
    return buf.getvalue()


def write_stats(bus: Any, path: str, fmt: str = "json",
                manifest: Optional[Dict[str, Any]] = None) -> str:
    if fmt == "json":
        with open(path, "w") as fh:
            json.dump(stats_dict(bus), fh, indent=2, sort_keys=True)
            fh.write("\n")
    elif fmt == "csv":
        with open(path, "w") as fh:
            fh.write(stats_csv(bus))
    else:
        raise ReproError(f"unknown stats format {fmt!r}")
    if manifest is not None:
        write_manifest(path, **manifest)
    return path


# --- run manifests ---------------------------------------------------------

def _git_rev() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_manifest(**fields: Any) -> Dict[str, Any]:
    """Provenance of one run: schema version, git revision, creation
    time, plus whatever the caller knows (seed, backend, transport,
    scenario).  ``None`` values are dropped."""
    manifest: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "created_unix": round(time.time(), 3),
        "git_rev": _git_rev(),
    }
    manifest.update({k: v for k, v in fields.items() if v is not None})
    return manifest


def write_manifest(artifact_path: str, **fields: Any) -> str:
    """Write ``<artifact>.manifest.json`` next to an artifact."""
    path = artifact_path + ".manifest.json"
    with open(path, "w") as fh:
        json.dump(run_manifest(**fields), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
