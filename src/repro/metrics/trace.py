"""Event trace recording for fidelity comparison.

The paper's strongest claim (Fig. 10, §6.1) is that DONS and the OOD
baselines produce *identical* event traces, "even down to the timestamp
of all events".  :class:`TraceRecorder` captures the packet-visible
events of a run — enqueue, drop, service start, delivery, flow
completion — as plain tuples, so two runs can be compared for literal
equality (or via a digest for large runs).

Trace entries are canonical tuples:

    (time_ps, kind, location, flow_id, is_ack, seq, extra)

where ``location`` is an interface id for port events and a node id for
deliveries/completions, and ``extra`` carries the CE mark for enqueues.
"""

from __future__ import annotations

import hashlib
from enum import IntEnum
from typing import List, Tuple


class TraceLevel(IntEnum):
    """How much a run records."""

    NONE = 0      # results only, no per-event trace
    PORTS = 1     # service starts + drops (cheap, catches ordering bugs)
    FULL = 2      # everything


class TraceKind(IntEnum):
    """Trace entry types (values are part of the digest format)."""

    ENQ = 0        # packet accepted into an egress queue
    DROP = 1       # tail drop at an egress queue
    DEQ = 2        # service start at an egress port
    DELIVER = 3    # packet handed to a host (receiver or sender side)
    FLOW_DONE = 4  # last byte of a flow received


Entry = Tuple[int, int, int, int, int, int, int]


class TraceRecorder:
    """Collects trace entries; entries are appended in processing order
    but compared after sorting, since the *set* of timestamped events is
    the engine-independent object (processing order inside one timestamp
    is an engine implementation detail the ordering contract already
    pins; sorting makes the comparison insensitive to batching)."""

    def __init__(self, level: TraceLevel = TraceLevel.NONE) -> None:
        self.level = level
        self.entries: List[Entry] = []

    # Hot-path guard: engines check ``if trace.level`` before calling.

    def enq(self, t: int, iface: int, flow: int, is_ack: int, seq: int,
            marked: int) -> None:
        if self.level >= TraceLevel.FULL:
            self.entries.append((t, TraceKind.ENQ, iface, flow, is_ack, seq, marked))

    def drop(self, t: int, iface: int, flow: int, is_ack: int, seq: int) -> None:
        if self.level >= TraceLevel.PORTS:
            self.entries.append((t, TraceKind.DROP, iface, flow, is_ack, seq, 0))

    def deq(self, t: int, iface: int, flow: int, is_ack: int, seq: int) -> None:
        if self.level >= TraceLevel.PORTS:
            self.entries.append((t, TraceKind.DEQ, iface, flow, is_ack, seq, 0))

    def deliver(self, t: int, node: int, flow: int, is_ack: int, seq: int) -> None:
        if self.level >= TraceLevel.FULL:
            self.entries.append((t, TraceKind.DELIVER, node, flow, is_ack, seq, 0))

    def flow_done(self, t: int, node: int, flow: int) -> None:
        if self.level >= TraceLevel.PORTS:
            self.entries.append((t, TraceKind.FLOW_DONE, node, flow, 0, 0, 0))

    # --- comparison -----------------------------------------------------

    def sorted_entries(self) -> List[Entry]:
        return sorted(self.entries)

    def digest(self) -> str:
        """Stable hash of the sorted trace (for large-run comparisons)."""
        h = hashlib.blake2b(digest_size=16)
        for entry in self.sorted_entries():
            h.update(repr(entry).encode())
        return h.hexdigest()

    def __len__(self) -> int:
        return len(self.entries)
