"""Result containers: what a simulation run returns.

Both engines return a :class:`SimResults`; every downstream consumer
(fidelity checks, the cost model, the benches) works from this one type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .trace import TraceRecorder
from ..units import ps_to_s


@dataclass
class FlowResult:
    """Per-flow outcome."""

    flow_id: int
    start_ps: int
    complete_ps: Optional[int]  # None if unfinished at sim end
    size_bytes: int

    @property
    def fct_ps(self) -> Optional[int]:
        if self.complete_ps is None:
            return None
        return self.complete_ps - self.start_ps


@dataclass
class EventCounts:
    """Events processed, bucketed by the paper's four behavioural aspects.

    These are *measured* counts; the machine cost model multiplies them
    by calibrated per-event costs to obtain modeled wall-clocks.
    """

    send: int = 0      # segments put on the wire by senders
    forward: int = 0   # FIB lookups / ingress->egress moves at switches
    transmit: int = 0  # egress service starts (per-packet serialization)
    ack: int = 0       # receiver-side packet handling + ACK generation

    @property
    def total(self) -> int:
        return self.send + self.forward + self.transmit + self.ack

    def add(self, other: "EventCounts") -> None:
        self.send += other.send
        self.forward += other.forward
        self.transmit += other.transmit
        self.ack += other.ack


@dataclass
class SimResults:
    """Everything a run produces."""

    engine: str
    scenario_name: str
    end_time_ps: int
    flows: Dict[int, FlowResult] = field(default_factory=dict)
    #: (sample_time_ps, rtt_ps, flow_id) per ACK processed at a sender.
    rtt_samples: List[Tuple[int, int, int]] = field(default_factory=list)
    events: EventCounts = field(default_factory=EventCounts)
    #: events processed at each node (partition-evaluation input).
    node_events: Dict[int, int] = field(default_factory=dict)
    drops: int = 0
    marks: int = 0
    tx_bytes: int = 0
    trace: Optional[TraceRecorder] = None
    #: DOD engine only: per lookahead window, events per system
    #: [(window_start_ps, ack, send, forward, transmit), ...] (Fig. 13).
    window_breakdown: List[Tuple[int, int, int, int, int]] = field(default_factory=list)

    # --- summaries -------------------------------------------------------

    def fcts_ps(self) -> List[int]:
        """Completed flows' FCTs, ordered by flow id."""
        return [
            fr.fct_ps for _, fr in sorted(self.flows.items())
            if fr.fct_ps is not None
        ]

    def completed(self) -> int:
        return sum(1 for fr in self.flows.values() if fr.complete_ps is not None)

    def mean_fct_s(self) -> Optional[float]:
        fcts = self.fcts_ps()
        if not fcts:
            return None
        return ps_to_s(sum(fcts)) / len(fcts)

    def rtts_ps(self) -> List[int]:
        """RTT samples in measurement order (Fig. 10a plots the first 200)."""
        return [rtt for _, rtt, _ in self.rtt_samples]
