"""Trace analysis: query and join the event traces engines record.

A FULL-level trace contains every enqueue, service start, drop and
delivery.  This module turns that flat list into the questions a
simulation study actually asks:

* :func:`packet_journey` — the hop-by-hop life of one packet;
* :func:`queueing_delays` — per-packet time spent queued at a port;
* :func:`per_hop_latency` — serialization+propagation per traversed hop;
* :func:`drops_by_port` / :func:`flow_timeline` — aggregations.

All functions are pure over the trace entry tuples
``(t, kind, location, flow, is_ack, seq, extra)``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .trace import Entry, TraceKind, TraceRecorder

PacketKey = Tuple[int, int, int]  # (flow, is_ack, seq)


def _key(entry: Entry) -> PacketKey:
    return (entry[3], entry[4], entry[5])


@dataclass(frozen=True)
class HopRecord:
    """One port traversal of one packet."""

    iface_id: int
    enq_ps: int
    deq_ps: int

    @property
    def queueing_ps(self) -> int:
        return self.deq_ps - self.enq_ps


def packet_journey(trace: TraceRecorder, flow: int, seq: int,
                   is_ack: int = 0) -> List[Entry]:
    """Every trace entry of one packet, in time order."""
    want = (flow, is_ack, seq)
    return sorted(e for e in trace.entries if _key(e) == want)


def hops(trace: TraceRecorder, flow: int, seq: int,
         is_ack: int = 0) -> List[HopRecord]:
    """ENQ/DEQ pairs of one packet, one per traversed port.

    A retransmitted sequence number traverses ports repeatedly; pairs
    are matched in time order per interface.
    """
    journey = packet_journey(trace, flow, seq, is_ack)
    pending: Dict[int, List[int]] = defaultdict(list)
    out: List[HopRecord] = []
    for t, kind, loc, *_rest in journey:
        if kind == TraceKind.ENQ:
            pending[loc].append(t)
        elif kind == TraceKind.DEQ and pending[loc]:
            out.append(HopRecord(loc, pending[loc].pop(0), t))
    return sorted(out, key=lambda h: h.enq_ps)


def queueing_delays(trace: TraceRecorder) -> Dict[int, List[int]]:
    """iface id -> queueing delays (ps) of every packet it served."""
    pending: Dict[Tuple[int, PacketKey], List[int]] = defaultdict(list)
    out: Dict[int, List[int]] = defaultdict(list)
    for entry in sorted(trace.entries):
        t, kind, loc = entry[0], entry[1], entry[2]
        if kind == TraceKind.ENQ:
            pending[(loc, _key(entry))].append(t)
        elif kind == TraceKind.DEQ:
            stack = pending.get((loc, _key(entry)))
            if stack:
                out[loc].append(t - stack.pop(0))
    return dict(out)


def per_hop_latency(trace: TraceRecorder, flow: int, seq: int,
                    is_ack: int = 0) -> List[Tuple[int, int]]:
    """(iface_id, deq-to-next-enq latency) along one packet's path —
    serialization plus propagation per hop."""
    hop_list = hops(trace, flow, seq, is_ack)
    out = []
    for a, b in zip(hop_list, hop_list[1:]):
        out.append((a.iface_id, b.enq_ps - a.deq_ps))
    return out


def drops_by_port(trace: TraceRecorder) -> Dict[int, int]:
    """iface id -> tail drops recorded there."""
    out: Dict[int, int] = defaultdict(int)
    for entry in trace.entries:
        if entry[1] == TraceKind.DROP:
            out[entry[2]] += 1
    return dict(out)


def flow_timeline(trace: TraceRecorder, flow: int) -> Dict[str, int]:
    """First/last interesting timestamps of one flow."""
    mine = sorted(e for e in trace.entries if e[3] == flow)
    if not mine:
        return {}
    out = {"first_event_ps": mine[0][0], "last_event_ps": mine[-1][0]}
    for entry in mine:
        if entry[1] == TraceKind.FLOW_DONE:
            out["complete_ps"] = entry[0]
            break
    data_deq = [e[0] for e in mine
                if e[1] == TraceKind.DEQ and e[4] == 0]
    if data_deq:
        out["first_data_deq_ps"] = data_deq[0]
    return out


def marked_fraction(trace: TraceRecorder, iface_id: Optional[int] = None) -> float:
    """Fraction of enqueued data packets that were CE-marked."""
    total = 0
    marked = 0
    for entry in trace.entries:
        if entry[1] != TraceKind.ENQ or entry[4]:
            continue
        if iface_id is not None and entry[2] != iface_id:
            continue
        total += 1
        marked += 1 if entry[6] else 0
    return marked / total if total else 0.0
