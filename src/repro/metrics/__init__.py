"""Metrics: traces, results, Wasserstein distances."""

from .trace import Entry, TraceKind, TraceLevel, TraceRecorder
from .results import EventCounts, FlowResult, SimResults
from .wasserstein import load_vector_distance, normalized_w1, wasserstein_1d
from .export import flows_csv, rtt_csv, window_breakdown_csv
from .traceview import (
    drops_by_port, flow_timeline, hops, marked_fraction, packet_journey,
    per_hop_latency, queueing_delays,
)
from .timeline import (
    chrome_trace_events, run_manifest, stats_csv, stats_dict,
    validate_chrome_trace, validate_timeline_file, write_manifest,
    write_stats, write_timeline,
)
from .live import (
    ClusterWatchdog, FlightRecorder, LivePlane, MetricsServer,
    openmetrics_text, validate_openmetrics,
)

__all__ = [
    "Entry", "TraceKind", "TraceLevel", "TraceRecorder",
    "EventCounts", "FlowResult", "SimResults",
    "load_vector_distance", "normalized_w1", "wasserstein_1d",
    "flows_csv", "rtt_csv", "window_breakdown_csv",
    "drops_by_port", "flow_timeline", "hops", "marked_fraction",
    "packet_journey", "per_hop_latency", "queueing_delays",
    "chrome_trace_events", "write_timeline",
    "validate_chrome_trace", "validate_timeline_file",
    "stats_dict", "stats_csv", "write_stats",
    "run_manifest", "write_manifest",
    "LivePlane", "MetricsServer", "FlightRecorder", "ClusterWatchdog",
    "openmetrics_text", "validate_openmetrics",
]
