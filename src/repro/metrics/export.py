"""Result export: CSV writers for downstream analysis.

Simulation studies end in plots; these helpers dump per-flow and
per-sample data in the shape pandas/gnuplot expect, with no third-party
dependency.
"""

from __future__ import annotations

import csv
import io
from typing import Optional, TextIO

from .results import SimResults
from ..units import ps_to_us


def flows_csv(results: SimResults, out: Optional[TextIO] = None) -> str:
    """Per-flow rows: flow_id, start_us, complete_us, fct_us, size_bytes."""
    buf = out or io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["flow_id", "start_us", "complete_us", "fct_us",
                     "size_bytes"])
    for fid in sorted(results.flows):
        fr = results.flows[fid]
        writer.writerow([
            fid,
            f"{ps_to_us(fr.start_ps):.3f}",
            f"{ps_to_us(fr.complete_ps):.3f}" if fr.complete_ps is not None else "",
            f"{ps_to_us(fr.fct_ps):.3f}" if fr.fct_ps is not None else "",
            fr.size_bytes,
        ])
    return buf.getvalue() if out is None else ""


def rtt_csv(results: SimResults, out: Optional[TextIO] = None) -> str:
    """Per-ACK RTT samples: t_us, rtt_us, flow_id."""
    buf = out or io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["t_us", "rtt_us", "flow_id"])
    for t, rtt, fid in results.rtt_samples:
        writer.writerow([f"{ps_to_us(t):.3f}", f"{ps_to_us(rtt):.3f}", fid])
    return buf.getvalue() if out is None else ""


def window_breakdown_csv(results: SimResults,
                         out: Optional[TextIO] = None) -> str:
    """Per-window system event counts (the Fig. 13 series)."""
    buf = out or io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["t_us", "ack", "send", "forward", "transmit"])
    for start, ack, send, fwd, tx in results.window_breakdown:
        writer.writerow([f"{ps_to_us(start):.3f}", ack, send, fwd, tx])
    return buf.getvalue() if out is None else ""
