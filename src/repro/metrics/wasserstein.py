"""1-D Wasserstein distance, used for the paper's fidelity metric.

Table 1/2 report "the normalized Wasserstein distance (w1) of the RTT
distribution between the simulators and OMNeT++": exact DES engines get
w1 = 0, the DQN approximator lands around 0.4-0.6.  Appendix A also uses
Wasserstein distance between consecutive load vectors as the trigger for
dynamic repartitioning.

Implemented from scratch (sorting-based closed form for empirical
distributions); :func:`wasserstein_1d` agrees with
``scipy.stats.wasserstein_distance`` (property-tested).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def wasserstein_1d(a: Sequence[float], b: Sequence[float]) -> float:
    """Exact W1 between two empirical distributions (equal weights).

    W1 = integral |F_a(x) - F_b(x)| dx, computed by merging the sorted
    samples and accumulating CDF differences segment by segment.
    """
    xs = np.sort(np.asarray(a, dtype=np.float64))
    ys = np.sort(np.asarray(b, dtype=np.float64))
    if xs.size == 0 or ys.size == 0:
        raise ValueError("empty sample set")
    all_vals = np.concatenate([xs, ys])
    all_vals.sort(kind="mergesort")
    deltas = np.diff(all_vals)
    # CDF of each distribution evaluated just after each merged point.
    cdf_a = np.searchsorted(xs, all_vals[:-1], side="right") / xs.size
    cdf_b = np.searchsorted(ys, all_vals[:-1], side="right") / ys.size
    return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))


def normalized_w1(sample: Sequence[float], reference: Sequence[float]) -> float:
    """W1 normalized by the reference distribution's mean (the paper's
    'normalized Wasserstein distance' against the OMNeT++ ground truth)."""
    ref = np.asarray(reference, dtype=np.float64)
    if ref.size == 0:
        raise ValueError("empty reference")
    scale = float(np.mean(ref))
    if scale == 0.0:
        return 0.0 if len(sample) and float(np.mean(np.asarray(sample))) == 0.0 else float("inf")
    return wasserstein_1d(sample, reference) / scale


def load_vector_distance(v1: Sequence[float], v2: Sequence[float]) -> float:
    """Wasserstein distance between two normalized load vectors
    (Appendix A's repartitioning trigger).

    The vectors are indexed by device; the distance must grow when load
    *relocates* between devices (a hotspot moving is exactly the event
    that invalidates a partition), so we compute the positional earth-
    mover distance over the device axis: the L1 gap of the normalized
    cumulative mass, scaled by vector length into [0, 1].
    """
    a = np.asarray(v1, dtype=np.float64)
    b = np.asarray(v2, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("load vectors must have equal length")
    if a.size == 0:
        return 0.0
    sa, sb = a.sum(), b.sum()
    if sa <= 0 or sb <= 0:
        return 0.0 if sa == sb else 1.0
    cdf_gap = np.abs(np.cumsum(a / sa) - np.cumsum(b / sb)).sum()
    return float(cdf_gap / a.size)
