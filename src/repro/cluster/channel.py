"""Inter-agent communication channels with traffic accounting.

In the paper's deployment, Agents exchange RPCs over the cluster fabric
(40 Gbps in the evaluation).  Here the channel is an in-process mailbox
(DESIGN.md substitution); what is preserved and measured is the traffic:
messages, packet records and bytes per direction, which feed tau_a of
Eq. (1) and the FINISH-barrier accounting of §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..protocols.packet import Row

#: Modeled wire size of one packet record inside a batch RPC.
RPC_RECORD_BYTES = 64
#: Modeled framing overhead of one batch RPC.
RPC_FRAME_BYTES = 256


@dataclass
class RpcChannel:
    """Directed channel between two agents."""

    src: int
    dst: int
    messages: int = 0
    records: int = 0
    bytes_sent: int = 0
    #: in-flight batch: (arrival_time_ps, node, row) records
    pending: List[Tuple[int, int, Row]] = field(default_factory=list)

    def send_batch(self, records: List[Tuple[int, int, Row]]) -> None:
        """One RPC carrying a window's worth of packets (§4.2: "it sends
        one RPC to carry the information of a batch of packets")."""
        if not records:
            return
        self.pending.extend(records)
        self.messages += 1
        self.records += len(records)
        self.bytes_sent += RPC_FRAME_BYTES + RPC_RECORD_BYTES * len(records)

    def drain(self) -> List[Tuple[int, int, Row]]:
        out = self.pending
        self.pending = []
        return out


@dataclass
class ClusterTrafficStats:
    """Aggregated communication measurements of a distributed run."""

    windows: int = 0
    finish_signals: int = 0
    rpc_messages: int = 0
    rpc_records: int = 0
    rpc_bytes: int = 0
    #: bytes leaving each machine (tau_a of Eq. 1)
    egress_bytes: List[int] = field(default_factory=list)
