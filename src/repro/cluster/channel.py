"""Inter-agent communication channels with traffic accounting.

In the paper's deployment, Agents exchange RPCs over the cluster fabric
(40 Gbps in the evaluation).  Here a channel is the unit of *accounting*
— messages, packet records and bytes per direction, which feed tau_a of
Eq. (1) and the FINISH-barrier accounting of §4.2 — while the physical
move of a batch belongs to the :mod:`~repro.cluster.transport` layer
(in-process mailbox or a multiprocessing pipe).

Channels are created lazily by :class:`ChannelMap` on the first send of
each directed pair, so a large-N plan whose cut touches only a few
machine pairs never pays the O(N^2) setup the old controller did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ClusterError
from ..protocols.packet import Row

#: Modeled wire size of one packet record inside a batch RPC.
RPC_RECORD_BYTES = 64
#: Modeled framing overhead of one batch RPC.
RPC_FRAME_BYTES = 256


@dataclass
class RpcChannel:
    """Directed channel between two agents."""

    src: int
    dst: int
    messages: int = 0
    records: int = 0
    bytes_sent: int = 0
    #: in-flight batch: (arrival_time_ps, node, row) records
    pending: List[Tuple[int, int, Row]] = field(default_factory=list)
    #: sequence number stamped on the next drained batch — strictly
    #: increasing, so the receiver's ChannelSequencer can reject a
    #: reordered or replayed flush no matter how the transport pipelines.
    next_seq: int = 1

    def send_batch(self, records: List[Tuple[int, int, Row]]) -> None:
        """One RPC carrying a window's worth of packets (§4.2: "it sends
        one RPC to carry the information of a batch of packets")."""
        if not records:
            return
        self.pending.extend(records)
        self.messages += 1
        self.records += len(records)
        self.bytes_sent += RPC_FRAME_BYTES + RPC_RECORD_BYTES * len(records)

    def drain(self) -> List[Tuple[int, int, Row]]:
        out = self.pending
        self.pending = []
        return out

    def drain_with_seq(self) -> Tuple[List[Tuple[int, int, Row]], int]:
        """Drain plus this batch's channel sequence number."""
        seq = self.next_seq
        self.next_seq += 1
        return self.drain(), seq


class ChannelMap:
    """Directed channels keyed by ``(src, dst)``, created on first use.

    Only pairs that actually exchange a batch ever get an
    :class:`RpcChannel`; iteration covers the channels that exist, which
    is exactly what the FINISH-barrier drain and the final traffic
    accounting need.
    """

    def __init__(self) -> None:
        self._channels: Dict[Tuple[int, int], RpcChannel] = {}

    def __getitem__(self, key: Tuple[int, int]) -> RpcChannel:
        channel = self._channels.get(key)
        if channel is None:
            src, dst = key
            if src == dst:
                raise ClusterError(f"agent {src} cannot open a self-channel")
            channel = self._channels[key] = RpcChannel(src, dst)
        return channel

    def get(self, key: Tuple[int, int]) -> Optional[RpcChannel]:
        """The channel if it was ever used, else ``None`` (no creation)."""
        return self._channels.get(key)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._channels

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._channels)

    def items(self):
        return self._channels.items()

    def values(self):
        return self._channels.values()

    def sorted_items(self) -> List[Tuple[Tuple[int, int], RpcChannel]]:
        """Channels in ``(src, dst)`` order — the deterministic drain
        order of the window barrier."""
        return sorted(self._channels.items())


@dataclass
class ClusterTrafficStats:
    """Aggregated communication measurements of a distributed run."""

    windows: int = 0
    finish_signals: int = 0
    rpc_messages: int = 0
    rpc_records: int = 0
    rpc_bytes: int = 0
    #: bytes leaving each machine (tau_a of Eq. 1)
    egress_bytes: List[int] = field(default_factory=list)
