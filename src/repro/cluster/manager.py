"""DONS Manager and Cluster Controller (§3.1, §4.2).

The Manager accepts a simulation submission, runs the Load Estimator and
Partitioner to produce the execution plan, hands each machine's Agent
its sub-graph, and the Cluster Controller then drives the distributed
execution:

* every Runner executes the same lookahead batch (windows are agreed
  cluster-wide);
* cross-machine packets of a window travel as one batched RPC per
  destination (overlapping communication with computation);
* a machine that finished its TransmitSystem and RPCs sends a FINISH
  signal to the other N-1 machines; receiving N-1 FINISH signals means
  no further RPC can arrive for this window and the next batch may start
  — the conservative synchronization of §4.2.

Correctness: the merged distributed trace equals the single-machine
trace (tests/integration/test_distributed_equivalence.py), because RPCs
only ever carry packets into *future* windows (link delay >= lookahead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .agent import AgentEngine
from .channel import ClusterTrafficStats, RpcChannel
from ..des.partition_types import Partition
from ..errors import ClusterError
from ..metrics import SimResults, TraceLevel, TraceRecorder
from ..partition import (
    ClusterSpec,
    LoadModel,
    PartitionPlan,
    plan_scenario,
)
from ..scenario import Scenario


@dataclass
class DistributedRun:
    """Everything a distributed execution produced."""

    results: SimResults
    per_agent: List[SimResults]
    traffic: ClusterTrafficStats
    plan: Optional[PartitionPlan]
    partition: Partition


class ClusterController:
    """Drives N agents window by window with FINISH-signal sync.

    ``schedule`` optionally lists repartitioning points for dynamic
    execution (Appendix A): ``[(from_window, Partition), ...]`` sorted by
    window; before the first window at or past each boundary, node state
    migrates to the new owners (``repro.cluster.migration``).
    """

    def __init__(self, agents: List[AgentEngine],
                 schedule: Optional[List[Tuple[int, "Partition"]]] = None) -> None:
        if not agents:
            raise ClusterError("no agents")
        self.agents = agents
        n = len(agents)
        self.channels: Dict[Tuple[int, int], RpcChannel] = {
            (a, b): RpcChannel(a, b)
            for a in range(n) for b in range(n) if a != b
        }
        self.stats = ClusterTrafficStats(egress_bytes=[0] * n)
        self.schedule = sorted(schedule or [], key=lambda s: s[0])
        self.migrations: List["MigrationStats"] = []

    def _maybe_migrate(self, window: int) -> None:
        from .migration import migrate
        while self.schedule and self.schedule[0][0] <= window:
            _boundary, new_partition = self.schedule.pop(0)
            old_partition = self.agents[0].partition
            if new_partition.assignment != old_partition.assignment:
                self.migrations.append(
                    migrate(self.agents, old_partition, new_partition)
                )

    def run(self) -> List[SimResults]:
        for agent in self.agents:
            agent.build()
        return self.run_from(-1)

    def run_from(self, current: int) -> List[SimResults]:
        """Drive already-built (or checkpoint-restored) agents from the
        given window cursor to completion."""
        agents = self.agents
        n = len(agents)
        while True:
            pending = [a.peek_next_window(current) for a in agents]
            live = [w for w in pending if w is not None]
            if not live:
                break
            window = min(live)
            duration = agents[0].scenario.duration_ps
            if duration is not None and window * agents[0].lookahead > duration:
                break
            self._maybe_migrate(window)
            # Every Runner executes the same batch (§4.2).
            for agent in agents:
                agent.process_window(window)
            # TransmitSystem done everywhere: flush batched RPCs.
            for agent in agents:
                for dst, records in sorted(agent.take_outbox().items()):
                    self.channels[(agent.agent_id, dst)].send_batch(records)
            for (src, dst), ch in self.channels.items():
                records = ch.drain()
                if records:
                    agents[dst].accept_remote(records)
            # FINISH barrier: everyone tells everyone (N*(N-1) signals).
            self.stats.finish_signals += n * (n - 1)
            self.stats.windows += 1
            current = window
        for agent in agents:
            agent.finish()
        # Final traffic accounting.
        self.stats.rpc_messages = sum(c.messages for c in self.channels.values())
        self.stats.rpc_records = sum(c.records for c in self.channels.values())
        self.stats.rpc_bytes = sum(c.bytes_sent for c in self.channels.values())
        self.stats.egress_bytes = [
            sum(c.bytes_sent for (s, _d), c in self.channels.items() if s == a)
            for a in range(n)
        ]
        return [a.results for a in agents]


class DonsManager:
    """Accepts a submission, plans it, and orchestrates the cluster."""

    def __init__(
        self,
        scenario: Scenario,
        cluster: ClusterSpec,
        trace_level: TraceLevel = TraceLevel.NONE,
        workers_per_agent: int = 1,
    ) -> None:
        self.scenario = scenario
        self.cluster = cluster
        self.trace_level = trace_level
        self.workers_per_agent = workers_per_agent

    def run(
        self,
        partition: Optional[Partition] = None,
        loads: Optional[LoadModel] = None,
    ) -> DistributedRun:
        """Plan (unless a partition is supplied) and execute."""
        plan = None
        if partition is None:
            plan = plan_scenario(self.scenario, self.cluster, loads)
            partition = plan.partition
        if len(partition.assignment) != self.scenario.topology.num_nodes:
            raise ClusterError("partition does not match topology")
        agents = [
            AgentEngine(a, self.scenario, partition, self.trace_level,
                        self.workers_per_agent)
            for a in range(partition.num_parts)
        ]
        controller = ClusterController(agents)
        per_agent = controller.run()
        merged = merge_results(per_agent, self.scenario.name)
        return DistributedRun(
            results=merged,
            per_agent=per_agent,
            traffic=controller.stats,
            plan=plan,
            partition=partition,
        )

    def run_dynamic(
        self,
        bin_ps: int,
        threshold: float = 0.25,
    ) -> Tuple[DistributedRun, List]:
        """Appendix A end to end: detect traffic phases, partition each,
        and execute with live state migration at the phase boundaries.

        Returns ``(run, migrations)`` where ``migrations`` lists the
        :class:`~repro.cluster.migration.MigrationStats` of each
        repartitioning event.
        """
        from ..partition import dynamic_partition_plan
        phases = dynamic_partition_plan(
            self.scenario.topology, self.scenario.fib, self.scenario.flows,
            bin_ps, self.cluster, threshold,
        )
        if not phases:
            raise ClusterError("no phases detected")
        lookahead = self.scenario.lookahead_ps
        first = phases[0].plan.partition
        schedule = [
            (phase.start_bin * bin_ps // lookahead, phase.plan.partition)
            for phase in phases[1:]
        ]
        agents = [
            AgentEngine(a, self.scenario, first, self.trace_level,
                        self.workers_per_agent)
            for a in range(first.num_parts)
        ]
        controller = ClusterController(agents, schedule=schedule)
        per_agent = controller.run()
        merged = merge_results(per_agent, self.scenario.name)
        run = DistributedRun(
            results=merged,
            per_agent=per_agent,
            traffic=controller.stats,
            plan=phases[0].plan,
            partition=agents[0].partition,
        )
        return run, controller.migrations


def merge_results(per_agent: List[SimResults], scenario_name: str) -> SimResults:
    """Aggregate agent results the way the Cluster Controller reports."""
    merged = SimResults("dons-cluster", scenario_name, 0)
    merged.trace = TraceRecorder(
        per_agent[0].trace.level if per_agent[0].trace else 0
    )
    for res in per_agent:
        merged.end_time_ps = max(merged.end_time_ps, res.end_time_ps)
        merged.events.add(res.events)
        merged.drops += res.drops
        merged.marks += res.marks
        merged.tx_bytes += res.tx_bytes
        merged.rtt_samples.extend(res.rtt_samples)
        for node, count in res.node_events.items():
            merged.node_events[node] = merged.node_events.get(node, 0) + count
        for flow_id, fr in res.flows.items():
            have = merged.flows.get(flow_id)
            if have is None or (fr.complete_ps is not None
                                and have.complete_ps is None):
                merged.flows[flow_id] = fr
        if res.trace:
            merged.trace.entries.extend(res.trace.entries)
    merged.rtt_samples.sort()
    return merged
