"""DONS Manager and the legacy Cluster Controller facade (§3.1, §4.2).

The Manager accepts a simulation submission, runs the Load Estimator and
Partitioner to produce the execution plan, and hands the execution to the
layered cluster stack:

* **transport** (:mod:`repro.cluster.transport`) — where agents live and
  how batched window RPCs move: in-process mailboxes
  (``LocalTransport``) or one ``multiprocessing`` worker per agent
  (``ProcessTransport``, GIL-free agent parallelism).
* **runtime** (:mod:`repro.cluster.runtime`) — :class:`ClusterEngine`,
  the distributed run as an ``Engine`` (one window per ``advance``),
  driven by the same :class:`~repro.core.runner.EngineRunner` as the
  single-machine engines.
* **fault** (:mod:`repro.cluster.fault`) — checkpoint-based recovery
  from injected agent kills.

Correctness: the merged distributed trace equals the single-machine
trace under *every* transport
(tests/integration/test_transport_equivalence.py), because RPCs only
ever carry packets into future windows (link delay >= lookahead).

:class:`ClusterController` remains as a thin facade over
:class:`ClusterEngine` + ``LocalTransport`` for callers (and tests) that
hold pre-built agent engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .agent import AgentEngine, AgentSpec, spec_of
from .channel import ClusterTrafficStats
from .fault import FaultPlan, RecoveryStats
from .runtime import ClusterEngine, merge_results
from .transport import LocalTransport, Transport
from ..core.instrument import InstrumentationBus
from ..core.runner import EngineRunner
from ..des.partition_types import Partition
from ..errors import ClusterError
from ..metrics import SimResults, TraceLevel
from ..partition import (
    ClusterSpec,
    LoadModel,
    PartitionPlan,
    plan_scenario,
)
from ..scenario import Scenario

__all__ = [
    "ClusterController", "DistributedRun", "DonsManager", "merge_results",
]


@dataclass
class DistributedRun:
    """Everything a distributed execution produced."""

    results: SimResults
    per_agent: List[SimResults]
    traffic: ClusterTrafficStats
    plan: Optional[PartitionPlan]
    partition: Partition
    #: merged cluster-level instrumentation (per-agent timers tagged a<id>:)
    bus: Optional[InstrumentationBus] = None
    #: one entry per recovered agent failure
    recoveries: List[RecoveryStats] = field(default_factory=list)


class ClusterController:
    """Legacy driver: pre-built agents on the in-process transport.

    Kept as a facade over :class:`ClusterEngine` so existing call sites
    (checkpoint resume, the migration tests) keep their shape:
    ``agents``, ``channels``, ``schedule``, ``migrations`` and
    ``run``/``run_from`` all delegate to the engine.
    """

    def __init__(self, agents: List[AgentEngine],
                 schedule: Optional[List[Tuple[int, "Partition"]]] = None) -> None:
        if not agents:
            raise ClusterError("no agents")
        self.engine = ClusterEngine(
            [spec_of(agent) for agent in agents],
            transport=LocalTransport(engines=agents),
            schedule=schedule,
        )

    @property
    def agents(self) -> List[AgentEngine]:
        return self.engine.agents

    @property
    def channels(self):
        return self.engine.channels

    @property
    def stats(self) -> ClusterTrafficStats:
        return self.engine.stats

    @property
    def schedule(self):
        return self.engine.schedule

    @property
    def migrations(self):
        return self.engine.migrations

    def _maybe_migrate(self, window: int) -> None:
        self.engine._maybe_migrate(window)

    def run(self) -> List[SimResults]:
        return self.engine.run()

    def run_from(self, current: int) -> List[SimResults]:
        """Drive already-built (or checkpoint-restored) agents from the
        given window cursor to completion."""
        return self.engine.run_from(current)


class DonsManager:
    """Accepts a submission, plans it, and orchestrates the cluster."""

    def __init__(
        self,
        scenario: Scenario,
        cluster: ClusterSpec,
        trace_level: TraceLevel = TraceLevel.NONE,
        workers_per_agent: int = 1,
        transport: Union[str, Transport, None] = "local",
        checkpoint_every: Optional[int] = None,
        fault: Optional[FaultPlan] = None,
        backend: Optional[str] = None,
        telemetry: bool = False,
        batch_windows: Optional[int] = None,
        watchdog: Union[bool, None, object] = None,
    ) -> None:
        self.scenario = scenario
        self.cluster = cluster
        self.trace_level = trace_level
        self.workers_per_agent = workers_per_agent
        self.transport = transport
        self.checkpoint_every = checkpoint_every
        self.fault = fault
        self.backend = backend
        self.telemetry = telemetry
        self.batch_windows = batch_windows
        self.watchdog = watchdog

    def _specs(self, partition: Partition) -> List[AgentSpec]:
        return [
            AgentSpec(a, self.scenario, partition, self.trace_level,
                      self.workers_per_agent, self.backend, self.telemetry)
            for a in range(partition.num_parts)
        ]

    def _engine(
        self,
        partition: Partition,
        schedule: Optional[List[Tuple[int, Partition]]] = None,
    ) -> ClusterEngine:
        from .transport import make_transport
        return ClusterEngine(
            self._specs(partition),
            transport=make_transport(self.transport),
            schedule=schedule,
            checkpoint_every=self.checkpoint_every,
            fault=self.fault,
            batch_windows=self.batch_windows,
            watchdog=self.watchdog,
        )

    def run(
        self,
        partition: Optional[Partition] = None,
        loads: Optional[LoadModel] = None,
        on_step=None,
    ) -> DistributedRun:
        """Plan (unless a partition is supplied) and execute.

        ``on_step`` is passed through to the
        :class:`~repro.core.runner.EngineRunner` (per-window progress
        callback)."""
        plan = None
        if partition is None:
            plan = plan_scenario(self.scenario, self.cluster, loads)
            partition = plan.partition
        if len(partition.assignment) != self.scenario.topology.num_nodes:
            raise ClusterError("partition does not match topology")
        engine = self._engine(partition)
        EngineRunner(engine, on_step=on_step).run()
        return DistributedRun(
            results=engine.results,
            per_agent=engine.per_agent,
            traffic=engine.stats,
            plan=plan,
            partition=partition,
            bus=engine.bus,
            recoveries=engine.recoveries,
        )

    def run_dynamic(
        self,
        bin_ps: int,
        threshold: float = 0.25,
        measured_times: Optional[List[float]] = None,
        measured_partition: Optional[Partition] = None,
    ) -> Tuple[DistributedRun, List]:
        """Appendix A end to end: detect traffic phases, partition each,
        and execute with live state migration at the phase boundaries.

        ``measured_times``/``measured_partition`` feed per-agent
        wall-clock from a previous run's merged bus
        (:func:`repro.partition.measured_machine_times`) back into the
        planner, refitting the cluster's compute capacities before the
        phases are partitioned.

        Returns ``(run, migrations)`` where ``migrations`` lists the
        :class:`~repro.cluster.migration.MigrationStats` of each
        repartitioning event.
        """
        from ..partition import dynamic_partition_plan
        phases = dynamic_partition_plan(
            self.scenario.topology, self.scenario.fib, self.scenario.flows,
            bin_ps, self.cluster, threshold,
            measured_times=measured_times,
            measured_partition=measured_partition,
        )
        if not phases:
            raise ClusterError("no phases detected")
        lookahead = self.scenario.lookahead_ps
        first = phases[0].plan.partition
        schedule = [
            (phase.start_bin * bin_ps // lookahead, phase.plan.partition)
            for phase in phases[1:]
        ]
        engine = self._engine(first, schedule=schedule)
        EngineRunner(engine).run()
        try:
            final_partition = engine.agents[0].partition
        except ClusterError:  # transport without in-process engines
            final_partition = first
        run = DistributedRun(
            results=engine.results,
            per_agent=engine.per_agent,
            traffic=engine.stats,
            plan=phases[0].plan,
            partition=final_partition,
            bus=engine.bus,
            recoveries=engine.recoveries,
        )
        return run, engine.migrations
