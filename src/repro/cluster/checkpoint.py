"""Cluster-wide checkpointing (§8: "In multi-machine environments, DONS
utilizes checkpointing to periodically preserve the run-time state").

A cluster checkpoint is taken at a window boundary, where the FINISH
barrier guarantees a clean cut: outboxes are flushed, channels drained,
every agent paused between batches.  It bundles one engine snapshot per
agent plus the runtime's cursor, partition and remaining migration
schedule.  Resuming on fresh agents continues the run and produces the
uninterrupted trace (tests/cluster/test_cluster_checkpoint.py).

``take_cluster_checkpoint`` accepts anything that exposes ``agents`` /
``channels`` / ``schedule`` — the legacy :class:`ClusterController`
facade or a :class:`~repro.cluster.runtime.ClusterEngine` on the
``LocalTransport`` directly.  (The in-run recovery path — kill one agent
mid-simulation, restore it from its latest snapshot while peers keep
their state — lives in the runtime; see :mod:`repro.cluster.fault`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .agent import AgentEngine
from .manager import ClusterController, merge_results
from ..core.checkpoint import FORMAT as ENGINE_FORMAT
from ..core.checkpoint import restore_checkpoint, take_checkpoint
from ..des.partition_types import Partition
from ..errors import ClusterError
from ..metrics import SimResults, TraceLevel
from ..scenario import Scenario

FORMAT = "dons-cluster-checkpoint-v1"


@dataclass
class ClusterCheckpoint:
    """Resumable snapshot of a whole distributed run."""

    format: str
    scenario_name: str
    current_window: int
    partition: Tuple[int, ...]
    num_parts: int
    schedule: List[Tuple[int, Tuple[int, ...]]]
    agent_payloads: List[bytes]


def take_cluster_checkpoint(controller,
                            current_window: int) -> ClusterCheckpoint:
    """Snapshot a controller (or local ClusterEngine) paused between
    windows."""
    for (_s, _d), channel in controller.channels.items():
        if channel.pending:
            raise ClusterError("checkpoint requires drained channels")
    agents = controller.agents
    partition = agents[0].partition
    return ClusterCheckpoint(
        format=FORMAT,
        scenario_name=agents[0].scenario.name,
        current_window=current_window,
        partition=partition.assignment,
        num_parts=partition.num_parts,
        schedule=[(w, p.assignment) for w, p in controller.schedule],
        agent_payloads=[
            take_checkpoint(agent, current_window).payload
            for agent in agents
        ],
    )


def resume_cluster(
    scenario: Scenario,
    checkpoint: ClusterCheckpoint,
    trace_level: TraceLevel = TraceLevel.NONE,
) -> Tuple[SimResults, ClusterController]:
    """Rebuild fresh agents from a checkpoint and run to completion."""
    if checkpoint.format != FORMAT:
        raise ClusterError(f"unknown checkpoint format {checkpoint.format!r}")
    if checkpoint.scenario_name != scenario.name:
        raise ClusterError("checkpoint belongs to a different scenario")
    partition = Partition(checkpoint.partition, checkpoint.num_parts)
    agents = [
        AgentEngine(a, scenario, partition, trace_level)
        for a in range(checkpoint.num_parts)
    ]
    schedule = [
        (w, Partition(assignment, checkpoint.num_parts))
        for w, assignment in checkpoint.schedule
    ]
    controller = ClusterController(agents, schedule=schedule)
    from ..core.checkpoint import Checkpoint
    for agent, payload in zip(agents, checkpoint.agent_payloads):
        agent.build()
        restore_checkpoint(agent, Checkpoint(
            ENGINE_FORMAT, scenario.name,
            checkpoint.current_window, payload,
        ))
    per_agent = controller.run_from(checkpoint.current_window)
    return merge_results(per_agent, scenario.name), controller
