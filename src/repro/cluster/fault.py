"""Fault injection and recovery accounting (§8, Discussion).

The paper's fault-tolerance story is checkpoint-based: periodically
snapshot every agent; when a machine dies, restore its share of the
simulation from the latest snapshot and continue.  This module holds the
two small data types the stack shares:

* :class:`FaultPlan` — a deterministic fault to inject: kill one agent
  when the cluster reaches a given window.  The
  :class:`~repro.cluster.runtime.ClusterEngine` triggers it through the
  transport's ``kill`` hook (a ``ProcessTransport`` worker is actually
  ``terminate()``-d; a ``LocalTransport`` engine is dropped), so the
  recovery path under test is the real one.
* :class:`RecoveryStats` — what one recovery cost: which snapshot it
  restored, how many windows it re-executed, how many logged records
  peers replayed into it.

Recovery itself lives in ``ClusterEngine._recover``: restore the dead
agent from the latest per-agent snapshot, replay the remote batches it
received since that snapshot (from the runtime's delivery log), then
re-run the missed windows with outboxes discarded (peers already hold
those batches).  Because engine state between windows is a pure function
of the windows executed, the recovered run's merged trace is
byte-identical to the fault-free run
(tests/cluster/test_fault_recovery.py).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FaultPlan:
    """Kill ``agent`` when the cluster reaches window ``at_window``.

    The kill fires at the first cluster window >= ``at_window`` (windows
    with no pending work are skipped by the scheduler, so an exact match
    may never run).  ``fired`` records that the fault happened.
    """

    agent: int
    at_window: int
    fired: bool = False


@dataclass
class RecoveryStats:
    """The measured cost of one agent recovery."""

    agent: int
    failed_window: int
    restored_from_window: int
    windows_replayed: int = 0
    records_replayed: int = 0
