"""Live repartitioning: migrate simulation state between agents.

Appendix A partitions a long simulation into *phases* wherever the
traffic pattern shifts drastically, each phase with its own partition.
Executing that requires moving a node's simulation state to its new
owner at a phase boundary: the node's egress-port queues (packets in
flight and line state), its pending calendar entries (future deliveries,
flow starts, timer wakeups), and the transport state of flows whose
endpoint hosts move.

Migration happens *between* lookahead windows, where engine state is a
pure function of the windows executed so far — so a migrated cluster
produces exactly the trace an unmigrated one would
(tests/integration/test_dynamic_cluster.py).

Accounting: every migrated object is priced in bytes
(:class:`MigrationStats`), since a real deployment ships this state over
the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .agent import AgentEngine
from ..core.ecs import SENDER_SCHEMA, RECEIVER_SCHEMA
from ..des.partition_types import Partition
from ..errors import ClusterError

#: Modeled wire cost of one migrated packet row / component row / port.
ROW_BYTES = 64
PORT_STATE_BYTES = 256

_SENDER_FIELDS = tuple(f.name for f in SENDER_SCHEMA)
_RECEIVER_FIELDS = tuple(f.name for f in RECEIVER_SCHEMA)


@dataclass
class MigrationStats:
    """What one repartitioning event moved."""

    nodes_moved: int = 0
    ports_moved: int = 0
    queued_packets_moved: int = 0
    calendar_entries_moved: int = 0
    sender_rows_moved: int = 0
    receiver_rows_moved: int = 0

    @property
    def bytes_moved(self) -> int:
        return (
            self.ports_moved * PORT_STATE_BYTES
            + (self.queued_packets_moved + self.calendar_entries_moved
               + self.sender_rows_moved + self.receiver_rows_moved)
            * ROW_BYTES
        )


def _move_calendar_node(src: AgentEngine, dst: AgentEngine, node: int,
                        stats: MigrationStats) -> None:
    for win, entries in src.events.take_node(node):
        dst.events.insert_entries(win, node, entries)
        stats.calendar_entries_moved += len(entries)


def _copy_table_row(src_table, dst_table, idx: int, fields) -> None:
    for name in fields:
        dst_table.set(idx, name, src_table.get(idx, name))


def migrate(
    agents: Sequence[AgentEngine],
    old: Partition,
    new: Partition,
) -> MigrationStats:
    """Move state from ``old`` owners to ``new`` owners; rebind agents.

    Agents must be paused between windows.  After the call every agent's
    ``partition`` is ``new`` and subsequent windows run under it.
    """
    if old.num_parts != len(agents) or new.num_parts != len(agents):
        raise ClusterError("partition size does not match agent count")
    if len(old.assignment) != len(new.assignment):
        raise ClusterError("partitions cover different topologies")
    stats = MigrationStats()
    scenario = agents[0].scenario
    topo = scenario.topology

    for node in range(topo.num_nodes):
        src_id, dst_id = old.part_of(node), new.part_of(node)
        if src_id == dst_id:
            continue
        src, dst = agents[src_id], agents[dst_id]
        stats.nodes_moved += 1

        # 1. Egress ports of the node: carry queue/line state over.
        for port_idx in range(topo.ports_of(node)):
            iface_id = topo.iface_id(node, port_idx)
            port = src.ports[iface_id]
            stats.ports_moved += 1
            stats.queued_packets_moved += len(port.sched)
            dst.ports[iface_id] = port
            if iface_id in src.active_ports:
                src.active_ports.discard(iface_id)
                dst.active_ports.add(iface_id)
                # the new owner must keep draining the backlog
                dst.events.touch(dst._running_window + 1)

        # 2. Pending calendar entries addressed to the node.
        _move_calendar_node(src, dst, node, stats)

        # 3. Transport state of flows endpointed at the node.
        if topo.nodes[node].is_host:
            for flow in scenario.flows:
                if flow.src == node:
                    sidx = src.world.sender_of_flow[flow.flow_id]
                    _copy_table_row(src.world.senders, dst.world.senders,
                                    sidx, _SENDER_FIELDS)
                    stats.sender_rows_moved += 1
                if flow.dst == node:
                    ridx = src.world.receiver_of_flow[flow.flow_id]
                    _copy_table_row(src.world.receivers, dst.world.receivers,
                                    ridx, _RECEIVER_FIELDS)
                    # results bookkeeping follows the receiver
                    dst.results.flows[flow.flow_id] = \
                        src.results.flows[flow.flow_id]
                    stats.receiver_rows_moved += 1

    for agent in agents:
        agent.partition = new
    return stats
