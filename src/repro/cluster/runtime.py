"""Cluster runtime: the distributed run as one :class:`Engine`.

PR 1 unified the single-machine engines behind ``build`` / ``advance``
/ ``finalize`` and one :class:`~repro.core.runner.EngineRunner` loop.
:class:`ClusterEngine` brings the distributed stack into the same shape:
one ``advance()`` executes one cluster-wide lookahead window end to end —

1. agree on the window (min over the agents' ``peek_next_window``, the
   conservative synchronization of §4.2),
2. run any scheduled live migration (Appendix A),
3. execute the window on every agent through the transport (a
   ``ProcessTransport`` overlaps the agents across cores),
4. flush outboxes as batched RPCs, drain them into their destinations,
   count the N*(N-1) FINISH signals,
5. optionally snapshot every agent for fault tolerance.

Because it is an :class:`~repro.core.runner.Engine`, ``EngineRunner``,
``python -m repro profile --cluster`` and checkpoint resume all drive a
distributed run through exactly the loop they drive a ``DodEngine``
through.

Observability: each agent owns its :class:`InstrumentationBus`; at
``finalize()`` the per-agent streams come back in the agents'
:class:`~repro.cluster.transport.AgentReport` and are merged into the
cluster-level bus — counters summed, per-window / per-system timers
tagged ``a<id>:<system>`` — so the profiler and the time-cost model
(:func:`repro.partition.measured_machine_times`) consume *measured*
per-agent window costs.

Fault tolerance: with ``checkpoint_every`` (or a ``fault``) set, the
runtime keeps the latest per-agent snapshots plus a log of every record
delivered since.  When the transport reports an
:class:`~repro.cluster.transport.AgentFailure`, ``_recover`` restores
the dead agent from its snapshot, replays the logged inbound batches,
re-runs the missed windows with outboxes discarded, and the merged trace
stays byte-identical to the fault-free run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .agent import AgentSpec
from .fault import FaultPlan, RecoveryStats
from .transport import (
    AgentFailure, AgentReport, LocalTransport, Record, Transport,
    make_transport,
)
from ..core.instrument import InstrumentationBus
from ..core.telemetry import WAIT_MS_BUCKETS
from ..des.partition_types import Partition
from ..errors import ClusterError
from ..metrics import SimResults, TraceRecorder


class ClusterEngine:
    """N agents, one window per ``advance()``, any transport."""

    name = "dons-cluster"

    def __init__(
        self,
        specs: Sequence[AgentSpec],
        transport: Union[Transport, str, None] = None,
        schedule: Optional[List[Tuple[int, Partition]]] = None,
        checkpoint_every: Optional[int] = None,
        fault: Optional[FaultPlan] = None,
        batch_windows: Optional[int] = None,
        watchdog: Union[bool, None, "object"] = None,
    ) -> None:
        if not specs:
            raise ClusterError("no agents")
        self.specs = list(specs)
        self.transport = make_transport(transport)
        self.schedule = sorted(schedule or [], key=lambda s: s[0])
        self.fault = fault
        self.checkpoint_every = checkpoint_every
        if batch_windows is None:
            batch_windows = int(os.environ.get("REPRO_BATCH_WINDOWS") or 1)
        #: Upper bound on how many lookahead windows one ``advance()``
        #: may cover without a barrier round, when the agents' quiet
        #: horizons prove no cross-agent traffic in the span.
        self.batch_windows = max(1, batch_windows)
        self._fault_tolerant = fault is not None or checkpoint_every is not None
        if self._fault_tolerant and self.schedule:
            raise ClusterError(
                "fault tolerance and live migration cannot be combined: "
                "a restored agent would resume under a stale partition"
            )

        self.bus = InstrumentationBus()
        # Telemetry on the cluster bus follows the agents: any spec with
        # it on (or the REPRO_TELEMETRY switch) lights up the
        # coordinator-side spans/metrics too, so one exported timeline
        # holds both the agent tracks and the barrier-wait slices.
        if (any(spec.telemetry for spec in self.specs)
                or os.environ.get("REPRO_TELEMETRY", "")
                not in ("", "0", "false", "off")):
            self.bus.enable_telemetry()
            self.bus.metrics.histogram("cluster.barrier_wait_ms",
                                       WAIT_MS_BUCKETS)
        self.transport.bus = self.bus
        #: Coordinator-observed per-agent busy / barrier-wait seconds,
        #: accumulated per window; exported as ``a<i>:busy_s`` /
        #: ``a<i>:barrier_wait_s`` gauges at finalize — the exact series
        #: :func:`repro.partition.refit_cluster_spec` takes as
        #: ``measured_times``.
        self._busy_s = [0.0] * len(self.specs)
        self._wait_s = [0.0] * len(self.specs)
        #: Stall/slowness detector over the same measured window times
        #: (:class:`repro.metrics.live.ClusterWatchdog`).  ``None`` off,
        #: ``True`` forced on, default (``None`` argument) arms it when
        #: the bus is telemetered or ``$REPRO_WATCHDOG`` is set; an
        #: instance is adopted as-is.  An armed watchdog makes the
        #: transport measure ``window_times`` even with telemetry off
        #: (``track_times``) — reply timing without span capture.
        self.watchdog = self._make_watchdog(watchdog)
        if self.watchdog is not None:
            self.transport.track_times = True
        self.results = SimResults(self.name, self.specs[0].scenario.name, 0)
        self.per_agent: List[SimResults] = []
        self.migrations: List = []
        self.recoveries: List[RecoveryStats] = []

        self._lookahead = self.specs[0].scenario.lookahead_ps
        self._cursor = -1
        self._built = False
        self._finalized = False

        # Fault-tolerance state: latest snapshots + deliveries since.
        self._snapshots: Optional[List[bytes]] = None
        self._snap_window = -1
        self._replay_log: Dict[int, List[Record]] = {}
        self._windows_since_snap: List[int] = []

    def _make_watchdog(self, arg: Union[bool, None, "object"]):
        if arg is False:
            return None
        if arg is None:
            armed = self.bus.telemetry or os.environ.get(
                "REPRO_WATCHDOG", "") not in ("", "0", "false", "off")
            if not armed:
                return None
            arg = True
        if arg is True:
            from ..metrics.live import ClusterWatchdog
            return ClusterWatchdog(len(self.specs))
        return arg

    # --- convenience views ------------------------------------------------

    @property
    def built(self) -> bool:
        return self._built

    @property
    def stats(self):
        return self.transport.stats

    @property
    def channels(self):
        return self.transport.channels

    @property
    def agents(self):
        """The in-process engines (LocalTransport only) — migration and
        cluster checkpointing reach through this."""
        engines = getattr(self.transport, "engines", None)
        if engines is None:
            raise ClusterError(
                f"{type(self.transport).__name__} does not expose "
                "in-process engines"
            )
        return engines

    # --- Engine protocol --------------------------------------------------

    def build(self) -> None:
        """Launch and build every agent; verify cluster-wide agreement."""
        self._check_agreement()
        self.transport.launch(self.specs)
        if self.schedule and not isinstance(self.transport, LocalTransport):
            raise ClusterError(
                "live migration schedules require the LocalTransport "
                "(state moves between in-process engines)"
            )
        self.transport.build_all()
        if self._fault_tolerant:
            self._take_snapshots(self._cursor)
        self._built = True

    def _check_agreement(self) -> None:
        """Every agent must run the same scenario under the same plan —
        window agreement (§4.2) is meaningless otherwise.  The old
        controller silently trusted agent 0; mismatches now fail loudly
        at build time."""
        first = self.specs[0]
        for spec in self.specs[1:]:
            if spec.scenario.name != first.scenario.name:
                raise ClusterError(
                    f"agent {spec.agent_id} runs scenario "
                    f"{spec.scenario.name!r}, agent 0 runs "
                    f"{first.scenario.name!r}"
                )
            if spec.scenario.duration_ps != first.scenario.duration_ps:
                raise ClusterError(
                    f"agent {spec.agent_id} disagrees on duration_ps: "
                    f"{spec.scenario.duration_ps} vs "
                    f"{first.scenario.duration_ps}"
                )
            if spec.scenario.lookahead_ps != first.scenario.lookahead_ps:
                raise ClusterError(
                    f"agent {spec.agent_id} disagrees on the lookahead: "
                    f"{spec.scenario.lookahead_ps} vs "
                    f"{first.scenario.lookahead_ps}"
                )
            if spec.partition.assignment != first.partition.assignment:
                raise ClusterError(
                    f"agent {spec.agent_id} holds a different partition "
                    "than agent 0"
                )

    def advance(self) -> bool:
        """Execute one cluster-wide lookahead window; False when done."""
        transport = self.transport
        bus = self.bus
        telemetry = bus.telemetry
        _w0 = bus.now() if telemetry else 0.0
        peeks = transport.peek_all(self._cursor)
        if telemetry:
            bus.span_add("agree", _w0, bus.now(), "cluster")
        live = [w for w in peeks if w is not None]
        if not live:
            return False
        window = min(live)
        duration = self.specs[0].scenario.duration_ps
        if duration is not None and window * self._lookahead > duration:
            return False

        if (self.batch_windows > 1 and not self._fault_tolerant
                and self.fault is None and not self.schedule):
            limit = window + self.batch_windows
            if duration is not None:
                limit = min(limit, duration // self._lookahead + 1)
            if limit > window + 1:
                horizons = transport.quiet_all(self._cursor, limit)
                horizon = min(horizons)
                if horizon > window + 1:
                    return self._advance_span(window, horizon, _w0)

        self._maybe_migrate(window)
        if (self.fault is not None and not self.fault.fired
                and window >= self.fault.at_window):
            self.fault.fired = True
            transport.kill(self.fault.agent)

        outboxes = transport.run_window_all(
            window, self._active_mask(peeks, window))
        for agent_id, out in enumerate(outboxes):
            if isinstance(out, AgentFailure):
                outboxes[agent_id] = self._recover(agent_id, window)
        if self.watchdog is not None:
            self.watchdog.observe(window, transport.window_times, bus)
        if telemetry:
            self._window_telemetry(window)
            _f0 = bus.now()

        for agent_id, out in enumerate(outboxes):
            for dst, records in sorted(out.items()):
                transport.send_batch(agent_id, dst, records)
        delivered = transport.deliver_pending()
        transport.barrier()
        self.bus.count("cluster.windows")
        if telemetry:
            now = bus.now()
            bus.span_add("flush", _f0, now, "cluster")
            bus.span_add("window", _w0, now, "cluster", {"index": window})
        self._cursor = window

        if self._fault_tolerant:
            for dst, records in delivered.items():
                self._replay_log.setdefault(dst, []).extend(records)
            self._windows_since_snap.append(window)
            if (self.checkpoint_every
                    and len(self._windows_since_snap) >= self.checkpoint_every):
                self._take_snapshots(window)
        return True

    def _active_mask(self, peeks: List[Optional[int]],
                     window: int) -> Optional[List[bool]]:
        """Which agents actually have work this window.

        An agent whose peek is beyond the agreed window has nothing
        scheduled — no pending entries, no busy ports — so running the
        window there is a provable no-op and the transport skips the
        command round-trip.  A dead agent must still be dispatched (the
        failure is what triggers recovery), and a pending migration
        rewrites agent state behind the peeks' back, so no skipping
        while one is scheduled.  ``None`` means everyone runs.
        """
        if self.schedule:
            return None
        transport = self.transport
        mask = [
            (peek is not None and peek <= window)
            or not transport.alive(agent_id)
            for agent_id, peek in enumerate(peeks)
        ]
        return None if all(mask) else mask

    def _advance_span(self, window: int, horizon: int, _w0: float) -> bool:
        """Barrier-free batched span: every agent runs its scheduled
        windows in ``(cursor, horizon)`` back to back.

        Taken only after every agent's quiet horizon proved no
        cross-agent record can be produced in the span (see
        docs/ARCHITECTURE.md, "Why K-window batching is safe"), so the
        whole span costs one RPC round and one FINISH barrier instead
        of ``horizon - window`` of each.
        """
        transport = self.transport
        bus = self.bus
        telemetry = bus.telemetry
        outs = transport.run_windows_all(self._cursor, horizon)
        for agent_id, (_last, outbox) in enumerate(outs):
            if outbox:
                # The quiet-horizon bound is a proof obligation, not a
                # heuristic: an agent emitting inside the span means the
                # distance table or the lookahead discipline is broken.
                raise ClusterError(
                    f"agent {agent_id} emitted cross-agent records inside "
                    f"a quiet span [{window}, {horizon})"
                )
        if self.watchdog is not None:
            self.watchdog.observe(window, transport.window_times, bus)
        if telemetry:
            self._window_telemetry(window)
        transport.barrier()
        bus.count("cluster.windows")
        bus.count("cluster.batch_spans")
        bus.count("cluster.batched_windows", horizon - window)
        if telemetry:
            bus.span_add("window", _w0, bus.now(), "cluster",
                         {"index": window, "span": horizon - window})
        self._cursor = horizon - 1
        return True

    def progress(self) -> Dict[str, object]:
        """In-flight progress snapshot, same shape as
        :meth:`repro.core.engine.DodEngine.progress`.

        Per-agent event counts only merge at ``finalize()``, so the
        ``events`` field stays 0 mid-run on a cluster engine — the live
        plane documents this and consumers fall back to window progress.
        """
        sim_ps = (self._cursor + 1) * self._lookahead if self._cursor >= 0 else 0
        duration = self.specs[0].scenario.duration_ps
        return {
            "windows": self.bus.counters.get("cluster.windows", 0),
            "sim_ps": sim_ps,
            "duration_ps": duration,
            "events": self.results.events.total,
            "done": min(1.0, sim_ps / duration) if duration else None,
        }

    def _window_telemetry(self, window: int) -> None:
        """Split the window the coordinator just ran into per-agent busy
        time and barrier wait (slowest agent waits zero), as both
        ``a<i>:barrier-wait`` timeline slices and accumulated seconds."""
        bus = self.bus
        times = self.transport.window_times
        if not times:
            return
        t_done = bus.now()
        t_max = max(times)
        for agent_id, busy in enumerate(times):
            wait = t_max - busy
            self._busy_s[agent_id] += busy
            self._wait_s[agent_id] += wait
            bus.metrics.record("cluster.barrier_wait_ms", wait * 1e3)
            if wait > 0.0:
                bus.span_add(f"a{agent_id}:barrier-wait",
                             t_done - wait, t_done, "cluster",
                             {"window": window})

    def finalize(self) -> SimResults:
        """Collect per-agent results and bus streams, merge, shut down."""
        if self._finalized:
            return self.results
        self._finalized = True
        try:
            reports = self.transport.finish_all()
            self.per_agent = [report.results for report in reports]
            self.results = merge_results(
                self.per_agent, self.specs[0].scenario.name
            )
            for report in reports:
                self.bus.merge_child(
                    f"a{report.agent_id}", report.counters,
                    report.totals, report.windows,
                    spans=report.spans, metrics=report.metrics,
                    epoch_wall=report.epoch_wall,
                )
            if self.bus.telemetry:
                for agent_id in range(len(self.specs)):
                    self.bus.metrics.gauge(f"a{agent_id}:busy_s",
                                           self._busy_s[agent_id])
                    self.bus.metrics.gauge(f"a{agent_id}:barrier_wait_s",
                                           self._wait_s[agent_id])
            elif self.watchdog is not None:
                # Telemetry off but the watchdog measured reply times:
                # export its accumulated busy/wait so the measure →
                # refit_cluster_spec loop still closes.
                for agent_id in range(len(self.specs)):
                    self.bus.metrics.gauge(f"a{agent_id}:busy_s",
                                           self.watchdog.busy_s[agent_id])
                    self.bus.metrics.gauge(f"a{agent_id}:barrier_wait_s",
                                           self.watchdog.wait_s[agent_id])
            self.transport.finalize_stats()
        finally:
            self.transport.close()
        return self.results

    def run(self) -> List[SimResults]:
        """Legacy convenience: run to completion, per-agent results."""
        return self.run_from(-1)

    def run_from(self, current: int) -> List[SimResults]:
        """Drive already-built (or checkpoint-restored) agents from the
        given window cursor to completion."""
        from ..core.runner import EngineRunner
        if not self._built:
            self.build()
        self._cursor = current
        EngineRunner(self).run()
        return self.per_agent

    # --- migration --------------------------------------------------------

    def _maybe_migrate(self, window: int) -> None:
        from .migration import migrate
        while self.schedule and self.schedule[0][0] <= window:
            _boundary, new_partition = self.schedule.pop(0)
            agents = self.agents
            old_partition = agents[0].partition
            if new_partition.assignment != old_partition.assignment:
                self.migrations.append(
                    migrate(agents, old_partition, new_partition)
                )

    # --- fault tolerance --------------------------------------------------

    def _take_snapshots(self, window: int) -> None:
        self._snapshots = self.transport.snapshot_all(window)
        self._snap_window = window
        self._replay_log = {}
        self._windows_since_snap = []
        self.bus.count("cluster.checkpoints")

    def _recover(self, agent_id: int, window: int) -> Dict[int, List[Record]]:
        """Restore a dead agent, replay its missed inputs, catch it up,
        and run the window it failed on.  Returns that window's outbox."""
        if self._snapshots is None:
            raise ClusterError(
                f"agent {agent_id} died at window {window} and no "
                "checkpoint exists (enable checkpoint_every)"
            )
        transport = self.transport
        with self.bus.span("replay", "transport", agent=agent_id,
                           window=window,
                           from_window=self._snap_window):
            transport.restore(agent_id, self._snapshots[agent_id],
                              self._snap_window)
            # Replay the batched RPCs peers delivered since the snapshot
            # — their channels accounted them once already, so they go
            # straight into the restored calendar.
            log = self._replay_log.get(agent_id, [])
            if log:
                transport.accept(agent_id, list(log))
            # Re-run the windows the cluster executed since the snapshot.
            # Outboxes are discarded: the peers received those batches in
            # the original timeline, and re-execution is deterministic.
            for past in self._windows_since_snap:
                transport.run_window(agent_id, past)
        stats = RecoveryStats(
            agent=agent_id,
            failed_window=window,
            restored_from_window=self._snap_window,
            windows_replayed=len(self._windows_since_snap),
            records_replayed=len(log),
        )
        self.recoveries.append(stats)
        self.bus.count("cluster.recoveries")
        return transport.run_window(agent_id, window)


def merge_results(per_agent: List[SimResults], scenario_name: str) -> SimResults:
    """Aggregate agent results the way the Cluster Controller reports."""
    merged = SimResults("dons-cluster", scenario_name, 0)
    merged.trace = TraceRecorder(
        per_agent[0].trace.level if per_agent[0].trace else 0
    )
    for res in per_agent:
        merged.end_time_ps = max(merged.end_time_ps, res.end_time_ps)
        merged.events.add(res.events)
        merged.drops += res.drops
        merged.marks += res.marks
        merged.tx_bytes += res.tx_bytes
        merged.rtt_samples.extend(res.rtt_samples)
        for node, count in res.node_events.items():
            merged.node_events[node] = merged.node_events.get(node, 0) + count
        for flow_id, fr in res.flows.items():
            have = merged.flows.get(flow_id)
            if have is None or (fr.complete_ps is not None
                                and have.complete_ps is None):
                merged.flows[flow_id] = fr
        if res.trace:
            merged.trace.entries.extend(res.trace.entries)
    merged.rtt_samples.sort()
    return merged
