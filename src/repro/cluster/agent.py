"""DONS Agent: one machine's share of a distributed simulation (§3.1).

An Agent wraps the single-machine DOD engine, restricted to its
partition: its Simulation Builder only instantiates sender state for
flows starting locally, and its Runner's TransmitSystem hands packets
whose next hop lives on another machine to an outbox instead of the
local calendar.  The Cluster Controller flushes outboxes as batched
RPCs between windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.engine import DodEngine
from ..des.partition_types import Partition
from ..metrics import TraceLevel
from ..protocols.packet import Row
from ..scenario import Scenario


@dataclass(frozen=True)
class AgentSpec:
    """Everything needed to (re)construct one agent's engine.

    The spec — not the engine — is what crosses a transport boundary: a
    :class:`~repro.cluster.transport.ProcessTransport` pickles it into
    the worker process, and fault recovery uses it to rebuild a dead
    agent before restoring the checkpoint payload.
    """

    agent_id: int
    scenario: Scenario
    partition: Partition
    trace_level: TraceLevel = TraceLevel.NONE
    workers: int = 1
    #: ECS table/system backend ("python" or "numpy"); ``None`` defers to
    #: the engine's own resolution (``REPRO_BACKEND`` env, then "python"),
    #: re-resolved in the worker process a ProcessTransport spawns.
    backend: Optional[str] = None
    #: Span recording + metric sampling on the agent's bus; the spans
    #: come back in the AgentReport and merge into the cluster timeline.
    telemetry: bool = False

    def make(self) -> "AgentEngine":
        return AgentEngine(self.agent_id, self.scenario, self.partition,
                           self.trace_level, self.workers, self.backend,
                           self.telemetry)


def spec_of(engine: "AgentEngine") -> AgentSpec:
    """Recover the construction recipe of an existing agent engine."""
    return AgentSpec(engine.agent_id, engine.scenario, engine.partition,
                     TraceLevel(engine.trace.level), engine.pool.workers,
                     engine.backend, engine.bus.telemetry)


class AgentEngine(DodEngine):
    """The DOD engine of one cluster machine."""

    name = "dons-agent"

    def __init__(
        self,
        agent_id: int,
        scenario: Scenario,
        partition: Partition,
        trace_level: TraceLevel = TraceLevel.NONE,
        workers: int = 1,
        backend: Optional[str] = None,
        telemetry: bool = False,
    ) -> None:
        # ``False`` defers to REPRO_TELEMETRY (like ``backend=None``), so
        # the env switch reaches worker processes a transport spawns.
        super().__init__(scenario, trace_level, workers, backend=backend,
                         telemetry=telemetry or None)
        self.agent_id = agent_id
        self.partition = partition
        #: per remote agent: (arrival_ps, node, row) records of this window
        self.outbox: Dict[int, List[Tuple[int, int, Row]]] = {}

    # --- builder: local endpoints only ------------------------------------

    def build(self) -> None:
        super().build()
        # Drop the flow starts that belong to other machines: the base
        # builder registered every flow; non-local starts must not fire
        # here.  (Sender/receiver tables stay fully allocated — component
        # tables are dense — but remote rows are never visited.)
        for win, buckets in list(self.calendar.items()):
            for node in list(buckets):
                if self.partition.part_of(node) != self.agent_id:
                    del buckets[node]
            if not buckets:
                del self.calendar[win]

    # --- runner: remote deliveries go to the outbox --------------------------

    def deliver(self, node: int, t: int, row: Row) -> None:
        owner = self.partition.part_of(node)
        if owner == self.agent_id:
            super().deliver(node, t, row)
        else:
            self.outbox.setdefault(owner, []).append((t, node, row))

    def accept_remote(self, records: List[Tuple[int, int, Row]]) -> None:
        """Install packets received via RPC into the local calendar."""
        for t, node, row in records:
            super().deliver(node, t, row)

    def take_outbox(self) -> Dict[int, List[Tuple[int, int, Row]]]:
        out = self.outbox
        self.outbox = {}
        return out

    def run_window(self, window: int) -> Dict[int, List[Tuple[int, int, Row]]]:
        """One cluster step: execute the window, hand back the outbox."""
        self.process_window(window)
        return self.take_outbox()

    def finish(self) -> None:
        self.finalize()
        bus = self.bus
        if bus.telemetry and bus.spans:
            # Agents are driven window-by-window by the coordinator, so
            # no EngineRunner wraps them in a "run" span; synthesize one
            # over the whole recorded range so the agent's track nests
            # like a single-machine timeline.
            t0 = min(span[0] for span in bus.spans)
            bus.span_add("run", t0, bus.now(), "run", {"engine": self.name})
