"""DONS Agent: one machine's share of a distributed simulation (§3.1).

An Agent wraps the single-machine DOD engine, restricted to its
partition: its Simulation Builder only instantiates sender state for
flows starting locally, and its Runner's TransmitSystem hands packets
whose next hop lives on another machine to an outbox instead of the
local calendar.  The Cluster Controller flushes outboxes as batched
RPCs between windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.engine import DodEngine
from ..des.partition_types import Partition
from ..metrics import TraceLevel
from ..protocols.packet import Row
from ..scenario import Scenario


@dataclass(frozen=True)
class AgentSpec:
    """Everything needed to (re)construct one agent's engine.

    The spec — not the engine — is what crosses a transport boundary: a
    :class:`~repro.cluster.transport.ProcessTransport` pickles it into
    the worker process, and fault recovery uses it to rebuild a dead
    agent before restoring the checkpoint payload.
    """

    agent_id: int
    scenario: Scenario
    partition: Partition
    trace_level: TraceLevel = TraceLevel.NONE
    workers: int = 1
    #: ECS table/system backend ("python" or "numpy"); ``None`` defers to
    #: the engine's own resolution (``REPRO_BACKEND`` env, then "python"),
    #: re-resolved in the worker process a ProcessTransport spawns.
    backend: Optional[str] = None
    #: Span recording + metric sampling on the agent's bus; the spans
    #: come back in the AgentReport and merge into the cluster timeline.
    telemetry: bool = False
    #: PARSIR-style placement: pin the hosting worker process to this
    #: CPU at startup (``None`` = leave scheduling to the OS).  Set by
    #: the ProcessTransport when pinning is enabled; purely an execution
    #: hint, never part of simulation state.
    pin_cpu: Optional[int] = None

    def make(self) -> "AgentEngine":
        return AgentEngine(self.agent_id, self.scenario, self.partition,
                           self.trace_level, self.workers, self.backend,
                           self.telemetry)


def spec_of(engine: "AgentEngine") -> AgentSpec:
    """Recover the construction recipe of an existing agent engine."""
    return AgentSpec(engine.agent_id, engine.scenario, engine.partition,
                     TraceLevel(engine.trace.level), engine.pool.workers,
                     engine.backend, engine.bus.telemetry)


class AgentEngine(DodEngine):
    """The DOD engine of one cluster machine."""

    name = "dons-agent"

    def __init__(
        self,
        agent_id: int,
        scenario: Scenario,
        partition: Partition,
        trace_level: TraceLevel = TraceLevel.NONE,
        workers: int = 1,
        backend: Optional[str] = None,
        telemetry: bool = False,
    ) -> None:
        # ``False`` defers to REPRO_TELEMETRY (like ``backend=None``), so
        # the env switch reaches worker processes a transport spawns.
        super().__init__(scenario, trace_level, workers, backend=backend,
                         telemetry=telemetry or None)
        self.agent_id = agent_id
        self.partition = partition
        #: per remote agent: (arrival_ps, node, row) records of this window
        self.outbox: Dict[int, List[Tuple[int, int, Row]]] = {}
        #: boundary-distance table, keyed by the partition object so a
        #: migration rebind invalidates it.
        self._quiet_cache: Optional[Tuple[Partition, Dict[int, int]]] = None

    # --- builder: local endpoints only ------------------------------------

    def build(self) -> None:
        super().build()
        # Drop the flow starts that belong to other machines: the base
        # builder registered every flow; non-local starts must not fire
        # here.  (Sender/receiver tables stay fully allocated — component
        # tables are dense — but remote rows are never visited.  The
        # occupancy index deliberately keeps the emptied windows: the
        # agent still schedules them, as no-ops, in step with the
        # cluster.)
        part_of = self.partition.part_of
        me = self.agent_id
        self.events.retain_nodes(lambda node: part_of(node) == me)

    # --- runner: remote deliveries go to the outbox --------------------------

    def deliver(self, node: int, t: int, row: Row) -> None:
        owner = self.partition.part_of(node)
        if owner == self.agent_id:
            super().deliver(node, t, row)
        else:
            self.outbox.setdefault(owner, []).append((t, node, row))

    deliveries_local = False

    def deliver_emissions(self, node: int, delay_ps: int, emissions) -> None:
        owner = self.partition.part_of(node)
        if owner == self.agent_id:
            super().deliver_emissions(node, delay_ps, emissions)
        else:
            out = self.outbox.setdefault(owner, [])
            for row, _start, end in emissions:
                out.append((end + delay_ps, node, row))

    def accept_remote(self, records: List[Tuple[int, int, Row]]) -> None:
        """Install packets received via RPC into the local calendar."""
        for t, node, row in records:
            super().deliver(node, t, row)

    def take_outbox(self) -> Dict[int, List[Tuple[int, int, Row]]]:
        out = self.outbox
        self.outbox = {}
        return out

    def run_window(self, window: int) -> Dict[int, List[Tuple[int, int, Row]]]:
        """One cluster step: execute the window, hand back the outbox."""
        self.process_window(window)
        return self.take_outbox()

    # --- multi-window batching (§4.2 extension) ----------------------------

    def run_windows(
        self, current: int, end_window: int,
    ) -> Tuple[int, Dict[int, List[Tuple[int, int, Row]]]]:
        """Run every locally scheduled window in ``(current, end_window)``
        back to back — one batched cluster span, zero barrier rounds.

        The coordinator calls this only after every agent's
        :meth:`remote_quiet_horizon` proved no cross-agent record can be
        produced before ``end_window``; the returned outbox is therefore
        expected to be empty (the coordinator enforces that as a
        soundness check).  Returns ``(last window run, outbox)``.
        """
        cur = current
        while True:
            nxt = self.peek_next_window(cur)
            if nxt is None or nxt >= end_window:
                break
            cur = self._next_window(cur)  # == nxt; consumes the index
            self.process_window(cur)
        return cur, self.take_outbox()

    def _boundary_distances(self) -> Dict[int, int]:
        """Hops from each local node to its nearest boundary egress.

        Reverse BFS over this agent's local links: a node owning an
        egress whose peer is remote has distance 0; a node one local
        link upstream has distance 1; nodes that cannot reach a
        boundary are absent.  Cached per partition object (a migration
        rebind replaces the partition and thus invalidates the cache).
        """
        cached = self._quiet_cache
        if cached is not None and cached[0] is self.partition:
            return cached[1]
        from collections import deque
        part_of = self.partition.part_of
        me = self.agent_id
        dist: Dict[int, int] = {}
        rev: Dict[int, List[int]] = {}
        queue: deque = deque()
        for iface in self.scenario.topology.interfaces:
            node = iface.node
            if part_of(node) != me:
                continue
            peer = iface.peer_node
            if part_of(peer) != me:
                if node not in dist:
                    dist[node] = 0
                    queue.append(node)
            else:
                rev.setdefault(peer, []).append(node)
        while queue:
            node = queue.popleft()
            d = dist[node] + 1
            for pred in rev.get(node, ()):
                if pred not in dist:
                    dist[pred] = d
                    queue.append(pred)
        self._quiet_cache = (self.partition, dist)
        return dist

    def remote_quiet_horizon(self, current: int, limit: int) -> int:
        """Largest ``H <= limit`` such that this agent provably emits no
        cross-agent record while running windows in ``(current, H)``.

        The bound rides the lookahead discipline: every hop costs at
        least one full window (link delay >= lookahead), so a pending
        entry at ``(window w, node n)`` cannot reach a boundary egress
        before window ``w + dist(n)``, and a busy port's backlog cannot
        reach one before ``current + 1`` (boundary port) or
        ``current + 2 + dist(peer)`` (local port).  The minimum over
        all pending state is the agent's quiet horizon; the coordinator
        batches up to the cluster-wide minimum.
        """
        dist = self._boundary_distances()
        if not dist:
            return limit  # no boundary egress: this agent never emits
        horizon = limit
        for win, nodes in self.events.pending_nodes():
            if win >= horizon:
                break
            for node in nodes:
                d = dist.get(node)
                if d is not None and win + d < horizon:
                    horizon = win + d
        part_of = self.partition.part_of
        me = self.agent_id
        for iface_id in self.active_ports:
            iface = self.ports[iface_id].iface
            peer = iface.peer_node
            if part_of(peer) != me:
                bound = current + 1
            else:
                d = dist.get(peer)
                if d is None:
                    continue
                bound = current + 2 + d
            if bound < horizon:
                horizon = bound
        return horizon

    def finish(self) -> None:
        self.finalize()
        bus = self.bus
        if bus.telemetry and bus.spans:
            # Agents are driven window-by-window by the coordinator, so
            # no EngineRunner wraps them in a "run" span; synthesize one
            # over the whole recorded range so the agent's track nests
            # like a single-machine timeline.
            t0 = min(span[0] for span in bus.spans)
            bus.span_add("run", t0, bus.now(), "run", {"engine": self.name})
