"""Distributed execution: Manager, Agents, transports, cluster runtime
(§3.1, §4.2) and checkpoint-based fault tolerance (§8)."""

from .agent import AgentEngine, AgentSpec
from .channel import (
    ChannelMap, ClusterTrafficStats, RpcChannel,
    RPC_FRAME_BYTES, RPC_RECORD_BYTES,
)
from .transport import (
    AgentFailure, AgentReport, LocalTransport, ProcessTransport, Transport,
    make_transport,
)
from .fault import FaultPlan, RecoveryStats
from .runtime import ClusterEngine, merge_results
from .manager import ClusterController, DistributedRun, DonsManager
from .migration import MigrationStats, migrate
from .checkpoint import (
    ClusterCheckpoint, resume_cluster, take_cluster_checkpoint,
)

__all__ = [
    "AgentEngine", "AgentSpec", "ChannelMap", "ClusterTrafficStats",
    "RpcChannel", "RPC_FRAME_BYTES", "RPC_RECORD_BYTES",
    "AgentFailure", "AgentReport", "LocalTransport", "ProcessTransport",
    "Transport", "make_transport",
    "FaultPlan", "RecoveryStats",
    "ClusterEngine", "ClusterController", "DistributedRun", "DonsManager",
    "merge_results",
    "MigrationStats", "migrate",
    "ClusterCheckpoint", "resume_cluster", "take_cluster_checkpoint",
]
