"""Distributed execution: Manager, Agents, Cluster Controller (§3.1, §4.2)."""

from .agent import AgentEngine
from .channel import ClusterTrafficStats, RpcChannel, RPC_FRAME_BYTES, RPC_RECORD_BYTES
from .manager import ClusterController, DistributedRun, DonsManager, merge_results
from .migration import MigrationStats, migrate
from .checkpoint import (
    ClusterCheckpoint, resume_cluster, take_cluster_checkpoint,
)

__all__ = [
    "AgentEngine", "ClusterTrafficStats", "RpcChannel",
    "RPC_FRAME_BYTES", "RPC_RECORD_BYTES",
    "ClusterController", "DistributedRun", "DonsManager", "merge_results",
    "MigrationStats", "migrate",
    "ClusterCheckpoint", "resume_cluster", "take_cluster_checkpoint",
]
