"""Zero-copy shared-memory framing for the process transport (PR 8).

The :class:`~repro.cluster.transport.ProcessTransport` used to move
every window batch, snapshot and restore payload through its command
pipe pickled.  This module gives it a second lane: named
``multiprocessing.shared_memory`` segments the coordinator creates at
launch, into which batches are written as raw ``int64`` column slices
with a compact struct-packed framing — the pipe then carries only a
``("shm", seq)`` reference.  Pickle remains the fallback for payloads
that do not fit a slot (or when shared memory is off), so correctness
never depends on the fast path.

Layout of one *ring* (one direction of one coordinator<->worker pair)::

    [0:8)   slot_bytes          geometry, written once at create
    [8:16)  n_slots
    then n_slots slots, each:
      [0:8)   commit word: the frame's sequence number, written LAST —
              a reader that finds anything but the seq it was told to
              read caught a torn (half-written) frame
      [8:32)  frame header <qqq>: kind, count, payload length
      [32:..) payload

A writer may reuse slot ``seq % n_slots`` only once it knows the reader
consumed ``seq - n_slots`` (ack-by-sequence, inferred from the command
protocol's reply ordering); when no slot is free — or the payload is
too large — the caller falls back to the pipe instead of blocking, so
the ring can never deadlock the window protocol.

Record framing: one delivery ``(arrival_ps, node, row)`` is exactly
``2 + len(ROW_FIELDS)`` little-endian int64 words.  Cross-agent accept
batches are framed as per-channel *sections* ``(src, chan_seq,
records)``; every channel's ``chan_seq`` is strictly monotone, which is
what lets the worker-side :class:`ChannelSequencer` reject reordered or
replayed batches no matter how flushes and acks interleave.

``unpack_records`` is deliberately a module-level hook: the conformance
suite's planted bug ``inject.torn_shm_read`` swaps it for one that
truncates multi-record frames — what a reader racing the writer past
the commit word would observe — and the fuzz loop must catch the loss.
"""

from __future__ import annotations

import os
import secrets
import struct
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ClusterError
from ..protocols.packet import ROW_FIELDS, Row

#: Every segment this package creates starts with this prefix — the
#: conftest reaper and :func:`reap_orphans` key on it.
SEGMENT_PREFIX = "dons-shm-"

#: Frame kinds.
KIND_OUTBOX = 1    #: worker -> coordinator: one window's outbox
KIND_SECTIONS = 2  #: coordinator -> worker: per-channel accept sections
KIND_BYTES = 3     #: opaque blob (checkpoint payloads)
KIND_PICKLE = 4    #: pickled object (non-columnar fallback payload)

#: One record = (arrival_ps, node, *row) as little-endian int64 words.
WORDS_PER_RECORD = 2 + len(ROW_FIELDS)
RECORD_BYTES = 8 * WORDS_PER_RECORD

_GEOMETRY = struct.Struct("<qq")     # slot_bytes, n_slots
_COMMIT = struct.Struct("<q")        # sequence number, written last
_HEADER = struct.Struct("<qqq")      # kind, count, payload_len
_SLOT_OVERHEAD = _COMMIT.size + _HEADER.size

DEFAULT_SLOT_BYTES = 1 << 20
DEFAULT_SLOTS = 4


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


def default_slot_bytes() -> int:
    return max(4096, _env_int("REPRO_SHM_SLOT_BYTES", DEFAULT_SLOT_BYTES))


def default_slots() -> int:
    return max(2, _env_int("REPRO_SHM_SLOTS", DEFAULT_SLOTS))


class TornFrameError(ClusterError):
    """A reader observed a slot whose commit word is not the frame it
    was told to read — the write was torn or the protocol desynced."""


class SequenceError(ClusterError):
    """A channel delivered a batch out of sequence (reordered/replayed)."""


class RingFull(ClusterError):
    """No free slot — the caller must take the pipe fallback."""


# --- record / batch framing -------------------------------------------------

def pack_records(records: Sequence[Tuple[int, int, Row]]) -> bytes:
    """Flatten delivery records into little-endian int64 words."""
    flat: List[int] = []
    for t, node, row in records:
        flat.append(t)
        flat.append(node)
        flat.extend(row)
    return struct.pack(f"<{len(flat)}q", *flat)


def unpack_records(view, count: int) -> List[Tuple[int, int, Row]]:
    """Rebuild delivery records from a packed frame payload.

    Module-level on purpose: ``inject.torn_shm_read`` patches this to
    model a reader that raced the writer (see module doc).
    """
    flat = struct.unpack_from(f"<{count * WORDS_PER_RECORD}q", view, 0)
    out: List[Tuple[int, int, Row]] = []
    k = 0
    for _ in range(count):
        out.append((flat[k], flat[k + 1],
                    tuple(flat[k + 2:k + WORDS_PER_RECORD])))
        k += WORDS_PER_RECORD
    return out


def records_fit(count: int, capacity: int, extra_words: int = 0) -> bool:
    return count * RECORD_BYTES + 8 * extra_words <= capacity


def pack_outbox(outbox: Dict[int, List[Tuple[int, int, Row]]]) -> bytes:
    """``{dst: records}`` as ``n_dsts, (dst, count, records)*``."""
    parts = [struct.pack("<q", len(outbox))]
    for dst in sorted(outbox):
        records = outbox[dst]
        parts.append(struct.pack("<qq", dst, len(records)))
        parts.append(pack_records(records))
    return b"".join(parts)


def outbox_record_count(outbox: Dict[int, List[Tuple[int, int, Row]]]) -> int:
    return sum(len(records) for records in outbox.values())


def unpack_outbox(view) -> Dict[int, List[Tuple[int, int, Row]]]:
    (n_dsts,) = struct.unpack_from("<q", view, 0)
    off = 8
    out: Dict[int, List[Tuple[int, int, Row]]] = {}
    for _ in range(n_dsts):
        dst, count = struct.unpack_from("<qq", view, off)
        off += 16
        out[dst] = unpack_records(memoryview(view)[off:], count)
        off += count * RECORD_BYTES
    return out


#: One accept section: (src agent, per-channel batch seq, records).
Section = Tuple[int, int, List[Tuple[int, int, Row]]]


def pack_sections(sections: Sequence[Section]) -> bytes:
    """Per-channel accept sections, concatenated in ``src`` order."""
    parts = [struct.pack("<q", len(sections))]
    for src, chan_seq, records in sections:
        parts.append(struct.pack("<qqq", src, chan_seq, len(records)))
        parts.append(pack_records(records))
    return b"".join(parts)


def sections_record_count(sections: Sequence[Section]) -> int:
    return sum(len(records) for _, _, records in sections)


def unpack_sections(view) -> List[Section]:
    (n_sections,) = struct.unpack_from("<q", view, 0)
    off = 8
    out: List[Section] = []
    for _ in range(n_sections):
        src, chan_seq, count = struct.unpack_from("<qqq", view, off)
        off += 24
        out.append((src, chan_seq,
                    unpack_records(memoryview(view)[off:], count)))
        off += count * RECORD_BYTES
    return out


class ChannelSequencer:
    """Receiver-side monotonicity guard for per-channel batch sequences.

    Every directed channel stamps its drained batches with a strictly
    increasing sequence number (:meth:`RpcChannel.drain_with_seq`); the
    receiving agent feeds each section through :meth:`observe`, which
    raises :class:`SequenceError` on any regression or replay.  A fresh
    sequencer (a restored agent) accepts any first value per channel —
    recovery replays arrive as administrative batches (``src == -1``)
    that bypass the guard.
    """

    def __init__(self) -> None:
        self._last: Dict[int, int] = {}

    def observe(self, src: int, chan_seq: int) -> None:
        if src < 0:
            return  # administrative replay, outside channel sequencing
        last = self._last.get(src)
        if last is not None and chan_seq <= last:
            raise SequenceError(
                f"channel {src}: batch seq {chan_seq} after {last} "
                "(reordered or replayed)"
            )
        self._last[src] = chan_seq


# --- shared-memory ring -----------------------------------------------------

def _spawn_world() -> bool:
    """True when worker processes get their *own* resource tracker.

    Under the fork start method (what the transport prefers) every
    process inherits the parent's tracker: its name set dedupes the
    attach-time re-registration, so the built-in accounting is already
    exactly-once and an explicit unregister would double-remove (the
    tracker prints a KeyError).  Under spawn each process tracks
    independently, and an attacher *must* unregister or its tracker
    will unlink — and warn about — a segment it never owned.
    """
    import multiprocessing
    return "fork" not in multiprocessing.get_all_start_methods()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach without adopting unlink duty.

    Python 3.11's ``SharedMemory`` registers the name with the attaching
    process's resource tracker too; creators own the unlink, so spawned
    attachers unregister (see :func:`_spawn_world` for why forked ones
    must not).
    """
    seg = shared_memory.SharedMemory(name=name)
    if _spawn_world():  # pragma: no cover - non-fork platforms
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    return seg


def _disown_segment(seg: shared_memory.SharedMemory) -> None:
    """Hand a created segment's unlink duty to the peer process."""
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker not running
        pass


def _fresh_name(tag: str) -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}-{tag}-{secrets.token_hex(4)}"


class ShmRing:
    """One direction of framed slots inside one shared segment.

    The creating side (the coordinator) may act as writer or reader —
    each process uses only one role per ring.  ``next_seq`` starts at 1;
    slot for seq ``s`` is ``(s - 1) % n_slots``.
    """

    def __init__(self, seg: shared_memory.SharedMemory, slot_bytes: int,
                 n_slots: int, created: bool) -> None:
        self._seg = seg
        self.name = seg.name
        self.slot_bytes = slot_bytes
        self.n_slots = n_slots
        self._created = created
        self.unlinked = False
        self._closed = False
        # writer state
        self.next_seq = 1
        self.consumed_floor = 0   # highest seq known consumed by reader
        # reader state
        self.last_read = 0

    # -- lifecycle --

    @classmethod
    def create(cls, tag: str, slot_bytes: Optional[int] = None,
               n_slots: Optional[int] = None) -> "ShmRing":
        slot_bytes = slot_bytes or default_slot_bytes()
        n_slots = n_slots or default_slots()
        size = _GEOMETRY.size + n_slots * (_COMMIT.size + slot_bytes)
        seg = shared_memory.SharedMemory(
            create=True, size=size, name=_fresh_name(tag))
        _GEOMETRY.pack_into(seg.buf, 0, slot_bytes, n_slots)
        # Zero every commit word so a reader can never mistake leftover
        # kernel page contents for a committed frame.
        for k in range(n_slots):
            _COMMIT.pack_into(seg.buf, cls._slot_off(slot_bytes, k), 0)
        return cls(seg, slot_bytes, n_slots, created=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        seg = _attach_segment(name)
        slot_bytes, n_slots = _GEOMETRY.unpack_from(seg.buf, 0)
        return cls(seg, slot_bytes, n_slots, created=False)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._seg.close()
        except BufferError:  # pragma: no cover - a view outlived us
            pass

    def unlink(self) -> None:
        """Remove the segment name; exactly-once (idempotent re-calls)."""
        if self.unlinked or not self._created:
            return
        self.unlinked = True
        try:
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - reaped externally
            pass

    # -- geometry --

    @staticmethod
    def _slot_off(slot_bytes: int, k: int) -> int:
        return _GEOMETRY.size + k * (_COMMIT.size + slot_bytes)

    @property
    def frame_capacity(self) -> int:
        """Max payload bytes one frame can carry."""
        return self.slot_bytes - _HEADER.size

    # -- writer role --

    def can_write(self) -> bool:
        return (self.next_seq - 1) - self.consumed_floor < self.n_slots

    def mark_consumed(self, seq: int) -> None:
        if seq > self.consumed_floor:
            self.consumed_floor = seq

    def write_frame(self, kind: int, count: int,
                    parts: Iterable) -> int:
        """Publish one frame; payload is the concatenation of ``parts``
        (bytes-like, copied straight into the slot).  Returns the frame's
        sequence number; raises :class:`RingFull` when no slot is free —
        the caller then takes the pipe fallback."""
        if not self.can_write():
            raise RingFull(
                f"ring {self.name}: {self.n_slots} slots in flight")
        seq = self.next_seq
        base = self._slot_off(self.slot_bytes, (seq - 1) % self.n_slots)
        buf = self._seg.buf
        _COMMIT.pack_into(buf, base, 0)  # invalidate before overwriting
        off = base + _COMMIT.size + _HEADER.size
        total = 0
        for part in parts:
            mv = memoryview(part).cast("B")
            n = mv.nbytes
            if total + n > self.frame_capacity:
                raise ClusterError(
                    f"frame overflows slot ({total + n} > "
                    f"{self.frame_capacity}); callers must size-check")
            buf[off:off + n] = mv
            off += n
            total += n
        _HEADER.pack_into(buf, base + _COMMIT.size, kind, count, total)
        _COMMIT.pack_into(buf, base, seq)  # commit: published last
        self.next_seq = seq + 1
        return seq

    # -- reader role --

    def read_frame(self, seq: int):
        """The frame published as ``seq``: ``(kind, count, payload_view)``.

        The returned view aliases the slot — decode before the writer
        can reuse it (the command protocol guarantees the writer waits
        for our side's next message).
        """
        base = self._slot_off(self.slot_bytes, (seq - 1) % self.n_slots)
        buf = self._seg.buf
        (commit,) = _COMMIT.unpack_from(buf, base)
        if commit != seq:
            raise TornFrameError(
                f"ring {self.name}: slot holds frame {commit}, "
                f"expected {seq} (torn write or protocol desync)")
        kind, count, length = _HEADER.unpack_from(buf, base + _COMMIT.size)
        start = base + _COMMIT.size + _HEADER.size
        self.last_read = max(self.last_read, seq)
        return kind, count, memoryview(buf)[start:start + length]


# --- one-off blob segments (checkpoint payloads) ----------------------------

def write_blob(tag: str, parts: Sequence) -> Tuple[str, int]:
    """Copy ``parts`` into a fresh named segment for the peer to read.

    The *reader* unlinks (attach -> copy -> unlink), so the creating
    process disowns the name from its resource tracker; a crash before
    the read leaves an orphan for :func:`reap_orphans`.
    """
    views = [memoryview(p).cast("B") for p in parts]
    total = sum(v.nbytes for v in views)
    seg = shared_memory.SharedMemory(
        create=True, size=max(1, total), name=_fresh_name(tag))
    off = 0
    for view in views:
        seg.buf[off:off + view.nbytes] = view
        off += view.nbytes
    _disown_segment(seg)
    seg.close()
    return seg.name, total


def read_blob(name: str, nbytes: int) -> bytes:
    """Consume a blob segment: copy out, unlink, close."""
    seg = _attach_segment(name)
    try:
        payload = bytes(seg.buf[:nbytes])
    finally:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        seg.close()
    return payload


# --- orphan reaping ---------------------------------------------------------

def list_orphans() -> List[str]:
    """Names of this package's segments still present in ``/dev/shm``."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX host
        return []
    return sorted(
        entry for entry in os.listdir(shm_dir)
        if entry.startswith(SEGMENT_PREFIX)
    )


def reap_orphans() -> List[str]:
    """Unlink every leftover segment; returns the reaped names.

    The conftest worker-reaper calls this after each test so a failing
    test cannot strand segments for the rest of the session.
    """
    reaped = []
    for name in list_orphans():
        try:
            seg = _attach_segment(name)
        except FileNotFoundError:  # pragma: no cover - raced another reaper
            continue
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        seg.close()
        reaped.append(name)
    return reaped
