"""Transport layer: where agents live and how window batches move.

The cluster runtime (:mod:`repro.cluster.runtime`) never talks to an
:class:`~repro.cluster.agent.AgentEngine` directly; it talks to a
*transport*, which decides where each agent executes and carries the
batched RPCs between them.  Two implementations:

* :class:`LocalTransport` — every agent is an in-process engine and a
  batch RPC is an in-process mailbox hand-off (the DESIGN.md
  substitution).  Serial, deterministic, zero serialization cost; the
  default, and the reference the equivalence tests compare against.
* :class:`ProcessTransport` — every agent runs in its own
  ``multiprocessing`` worker; window commands fan out to all workers
  before any reply is collected, so agents execute their lookahead
  batches concurrently without sharing a GIL.

The ProcessTransport window protocol is *pipelined* (PR 8):

* **Async accepts.**  Cross-agent batches are fire-and-forget commands —
  the pipe's FIFO ordering guarantees a worker installs ``accept`` for
  window N before it sees the ``window N+1`` command, so the coordinator
  never blocks on a delivery round-trip.  Worker-side errors are
  deferred to the next replying command.
* **Peek piggybacking.**  Every ``window`` reply carries the agent's
  next ``peek_next_window``; the coordinator caches it and updates the
  cache itself when it forwards deliveries (arrival window ``t // L``,
  exact under the lookahead discipline), so the per-window peek round
  disappears in steady state.
* **Shared-memory framing** (``shm=True`` / ``REPRO_TRANSPORT_SHM=1``).
  Outboxes and accept batches move as struct-packed int64 column slices
  through per-worker double-buffered :class:`~repro.cluster.shm.ShmRing`
  segments — the pipe carries only ``("shm", seq)`` references, with
  ack-by-sequence slot reuse inferred from the command protocol.
  Checkpoint payloads travel as one-off blob segments holding a
  pickle-protocol-5 out-of-band container (raw column buffers, no
  pickling of array data).  Anything that does not fit a slot falls back
  to the pickled pipe path, counted as ``transport.shm_fallbacks``.
* **CPU pinning** (``pin_cpus=True`` / ``REPRO_PIN_CPUS=1``).  Each
  worker pins itself to core ``agent_id % cpu_count`` at startup
  (PARSIR-style contention-free placement); a no-op where
  ``sched_setaffinity`` is unavailable.

Both transports route every batch through a lazily-created
:class:`~repro.cluster.channel.RpcChannel` (one per directed pair that
actually communicates), so the traffic accounting — records, bytes,
FINISH signals — is identical whichever transport runs the agents, and
every drained batch carries the channel's monotone sequence number that
the receiving worker's :class:`~repro.cluster.shm.ChannelSequencer`
verifies.

The transport is also the fault boundary: :meth:`Transport.kill` is the
fault-injection hook (worker process terminated / in-process engine
discarded), failures surface as :class:`AgentFailure`, and
:meth:`Transport.restore` rebuilds a dead agent from a checkpoint
payload — the runtime layers replay and catch-up on top.  A respawned
worker gets *fresh* shared segments (the old ones are unlinked), so a
half-written frame from the killed incarnation can never be replayed.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import struct
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .agent import AgentEngine, AgentSpec, spec_of
from .channel import ChannelMap, ClusterTrafficStats
from .shm import (
    KIND_OUTBOX, KIND_SECTIONS, RECORD_BYTES, ChannelSequencer, RingFull,
    Section, ShmRing, outbox_record_count, pack_records, read_blob,
    unpack_outbox, unpack_sections, write_blob,
)
from ..core.checkpoint import (
    restore_snapshot, state_oob_parts, take_checkpoint,
)
from ..core.instrument import SystemProfile, WindowProfile
from ..errors import ClusterError
from ..metrics import SimResults
from ..protocols.packet import Row

#: One remote delivery: (arrival_time_ps, node, row).
Record = Tuple[int, int, Row]

#: Test hook for the watchdog drill: when set, called as
#: ``stall_injector(agent_id, window)`` just before a LocalTransport
#: agent executes a window — a test makes it sleep for a chosen agent to
#: simulate a stalled machine and assert the watchdog flags it.  Always
#: ``None`` in production.
stall_injector = None


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0", "false", "off")


class AgentFailure(ClusterError):
    """An agent died (or was killed) and cannot serve requests."""

    def __init__(self, agent_id: int, window: int = -1) -> None:
        super().__init__(f"agent {agent_id} failed at window {window}")
        self.agent_id = agent_id
        self.window = window


@dataclass
class AgentReport:
    """What one finished agent hands back across the transport."""

    agent_id: int
    results: SimResults
    counters: Dict[str, int]
    totals: Dict[str, SystemProfile]
    windows: List[WindowProfile]
    #: Telemetry streams (PR 5): the agent bus's span buffer, its metric
    #: registry snapshot, and the wall-clock position of its span epoch
    #: — the cluster bus uses the latter to normalize child clocks
    #: before merging the spans under the ``a<id>:`` namespace.
    spans: List[tuple] = None  # type: ignore[assignment]
    metrics: Dict[str, Any] = None  # type: ignore[assignment]
    epoch_wall: float = 0.0


class Transport:
    """Base transport: channel accounting shared by every implementation.

    Subclasses implement agent hosting (``launch`` / ``build_all`` /
    ``peek_all`` / ``run_window`` / ``run_window_all`` / ``accept`` /
    ``snapshot_all`` / ``kill`` / ``restore`` / ``finish_all`` /
    ``close``); batch accounting, delivery and the FINISH barrier live
    here.
    """

    def __init__(self) -> None:
        self.specs: List[AgentSpec] = []
        self.channels = ChannelMap()
        self.stats = ClusterTrafficStats()
        #: Cluster bus for transport-level telemetry; the runtime wires
        #: it at build when telemetry is on, else spans stay un-emitted.
        self.bus = None
        #: Per-agent busy seconds of the most recent ``run_window_all``
        #: (coordinator-observed; filled only when ``bus`` telemetry is
        #: on) — the runtime turns these into barrier-wait slices.
        self.window_times: List[float] = []
        #: Force ``window_times`` measurement even with telemetry off —
        #: set by the runtime when a cluster watchdog is armed, which
        #: needs per-agent reply times without paying for span capture.
        self.track_times = False

    def _telemetry(self) -> bool:
        return self.bus is not None and self.bus.telemetry

    def _timed(self) -> bool:
        """Whether ``run_window_all`` should fill ``window_times``."""
        return self.track_times or self._telemetry()

    def _count(self, name: str, n: int = 1) -> None:
        if self.bus is not None:
            self.bus.count(name, n)

    # --- batched RPCs -----------------------------------------------------

    @property
    def num_agents(self) -> int:
        return len(self.specs)

    def send_batch(self, src: int, dst: int, records: List[Record]) -> None:
        """Account and enqueue one window batch (nothing for empty)."""
        if records:
            if self._telemetry():
                with self.bus.span("send", "transport", src=src, dst=dst,
                                   records=len(records)):
                    self.channels[src, dst].send_batch(records)
            else:
                self.channels[src, dst].send_batch(records)

    def deliver_pending(self) -> Dict[int, List[Record]]:
        """Drain every channel into its destination agent; returns what
        each destination received (the runtime's replay log feeds on
        this).

        Channels drain in ``(src, dst)`` order and each destination gets
        *one* hand-off per window — its per-channel batches concatenated
        in source order as sequenced sections — so a ProcessTransport
        pays one command per destination instead of one per channel,
        and the per-destination record order is the deterministic one
        the equivalence tests pin down.
        """
        staged: Dict[int, List[Section]] = {}
        for (src, dst), channel in self.channels.sorted_items():
            records, seq = channel.drain_with_seq()
            if records:
                staged.setdefault(dst, []).append((src, seq, records))
        delivered: Dict[int, List[Record]] = {}
        for dst in sorted(staged):
            sections = staged[dst]
            records = [record for _src, _seq, recs in sections
                       for record in recs]
            if self._telemetry():
                # The serialize + hand-off of one destination's batches:
                # in-process it is a mailbox append; across a
                # ProcessTransport it is the shm frame write (or the
                # pickled-pipe fallback).
                with self.bus.span("serialize", "transport", dst=dst,
                                   records=len(records)):
                    self.accept_sections(dst, sections, records)
            else:
                self.accept_sections(dst, sections, records)
            delivered[dst] = records
        return delivered

    def barrier(self) -> None:
        """End-of-window FINISH barrier: everyone tells everyone (§4.2)."""
        n = self.num_agents
        self.stats.finish_signals += n * (n - 1)
        self.stats.windows += 1

    def finalize_stats(self) -> ClusterTrafficStats:
        """Aggregate the per-channel accounting into the run totals."""
        channels = list(self.channels.values())
        self.stats.rpc_messages = sum(c.messages for c in channels)
        self.stats.rpc_records = sum(c.records for c in channels)
        self.stats.rpc_bytes = sum(c.bytes_sent for c in channels)
        self.stats.egress_bytes = [
            sum(c.bytes_sent for c in channels if c.src == a)
            for a in range(self.num_agents)
        ]
        return self.stats

    # --- hosting API (subclass responsibility) ----------------------------

    def launch(self, specs: Sequence[AgentSpec]) -> None:
        raise NotImplementedError

    def build_all(self) -> None:
        raise NotImplementedError

    def peek_all(self, current: int) -> List[Optional[int]]:
        raise NotImplementedError

    def run_window(self, agent_id: int, window: int) -> Dict[int, List[Record]]:
        raise NotImplementedError

    def run_window_all(
        self, window: int, active: Optional[Sequence[bool]] = None
    ) -> List[Union[Dict[int, List[Record]], AgentFailure]]:
        """Run the window on every agent.  ``active[i] is False`` marks
        an agent the coordinator's peeks prove has nothing scheduled —
        it is skipped (empty outbox) without a command round-trip."""
        raise NotImplementedError

    def quiet_all(self, current: int, limit: int) -> List[int]:
        """Every agent's :meth:`AgentEngine.remote_quiet_horizon` — the
        batcher takes the minimum before committing to a barrier-free
        span."""
        raise NotImplementedError

    def run_windows_all(
        self, current: int, end_window: int
    ) -> List[Tuple[int, Dict[int, List[Record]]]]:
        """Batched span: every agent runs its scheduled windows in
        ``(current, end_window)`` without intermediate barriers."""
        raise NotImplementedError

    def accept_sections(self, agent_id: int, sections: List[Section],
                        records: List[Record]) -> None:
        """Deliver one destination's drained batches (``records`` is the
        concatenation of the sections' record lists, in section order)."""
        self.accept(agent_id, records)

    def accept(self, agent_id: int, records: List[Record]) -> None:
        raise NotImplementedError

    def snapshot_all(self, window: int) -> List[bytes]:
        raise NotImplementedError

    def kill(self, agent_id: int) -> None:
        raise NotImplementedError

    def alive(self, agent_id: int) -> bool:
        raise NotImplementedError

    def restore(self, agent_id: int, payload: bytes, window: int) -> None:
        raise NotImplementedError

    def finish_all(self) -> List[AgentReport]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def _report_of(engine: AgentEngine) -> AgentReport:
    bus = engine.bus
    return AgentReport(
        agent_id=engine.agent_id,
        results=engine.results,
        counters=dict(bus.counters),
        totals=dict(bus.totals),
        windows=list(bus.windows),
        spans=list(bus.spans),
        metrics=bus.metrics.snapshot() if bus.metrics else {},
        epoch_wall=bus.epoch_wall,
    )


class LocalTransport(Transport):
    """All agents in this process; a batch RPC is a mailbox hand-off.

    ``engines`` may be supplied pre-constructed (the legacy
    ``ClusterController`` path and checkpoint resume); otherwise
    :meth:`launch` builds them from the specs.  A killed agent's engine
    is dropped on the floor — the crash loses its memory, exactly what
    recovery must survive.
    """

    def __init__(self, engines: Optional[Sequence[AgentEngine]] = None) -> None:
        super().__init__()
        self.engines: List[Optional[AgentEngine]] = list(engines or [])
        if self.engines:
            self.specs = [spec_of(e) for e in self.engines]
        self._dead: set = set()

    def launch(self, specs: Sequence[AgentSpec]) -> None:
        if self.engines:
            if len(self.engines) != len(specs):
                raise ClusterError("adopted engines do not match the specs")
            self.specs = [spec_of(e) for e in self.engines]
            return
        self.specs = list(specs)
        self.engines = [spec.make() for spec in self.specs]

    def _engine(self, agent_id: int, window: int = -1) -> AgentEngine:
        engine = self.engines[agent_id]
        if agent_id in self._dead or engine is None:
            raise AgentFailure(agent_id, window)
        return engine

    def build_all(self) -> None:
        for agent_id in range(len(self.engines)):
            engine = self._engine(agent_id)
            if not engine.built:
                engine.build()

    def peek_all(self, current: int) -> List[Optional[int]]:
        return [self._engine(a).peek_next_window(current)
                for a in range(len(self.engines))]

    def run_window(self, agent_id: int, window: int) -> Dict[int, List[Record]]:
        if stall_injector is not None:
            stall_injector(agent_id, window)
        return self._engine(agent_id, window).run_window(window)

    def run_window_all(self, window: int,
                       active: Optional[Sequence[bool]] = None):
        out: List[Union[Dict[int, List[Record]], AgentFailure]] = []
        timed = self._timed()
        if timed:
            self.window_times = []
        for agent_id in range(len(self.engines)):
            if active is not None and not active[agent_id]:
                out.append({})
                if timed:
                    self.window_times.append(0.0)
                continue
            t0 = time.perf_counter() if timed else 0.0
            try:
                out.append(self.run_window(agent_id, window))
            except AgentFailure as failure:
                out.append(failure)
            if timed:
                # Serial execution: each agent's busy time is exactly its
                # own wall time; the runtime derives barrier waits.
                self.window_times.append(time.perf_counter() - t0)
        return out

    def quiet_all(self, current: int, limit: int) -> List[int]:
        return [self._engine(a).remote_quiet_horizon(current, limit)
                for a in range(len(self.engines))]

    def run_windows_all(self, current: int, end_window: int):
        out: List[Tuple[int, Dict[int, List[Record]]]] = []
        timed = self._timed()
        if timed:
            self.window_times = []
        for agent_id in range(len(self.engines)):
            t0 = time.perf_counter() if timed else 0.0
            out.append(self._engine(agent_id, current)
                       .run_windows(current, end_window))
            if timed:
                self.window_times.append(time.perf_counter() - t0)
        return out

    def accept(self, agent_id: int, records: List[Record]) -> None:
        self._engine(agent_id).accept_remote(records)

    def snapshot_all(self, window: int) -> List[bytes]:
        return [take_checkpoint(self._engine(a), window).payload
                for a in range(len(self.engines))]

    def kill(self, agent_id: int) -> None:
        """Fault injection: the agent crashes, its in-memory state is gone."""
        self._dead.add(agent_id)
        self.engines[agent_id] = None

    def alive(self, agent_id: int) -> bool:
        return agent_id not in self._dead and self.engines[agent_id] is not None

    def restore(self, agent_id: int, payload: bytes, window: int) -> None:
        spec = self.specs[agent_id]
        engine = spec.make()
        engine.build()
        restore_snapshot(engine, payload, window, spec.scenario.name)
        self.engines[agent_id] = engine
        self._dead.discard(agent_id)

    def finish_all(self) -> List[AgentReport]:
        reports = []
        for agent_id in range(len(self.engines)):
            engine = self._engine(agent_id)
            engine.finish()
            reports.append(_report_of(engine))
        return reports

    def close(self) -> None:  # engines stay inspectable after the run
        pass


# --- process transport ----------------------------------------------------

def _sections_size(sections: Sequence[Section], n_records: int) -> int:
    return 8 + 24 * len(sections) + n_records * RECORD_BYTES


def _outbox_size(outbox: Dict[int, List[Record]], n_records: int) -> int:
    return 8 + 16 * len(outbox) + n_records * RECORD_BYTES


def _decode_sections(ref, ring_in: Optional[ShmRing]) -> List[Section]:
    if ref[0] == "shm":
        _kind, _count, view = ring_in.read_frame(ref[1])
        return unpack_sections(view)
    return ref[1]


def _encode_outbox(outbox: Dict[int, List[Record]],
                   ring_out: Optional[ShmRing], bus) -> Tuple[Any, int]:
    """Frame one window's outbox for the reply; returns ``(ref, seq)``
    where ``seq`` is the shm frame published (0 for pipe fallback)."""
    if not outbox:
        return None, 0
    if ring_out is not None:
        count = outbox_record_count(outbox)
        if (_outbox_size(outbox, count) <= ring_out.frame_capacity
                and ring_out.can_write()):
            parts = [struct.pack("<q", len(outbox))]
            for dst in sorted(outbox):
                records = outbox[dst]
                parts.append(struct.pack("<qq", dst, len(records)))
                parts.append(pack_records(records))
            seq = ring_out.write_frame(KIND_OUTBOX, count, parts)
            bus.count("transport.shm_frames")
            return ("shm", seq), seq
        bus.count("transport.shm_fallbacks")
    return ("raw", outbox), 0


def _agent_worker(conn, spec: AgentSpec,
                  shm_names: Optional[Tuple[str, str]] = None) -> None:
    """Command loop of one worker process hosting one agent engine.

    ``accept`` commands carry no reply (the pipe's FIFO order is the
    happens-before edge the next ``window`` command needs); an error in
    one is deferred and reported on the next replying command.  Frames
    this worker wrote into its outbound ring are considered consumed as
    soon as the next command arrives — the coordinator always decodes a
    reply's frame before sending anything else to this worker.
    """
    import traceback
    if spec.pin_cpu is not None and hasattr(os, "sched_setaffinity"):
        try:
            os.sched_setaffinity(0, {spec.pin_cpu})
        except OSError:  # pragma: no cover - cpu offline / not permitted
            pass
    ring_in = ring_out = None
    if shm_names is not None:
        ring_in = ShmRing.attach(shm_names[0])
        ring_out = ShmRing.attach(shm_names[1])
    engine = spec.make()
    sequencer = ChannelSequencer()
    replied_seq = 0   # newest outbound frame referenced in a sent reply
    deferred_err: Optional[str] = None
    try:
        while True:
            message = conn.recv()
            if ring_out is not None and replied_seq:
                ring_out.mark_consumed(replied_seq)
            command = message[0]
            if command == "exit":
                conn.send(("ok", None))
                break
            if command == "accept":
                # Fire-and-forget: decode, verify per-channel sequence
                # monotonicity, install.  No reply.
                try:
                    sections = _decode_sections(message[1], ring_in)
                    records: List[Record] = []
                    for src, chan_seq, recs in sections:
                        sequencer.observe(src, chan_seq)
                        records.extend(recs)
                    engine.accept_remote(records)
                    engine.bus.count("transport.records_in", len(records))
                except Exception:
                    deferred_err = traceback.format_exc()
                continue
            if deferred_err is not None:
                conn.send(("err", deferred_err))
                deferred_err = None
                continue
            try:
                if command == "build":
                    if not engine.built:
                        engine.build()
                    reply: Any = None
                elif command == "peek":
                    reply = engine.peek_next_window(message[1])
                elif command == "window":
                    out = engine.run_window(message[1])
                    ref, seq = _encode_outbox(out, ring_out, engine.bus)
                    if seq:
                        replied_seq = seq
                    reply = (ref, engine.peek_next_window(message[1]))
                elif command == "quiet":
                    reply = engine.remote_quiet_horizon(message[1], message[2])
                elif command == "windows":
                    last, out = engine.run_windows(message[1], message[2])
                    ref, seq = _encode_outbox(out, ring_out, engine.bus)
                    if seq:
                        replied_seq = seq
                    # The coordinator resumes peeking from the span end.
                    reply = (last, ref,
                             engine.peek_next_window(message[2] - 1))
                elif command == "snapshot":
                    if ring_out is not None:
                        # Zero-copy checkpoint: protocol-5 out-of-band
                        # container in a one-off blob segment — column
                        # data is memcpy'd, never pickled.
                        parts = state_oob_parts(engine, message[1])
                        name, nbytes = write_blob(
                            f"{spec.agent_id}-snap", parts)
                        reply = ("seg", name, nbytes)
                    else:
                        reply = ("raw",
                                 take_checkpoint(engine, message[1]).payload)
                elif command == "restore":
                    if not engine.built:
                        engine.build()
                    ref, window = message[1], message[2]
                    if ref[0] == "seg":
                        payload = read_blob(ref[1], ref[2])
                    else:
                        payload = ref[1]
                    restore_snapshot(engine, payload, window,
                                     spec.scenario.name)
                    sequencer = ChannelSequencer()
                    reply = None
                elif command == "finish":
                    engine.finish()
                    reply = _report_of(engine)
                else:
                    conn.send(("err", f"unknown command {command!r}"))
                    continue
                conn.send(("ok", reply))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        for ring in (ring_in, ring_out):
            if ring is not None:
                ring.close()
        conn.close()


@dataclass
class _Worker:
    """Parent-side handle of one agent's worker process."""

    process: Any
    conn: Any
    alive: bool = True
    #: worker -> coordinator ring (we read outbox frames from it).
    ring_in: Optional[ShmRing] = None
    #: coordinator -> worker ring (we write accept frames into it).
    ring_out: Optional[ShmRing] = None
    #: For each replying command in flight: the newest ``ring_out`` seq
    #: written before it was sent.  Its reply proves (pipe FIFO) the
    #: worker consumed every accept frame up to that seq.
    inflight: deque = field(default_factory=deque)


def _fork_or_spawn() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods
                                      else "spawn")


class ProcessTransport(Transport):
    """One worker process per agent: real parallelism across cores.

    Commands that apply to every agent (``build``, ``window``,
    ``snapshot``) are *fanned out* — all sends first, then all receives —
    so the workers overlap their lookahead batches; the reply collection
    is the implicit per-window barrier.  See the module doc for the
    pipelined protocol (async accepts, peek piggybacking, shared-memory
    framing, CPU pinning).  A worker that dies (killed by fault
    injection or crashed) surfaces as :class:`AgentFailure`;
    :meth:`restore` respawns it — with fresh shared segments — and loads
    the checkpoint payload.
    """

    def __init__(self, shm: Optional[bool] = None,
                 pin_cpus: Optional[bool] = None,
                 slot_bytes: Optional[int] = None,
                 slots: Optional[int] = None) -> None:
        super().__init__()
        self._ctx = _fork_or_spawn()
        self._workers: List[_Worker] = []
        self.shm = _env_flag("REPRO_TRANSPORT_SHM") if shm is None else bool(shm)
        self.pin_cpus = (_env_flag("REPRO_PIN_CPUS") if pin_cpus is None
                         else bool(pin_cpus))
        self._slot_bytes = slot_bytes
        self._slots = slots
        self._lookahead = 0
        #: Piggybacked peek cache: ``_peek_ok[i]`` marks ``_peeks[i]`` as
        #: exact (refreshed by window replies, lowered by deliveries).
        self._peeks: List[Optional[int]] = []
        self._peek_ok: List[bool] = []

    def launch(self, specs: Sequence[AgentSpec]) -> None:
        self.specs = list(specs)
        if self.pin_cpus:
            ncpu = os.cpu_count() or 1
            self.specs = [
                dataclasses.replace(spec, pin_cpu=spec.agent_id % ncpu)
                for spec in self.specs
            ]
        self._lookahead = self.specs[0].scenario.lookahead_ps
        self._workers = [self._spawn(spec) for spec in self.specs]
        self._peeks = [None] * len(self.specs)
        self._peek_ok = [False] * len(self.specs)

    def _spawn(self, spec: AgentSpec) -> _Worker:
        ring_out = ring_in = None
        names = None
        if self.shm:
            ring_out = ShmRing.create(f"{spec.agent_id}-c2w",
                                      self._slot_bytes, self._slots)
            ring_in = ShmRing.create(f"{spec.agent_id}-w2c",
                                     self._slot_bytes, self._slots)
            names = (ring_out.name, ring_in.name)
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_agent_worker, args=(child, spec, names), daemon=True,
            name=f"dons-agent-{spec.agent_id}",
        )
        process.start()
        child.close()
        return _Worker(process, parent, ring_in=ring_in, ring_out=ring_out)

    @staticmethod
    def _teardown_rings(worker: _Worker) -> None:
        for ring in (worker.ring_in, worker.ring_out):
            if ring is not None:
                ring.unlink()
                ring.close()
        worker.ring_in = worker.ring_out = None

    # --- plumbing ---------------------------------------------------------

    def _send(self, agent_id: int, message: tuple, window: int = -1,
              expects_reply: bool = True) -> None:
        worker = self._workers[agent_id]
        if not worker.alive:
            raise AgentFailure(agent_id, window)
        try:
            worker.conn.send(message)
        except (OSError, BrokenPipeError):
            worker.alive = False
            raise AgentFailure(agent_id, window)
        if expects_reply and worker.ring_out is not None:
            worker.inflight.append(worker.ring_out.next_seq - 1)

    def _recv(self, agent_id: int, window: int = -1) -> Any:
        worker = self._workers[agent_id]
        if not worker.alive:
            raise AgentFailure(agent_id, window)
        try:
            status, value = worker.conn.recv()
        except (EOFError, OSError):
            worker.alive = False
            raise AgentFailure(agent_id, window)
        if worker.ring_out is not None and worker.inflight:
            # Ack-by-sequence: this reply proves the worker processed
            # every accept frame written before its command went out.
            worker.ring_out.mark_consumed(worker.inflight.popleft())
        if status == "err":
            raise ClusterError(f"agent {agent_id} worker error:\n{value}")
        return value

    def _call(self, agent_id: int, message: tuple, window: int = -1) -> Any:
        self._send(agent_id, message, window)
        return self._recv(agent_id, window)

    def _fan_out(self, message: tuple, window: int = -1) -> List[Any]:
        """Send to every live worker, then collect every reply — the
        workers run the command concurrently."""
        for agent_id in range(len(self._workers)):
            self._send(agent_id, message, window)
        return [self._recv(agent_id, window)
                for agent_id in range(len(self._workers))]

    def _decode_outbox(self, agent_id: int, ref) -> Dict[int, List[Record]]:
        if ref is None:
            return {}
        if ref[0] == "shm":
            ring = self._workers[agent_id].ring_in
            if self._telemetry():
                with self.bus.span("unpack", "transport", src=agent_id):
                    _kind, count, view = ring.read_frame(ref[1])
                    out = unpack_outbox(view)
            else:
                _kind, count, view = ring.read_frame(ref[1])
                out = unpack_outbox(view)
            self._count("transport.shm_frames")
            self._count("transport.shm_bytes", count * RECORD_BYTES)
            return out
        return ref[1]

    def _note_window_reply(self, agent_id: int, peek: Optional[int]) -> None:
        self._peeks[agent_id] = peek
        self._peek_ok[agent_id] = True

    def _note_delivery(self, agent_id: int, records: List[Record]) -> None:
        """Keep the peek cache exact: a delivered record lands in window
        ``t // L`` (the lookahead discipline guarantees that is in the
        agent's future, so the engine-side clamp never fires)."""
        if not records or not self._peek_ok[agent_id]:
            return
        arrival = min(t for t, _node, _row in records) // self._lookahead
        peek = self._peeks[agent_id]
        if peek is None or arrival < peek:
            self._peeks[agent_id] = arrival

    # --- hosting API ------------------------------------------------------

    def build_all(self) -> None:
        self._fan_out(("build",))
        self._peek_ok = [False] * len(self._workers)

    def peek_all(self, current: int) -> List[Optional[int]]:
        missing = [a for a in range(len(self._workers))
                   if not self._peek_ok[a]]
        for agent_id in missing:
            self._send(agent_id, ("peek", current), current)
        for agent_id in missing:
            self._note_window_reply(agent_id, self._recv(agent_id, current))
        return list(self._peeks)

    def run_window(self, agent_id: int, window: int) -> Dict[int, List[Record]]:
        ref, peek = self._call(agent_id, ("window", window), window)
        self._note_window_reply(agent_id, peek)
        return self._decode_outbox(agent_id, ref)

    def run_window_all(self, window: int,
                       active: Optional[Sequence[bool]] = None):
        results: List[Union[Dict[int, List[Record]], AgentFailure]] = []
        sent: List[Optional[bool]] = []
        timed = self._timed()
        t_sent = 0.0
        for agent_id in range(len(self._workers)):
            if active is not None and not active[agent_id]:
                sent.append(None)   # provably idle: skip the round-trip
                continue
            try:
                self._send(agent_id, ("window", window), window)
                sent.append(True)
            except AgentFailure:
                sent.append(False)
        if timed:
            t_sent = time.perf_counter()
            self.window_times = []
        for agent_id in range(len(self._workers)):
            if sent[agent_id] is None:
                results.append({})
                if timed:
                    self.window_times.append(0.0)
                continue
            if not sent[agent_id]:
                results.append(AgentFailure(agent_id, window))
                if timed:
                    self.window_times.append(0.0)
                continue
            try:
                ref, peek = self._recv(agent_id, window)
                self._note_window_reply(agent_id, peek)
                results.append(self._decode_outbox(agent_id, ref))
            except AgentFailure as failure:
                results.append(failure)
            if timed:
                # Reply-arrival time since fan-out: an upper bound on the
                # agent's busy time (a fast agent's reply can sit in the
                # pipe while an earlier recv blocks), good enough for the
                # runtime's barrier-wait split.
                self.window_times.append(time.perf_counter() - t_sent)
        return results

    def quiet_all(self, current: int, limit: int) -> List[int]:
        return self._fan_out(("quiet", current, limit), current)

    def run_windows_all(self, current: int, end_window: int):
        timed = self._timed()
        t_sent = 0.0
        for agent_id in range(len(self._workers)):
            self._send(agent_id, ("windows", current, end_window), current)
        if timed:
            t_sent = time.perf_counter()
            self.window_times = []
        out: List[Tuple[int, Dict[int, List[Record]]]] = []
        for agent_id in range(len(self._workers)):
            last, ref, peek = self._recv(agent_id, current)
            self._note_window_reply(agent_id, peek)
            out.append((last, self._decode_outbox(agent_id, ref)))
            if timed:
                self.window_times.append(time.perf_counter() - t_sent)
        return out

    def accept_sections(self, agent_id: int, sections: List[Section],
                        records: List[Record]) -> None:
        worker = self._workers[agent_id]
        ref = None
        if worker.ring_out is not None:
            size = _sections_size(sections, len(records))
            if (size <= worker.ring_out.frame_capacity
                    and worker.ring_out.can_write()):
                parts = [struct.pack("<q", len(sections))]
                for src, chan_seq, recs in sections:
                    parts.append(struct.pack(
                        "<qqq", src, chan_seq, len(recs)))
                    parts.append(pack_records(recs))
                try:
                    seq = worker.ring_out.write_frame(
                        KIND_SECTIONS, len(records), parts)
                except RingFull:  # pragma: no cover - raced can_write
                    seq = None
                if seq is not None:
                    ref = ("shm", seq)
                    self._count("transport.shm_frames")
                    self._count("transport.shm_bytes",
                                len(records) * RECORD_BYTES)
            if ref is None:
                self._count("transport.shm_fallbacks")
        if ref is None:
            ref = ("raw", sections)
        # Fire-and-forget: the pipe's FIFO order sequences this before
        # the next window command, so no reply round-trip is needed.
        self._send(agent_id, ("accept", ref), expects_reply=False)
        self._note_delivery(agent_id, records)

    def accept(self, agent_id: int, records: List[Record]) -> None:
        # Administrative delivery (recovery replay): src -1 bypasses the
        # per-channel sequence guard — the original batches were already
        # sequenced when first delivered.
        self.accept_sections(agent_id, [(-1, 0, records)], records)

    def snapshot_all(self, window: int) -> List[bytes]:
        refs = self._fan_out(("snapshot", window), window)
        payloads = []
        for ref in refs:
            if ref[0] == "seg":
                payload = read_blob(ref[1], ref[2])
                self._count("transport.shm_bytes", len(payload))
            else:
                payload = ref[1]
            payloads.append(payload)
        return payloads

    def kill(self, agent_id: int) -> None:
        """Fault injection: terminate the worker process outright.  Its
        rings are kept until :meth:`restore` replaces them — a restored
        incarnation never reads a possibly half-written old frame."""
        worker = self._workers[agent_id]
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=10)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.alive = False

    def alive(self, agent_id: int) -> bool:
        return self._workers[agent_id].alive

    def restore(self, agent_id: int, payload: bytes, window: int) -> None:
        worker = self._workers[agent_id]
        if not worker.alive:
            self._teardown_rings(worker)
            self._workers[agent_id] = self._spawn(self.specs[agent_id])
            self._call(agent_id, ("build",))
        if self.shm:
            name, nbytes = write_blob(f"{agent_id}-restore", [payload])
            ref = ("seg", name, nbytes)
        else:
            ref = ("raw", payload)
        self._call(agent_id, ("restore", ref, window))
        self._peek_ok[agent_id] = False

    def finish_all(self) -> List[AgentReport]:
        return self._fan_out(("finish",))

    def close(self) -> None:
        for agent_id, worker in enumerate(self._workers):
            if worker.alive:
                try:
                    self._call(agent_id, ("exit",))
                except (AgentFailure, ClusterError):
                    pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=10)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
            self._teardown_rings(worker)
            worker.alive = False


def make_transport(kind: Union[str, Transport, None]) -> Transport:
    """Resolve a transport argument: an instance, a name, or ``None``."""
    if kind is None:
        return LocalTransport()
    if isinstance(kind, Transport):
        return kind
    if kind == "local":
        return LocalTransport()
    if kind == "process":
        return ProcessTransport()
    if kind == "shm":
        return ProcessTransport(shm=True)
    raise ClusterError(f"unknown transport {kind!r}")
