"""Transport layer: where agents live and how window batches move.

The cluster runtime (:mod:`repro.cluster.runtime`) never talks to an
:class:`~repro.cluster.agent.AgentEngine` directly; it talks to a
*transport*, which decides where each agent executes and carries the
batched RPCs between them.  Two implementations:

* :class:`LocalTransport` — every agent is an in-process engine and a
  batch RPC is an in-process mailbox hand-off (the DESIGN.md
  substitution).  Serial, deterministic, zero serialization cost; the
  default, and the reference the equivalence tests compare against.
* :class:`ProcessTransport` — every agent runs in its own
  ``multiprocessing`` worker; window commands fan out to all workers
  before any reply is collected, so agents execute their lookahead
  batches concurrently without sharing a GIL.  Window batches, snapshots
  and results cross the pipe pickled.

Both route every batch through a lazily-created
:class:`~repro.cluster.channel.RpcChannel` (one per directed pair that
actually communicates), so the traffic accounting — records, bytes,
FINISH signals — is identical whichever transport runs the agents.

The transport is also the fault boundary: :meth:`Transport.kill` is the
fault-injection hook (worker process terminated / in-process engine
discarded), failures surface as :class:`AgentFailure`, and
:meth:`Transport.restore` rebuilds a dead agent from a checkpoint
payload — the runtime layers replay and catch-up on top.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .agent import AgentEngine, AgentSpec, spec_of
from .channel import ChannelMap, ClusterTrafficStats
from ..core.checkpoint import (
    FORMAT as ENGINE_FORMAT,
    Checkpoint,
    restore_checkpoint,
    take_checkpoint,
)
from ..core.instrument import SystemProfile, WindowProfile
from ..errors import ClusterError
from ..metrics import SimResults
from ..protocols.packet import Row

#: One remote delivery: (arrival_time_ps, node, row).
Record = Tuple[int, int, Row]


class AgentFailure(ClusterError):
    """An agent died (or was killed) and cannot serve requests."""

    def __init__(self, agent_id: int, window: int = -1) -> None:
        super().__init__(f"agent {agent_id} failed at window {window}")
        self.agent_id = agent_id
        self.window = window


@dataclass
class AgentReport:
    """What one finished agent hands back across the transport."""

    agent_id: int
    results: SimResults
    counters: Dict[str, int]
    totals: Dict[str, SystemProfile]
    windows: List[WindowProfile]
    #: Telemetry streams (PR 5): the agent bus's span buffer, its metric
    #: registry snapshot, and the wall-clock position of its span epoch
    #: — the cluster bus uses the latter to normalize child clocks
    #: before merging the spans under the ``a<id>:`` namespace.
    spans: List[tuple] = None  # type: ignore[assignment]
    metrics: Dict[str, Any] = None  # type: ignore[assignment]
    epoch_wall: float = 0.0


class Transport:
    """Base transport: channel accounting shared by every implementation.

    Subclasses implement agent hosting (``launch`` / ``build_all`` /
    ``peek_all`` / ``run_window`` / ``run_window_all`` / ``accept`` /
    ``snapshot_all`` / ``kill`` / ``restore`` / ``finish_all`` /
    ``close``); batch accounting, delivery and the FINISH barrier live
    here.
    """

    def __init__(self) -> None:
        self.specs: List[AgentSpec] = []
        self.channels = ChannelMap()
        self.stats = ClusterTrafficStats()
        #: Cluster bus for transport-level telemetry; the runtime wires
        #: it at build when telemetry is on, else spans stay un-emitted.
        self.bus = None
        #: Per-agent busy seconds of the most recent ``run_window_all``
        #: (coordinator-observed; filled only when ``bus`` telemetry is
        #: on) — the runtime turns these into barrier-wait slices.
        self.window_times: List[float] = []

    def _telemetry(self) -> bool:
        return self.bus is not None and self.bus.telemetry

    # --- batched RPCs -----------------------------------------------------

    @property
    def num_agents(self) -> int:
        return len(self.specs)

    def send_batch(self, src: int, dst: int, records: List[Record]) -> None:
        """Account and enqueue one window batch (nothing for empty)."""
        if records:
            if self._telemetry():
                with self.bus.span("send", "transport", src=src, dst=dst,
                                   records=len(records)):
                    self.channels[src, dst].send_batch(records)
            else:
                self.channels[src, dst].send_batch(records)

    def deliver_pending(self) -> Dict[int, List[Record]]:
        """Drain every channel into its destination agent, in ``(src,
        dst)`` order; returns what each destination received (the
        runtime's replay log feeds on this)."""
        delivered: Dict[int, List[Record]] = {}
        for (_src, dst), channel in self.channels.sorted_items():
            records = channel.drain()
            if records:
                if self._telemetry():
                    # The serialize + hand-off of one batch: in-process
                    # it is a mailbox append, across a ProcessTransport
                    # pipe it is the pickle + write.
                    with self.bus.span("serialize", "transport", dst=dst,
                                       records=len(records)):
                        self.accept(dst, records)
                else:
                    self.accept(dst, records)
                delivered.setdefault(dst, []).extend(records)
        return delivered

    def barrier(self) -> None:
        """End-of-window FINISH barrier: everyone tells everyone (§4.2)."""
        n = self.num_agents
        self.stats.finish_signals += n * (n - 1)
        self.stats.windows += 1

    def finalize_stats(self) -> ClusterTrafficStats:
        """Aggregate the per-channel accounting into the run totals."""
        channels = list(self.channels.values())
        self.stats.rpc_messages = sum(c.messages for c in channels)
        self.stats.rpc_records = sum(c.records for c in channels)
        self.stats.rpc_bytes = sum(c.bytes_sent for c in channels)
        self.stats.egress_bytes = [
            sum(c.bytes_sent for c in channels if c.src == a)
            for a in range(self.num_agents)
        ]
        return self.stats

    # --- hosting API (subclass responsibility) ----------------------------

    def launch(self, specs: Sequence[AgentSpec]) -> None:
        raise NotImplementedError

    def build_all(self) -> None:
        raise NotImplementedError

    def peek_all(self, current: int) -> List[Optional[int]]:
        raise NotImplementedError

    def run_window(self, agent_id: int, window: int) -> Dict[int, List[Record]]:
        raise NotImplementedError

    def run_window_all(
        self, window: int
    ) -> List[Union[Dict[int, List[Record]], AgentFailure]]:
        raise NotImplementedError

    def quiet_all(self, current: int, limit: int) -> List[int]:
        """Every agent's :meth:`AgentEngine.remote_quiet_horizon` — the
        batcher takes the minimum before committing to a barrier-free
        span."""
        raise NotImplementedError

    def run_windows_all(
        self, current: int, end_window: int
    ) -> List[Tuple[int, Dict[int, List[Record]]]]:
        """Batched span: every agent runs its scheduled windows in
        ``(current, end_window)`` without intermediate barriers."""
        raise NotImplementedError

    def accept(self, agent_id: int, records: List[Record]) -> None:
        raise NotImplementedError

    def snapshot_all(self, window: int) -> List[bytes]:
        raise NotImplementedError

    def kill(self, agent_id: int) -> None:
        raise NotImplementedError

    def alive(self, agent_id: int) -> bool:
        raise NotImplementedError

    def restore(self, agent_id: int, payload: bytes, window: int) -> None:
        raise NotImplementedError

    def finish_all(self) -> List[AgentReport]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def _report_of(engine: AgentEngine) -> AgentReport:
    bus = engine.bus
    return AgentReport(
        agent_id=engine.agent_id,
        results=engine.results,
        counters=dict(bus.counters),
        totals=dict(bus.totals),
        windows=list(bus.windows),
        spans=list(bus.spans),
        metrics=bus.metrics.snapshot() if bus.metrics else {},
        epoch_wall=bus.epoch_wall,
    )


class LocalTransport(Transport):
    """All agents in this process; a batch RPC is a mailbox hand-off.

    ``engines`` may be supplied pre-constructed (the legacy
    ``ClusterController`` path and checkpoint resume); otherwise
    :meth:`launch` builds them from the specs.  A killed agent's engine
    is dropped on the floor — the crash loses its memory, exactly what
    recovery must survive.
    """

    def __init__(self, engines: Optional[Sequence[AgentEngine]] = None) -> None:
        super().__init__()
        self.engines: List[Optional[AgentEngine]] = list(engines or [])
        if self.engines:
            self.specs = [spec_of(e) for e in self.engines]
        self._dead: set = set()

    def launch(self, specs: Sequence[AgentSpec]) -> None:
        if self.engines:
            if len(self.engines) != len(specs):
                raise ClusterError("adopted engines do not match the specs")
            self.specs = [spec_of(e) for e in self.engines]
            return
        self.specs = list(specs)
        self.engines = [spec.make() for spec in self.specs]

    def _engine(self, agent_id: int, window: int = -1) -> AgentEngine:
        engine = self.engines[agent_id]
        if agent_id in self._dead or engine is None:
            raise AgentFailure(agent_id, window)
        return engine

    def build_all(self) -> None:
        for agent_id in range(len(self.engines)):
            engine = self._engine(agent_id)
            if not engine.built:
                engine.build()

    def peek_all(self, current: int) -> List[Optional[int]]:
        return [self._engine(a).peek_next_window(current)
                for a in range(len(self.engines))]

    def run_window(self, agent_id: int, window: int) -> Dict[int, List[Record]]:
        return self._engine(agent_id, window).run_window(window)

    def run_window_all(self, window: int):
        out: List[Union[Dict[int, List[Record]], AgentFailure]] = []
        telemetry = self._telemetry()
        if telemetry:
            self.window_times = []
        for agent_id in range(len(self.engines)):
            t0 = self.bus.now() if telemetry else 0.0
            try:
                out.append(self.run_window(agent_id, window))
            except AgentFailure as failure:
                out.append(failure)
            if telemetry:
                # Serial execution: each agent's busy time is exactly its
                # own wall time; the runtime derives barrier waits.
                self.window_times.append(self.bus.now() - t0)
        return out

    def quiet_all(self, current: int, limit: int) -> List[int]:
        return [self._engine(a).remote_quiet_horizon(current, limit)
                for a in range(len(self.engines))]

    def run_windows_all(self, current: int, end_window: int):
        out: List[Tuple[int, Dict[int, List[Record]]]] = []
        telemetry = self._telemetry()
        if telemetry:
            self.window_times = []
        for agent_id in range(len(self.engines)):
            t0 = self.bus.now() if telemetry else 0.0
            out.append(self._engine(agent_id, current)
                       .run_windows(current, end_window))
            if telemetry:
                self.window_times.append(self.bus.now() - t0)
        return out

    def accept(self, agent_id: int, records: List[Record]) -> None:
        self._engine(agent_id).accept_remote(records)

    def snapshot_all(self, window: int) -> List[bytes]:
        return [take_checkpoint(self._engine(a), window).payload
                for a in range(len(self.engines))]

    def kill(self, agent_id: int) -> None:
        """Fault injection: the agent crashes, its in-memory state is gone."""
        self._dead.add(agent_id)
        self.engines[agent_id] = None

    def alive(self, agent_id: int) -> bool:
        return agent_id not in self._dead and self.engines[agent_id] is not None

    def restore(self, agent_id: int, payload: bytes, window: int) -> None:
        spec = self.specs[agent_id]
        engine = spec.make()
        engine.build()
        restore_checkpoint(engine, Checkpoint(
            ENGINE_FORMAT, spec.scenario.name, window, payload,
        ))
        self.engines[agent_id] = engine
        self._dead.discard(agent_id)

    def finish_all(self) -> List[AgentReport]:
        reports = []
        for agent_id in range(len(self.engines)):
            engine = self._engine(agent_id)
            engine.finish()
            reports.append(_report_of(engine))
        return reports

    def close(self) -> None:  # engines stay inspectable after the run
        pass


# --- process transport ----------------------------------------------------

def _agent_worker(conn, spec: AgentSpec) -> None:
    """Command loop of one worker process hosting one agent engine."""
    import traceback
    engine = spec.make()
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "exit":
                conn.send(("ok", None))
                break
            try:
                if command == "build":
                    if not engine.built:
                        engine.build()
                    reply: Any = None
                elif command == "peek":
                    reply = engine.peek_next_window(message[1])
                elif command == "window":
                    reply = engine.run_window(message[1])
                elif command == "quiet":
                    reply = engine.remote_quiet_horizon(message[1], message[2])
                elif command == "windows":
                    reply = engine.run_windows(message[1], message[2])
                elif command == "accept":
                    engine.accept_remote(message[1])
                    reply = None
                elif command == "snapshot":
                    reply = take_checkpoint(engine, message[1]).payload
                elif command == "restore":
                    if not engine.built:
                        engine.build()
                    restore_checkpoint(engine, Checkpoint(
                        ENGINE_FORMAT, spec.scenario.name,
                        message[2], message[1],
                    ))
                    reply = None
                elif command == "finish":
                    engine.finish()
                    reply = _report_of(engine)
                else:
                    conn.send(("err", f"unknown command {command!r}"))
                    continue
                conn.send(("ok", reply))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


@dataclass
class _Worker:
    """Parent-side handle of one agent's worker process."""

    process: Any
    conn: Any
    alive: bool = True


def _fork_or_spawn() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods
                                      else "spawn")


class ProcessTransport(Transport):
    """One worker process per agent: real parallelism across cores.

    Commands that apply to every agent (`build`, `peek`, `window`,
    `snapshot`) are *fanned out* — all sends first, then all receives —
    so the workers overlap their lookahead batches; the reply collection
    is the implicit per-window barrier.  A worker that dies (killed by
    fault injection or crashed) surfaces as :class:`AgentFailure`;
    :meth:`restore` respawns it and loads the checkpoint payload.
    """

    def __init__(self) -> None:
        super().__init__()
        self._ctx = _fork_or_spawn()
        self._workers: List[_Worker] = []

    def launch(self, specs: Sequence[AgentSpec]) -> None:
        self.specs = list(specs)
        self._workers = [self._spawn(spec) for spec in self.specs]

    def _spawn(self, spec: AgentSpec) -> _Worker:
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_agent_worker, args=(child, spec), daemon=True,
            name=f"dons-agent-{spec.agent_id}",
        )
        process.start()
        child.close()
        return _Worker(process, parent)

    # --- plumbing ---------------------------------------------------------

    def _send(self, agent_id: int, message: tuple, window: int = -1) -> None:
        worker = self._workers[agent_id]
        if not worker.alive:
            raise AgentFailure(agent_id, window)
        try:
            worker.conn.send(message)
        except (OSError, BrokenPipeError):
            worker.alive = False
            raise AgentFailure(agent_id, window)

    def _recv(self, agent_id: int, window: int = -1) -> Any:
        worker = self._workers[agent_id]
        if not worker.alive:
            raise AgentFailure(agent_id, window)
        try:
            status, value = worker.conn.recv()
        except (EOFError, OSError):
            worker.alive = False
            raise AgentFailure(agent_id, window)
        if status == "err":
            raise ClusterError(f"agent {agent_id} worker error:\n{value}")
        return value

    def _call(self, agent_id: int, message: tuple, window: int = -1) -> Any:
        self._send(agent_id, message, window)
        return self._recv(agent_id, window)

    def _fan_out(self, message: tuple, window: int = -1) -> List[Any]:
        """Send to every live worker, then collect every reply — the
        workers run the command concurrently."""
        for agent_id in range(len(self._workers)):
            self._send(agent_id, message, window)
        return [self._recv(agent_id, window)
                for agent_id in range(len(self._workers))]

    # --- hosting API ------------------------------------------------------

    def build_all(self) -> None:
        self._fan_out(("build",))

    def peek_all(self, current: int) -> List[Optional[int]]:
        return self._fan_out(("peek", current))

    def run_window(self, agent_id: int, window: int) -> Dict[int, List[Record]]:
        return self._call(agent_id, ("window", window), window)

    def run_window_all(self, window: int):
        results: List[Union[Dict[int, List[Record]], AgentFailure]] = []
        sent: List[bool] = []
        telemetry = self._telemetry()
        t_sent = 0.0
        for agent_id in range(len(self._workers)):
            try:
                self._send(agent_id, ("window", window), window)
                sent.append(True)
            except AgentFailure:
                sent.append(False)
        if telemetry:
            t_sent = self.bus.now()
            self.window_times = []
        for agent_id in range(len(self._workers)):
            if not sent[agent_id]:
                results.append(AgentFailure(agent_id, window))
                if telemetry:
                    self.window_times.append(0.0)
                continue
            try:
                results.append(self._recv(agent_id, window))
            except AgentFailure as failure:
                results.append(failure)
            if telemetry:
                # Reply-arrival time since fan-out: an upper bound on the
                # agent's busy time (a fast agent's reply can sit in the
                # pipe while an earlier recv blocks), good enough for the
                # runtime's barrier-wait split.
                self.window_times.append(self.bus.now() - t_sent)
        return results

    def quiet_all(self, current: int, limit: int) -> List[int]:
        return self._fan_out(("quiet", current, limit), current)

    def run_windows_all(self, current: int, end_window: int):
        telemetry = self._telemetry()
        t_sent = 0.0
        for agent_id in range(len(self._workers)):
            self._send(agent_id, ("windows", current, end_window), current)
        if telemetry:
            t_sent = self.bus.now()
            self.window_times = []
        out: List[Tuple[int, Dict[int, List[Record]]]] = []
        for agent_id in range(len(self._workers)):
            out.append(self._recv(agent_id, current))
            if telemetry:
                self.window_times.append(self.bus.now() - t_sent)
        return out

    def accept(self, agent_id: int, records: List[Record]) -> None:
        self._call(agent_id, ("accept", records))

    def snapshot_all(self, window: int) -> List[bytes]:
        return self._fan_out(("snapshot", window))

    def kill(self, agent_id: int) -> None:
        """Fault injection: terminate the worker process outright."""
        worker = self._workers[agent_id]
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=10)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.alive = False

    def alive(self, agent_id: int) -> bool:
        return self._workers[agent_id].alive

    def restore(self, agent_id: int, payload: bytes, window: int) -> None:
        worker = self._workers[agent_id]
        if not worker.alive:
            self._workers[agent_id] = self._spawn(self.specs[agent_id])
            self._call(agent_id, ("build",))
        self._call(agent_id, ("restore", payload, window))

    def finish_all(self) -> List[AgentReport]:
        return self._fan_out(("finish",))

    def close(self) -> None:
        for agent_id, worker in enumerate(self._workers):
            if worker.alive:
                try:
                    self._call(agent_id, ("exit",))
                except (AgentFailure, ClusterError):
                    pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=10)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
            worker.alive = False


def make_transport(kind: Union[str, Transport, None]) -> Transport:
    """Resolve a transport argument: an instance, a name, or ``None``."""
    if kind is None:
        return LocalTransport()
    if isinstance(kind, Transport):
        return kind
    if kind == "local":
        return LocalTransport()
    if kind == "process":
        return ProcessTransport()
    raise ClusterError(f"unknown transport {kind!r}")
