"""Scenario serialization: save and reload complete simulation setups.

Reproducibility plumbing a released simulator needs: a scenario —
topology, flows, port configuration — round-trips through a single JSON
document, so an experiment can be archived, shared, or re-run bit-for-bit
(`python -m repro run --load scenario.json`).

The topology serializes structurally (nodes + links), not as a generator
spec, so hand-edited and programmatically-built topologies both survive.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, TextIO, Union

from .errors import ConfigError
from .protocols import AqmConfig, AqmKind, EgressConfig
from .protocols.dctcp import DctcpParams
from .scenario import Scenario
from .schedulers import SchedulerKind
from .topology import NodeKind, Topology
from .traffic import Flow, FlowColumns, Transport

#: v2 adds columnar traffic: scenarios whose flows are a
#: :class:`~repro.traffic.FlowColumns` serialize as parallel columns
#: under ``flow_columns`` instead of one dict per flow.  v1 documents
#: (per-flow dicts only) still load.
FORMAT = "repro-scenario-v2"
_READABLE_FORMATS = ("repro-scenario-v1", FORMAT)


def _topology_to_dict(topo: Topology) -> Dict[str, Any]:
    return {
        "name": topo.name,
        "nodes": [{"kind": int(n.kind), "name": n.name} for n in topo.nodes],
        "links": [
            {"a": l.node_a, "b": l.node_b, "rate_bps": l.rate_bps,
             "delay_ps": l.delay_ps}
            for l in topo.links
        ],
    }


def _topology_from_dict(data: Dict[str, Any]) -> Topology:
    topo = Topology(data["name"])
    for node in data["nodes"]:
        if node["kind"] == int(NodeKind.HOST):
            topo.add_host(node["name"])
        else:
            topo.add_switch(node["name"])
    for link in data["links"]:
        topo.add_link(link["a"], link["b"], link["rate_bps"],
                      link["delay_ps"])
    return topo.freeze()


def _flow_to_dict(flow: Flow) -> Dict[str, Any]:
    return {
        "id": flow.flow_id, "src": flow.src, "dst": flow.dst,
        "size": flow.size_bytes, "start_ps": flow.start_ps,
        "transport": flow.transport.name.lower(),
        "priority": flow.priority,
    }


def _flow_from_dict(data: Dict[str, Any]) -> Flow:
    return Flow(
        data["id"], data["src"], data["dst"], data["size"],
        data["start_ps"], Transport[data["transport"].upper()],
        data.get("priority", 0),
    )


def _aqm_to_dict(aqm: AqmConfig) -> Dict[str, Any]:
    return {
        "kind": aqm.kind.name.lower(),
        "ecn_threshold_bytes": aqm.ecn_threshold_bytes,
        "red_min_bytes": aqm.red_min_bytes,
        "red_max_bytes": aqm.red_max_bytes,
        "red_max_p": aqm.red_max_p,
        "red_weight_shift": aqm.red_weight_shift,
    }


def _aqm_from_dict(data: Dict[str, Any]) -> AqmConfig:
    return AqmConfig(
        kind=AqmKind[data["kind"].upper()],
        ecn_threshold_bytes=data["ecn_threshold_bytes"],
        red_min_bytes=data["red_min_bytes"],
        red_max_bytes=data["red_max_bytes"],
        red_max_p=data["red_max_p"],
        red_weight_shift=data["red_weight_shift"],
    )


def _egress_to_dict(cfg: EgressConfig) -> Dict[str, Any]:
    return {
        "buffer_bytes": cfg.buffer_bytes,
        "aqm": _aqm_to_dict(cfg.aqm),
        "scheduler": cfg.scheduler.value,
        "num_classes": cfg.num_classes,
        "drr_quantum_bytes": cfg.drr_quantum_bytes,
    }


def _egress_from_dict(data: Dict[str, Any]) -> EgressConfig:
    return EgressConfig(
        buffer_bytes=data["buffer_bytes"],
        aqm=_aqm_from_dict(data["aqm"]),
        scheduler=SchedulerKind(data["scheduler"]),
        num_classes=data["num_classes"],
        drr_quantum_bytes=data["drr_quantum_bytes"],
    )


def _dctcp_to_dict(p: DctcpParams) -> Dict[str, Any]:
    return {
        "init_cwnd": p.init_cwnd, "g": p.g,
        "min_rto_ps": p.min_rto_ps, "init_rto_ps": p.init_rto_ps,
        "max_rto_ps": p.max_rto_ps,
        "dupack_threshold": p.dupack_threshold,
        "ecn_cut_factor": p.ecn_cut_factor,
    }


def _dctcp_from_dict(data: Dict[str, Any]) -> DctcpParams:
    return DctcpParams(**data)


def scenario_to_json(scenario: Scenario, out: Optional[TextIO] = None,
                     indent: int = 1) -> str:
    """Serialize a scenario; returns the JSON text (and writes ``out``)."""
    doc = {
        "format": FORMAT,
        "name": scenario.name,
        "topology": _topology_to_dict(scenario.topology),
        "switch_egress": _egress_to_dict(scenario.switch_egress),
        "host_egress": _egress_to_dict(scenario.host_egress),
        "dctcp": _dctcp_to_dict(scenario.dctcp),
        "reno": _dctcp_to_dict(scenario.reno),
        "duration_ps": scenario.duration_ps,
        "ecmp_mode": scenario.ecmp_mode,
    }
    if isinstance(scenario.flows, FlowColumns):
        doc["flow_columns"] = scenario.flows.to_dict()
    else:
        doc["flows"] = [_flow_to_dict(f) for f in scenario.flows]
    text = json.dumps(doc, indent=indent)
    if out is not None:
        out.write(text)
    return text


def scenario_from_json(source: Union[str, TextIO]) -> Scenario:
    """Rebuild a scenario (FIB included) from its JSON document."""
    if hasattr(source, "read"):
        doc = json.load(source)
    else:
        doc = json.loads(source)
    if doc.get("format") not in _READABLE_FORMATS:
        raise ConfigError(f"unknown scenario format {doc.get('format')!r}")
    topo = _topology_from_dict(doc["topology"])
    if "flow_columns" in doc:
        flows = FlowColumns.from_dict(doc["flow_columns"])
    else:
        flows = [_flow_from_dict(f) for f in doc["flows"]]
    from .routing import build_fib
    return Scenario(
        name=doc["name"],
        topology=topo,
        flows=flows,
        fib=build_fib(topo),
        switch_egress=_egress_from_dict(doc["switch_egress"]),
        host_egress=_egress_from_dict(doc["host_egress"]),
        dctcp=_dctcp_from_dict(doc["dctcp"]),
        reno=_dctcp_from_dict(doc["reno"]),
        duration_ps=doc["duration_ps"],
        ecmp_mode=doc.get("ecmp_mode", "flow"),
    )
