"""Scenario: the complete, engine-independent description of one run.

A scenario bundles the frozen topology, the flow list, the routing tables
and the per-port configuration.  Every simulator in this repository — the
OOD baseline, its multi-LP parallel variant, the DOD engine and the
distributed cluster runtime — consumes the *same* Scenario object, which
is what makes cross-engine comparisons meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .errors import ConfigError
from .protocols import AqmConfig, AqmKind, EgressConfig
from .routing import Fib, build_fib
from .schedulers import SchedulerKind
from .protocols.dctcp import DctcpParams, RENO_ECN_PARAMS
from .topology import Topology
from .traffic import Flow, FlowColumns, Transport, validate_flows


#: Hosts get a large FIFO NIC queue: the sender's own congestion control,
#: not the NIC buffer, is the limiting factor (as in ns-3 defaults).
HOST_BUFFER_BYTES = 512 * 1024 * 1024


@dataclass
class Scenario:
    """One simulation task.

    Attributes:
        name: Label used in reports.
        topology: Frozen topology.
        flows: Validated flow list (same object handed to every engine).
        fib: Forwarding tables (built once, shared).
        switch_egress: Configuration of every switch egress queue.
        host_egress: Configuration of every host NIC queue.
        dctcp: DCTCP protocol constants.
        duration_ps: Optional hard stop; ``None`` runs to completion.
    """

    name: str
    topology: Topology
    #: Validated flows: a ``List[Flow]`` or a columnar
    #: :class:`~repro.traffic.FlowColumns` (same Sequence surface).
    flows: Sequence[Flow]
    fib: Fib
    switch_egress: EgressConfig
    host_egress: EgressConfig
    dctcp: DctcpParams = field(default_factory=DctcpParams)
    reno: DctcpParams = RENO_ECN_PARAMS
    duration_ps: Optional[int] = None
    #: 'flow' = per-flow ECMP (paper default); 'packet' = packet spraying
    ecmp_mode: str = "flow"


    def __post_init__(self) -> None:
        if not self.topology.frozen:
            raise ConfigError("scenario needs a frozen topology")
        if not self.flows:
            raise ConfigError("scenario has no flows")

    @property
    def lookahead_ps(self) -> int:
        """The DOD engine's batch length: the smallest link delay (§3.3)."""
        return self.topology.min_link_delay_ps()

    def flow_priority(self, flow_id: int) -> int:
        flows = self.flows
        if isinstance(flows, FlowColumns):
            return flows.priority_at(flow_id)
        return flows[flow_id].priority

    def cca_params(self, transport) -> DctcpParams:
        """Window-CCA constants for a flow's transport (DCTCP or RENO)."""
        return self.dctcp if transport == Transport.DCTCP else self.reno

    def classifier_table(self) -> List[int]:
        """flow_id -> traffic class, used by egress-port classifiers."""
        flows = self.flows
        if isinstance(flows, FlowColumns):
            return flows.priority_list()
        return [f.priority for f in flows]


def make_scenario(
    topology: Topology,
    flows: Sequence[Flow],
    name: Optional[str] = None,
    scheduler: SchedulerKind = SchedulerKind.FIFO,
    num_classes: int = 1,
    buffer_bytes: int = 4 * 1024 * 1024,
    aqm: Optional[AqmConfig] = None,
    dctcp: Optional[DctcpParams] = None,
    duration_ps: Optional[int] = None,
    fib: Optional[Fib] = None,
    fib_workers: int = 1,
    ecmp_mode: str = "flow",
) -> Scenario:
    """Build a Scenario with sensible defaults and a shared FIB.

    Args:
        topology: A frozen topology.
        flows: The traffic (validated against the topology's hosts).
        scheduler / num_classes: Switch egress discipline.
        buffer_bytes: Switch egress buffer (tail-drop limit).
        aqm: Marking config; defaults to DCTCP threshold marking.
        dctcp: DCTCP constants override.
        duration_ps: Optional hard stop.
        fib: Pre-built FIB (else built here with ``fib_workers`` threads).
    """
    if isinstance(flows, FlowColumns):
        # Columnar traffic: vectorized validation, no Flow materialization.
        flows.validate_against(topology.hosts)
    else:
        flows = validate_flows(flows, topology.hosts)
    if fib is None:
        fib = build_fib(topology, workers=fib_workers)
    if aqm is None:
        aqm = AqmConfig(kind=AqmKind.ECN_THRESHOLD)
    switch_egress = EgressConfig(
        buffer_bytes=buffer_bytes,
        aqm=aqm,
        scheduler=scheduler,
        num_classes=num_classes,
    )
    host_egress = EgressConfig(
        buffer_bytes=HOST_BUFFER_BYTES,
        aqm=AqmConfig(kind=AqmKind.NONE),
        scheduler=SchedulerKind.FIFO,
        num_classes=1,
    )
    return Scenario(
        name=name or f"{topology.name}/{len(flows)}flows",
        topology=topology,
        flows=flows if isinstance(flows, FlowColumns) else list(flows),
        fib=fib,
        switch_egress=switch_egress,
        host_egress=host_egress,
        dctcp=dctcp or DctcpParams(),
        duration_ps=duration_ps,
        ecmp_mode=ecmp_mode,
    )
