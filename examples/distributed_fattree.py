#!/usr/bin/env python
"""Distributed simulation: the DONS Manager end to end (paper §3.1, §4).

Submits a FatTree8 full-mesh scenario to the Manager with a 4-machine
cluster: the Load Estimator profiles the traffic, the Partitioner runs
Algorithm 1 against the time-cost model, the Agents execute their
sub-graphs in lockstep lookahead windows with FINISH-signal sync — and
the merged result is bit-identical to a single-machine run.

    python examples/distributed_fattree.py
"""

from repro import fattree, full_mesh_dynamic, make_scenario, run_dons
from repro.cluster import DonsManager
from repro.des.partition_types import random_partition
from repro.metrics import TraceLevel
from repro.partition import ClusterSpec
from repro.traffic import TINY
from repro.units import GBPS, ms, us


def main() -> None:
    topo = fattree(8, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(
        topo.hosts, duration_ps=ms(0.5), load=0.3,
        host_rate_bps=10 * GBPS, sizes=TINY, seed=11, max_flows=200,
    )
    scenario = make_scenario(topo, flows, name="fattree8-distributed")
    print(f"scenario: {topo}, {len(flows)} flows")

    # Ground truth: one machine.
    single = run_dons(scenario, TraceLevel.PORTS)

    # The Manager plans and runs on 4 machines.
    manager = DonsManager(scenario, ClusterSpec.homogeneous(4),
                          TraceLevel.PORTS)
    planned = manager.run()
    plan = planned.plan
    print(f"\nPartitioner: {plan.bisections} bisections, "
          f"{plan.planning_time_s * 1000:.1f} ms planning, "
          f"estimated T = {plan.estimated_time_s:.4f} load-units")
    print(f"machine loads (events): "
          f"{[r.events.total for r in planned.per_agent]}")
    print(f"windows: {planned.traffic.windows}   "
          f"RPCs: {planned.traffic.rpc_messages}   "
          f"RPC bytes: {planned.traffic.rpc_bytes}   "
          f"FINISH signals: {planned.traffic.finish_signals}")

    # Same scenario under a random partition: same results, more traffic.
    rand = manager.run(partition=random_partition(topo, 4, seed=3))
    print(f"\nrandom partition RPC bytes: {rand.traffic.rpc_bytes} "
          f"({rand.traffic.rpc_bytes / max(planned.traffic.rpc_bytes, 1):.1f}x "
          f"the planned partition)")

    assert single.trace.digest() == planned.results.trace.digest()
    assert single.trace.digest() == rand.results.trace.digest()
    print("\nall three executions produced identical event traces:")
    print(f"  {single.trace.digest()}")


if __name__ == "__main__":
    main()
