#!/usr/bin/env python
"""WAN backbone study: full-mesh traffic over Abilene (paper Fig. 11e).

Simulates dynamic full-mesh flows between the POP servers of the
Abilene backbone, then reports per-flow statistics and the utilization
of every backbone link — the flow-level view the paper's NetVision
front-end visualizes.

    python examples/wan_backbone.py
"""

from collections import defaultdict

from repro import abilene, full_mesh_dynamic, make_scenario, run_dons
from repro.metrics import TraceLevel
from repro.traffic import TINY
from repro.units import GBPS, ms, ps_to_us


def main() -> None:
    topo = abilene(backbone_rate_bps=10 * GBPS)
    print(f"topology: {topo}")

    flows = full_mesh_dynamic(
        topo.hosts, duration_ps=ms(1), load=0.35,
        host_rate_bps=10 * GBPS, sizes=TINY, seed=42, max_flows=150,
    )
    print(f"traffic: {len(flows)} flows over 1 ms")

    scenario = make_scenario(topo, flows, name="abilene-mesh")
    res = run_dons(scenario, workers=2)

    fcts = sorted(res.fcts_ps())
    print(f"\ncompleted {res.completed()}/{len(flows)} flows")
    print(f"FCT p10/p50/p90 (us): {ps_to_us(fcts[len(fcts)//10]):.1f} / "
          f"{ps_to_us(fcts[len(fcts)//2]):.1f} / "
          f"{ps_to_us(fcts[9*len(fcts)//10]):.1f}")

    # Per-backbone-link utilization from the load estimator's view.
    from repro.partition import estimate_scenario_loads
    loads = estimate_scenario_loads(scenario)
    per_link = []
    for link in topo.links:
        a, b = topo.nodes[link.node_a], topo.nodes[link.node_b]
        if a.is_host or b.is_host:
            continue  # access links
        cap_bytes = link.rate_bps / 8 * 1e-3  # 1 ms horizon
        util = loads.link_load[link.link_id] / cap_bytes
        per_link.append((util, f"{a.name:>14} - {b.name}"))
    print("\nbusiest backbone links (offered load / capacity):")
    for util, name in sorted(per_link, reverse=True)[:8]:
        bar = "#" * int(min(util, 1.5) * 40)
        print(f"  {name:<32} {util:6.2f}  {bar}")


if __name__ == "__main__":
    main()
