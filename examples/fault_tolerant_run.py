#!/usr/bin/env python
"""Fault tolerance (§8): checkpoint a run, 'crash', resume, verify.

Runs a FatTree scenario with periodic checkpoints into two replica
directories, simulates a crash by discarding the engine, resumes from
the surviving replica, and verifies the resumed trace is identical to an
uninterrupted run.  Finishes by exporting per-flow CSV from the resumed
results.

    python examples/fault_tolerant_run.py
"""

import os
import tempfile

from repro import fattree, full_mesh_dynamic, make_scenario, run_dons
from repro.core.checkpoint import CheckpointingEngine, CheckpointStore
from repro.metrics import TraceLevel, flows_csv
from repro.traffic import TINY
from repro.units import GBPS, ms, us


def main() -> None:
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.5), load=0.4,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=77, max_flows=80)
    scenario = make_scenario(topo, flows, name="fault-tolerant-demo")

    reference = run_dons(scenario, TraceLevel.FULL)
    print(f"reference run: {reference.completed()}/{len(flows)} flows, "
          f"digest {reference.trace.digest()}")

    with tempfile.TemporaryDirectory() as tmp:
        replicas = [os.path.join(tmp, "rack-a"), os.path.join(tmp, "rack-b")]
        store = CheckpointStore(replicas)
        engine = CheckpointingEngine(scenario, TraceLevel.FULL,
                                     store=store, every_windows=25,
                                     name="demo")
        engine.run()
        print(f"checkpointed run: {engine.checkpoints_taken} snapshots "
              f"into {len(replicas)} replicas")

        # --- the crash: one replica dies WITH the machine ----------------
        for name in os.listdir(replicas[0]):
            os.remove(os.path.join(replicas[0], name))
        del engine

        checkpoint = store.load("demo")  # served by the survivor
        fresh = CheckpointingEngine(scenario, TraceLevel.FULL)
        resumed = fresh.resume_from(checkpoint)

    assert resumed.trace.digest() == reference.trace.digest()
    print(f"resumed from window {checkpoint.current_window}: trace "
          f"identical to the uninterrupted run")

    csv_text = flows_csv(resumed)
    print(f"\nper-flow CSV ({len(csv_text.splitlines()) - 1} rows), head:")
    for line in csv_text.splitlines()[:5]:
        print("  " + line)


if __name__ == "__main__":
    main()
