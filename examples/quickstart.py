#!/usr/bin/env python
"""Quickstart: simulate a dumbbell with DCTCP on both engines.

Runs four 150 KB DCTCP flows over a shared 10 Gbps bottleneck, first on
the classical object-oriented DES baseline, then on the data-oriented
DONS engine, and shows the paper's headline property: the two engines
produce identical results — same FCTs, same RTT samples, same event
trace digest — while being architecturally different.

    python examples/quickstart.py
"""

from repro import (
    Flow, Transport, dumbbell, make_scenario, run_baseline, run_dons,
)
from repro.metrics import TraceLevel
from repro.units import GBPS, ps_to_us


def main() -> None:
    # 1. Topology: 4 host pairs around one 10 Gbps bottleneck.
    topo = dumbbell(4, edge_rate_bps=10 * GBPS,
                    bottleneck_rate_bps=10 * GBPS)
    print(f"topology: {topo}")

    # 2. Traffic: hosts 0..3 each send 150 KB to hosts 4..7.
    flows = [Flow(i, i, 4 + i, 150_000, 0, Transport.DCTCP)
             for i in range(4)]

    # 3. One scenario, two engines.
    scenario = make_scenario(topo, flows, name="quickstart")
    baseline = run_baseline(scenario, TraceLevel.FULL)
    dons = run_dons(scenario, TraceLevel.FULL, workers=2)

    # 4. Results.
    print("\nflow completion times (us):")
    for fid, fct in enumerate(dons.fcts_ps()):
        print(f"  flow {fid}: {ps_to_us(fct):9.2f}")

    rtts = dons.rtts_ps()
    print(f"\nRTT samples: {len(rtts)}   "
          f"min {ps_to_us(min(rtts)):.2f} us   "
          f"max {ps_to_us(max(rtts)):.2f} us")
    print(f"ECN marks at the bottleneck: {dons.marks}")

    # 5. The fidelity claim, checked live.
    assert baseline.fcts_ps() == dons.fcts_ps()
    assert baseline.trace.digest() == dons.trace.digest()
    print(f"\ntrace digest (both engines): {dons.trace.digest()}")
    print("OOD baseline and DONS agree, timestamp for timestamp.")


if __name__ == "__main__":
    main()
