#!/usr/bin/env python
"""Data-center incast: the partition/aggregate pattern that motivates DCTCP.

31 workers inside a FatTree8 answer a query to one aggregator at the
same instant.  The aggregator's edge link becomes the hotspot; DCTCP's
ECN-threshold marking keeps the queue bounded.  We sweep the switch
buffer size and compare schedulers, printing queue/drop/FCT statistics —
the kind of study the paper positions DONS for.

    python examples/datacenter_incast.py
"""

from repro import fattree, incast, make_scenario, run_dons
from repro.schedulers import SchedulerKind
from repro.units import GBPS, ps_to_us, us


def run_case(buffer_kb: int, scheduler: SchedulerKind):
    topo = fattree(8, rate_bps=10 * GBPS, delay_ps=us(1))
    hosts = topo.hosts
    target = hosts[0]
    workers = hosts[1:32]
    flows = incast(target, workers, size_bytes=64_000, stagger_ps=0)
    scenario = make_scenario(
        topo, flows,
        name=f"incast-{buffer_kb}KB-{scheduler.value}",
        scheduler=scheduler,
        buffer_bytes=buffer_kb * 1024,
    )
    res = run_dons(scenario, workers=2)
    fcts = res.fcts_ps()
    return {
        "completed": res.completed(),
        "drops": res.drops,
        "marks": res.marks,
        "p50_us": ps_to_us(sorted(fcts)[len(fcts) // 2]) if fcts else None,
        "p99_us": ps_to_us(sorted(fcts)[-1]) if fcts else None,
    }


def main() -> None:
    print(f"{'buffer':>8} {'sched':>6} {'done':>5} {'drops':>6} "
          f"{'marks':>6} {'p50 FCT us':>11} {'max FCT us':>11}")
    for buffer_kb in (32, 128, 1024):
        for sched in (SchedulerKind.FIFO, SchedulerKind.DRR):
            r = run_case(buffer_kb, sched)
            print(f"{buffer_kb:>6}KB {sched.value:>6} {r['completed']:>5} "
                  f"{r['drops']:>6} {r['marks']:>6} "
                  f"{r['p50_us']:>11.1f} {r['p99_us']:>11.1f}")
    print("\nsmall buffers drop and retransmit; ECN marking kicks in "
          "before loss on the larger ones.")


if __name__ == "__main__":
    main()
