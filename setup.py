"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in environments without the ``wheel`` package
(offline CI containers), via ``python setup.py develop`` or legacy
``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
)
