"""Regression corpus replay (tier-1).

Every JSON spec under ``corpus/`` re-runs through the full acceptance
oracle set; traces must be byte-identical and every reference-free
invariant must hold.  Failures found by the nightly fuzz job get their
shrunken spec checked in here so they stay fixed.
"""

from pathlib import Path

import pytest

from repro.conformance.runner import replay_file

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.json"))


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 5


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_entry_conforms(path):
    report = replay_file(path)
    assert report.ok, report.summary()
    # Every oracle produced the same number of canonical entries.
    counts = set(report.entry_counts.values())
    assert len(counts) == 1 and counts.pop() > 0
