"""The conformance harness's own tests: generator determinism, shrink
convergence, divergence attribution, invariant sensitivity, and the
planted-bug drill (the harness must catch the bug class it exists for).
"""

import dataclasses
import json

import pytest

from repro.conformance.diff import first_divergence
from repro.conformance.generator import (
    ScenarioSpec, generate_spec, shrink, shrink_candidates,
)
from repro.conformance.inject import (
    flipped_transmit_order, skewed_arrival_stream, stale_cache_delta,
    stale_window_index, torn_shm_read, unstable_transmit_sort,
)
from repro.conformance.invariants import check_invariants
from repro.conformance.oracles import run_oracle
from repro.conformance.runner import (
    check_spec, fuzz, load_spec_file, replay_file, write_artifact,
)
from repro.errors import ReproError

FAST_ORACLES = ("ood", "dons")
#: The vectorized-backend drill needs an oracle that actually runs the
#: NumPy engine, whatever REPRO_BACKEND says.
NUMPY_ORACLES = ("ood", "dons-numpy")
#: The memo-cache drill needs the fast-forward engine; corruption is
#: only observable on cache *hits*, so the fuzz stream must contain
#: steady-traffic specs that actually hit (seed 100 does, early).
FFWD_ORACLES = ("ood", "dons-numpy-ffwd")
#: The torn-frame drill needs an oracle that decodes shared-memory
#: frames; the pickled transports never touch the framing code.
SHM_ORACLES = ("ood", "cluster-shm-2")

SMALL = ScenarioSpec(seed=7, topology="dumbbell", topo_arg=2,
                     traffic="fixed", n_flows=4, flow_kb=30)


class TestGenerator:
    def test_generation_is_deterministic(self):
        for i in range(8):
            assert generate_spec(3, i) == generate_spec(3, i)
        assert generate_spec(3, 0) != generate_spec(4, 0)

    def test_build_is_deterministic(self):
        spec = generate_spec(0, 0)
        a, b = spec.build(), spec.build()
        assert a.name == b.name
        assert len(a.flows) == len(b.flows)
        assert [(f.src, f.dst, f.start_ps) for f in a.flows] == \
               [(f.src, f.dst, f.start_ps) for f in b.flows]

    def test_spec_json_round_trip(self):
        for i in range(8):
            spec = generate_spec(1, i)
            doc = json.loads(json.dumps(spec.to_dict()))
            assert ScenarioSpec.from_dict(doc) == spec

    def test_generated_specs_build(self):
        for i in range(12):
            scenario = generate_spec(2, i).build()
            assert scenario.flows and scenario.lookahead_ps > 0

    def test_candidates_are_strictly_simpler(self):
        spec = generate_spec(0, 0)
        for cand in shrink_candidates(spec):
            assert cand != spec

    def test_shrink_converges_to_minimum(self):
        spec = dataclasses.replace(SMALL, n_flows=24, topo_arg=6,
                                   traffic="incast", scheduler="drr",
                                   num_classes=3)
        minimal = shrink(spec, lambda s: s.n_flows >= 3)
        assert minimal.n_flows == 3
        assert minimal.topology == "dumbbell" and minimal.topo_arg == 1
        assert minimal.traffic == "fixed" and minimal.scheduler == "fifo"

    def test_shrink_survives_invalid_candidates(self):
        def predicate(s):
            if s.topo_arg < 2:
                from repro.errors import ConfigError
                raise ConfigError("too small to build")
            return s.n_flows >= 3
        minimal = shrink(SMALL, predicate)
        assert minimal.topo_arg >= 2 and minimal.n_flows == 3


class TestOraclesAndInvariants:
    def test_unknown_oracle_is_an_error(self):
        with pytest.raises(ReproError, match="unknown oracle"):
            run_oracle("no-such-engine", SMALL.build())

    def test_clean_run_has_no_violations(self):
        scenario = SMALL.build()
        run = run_oracle("dons", scenario)
        assert run.trace and check_invariants(scenario, run) == []

    def test_invariants_flag_doctored_traces(self):
        scenario = SMALL.build()
        run = run_oracle("dons", scenario)

        negative = dataclasses.replace(
            run, trace=[(-1,) + run.trace[0][1:]] + run.trace[1:])
        assert any(v.invariant == "monotone-time"
                   for v in check_invariants(scenario, negative))

        from repro.metrics.trace import TraceKind
        deq = next(e for e in run.trace if e[1] == TraceKind.DEQ)
        doubled = dataclasses.replace(run, trace=sorted(run.trace + [deq]))
        found = {v.invariant for v in check_invariants(scenario, doubled)}
        assert "service-ordering" in found

        enq = next(e for e in run.trace if e[1] == TraceKind.ENQ)
        missing = dataclasses.replace(
            run, trace=[e for e in run.trace if e != enq])
        assert any(v.invariant == "conservation"
                   for v in check_invariants(scenario, missing))

        impossible = dataclasses.replace(run, lookahead_ps=10 ** 15)
        assert any(v.invariant == "lookahead"
                   for v in check_invariants(scenario, impossible))

    def test_first_divergence_attributes_the_op(self):
        scenario = SMALL.build()
        ref = run_oracle("ood", scenario)
        cand = run_oracle("dons", scenario)
        assert first_divergence(scenario, ref, cand) is None

        truncated = dataclasses.replace(cand, trace=cand.trace[:-1])
        div = first_divergence(scenario, ref, truncated)
        assert div is not None
        assert div.op_index == len(cand.trace) - 1
        assert div.cand_entry is None and div.ref_entry == ref.trace[-1]
        assert div.window == ref.trace[-1][0] // scenario.lookahead_ps
        assert div.system and div.entity
        assert "window" in div.format()


class TestFuzzLoop:
    def test_check_spec_passes_on_fast_oracles(self):
        report = check_spec(SMALL, FAST_ORACLES)
        assert report.ok, report.summary()
        assert report.entry_counts["ood"] == report.entry_counts["dons"]

    def test_planted_ordering_bug_is_caught_and_shrunk(self, tmp_path):
        """The acceptance drill: flip the transmit kernel's tie-break;
        the fuzz loop must catch it within 25 runs and shrink it to a
        tiny topology with window/system/entity attribution."""
        with flipped_transmit_order():
            result = fuzz(0, 25, FAST_ORACLES, do_shrink=True,
                          artifact_dir=tmp_path)
        assert not result.ok, "planted bug survived 25 fuzz runs"
        assert result.shrunk is not None
        assert result.shrunk.spec.num_nodes() <= 8
        div = result.shrunk.divergences[0]
        assert div.window is not None and div.system and div.entity

        # The artifact replays: still failing under the bug, clean after.
        assert result.artifact is not None and result.artifact.exists()
        with flipped_transmit_order():
            assert not replay_file(result.artifact, FAST_ORACLES).ok
        assert replay_file(result.artifact, FAST_ORACLES).ok

    def test_planted_stale_window_index_is_caught_and_shrunk(self, tmp_path):
        """The columnar-store drill: corrupt the window-occupancy index
        so singleton buckets are invisible to the scheduler.  Both DOD
        backends share the store, so the plain fast oracles must catch
        the starved windows — and shrink the repro small."""
        with stale_window_index():
            result = fuzz(0, 25, FAST_ORACLES, do_shrink=True,
                          artifact_dir=tmp_path)
        assert not result.ok, "planted bug survived 25 fuzz runs"
        assert result.shrunk is not None
        assert result.shrunk.spec.num_nodes() <= 8
        div = result.shrunk.divergences[0]
        assert div.window is not None and div.system and div.entity

        # The artifact replays: still failing under the bug, clean after.
        assert result.artifact is not None and result.artifact.exists()
        with stale_window_index():
            assert not replay_file(result.artifact, FAST_ORACLES).ok
        assert replay_file(result.artifact, FAST_ORACLES).ok

    def test_planted_unstable_sort_is_caught_and_shrunk(self, tmp_path):
        """The NumPy-backend drill: replace the vectorized ordering-
        contract sort with one unstable on (time, prio) ties.  Only the
        vectorized engine is infected, so the fuzz loop must catch it
        through the ``dons-numpy`` oracle — and shrink it small."""
        with unstable_transmit_sort():
            result = fuzz(0, 25, NUMPY_ORACLES, do_shrink=True,
                          artifact_dir=tmp_path)
        assert not result.ok, "planted bug survived 25 fuzz runs"
        assert result.shrunk is not None
        assert result.shrunk.spec.num_nodes() <= 8
        div = result.shrunk.divergences[0]
        assert div.window is not None and div.system and div.entity

        # The Python reference kernels are untouched: the same fuzz
        # stream stays clean when the vectorized engine is not asked for.
        with unstable_transmit_sort():
            assert fuzz(0, 3, ("ood", "dons-python")).ok

        # The artifact replays: still failing under the bug, clean after.
        assert result.artifact is not None and result.artifact.exists()
        with unstable_transmit_sort():
            assert not replay_file(result.artifact, NUMPY_ORACLES).ok
        assert replay_file(result.artifact, NUMPY_ORACLES).ok

    def test_planted_stale_cache_delta_is_caught_and_shrunk(
            self, tmp_path, monkeypatch):
        """The memoization drill: poison each captured window delta so
        cache hits replay a wrong write-set.  Executed windows stay
        byte-correct — only fast-forwarded replays diverge — so the bug
        is invisible to every oracle except ``dons-numpy-ffwd`` on a
        workload whose window signatures repeat."""
        # The drill's contrast depends on exactly one oracle running the
        # memo; a CI matrix row exporting REPRO_FFWD=1 would otherwise
        # fast-forward the "clean" oracles into the poisoned cache too.
        monkeypatch.delenv("REPRO_FFWD", raising=False)
        with stale_cache_delta():
            result = fuzz(100, 25, FFWD_ORACLES, do_shrink=True,
                          artifact_dir=tmp_path)
        assert not result.ok, "planted bug survived 25 fuzz runs"
        assert result.shrunk is not None
        assert result.shrunk.spec.num_nodes() <= 8
        div = result.shrunk.divergences[0]
        assert div.window is not None and div.system and div.entity

        # Engines without the fast-forward cache never read a poisoned
        # delta: the same fuzz stream stays clean without the oracle.
        with stale_cache_delta():
            assert fuzz(100, 4, NUMPY_ORACLES).ok

        # The artifact replays: still failing under the bug, clean after.
        assert result.artifact is not None and result.artifact.exists()
        with stale_cache_delta():
            assert not replay_file(result.artifact, FFWD_ORACLES).ok
        assert replay_file(result.artifact, FFWD_ORACLES).ok

    def test_planted_torn_shm_read_is_caught_and_shrunk(self, tmp_path):
        """The zero-copy-transport drill: tear the shared-memory frame
        decoder so every multi-record frame loses its last record — the
        signature of a reader racing the writer past the commit word.
        Only the shm framing path is infected, so the fuzz loop must
        catch the lost packets through the ``cluster-shm-2`` oracle —
        and shrink the repro small."""
        with torn_shm_read():
            result = fuzz(0, 25, SHM_ORACLES, do_shrink=True,
                          artifact_dir=tmp_path)
        assert not result.ok, "planted bug survived 25 fuzz runs"
        assert result.shrunk is not None
        assert result.shrunk.spec.num_nodes() <= 8
        div = result.shrunk.divergences[0]
        assert div.window is not None and div.system and div.entity

        # The pickled transports never decode frames: the same fuzz
        # stream stays clean when the shm transport is not asked for.
        with torn_shm_read():
            assert fuzz(0, 3, ("ood", "cluster-process-2")).ok

        # The artifact replays: still failing under the bug, clean after.
        assert result.artifact is not None and result.artifact.exists()
        with torn_shm_read():
            assert not replay_file(result.artifact, SHM_ORACLES).ok
        assert replay_file(result.artifact, SHM_ORACLES).ok

    def test_planted_skewed_arrivals_are_caught_and_shrunk(self, tmp_path):
        """The columnar-traffic drill: skew the first arrival batch's
        inter-arrival gaps by 7 us inside the ``batch_filter`` hook.
        Only consumers of the batch iterator are infected — the DOD
        builder's columnar path — while the OOD reference materializes
        flows scalar-wise and stays truthful.  The fuzz loop must reach
        a columnar spec (``wan_twin`` / ``storage``), catch the time
        shift as a trace divergence, and shrink it small."""
        with skewed_arrival_stream():
            result = fuzz(5, 25, NUMPY_ORACLES, do_shrink=True,
                          artifact_dir=tmp_path)
        assert not result.ok, "planted bug survived 25 fuzz runs"
        assert result.shrunk is not None
        assert result.shrunk.spec.traffic in ("wan_twin", "storage")
        assert result.shrunk.spec.num_nodes() <= 8
        div = result.shrunk.divergences[0]
        assert div.window is not None and div.system and div.entity

        # Per-flow traffic kinds never touch the batch hook: a fixed
        # spec stays byte-identical with the bug live.
        with skewed_arrival_stream():
            assert check_spec(SMALL, FAST_ORACLES).ok

        # The artifact replays: still failing under the bug, clean after.
        assert result.artifact is not None and result.artifact.exists()
        with skewed_arrival_stream():
            assert not replay_file(result.artifact, NUMPY_ORACLES).ok
        assert replay_file(result.artifact, NUMPY_ORACLES).ok

    def test_artifact_round_trip(self, tmp_path):
        report = check_spec(SMALL, FAST_ORACLES)
        path = write_artifact(report, tmp_path)
        assert load_spec_file(path) == SMALL
        doc = json.loads(path.read_text())
        assert doc["ok"] and doc["spec"]["seed"] == SMALL.seed


def test_fuzz_cli_smoke(capsys):
    from repro.cli import main
    assert main(["fuzz", "--seed", "0", "--runs", "1",
                 "--oracles", "ood,dons"]) == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out
