"""Routing: FIB semantics and the BFS builder."""

import pytest

from repro.errors import RoutingError
from repro.routing import Fib, build_fib
from repro.topology import Topology, dumbbell, fattree
from repro.units import GBPS, us


class TestFib:
    def test_install_and_lookup(self, small_dumbbell):
        fib = Fib(small_dumbbell)
        fib.install(8, 0, [2, 0, 1])
        assert fib.ports(8, 0) == (0, 1, 2)  # sorted
        with pytest.raises(RoutingError):
            fib.ports(8, 3)
        with pytest.raises(RoutingError):
            fib.install(8, 1, [])

    def test_resolve_single_port_skips_hash(self, small_dumbbell):
        fib = Fib(small_dumbbell)
        fib.install(8, 0, [5])
        assert fib.resolve_port(8, 0, flow_id=123) == 5

    def test_resolve_is_flow_stable(self, fattree4):
        fib = build_fib(fattree4)
        host = fattree4.hosts[-1]
        core_facing = fattree4.switches[10]
        p1 = fib.resolve_port(core_facing, host, flow_id=9)
        p2 = fib.resolve_port(core_facing, host, flow_id=9)
        assert p1 == p2

    def test_path_raises_on_same_endpoints(self, fattree4):
        fib = build_fib(fattree4)
        with pytest.raises(RoutingError):
            fib.path(0, 0, 1)

    def test_entry_count(self, small_dumbbell):
        fib = build_fib(small_dumbbell)
        # every node except the dest itself has an entry per host
        expected = (small_dumbbell.num_nodes - 1) * small_dumbbell.num_hosts
        assert fib.entry_count() == expected


class TestBuilder:
    def test_paths_are_shortest(self, fattree4):
        fib = build_fib(fattree4)
        hosts = fattree4.hosts
        # same edge switch: 2 hops
        assert len(fib.path(hosts[0], hosts[1], 1)) == 3
        # same pod, different edge: 4 hops
        assert len(fib.path(hosts[0], hosts[2], 1)) == 5
        # cross-pod: 6 hops
        assert len(fib.path(hosts[0], hosts[8], 1)) == 7

    def test_parallel_builder_matches_serial(self, fattree4):
        serial = build_fib(fattree4, workers=1)
        threaded = build_fib(fattree4, workers=4)
        assert serial.tables == threaded.tables

    def test_subset_of_destinations(self, fattree4):
        hosts = fattree4.hosts
        fib = build_fib(fattree4, dests=hosts[:2])
        assert fib.path(hosts[5], hosts[0], 1)[-1] == hosts[0]
        with pytest.raises(RoutingError):
            fib.path(hosts[0], hosts[5], 1)  # not installed

    def test_ecmp_sets_on_upward_paths(self, fattree4):
        fib = build_fib(fattree4)
        hosts = fattree4.hosts
        # An edge switch has 2 uplinks; cross-pod destinations should
        # expose both as ECMP candidates.
        edge = fib.path(hosts[0], hosts[8], 1)[1]
        assert len(fib.ports(edge, hosts[8])) == 2

    def test_routes_on_wan_with_asymmetric_delays(self):
        topo = Topology("asym")
        h0, h1 = topo.add_host(), topo.add_host()
        s = [topo.add_switch() for _ in range(3)]
        topo.add_link(h0, s[0], 10 * GBPS, us(1))
        topo.add_link(h1, s[2], 10 * GBPS, us(1))
        topo.add_link(s[0], s[1], 10 * GBPS, us(5))
        topo.add_link(s[1], s[2], 10 * GBPS, us(5))
        topo.add_link(s[0], s[2], 10 * GBPS, us(50))  # direct but 1 hop
        topo.freeze()
        fib = build_fib(topo)
        # hop-count routing prefers the direct link regardless of delay
        assert fib.path(h0, h1, 1) == [h0, s[0], s[2], h1]
